#include "corpus/corpus.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "analysis/analyzer.h"
#include "analysis/rta_context.h"
#include "corpus/witness.h"
#include "gen/taskset_generator.h"
#include "model/io.h"
#include "util/csv.h"

namespace rtpool::corpus {

// ---------------------------------------------------------------------------
// GapHistogram
// ---------------------------------------------------------------------------

namespace {

// log2-space bin grid: [2^-4, 2^12) at 12 bins per octave.
constexpr double kLog2Lo = -4.0;
constexpr double kLog2Hi = 12.0;

}  // namespace

void GapHistogram::add(double ratio) {
  if (!(ratio > 0.0) || !std::isfinite(ratio)) return;
  const double pos =
      (std::log2(ratio) - kLog2Lo) / (kLog2Hi - kLog2Lo) * kBins;
  int bin = static_cast<int>(std::floor(pos));
  bin = std::clamp(bin, 0, kBins - 1);
  ++bins_[static_cast<std::size_t>(bin)];
  if (count_ == 0) {
    min_ = max_ = ratio;
  } else {
    min_ = std::min(min_, ratio);
    max_ = std::max(max_, ratio);
  }
  sum_ += ratio;
  ++count_;
}

double GapHistogram::min() const { return count_ == 0 ? 0.0 : min_; }
double GapHistogram::max() const { return count_ == 0 ? 0.0 : max_; }
double GapHistogram::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double GapHistogram::bin_edge(int bin) {
  return std::exp2(kLog2Lo + (kLog2Hi - kLog2Lo) *
                                 static_cast<double>(bin) / kBins);
}

double GapHistogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // Rank in [1, count]; walk the cumulative counts to the holding bin and
  // report its lower edge, clamped to the exact observed extremes.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(p / 100.0 * static_cast<double>(count_))));
  if (rank <= 1) return min_;
  if (rank >= count_) return max_;
  std::uint64_t seen = 0;
  for (int bin = 0; bin < kBins; ++bin) {
    seen += bins_[static_cast<std::size_t>(bin)];
    if (seen >= rank) return std::clamp(bin_edge(bin), min_, max_);
  }
  return max_;
}

void GapHistogram::to_json(util::JsonWriter& w) const {
  w.begin_object();
  w.kv("count", count_);
  w.kv("min", min_).kv("max", max_).kv("sum", sum_);
  w.key("bins").begin_array();
  // Sparse encoding: [bin, count] pairs (most of the 192 bins are empty).
  for (int bin = 0; bin < kBins; ++bin) {
    if (bins_[static_cast<std::size_t>(bin)] == 0) continue;
    w.begin_array()
        .value(static_cast<std::int64_t>(bin))
        .value(bins_[static_cast<std::size_t>(bin)])
        .end_array();
  }
  w.end_array();
  w.end_object();
}

void GapHistogram::from_json(const util::JsonValue& v) {
  *this = GapHistogram();
  count_ = static_cast<std::uint64_t>(v.at("count").as_number());
  min_ = v.at("min").as_number();
  max_ = v.at("max").as_number();
  sum_ = v.at("sum").as_number();
  for (const util::JsonValue& pair : v.at("bins").as_array()) {
    const auto& cells = pair.as_array();
    const int bin = static_cast<int>(cells.at(0).as_number());
    if (bin < 0 || bin >= kBins)
      throw std::runtime_error("GapHistogram: bin index out of range");
    bins_[static_cast<std::size_t>(bin)] =
        static_cast<std::uint64_t>(cells.at(1).as_number());
  }
}

// ---------------------------------------------------------------------------
// Analyzer soundness classification
// ---------------------------------------------------------------------------

const char* to_string(OracleMode mode) {
  switch (mode) {
    case OracleMode::kAssertSafety: return "assert";
    case OracleMode::kReportOnly: return "report";
    case OracleMode::kNoSim: return "no-sim";
  }
  return "report";
}

AnalyzerSpec spec_for(const std::string& name) {
  const auto starts_with = [&](const char* prefix) {
    return name.rfind(prefix, 0) == 0;
  };
  AnalyzerSpec spec;
  spec.name = name;
  if (name == "test-forced-optimistic") {
    spec.mode = OracleMode::kAssertSafety;
    spec.policy = sim::SchedulingPolicy::kGlobal;
  } else if (starts_with("global-limited")) {
    // The paper's proposed global family: accounts for the concurrency
    // blocking forks remove, so its accepts carry a safety claim.
    spec.mode = OracleMode::kAssertSafety;
    spec.policy = sim::SchedulingPolicy::kGlobal;
  } else if (starts_with("partitioned-proposed")) {
    // Algorithm-1 partitions + Lemma-3 deadlock freedom: sound accepts.
    spec.mode = OracleMode::kAssertSafety;
    spec.policy = sim::SchedulingPolicy::kPartitioned;
  } else if (starts_with("global-")) {
    spec.mode = OracleMode::kReportOnly;
    spec.policy = sim::SchedulingPolicy::kGlobal;
  } else if (starts_with("partitioned-")) {
    spec.mode = OracleMode::kReportOnly;
    spec.policy = sim::SchedulingPolicy::kPartitioned;
  } else {
    // Federated (dedicated cores the simulator does not model) and unknown
    // custom analyzers: never simulated, never asserted.
    spec.mode = OracleMode::kNoSim;
  }
  return spec;
}

std::vector<AnalyzerSpec> default_analyzer_specs() {
  return {
      spec_for("global-limited"),
      spec_for("global-limited-antichain"),
      spec_for("partitioned-proposed"),
      spec_for("global-baseline"),
      spec_for("partitioned-baseline"),
  };
}

// ---------------------------------------------------------------------------
// CorpusRunner
// ---------------------------------------------------------------------------

namespace {

/// Worker-side outcome of one analyzer on one set.
struct PerAnalyzerOutcome {
  bool partition_failure = false;
  bool analysis_schedulable = false;
  bool sim_checked = false;
  sim::SimOutcome sim_outcome = sim::SimOutcome::kOk;
  double gap = 0.0;  ///< 0 = no sample.
};

/// Worker-side outcome of one seed.
struct SetOutcome {
  bool generated = false;
  std::size_t scenario_index = 0;
  std::vector<PerAnalyzerOutcome> per_analyzer;
  /// One bundle per assert-mode violation (written by the fold, capped).
  std::vector<WitnessBundle> witnesses;
};

std::string serialize_state(const CorpusResult& result) {
  std::ostringstream os;
  util::JsonWriter w(os);
  w.begin_object();
  w.kv("sets", result.sets);
  w.kv("generation_errors", result.generation_errors);
  w.kv("safety_violations", result.safety_violations);
  w.kv("witnesses_written", result.witnesses_written);
  w.key("per_scenario").begin_array();
  for (const std::uint64_t count : result.per_scenario_sets) w.value(count);
  w.end_array();
  w.key("analyzers").begin_array();
  for (const AnalyzerStats& st : result.per_analyzer) {
    w.begin_object();
    w.kv("name", st.analyzer);
    w.kv("sets", st.sets);
    w.kv("analysis_schedulable", st.analysis_schedulable);
    w.kv("partition_failures", st.partition_failures);
    w.kv("sim_checked", st.sim_checked);
    w.kv("sim_safe", st.sim_safe);
    w.kv("sim_deadline_miss", st.sim_deadline_miss);
    w.kv("sim_deadlock", st.sim_deadlock);
    w.kv("optimistic", st.optimistic);
    w.kv("safety_violations", st.safety_violations);
    w.kv("pessimistic", st.pessimistic);
    w.key("gap");
    st.gap.to_json(w);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return os.str();
}

void restore_state(CorpusResult& result, const std::string& blob) {
  const util::JsonValue doc = util::parse_json(blob);
  const auto u64 = [&](const char* key) {
    return static_cast<std::uint64_t>(doc.at(key).as_number());
  };
  result.sets = u64("sets");
  result.generation_errors = u64("generation_errors");
  result.safety_violations = u64("safety_violations");
  result.witnesses_written = u64("witnesses_written");
  const auto& scenarios = doc.at("per_scenario").as_array();
  if (scenarios.size() != result.per_scenario_sets.size())
    throw std::runtime_error("corpus checkpoint: scenario count differs");
  for (std::size_t i = 0; i < scenarios.size(); ++i)
    result.per_scenario_sets[i] =
        static_cast<std::uint64_t>(scenarios[i].as_number());
  const auto& analyzers = doc.at("analyzers").as_array();
  if (analyzers.size() != result.per_analyzer.size())
    throw std::runtime_error("corpus checkpoint: analyzer count differs");
  for (std::size_t i = 0; i < analyzers.size(); ++i) {
    const util::JsonValue& a = analyzers[i];
    AnalyzerStats& st = result.per_analyzer[i];
    if (a.at("name").as_string() != st.analyzer)
      throw std::runtime_error("corpus checkpoint: analyzer order differs");
    const auto field = [&](const char* key) {
      return static_cast<std::uint64_t>(a.at(key).as_number());
    };
    st.sets = field("sets");
    st.analysis_schedulable = field("analysis_schedulable");
    st.partition_failures = field("partition_failures");
    st.sim_checked = field("sim_checked");
    st.sim_safe = field("sim_safe");
    st.sim_deadline_miss = field("sim_deadline_miss");
    st.sim_deadlock = field("sim_deadlock");
    st.optimistic = field("optimistic");
    st.safety_violations = field("safety_violations");
    st.pessimistic = field("pessimistic");
    st.gap.from_json(a.at("gap"));
  }
}

}  // namespace

CorpusRunner::CorpusRunner(CorpusConfig config, int threads)
    : config_(std::move(config)), runner_(threads) {
  if (config_.cores == 0)
    throw std::invalid_argument("corpus: cores must be > 0");
  if (!(config_.windows > 0.0))
    throw std::invalid_argument("corpus: windows must be > 0");
  if (config_.seed_end < config_.seed_begin)
    throw std::invalid_argument("corpus: seed_end < seed_begin");
  if (config_.analyzers.empty()) config_.analyzers = default_analyzer_specs();
  if (config_.space.empty()) config_.space = gen::ScenarioSpace::corpus_default();
}

std::string CorpusRunner::fingerprint() const {
  std::ostringstream os;
  os << "rtpool-corpus-v1|root=" << config_.root_seed
     << "|m=" << config_.cores;
  char windows[40];
  std::snprintf(windows, sizeof windows, "%.17g", config_.windows);
  os << "|w=" << windows << "|analyzers=";
  bool first = true;
  for (const AnalyzerSpec& spec : config_.analyzers) {
    if (!first) os << ',';
    first = false;
    os << spec.name << ':' << to_string(spec.mode) << ':'
       << (spec.policy == sim::SchedulingPolicy::kGlobal ? 'g' : 'p');
  }
  os << "|space=" << config_.space.fingerprint();
  return os.str();
}

CorpusResult CorpusRunner::run() {
  const gen::ScenarioSpace& space = config_.space;
  const std::vector<AnalyzerSpec>& specs = config_.analyzers;

  std::vector<const analysis::Analyzer*> analyzers;
  analyzers.reserve(specs.size());
  for (const AnalyzerSpec& spec : specs)
    analyzers.push_back(&analysis::get_analyzer(spec.name));

  CorpusResult result;
  for (std::size_t i = 0; i < space.size(); ++i)
    result.scenario_names.push_back(space.scenario(i).name);
  result.per_scenario_sets.assign(space.size(), 0);
  for (const AnalyzerSpec& spec : specs) {
    AnalyzerStats st;
    st.analyzer = spec.name;
    st.mode = spec.mode;
    result.per_analyzer.push_back(std::move(st));
  }

  const util::Rng root(config_.root_seed);

  const auto eval = [&](std::uint64_t seed, util::Rng& srng) {
    SetOutcome out;
    out.scenario_index = space.pick_index(seed);
    std::optional<model::TaskSet> ts;
    try {
      ts.emplace(space.scenario(out.scenario_index).make(config_.cores, srng));
    } catch (const gen::GenerationError&) {
      return out;
    }
    out.generated = true;

    // One context allocation per worker thread, rebound per set.
    thread_local std::optional<analysis::RtaContext> tls_ctx;
    if (!tls_ctx.has_value())
      tls_ctx.emplace(*ts);
    else
      tls_ctx->reset(*ts);
    analysis::RtaContext& ctx = *tls_ctx;

    // The global oracle run is shared by every global-policy spec of this
    // set; partitioned specs simulate under their own partition.
    std::optional<sim::SimVerdict> global_verdict;
    const auto global_oracle = [&]() -> const sim::SimVerdict& {
      if (!global_verdict.has_value()) {
        sim::OracleOptions oracle;
        oracle.policy = sim::SchedulingPolicy::kGlobal;
        oracle.windows = config_.windows;
        global_verdict = sim::oracle_verdict(*ts, oracle);
      }
      return *global_verdict;
    };

    std::string taskset_text;  // Canonical text, rendered once if needed.
    out.per_analyzer.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
      const AnalyzerSpec& spec = specs[i];
      const analysis::Analyzer& analyzer = *analyzers[i];
      PerAnalyzerOutcome pa;

      analysis::PartitionResult partition;
      analysis::AnalyzerOptions options;
      if (analyzer.capabilities().uses_partition) {
        partition = analyzer.make_partition(*ts);
        if (!partition.success()) {
          // Partitioner declined: the analyzer rejects the set, and there
          // is no placement to simulate under.
          pa.partition_failure = true;
          out.per_analyzer.push_back(pa);
          continue;
        }
        options.partition = &*partition.partition;
      }
      const analysis::Report report = analyzer.analyze(*ts, ctx, options);
      pa.analysis_schedulable = report.schedulable;

      if (spec.mode != OracleMode::kNoSim) {
        const sim::SimVerdict* verdict = nullptr;
        sim::SimVerdict partitioned_verdict;
        if (spec.policy == sim::SchedulingPolicy::kGlobal) {
          verdict = &global_oracle();
        } else if (partition.success()) {
          sim::OracleOptions oracle;
          oracle.policy = sim::SchedulingPolicy::kPartitioned;
          oracle.partition = partition.partition;
          oracle.windows = config_.windows;
          partitioned_verdict = sim::oracle_verdict(*ts, oracle);
          verdict = &partitioned_verdict;
        }
        if (verdict != nullptr) {
          pa.sim_checked = true;
          pa.sim_outcome = verdict->outcome;
          if (pa.analysis_schedulable && !verdict->safe() &&
              spec.mode == OracleMode::kAssertSafety) {
            if (taskset_text.empty()) {
              std::ostringstream os;
              model::write_task_set(os, *ts);
              taskset_text = os.str();
            }
            WitnessBundle bundle;
            bundle.seed = seed;
            bundle.root_seed = config_.root_seed;
            bundle.scenario = space.scenario(out.scenario_index).name;
            bundle.analyzer = spec.name;
            bundle.policy = spec.policy;
            if (partition.success()) bundle.partition = partition.partition;
            bundle.windows = config_.windows;
            bundle.taskset_text = taskset_text;
            bundle.outcome = verdict->outcome;
            bundle.violation_task = verdict->first_violation_task;
            bundle.violation_time = verdict->first_violation_time;
            bundle.description = verdict->description;
            out.witnesses.push_back(std::move(bundle));
          }
          if (pa.analysis_schedulable && verdict->safe() &&
              report.limiting_task.has_value()) {
            // Optimism/pessimism gap sample: bound over observed response
            // of the analyzer's own limiting task, in a clean horizon.
            const std::size_t limiting = *report.limiting_task;
            const double bound = report.per_task[limiting].response_time;
            const double observed =
                verdict->result->per_task[limiting].max_response;
            if (std::isfinite(bound) && observed > 0.0)
              pa.gap = bound / observed;
          }
        }
      }
      out.per_analyzer.push_back(pa);
    }
    return out;
  };

  const auto fold = [&](std::uint64_t seed, SetOutcome& out) {
    if (!out.generated) {
      ++result.generation_errors;
      return;
    }
    ++result.sets;
    ++result.per_scenario_sets.at(out.scenario_index);
    for (std::size_t i = 0; i < out.per_analyzer.size(); ++i) {
      const PerAnalyzerOutcome& pa = out.per_analyzer[i];
      AnalyzerStats& st = result.per_analyzer.at(i);
      ++st.sets;
      if (pa.partition_failure) {
        ++st.partition_failures;
        continue;
      }
      if (pa.analysis_schedulable) ++st.analysis_schedulable;
      if (!pa.sim_checked) continue;
      ++st.sim_checked;
      switch (pa.sim_outcome) {
        case sim::SimOutcome::kOk: ++st.sim_safe; break;
        case sim::SimOutcome::kDeadlineMiss: ++st.sim_deadline_miss; break;
        case sim::SimOutcome::kDeadlock: ++st.sim_deadlock; break;
      }
      if (pa.analysis_schedulable && pa.sim_outcome != sim::SimOutcome::kOk) {
        ++st.optimistic;
        if (st.mode == OracleMode::kAssertSafety) {
          ++st.safety_violations;
          ++result.safety_violations;
        }
      }
      if (!pa.analysis_schedulable && pa.sim_outcome == sim::SimOutcome::kOk)
        ++st.pessimistic;
      if (pa.gap > 0.0) st.gap.add(pa.gap);
    }
    for (const WitnessBundle& bundle : out.witnesses) {
      if (config_.witness_dir.empty()) continue;
      if (result.witnesses_written >= config_.max_witnesses) break;
      save_witness(config_.witness_dir + "/witness-s" +
                       std::to_string(seed) + "-" + bundle.analyzer + ".json",
                   bundle);
      ++result.witnesses_written;
    }
  };

  exp::RangeOptions options;
  options.range = {config_.seed_begin, config_.seed_end};
  options.shards = config_.shards;
  options.checkpoint_path = config_.checkpoint_path;
  options.resume = config_.resume;
  options.fingerprint = fingerprint();
  options.budget_seeds = config_.budget_sets;

  result.range = runner_.run_range(
      options, root, eval, fold, [&] { return serialize_state(result); },
      [&](const std::string& blob) { restore_state(result, blob); });
  result.complete = result.range.complete;
  return result;
}

// ---------------------------------------------------------------------------
// Reporting
// ---------------------------------------------------------------------------

void write_gap_csv(const std::string& path, const CorpusResult& result) {
  util::CsvWriter csv(
      path, {"analyzer", "mode", "sets", "analysis_schedulable",
             "partition_failures", "sim_checked", "sim_safe",
             "sim_deadline_miss", "sim_deadlock", "optimistic",
             "safety_violations", "pessimistic", "gap_count", "gap_mean",
             "gap_p50", "gap_p90", "gap_p99", "gap_min", "gap_max"});
  for (const AnalyzerStats& st : result.per_analyzer) {
    csv.row_values(st.analyzer, to_string(st.mode), st.sets,
                   st.analysis_schedulable, st.partition_failures,
                   st.sim_checked, st.sim_safe, st.sim_deadline_miss,
                   st.sim_deadlock, st.optimistic, st.safety_violations,
                   st.pessimistic, st.gap.count(), st.gap.mean(),
                   st.gap.percentile(50), st.gap.percentile(90),
                   st.gap.percentile(99), st.gap.min(), st.gap.max());
  }
}

std::string render_summary_json(const CorpusConfig& config,
                                const CorpusResult& result,
                                double wall_seconds) {
  std::ostringstream os;
  util::JsonWriter w(os);
  w.begin_object();
  w.kv("schema", "rtpool-corpus-summary-v1");
  w.kv("seed_begin", config.seed_begin);
  w.kv("seed_end", config.seed_end);
  w.kv("shards", static_cast<std::uint64_t>(config.shards));
  w.kv("cores", static_cast<std::uint64_t>(config.cores));
  w.kv("root_seed", config.root_seed);
  w.kv("windows", config.windows);
  w.kv("sets", result.sets);
  w.kv("generation_errors", result.generation_errors);
  w.kv("safety_violations", result.safety_violations);
  w.kv("witnesses_written", result.witnesses_written);
  w.kv("complete", result.complete);
  w.kv("seeds_evaluated", result.range.seeds_evaluated);
  w.kv("shards_total", static_cast<std::uint64_t>(result.range.shards_total));
  w.kv("shards_run", static_cast<std::uint64_t>(result.range.shards_run));
  w.kv("shards_restored",
       static_cast<std::uint64_t>(result.range.shards_restored));
  if (wall_seconds > 0.0) {
    w.kv("wall_s", wall_seconds);
    w.kv("sets_per_s",
         static_cast<double>(result.range.seeds_evaluated) / wall_seconds);
  }
  w.key("scenarios").begin_array();
  for (std::size_t i = 0; i < result.scenario_names.size(); ++i) {
    w.begin_object()
        .kv("name", result.scenario_names[i])
        .kv("sets", result.per_scenario_sets[i])
        .end_object();
  }
  w.end_array();
  w.key("analyzers").begin_array();
  for (const AnalyzerStats& st : result.per_analyzer) {
    w.begin_object();
    w.kv("name", st.analyzer);
    w.kv("mode", to_string(st.mode));
    w.kv("sets", st.sets);
    w.kv("analysis_schedulable", st.analysis_schedulable);
    w.kv("partition_failures", st.partition_failures);
    w.kv("sim_checked", st.sim_checked);
    w.kv("sim_safe", st.sim_safe);
    w.kv("sim_deadline_miss", st.sim_deadline_miss);
    w.kv("sim_deadlock", st.sim_deadlock);
    w.kv("optimistic", st.optimistic);
    w.kv("safety_violations", st.safety_violations);
    w.kv("pessimistic", st.pessimistic);
    w.key("gap")
        .begin_object()
        .kv("count", st.gap.count())
        .kv("mean", st.gap.mean())
        .kv("p50", st.gap.percentile(50))
        .kv("p90", st.gap.percentile(90))
        .kv("p99", st.gap.percentile(99))
        .kv("min", st.gap.min())
        .kv("max", st.gap.max())
        .end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
  return os.str();
}

// ---------------------------------------------------------------------------
// Test-only forced-optimistic analyzer
// ---------------------------------------------------------------------------

namespace {

/// Deliberately unsound: accepts everything with R = D. Exists to prove,
/// in CI, that a genuinely optimistic analyzer produces witness bundles
/// the replay pipeline reproduces.
class ForcedOptimisticAnalyzer final : public analysis::Analyzer {
 public:
  std::string_view name() const override { return "test-forced-optimistic"; }
  std::string_view description() const override {
    return "TEST ONLY: claims every task set schedulable (R = D)";
  }
  analysis::AnalyzerCapabilities capabilities() const override {
    analysis::AnalyzerCapabilities caps;
    caps.reports_response_times = true;
    return caps;
  }
  analysis::Report analyze(const model::TaskSet& ts, analysis::RtaContext&,
                           const analysis::AnalyzerOptions&) const override {
    analysis::Report report;
    report.analyzer = std::string(name());
    report.schedulable = true;
    for (std::size_t i = 0; i < ts.size(); ++i) {
      analysis::TaskVerdict verdict;
      verdict.schedulable = true;
      verdict.response_time = ts.task(i).deadline();
      report.per_task.push_back(verdict);
    }
    // R/D == 1 for every task; the first stands in as the limiting one.
    if (!report.per_task.empty()) {
      report.limiting_task = 0;
      report.limiting_ratio = 1.0;
    }
    return report;
  }
};

}  // namespace

AnalyzerSpec register_forced_optimistic_analyzer() {
  if (analysis::find_analyzer("test-forced-optimistic") == nullptr)
    analysis::register_analyzer(std::make_unique<ForcedOptimisticAnalyzer>());
  return spec_for("test-forced-optimistic");
}

}  // namespace rtpool::corpus
