// The corpus engine: sharded, checkpointable, adversarial-scale validation
// of every registered analyzer against the simulator (ROADMAP item 5).
//
// For every seed s in [seed_begin, seed_end):
//
//   scenario  = space.pick(s)                    (gen/scenario_space.h)
//   task set  = scenario.make(cores, root.fork_with(s))
//   for each configured analyzer:
//     verdict = analyzer.analyze(set)            (own partition if needed)
//     oracle  = sim::oracle_verdict(set, policy) (gen. shared per policy)
//     assert the SAFETY DIRECTION for sound analyzers:
//         analysis-schedulable  =>  no simulated miss / deadlock
//     and fold optimism/pessimism gap statistics either way.
//
// Soundness partition: the paper's own point is that the *baseline* tests
// (Melani-style global, worst-fit partitioned) ignore the concurrency a
// thread pool loses to blocking forks and are therefore optimistic under
// pool semantics — a simulated violation against them is the expected
// finding, not a bug. Only the limited-concurrency / Algorithm-1 families
// carry a safety claim, so AnalyzerSpec separates kAssertSafety (a
// violation is a hard failure + witness bundle) from kReportOnly
// (violations are counted as `optimistic`). Federated analyzers assume
// dedicated cores the simulator does not model: kNoSim.
//
// Scale machinery: the sweep rides exp::ShardedRunner::run_range — results
// are bit-identical for any thread count and any shard count, and a killed
// run resumes from the JSON checkpoint with byte-identical final output
// (the whole accumulator state, histograms included, snapshots after every
// shard). Violations become self-contained witness bundles (witness.h)
// replayable via `rtpool_cli --replay-witness`.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "exp/sharded_runner.h"
#include "gen/scenario_space.h"
#include "sim/engine.h"
#include "util/json.h"

namespace rtpool::corpus {

/// Mergeable fixed-bin log-scale histogram of analysis/simulation response
/// ratios (R_bound / R_observed). Fixed bins keep it deterministic,
/// checkpoint-compact, and exactly restorable — percentiles are resolved
/// to a bin's lower edge (geometric), clamped to the observed [min, max].
/// Covers ratios in [2^-4, 2^12) at 12 bins per octave; outliers clamp to
/// the edge bins (min/max/mean stay exact).
class GapHistogram {
 public:
  static constexpr int kBins = 192;

  void add(double ratio);

  std::uint64_t count() const { return count_; }
  double min() const;
  double max() const;
  double mean() const;
  /// p in [0, 100]; 0 with an empty histogram.
  double percentile(double p) const;

  /// Checkpoint (de)serialization: one JSON object value.
  void to_json(util::JsonWriter& w) const;
  void from_json(const util::JsonValue& v);

  friend bool operator==(const GapHistogram&, const GapHistogram&) = default;

 private:
  static double bin_edge(int bin);

  std::array<std::uint64_t, kBins> bins_{};
  std::uint64_t count_ = 0;
  double min_ = 0.0;  ///< Valid when count_ > 0.
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// How the oracle treats an analyzer's accepts (see file comment).
enum class OracleMode : unsigned char {
  kAssertSafety,  ///< Sim violation of an accept = safety violation + witness.
  kReportOnly,    ///< Violations only counted (known-optimistic baselines).
  kNoSim,         ///< Analysis ratios only (federated: sim can't model it).
};

const char* to_string(OracleMode mode);

/// One analyzer under corpus scrutiny.
struct AnalyzerSpec {
  std::string name;  ///< Registry name (analysis/analyzer.h).
  OracleMode mode = OracleMode::kReportOnly;
  /// Which pool semantics the oracle simulates it under (kNoSim: unused).
  sim::SchedulingPolicy policy = sim::SchedulingPolicy::kGlobal;
};

/// Classify a registry name by the soundness table above (unknown names
/// default to kNoSim — no safety claim is assumed for custom analyzers).
AnalyzerSpec spec_for(const std::string& name);

/// The default corpus set: the sound proposed family under assertion
/// (global-limited, global-limited-antichain, partitioned-proposed) plus
/// the two paper baselines as report-only reference columns.
std::vector<AnalyzerSpec> default_analyzer_specs();

struct CorpusConfig {
  std::uint64_t seed_begin = 0;
  std::uint64_t seed_end = 0;
  std::size_t shards = 16;
  std::uint64_t root_seed = 1;   ///< Root of the per-seed streams.
  std::size_t cores = 8;         ///< Platform size of every generated set.
  double windows = 4.0;          ///< Oracle horizon, in max-periods.
  /// Stop at a shard boundary after this many sets this invocation
  /// (0 = run to the end). Pairs with checkpoint/resume.
  std::uint64_t budget_sets = 0;
  /// Analyzers to scrutinize; empty = default_analyzer_specs().
  std::vector<AnalyzerSpec> analyzers;
  /// Generation scenarios; empty = ScenarioSpace::corpus_default().
  gen::ScenarioSpace space;
  std::string checkpoint_path;   ///< Empty = no checkpointing.
  bool resume = false;
  /// Directory for witness bundles (must exist); empty = don't write.
  std::string witness_dir;
  std::size_t max_witnesses = 100;  ///< Bundle-file cap (violations still count).
};

/// Per-analyzer accumulated statistics.
struct AnalyzerStats {
  std::string analyzer;
  OracleMode mode = OracleMode::kReportOnly;
  std::uint64_t sets = 0;                  ///< Generated sets analyzed.
  std::uint64_t analysis_schedulable = 0;
  std::uint64_t partition_failures = 0;    ///< Partitioner declined (reject).
  std::uint64_t sim_checked = 0;           ///< Oracle ran on the set.
  std::uint64_t sim_safe = 0;
  std::uint64_t sim_deadline_miss = 0;
  std::uint64_t sim_deadlock = 0;
  /// Accepted by analysis, violated in sim — counted for every mode; a
  /// kAssertSafety analyzer also escalates these to safety_violations.
  std::uint64_t optimistic = 0;
  std::uint64_t safety_violations = 0;
  /// Rejected by analysis although the simulated horizon was clean (an
  /// upper bound on over-rejection; sim is only a necessary condition).
  std::uint64_t pessimistic = 0;
  /// R_bound / R_observed of the analyzer's limiting task, when the
  /// analyzer accepted, reported a finite bound, and the task completed
  /// jobs in the clean simulated horizon.
  GapHistogram gap;

  friend bool operator==(const AnalyzerStats&, const AnalyzerStats&) = default;
};

struct CorpusResult {
  std::vector<AnalyzerStats> per_analyzer;
  std::vector<std::string> scenario_names;
  std::vector<std::uint64_t> per_scenario_sets;  ///< Generated per scenario.
  std::uint64_t sets = 0;               ///< Successfully generated sets.
  std::uint64_t generation_errors = 0;  ///< Resampling budget exhausted.
  std::uint64_t safety_violations = 0;  ///< Sum over assert-mode analyzers.
  std::uint64_t witnesses_written = 0;  ///< Bundle files actually written.
  exp::RangeStats range;
  bool complete = false;

  friend bool operator==(const CorpusResult&, const CorpusResult&) = default;
};

/// The runner. One instance per sweep; `run()` executes (or resumes) the
/// configured range and returns the accumulated result. Throws
/// std::invalid_argument on bad configs and std::runtime_error on
/// checkpoint mismatches.
class CorpusRunner {
 public:
  explicit CorpusRunner(CorpusConfig config, int threads = 1);

  CorpusResult run();

  /// The checkpoint identity of this configuration (exposed for tests).
  std::string fingerprint() const;

 private:
  CorpusConfig config_;
  exp::ShardedRunner runner_;
};

/// Write per-analyzer gap/violation statistics as CSV (the corpus_gap.csv
/// artifact, next to gap_analysis.csv).
void write_gap_csv(const std::string& path, const CorpusResult& result);

/// Render the machine-readable run summary consumed by
/// `scripts/bench_report.py --corpus` (schema "rtpool-corpus-summary-v1").
/// `wall_seconds` <= 0 omits throughput numbers (deterministic output for
/// byte-identity diffs).
std::string render_summary_json(const CorpusConfig& config,
                                const CorpusResult& result,
                                double wall_seconds);

/// Register the test-only "test-forced-optimistic" analyzer (claims every
/// set schedulable with R = D) used to prove the witness pipeline
/// end-to-end; idempotent. Returns its corpus spec (kAssertSafety/global).
AnalyzerSpec register_forced_optimistic_analyzer();

}  // namespace rtpool::corpus
