// Self-contained counterexample bundles for the corpus safety oracle.
//
// When an oracle-checked analyzer accepts a task set that the simulator
// then drives into a deadline miss or a deadlock, the corpus writes ONE
// file holding everything needed to reproduce the disagreement: the
// canonical .taskset text, the generating seeds, the analyzer name, the
// simulated policy + partition, and the recorded first violation.
// `rtpool_cli --replay-witness=FILE` re-runs analysis + oracle from the
// bundle and reports whether the disagreement reproduces — the same
// witness discipline the lint/guard subsystems use, at corpus scale.
//
// Schema "rtpool-witness-v1" (JSON, one object):
//   schema, seed, root_seed, scenario, analyzer, policy ("global" |
//   "partitioned"), windows, work_stealing, partition (array of per-task
//   arrays of thread ids, or null), outcome ("deadline-miss" |
//   "deadlock"), violation_task, violation_time, description, taskset
//   (embedded .taskset text).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "analysis/partition.h"
#include "sim/engine.h"

namespace rtpool::corpus {

struct WitnessBundle {
  std::uint64_t seed = 0;       ///< Absolute corpus seed of the set.
  std::uint64_t root_seed = 0;  ///< Corpus root seed (stream key).
  std::string scenario;         ///< ScenarioSpace entry that generated it.
  std::string analyzer;         ///< Registry name of the accepting analyzer.
  sim::SchedulingPolicy policy = sim::SchedulingPolicy::kGlobal;
  std::optional<analysis::TaskSetPartition> partition;
  double windows = 4.0;
  bool work_stealing = false;
  std::string taskset_text;     ///< Canonical write_task_set output.
  /// Recorded violation (outcome is never "ok" in a written bundle).
  sim::SimOutcome outcome = sim::SimOutcome::kDeadlineMiss;
  std::size_t violation_task = 0;
  double violation_time = 0.0;
  std::string description;
};

/// JSON (de)serialization; parse throws std::runtime_error /
/// util::JsonParseError on malformed input.
std::string render_witness_json(const WitnessBundle& bundle);
WitnessBundle parse_witness_json(const std::string& text);

void save_witness(const std::string& path, const WitnessBundle& bundle);
WitnessBundle load_witness(const std::string& path);

/// Outcome of re-running a bundle.
struct ReplayResult {
  bool analysis_schedulable = false;  ///< The analyzer still accepts.
  sim::SimVerdict verdict;            ///< The fresh oracle verdict.
  /// Fresh outcome kind equals the recorded one.
  bool outcome_matches = false;
  /// The full disagreement reproduced: analyzer accepts AND the simulator
  /// observes the recorded kind of violation.
  bool reproduced = false;
};

/// Re-run analyzer + sim oracle exactly as recorded. Throws on unknown
/// analyzer names or unparsable embedded task sets.
ReplayResult replay_witness(const WitnessBundle& bundle);

}  // namespace rtpool::corpus
