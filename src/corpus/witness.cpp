#include "corpus/witness.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "analysis/analyzer.h"
#include "analysis/rta_context.h"
#include "model/io.h"
#include "util/json.h"

namespace rtpool::corpus {

namespace {

constexpr const char* kSchema = "rtpool-witness-v1";

const char* policy_name(sim::SchedulingPolicy policy) {
  return policy == sim::SchedulingPolicy::kGlobal ? "global" : "partitioned";
}

sim::SchedulingPolicy parse_policy(const std::string& name) {
  if (name == "global") return sim::SchedulingPolicy::kGlobal;
  if (name == "partitioned") return sim::SchedulingPolicy::kPartitioned;
  throw std::runtime_error("witness: unknown policy '" + name + "'");
}

}  // namespace

std::string render_witness_json(const WitnessBundle& bundle) {
  std::ostringstream os;
  util::JsonWriter w(os);
  w.begin_object()
      .kv("schema", kSchema)
      .kv("seed", bundle.seed)
      .kv("root_seed", bundle.root_seed)
      .kv("scenario", bundle.scenario)
      .kv("analyzer", bundle.analyzer)
      .kv("policy", policy_name(bundle.policy))
      .kv("windows", bundle.windows)
      .kv("work_stealing", bundle.work_stealing);
  w.key("partition");
  if (bundle.partition.has_value()) {
    w.begin_array();
    for (const analysis::NodeAssignment& assignment : bundle.partition->per_task) {
      w.begin_array();
      for (const analysis::ThreadId thread : assignment.thread_of)
        w.value(static_cast<std::uint64_t>(thread));
      w.end_array();
    }
    w.end_array();
  } else {
    w.null();
  }
  w.kv("outcome", sim::to_string(bundle.outcome))
      .kv("violation_task", static_cast<std::uint64_t>(bundle.violation_task))
      .kv("violation_time", bundle.violation_time)
      .kv("description", bundle.description)
      .kv("taskset", bundle.taskset_text)
      .end_object();
  os << '\n';
  return os.str();
}

WitnessBundle parse_witness_json(const std::string& text) {
  const util::JsonValue doc = util::parse_json(text);
  if (!doc.is_object() || !doc.contains("schema") ||
      doc.at("schema").as_string() != kSchema)
    throw std::runtime_error("witness: not a " + std::string(kSchema) +
                             " document");
  WitnessBundle bundle;
  bundle.seed = static_cast<std::uint64_t>(doc.at("seed").as_number());
  bundle.root_seed = static_cast<std::uint64_t>(doc.at("root_seed").as_number());
  bundle.scenario = doc.at("scenario").as_string();
  bundle.analyzer = doc.at("analyzer").as_string();
  bundle.policy = parse_policy(doc.at("policy").as_string());
  bundle.windows = doc.at("windows").as_number();
  bundle.work_stealing = doc.at("work_stealing").as_bool();
  const util::JsonValue& partition = doc.at("partition");
  if (!partition.is_null()) {
    analysis::TaskSetPartition parsed;
    for (const util::JsonValue& per_task : partition.as_array()) {
      analysis::NodeAssignment assignment;
      for (const util::JsonValue& thread : per_task.as_array())
        assignment.thread_of.push_back(
            static_cast<analysis::ThreadId>(thread.as_number()));
      parsed.per_task.push_back(std::move(assignment));
    }
    bundle.partition = std::move(parsed);
  }
  bundle.outcome = sim::parse_sim_outcome(doc.at("outcome").as_string());
  bundle.violation_task =
      static_cast<std::size_t>(doc.at("violation_task").as_number());
  bundle.violation_time = doc.at("violation_time").as_number();
  bundle.description = doc.at("description").as_string();
  bundle.taskset_text = doc.at("taskset").as_string();
  return bundle;
}

void save_witness(const std::string& path, const WitnessBundle& bundle) {
  std::ofstream out(path);
  if (!out)
    throw std::runtime_error("witness: cannot write '" + path + "'");
  out << render_witness_json(bundle);
  if (!out.good())
    throw std::runtime_error("witness: short write to '" + path + "'");
}

WitnessBundle load_witness(const std::string& path) {
  std::ifstream in(path);
  if (!in)
    throw std::runtime_error("witness: cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_witness_json(buf.str());
}

ReplayResult replay_witness(const WitnessBundle& bundle) {
  std::istringstream is(bundle.taskset_text);
  const model::TaskSet ts = model::read_task_set(is);
  const analysis::Analyzer& analyzer = analysis::get_analyzer(bundle.analyzer);

  ReplayResult result;
  analysis::RtaContext ctx(ts);
  analysis::AnalyzerOptions options;
  if (bundle.partition.has_value()) options.partition = &*bundle.partition;
  result.analysis_schedulable = analyzer.analyze(ts, ctx, options).schedulable;

  sim::OracleOptions oracle;
  oracle.policy = bundle.policy;
  oracle.partition = bundle.partition;
  oracle.windows = bundle.windows;
  oracle.work_stealing = bundle.work_stealing;
  oracle.collect_trace = true;
  result.verdict = sim::oracle_verdict(ts, oracle);

  result.outcome_matches = result.verdict.outcome == bundle.outcome;
  result.reproduced = result.analysis_schedulable && !result.verdict.safe() &&
                      result.outcome_matches;
  return result;
}

}  // namespace rtpool::corpus
