// Schedulability-ratio experiments (Section 5).
//
// Each evaluation point generates random task sets and compares two
// schedulability tests:
//
//   Global      baseline: Melani et al. [14] (ignores reduced concurrency)
//               proposed: Section 4.1 (interference divided by l̄(τ))
//   Partitioned baseline: worst-fit partitioning + [10]-style RTA
//                         (ignores reduced concurrency, possibly unsafe)
//               proposed: Algorithm 1 partitioning + the same RTA, plus the
//                         Lemma 3 deadlock-freedom requirement
//
// Mirroring the paper's setup, a point can *filter* generation: task sets
// not schedulable by the baseline test are discarded and regenerated, so
// the reported proposed-ratio isolates the cost of reduced concurrency
// (used in the l_max sweeps of Figures 2(a)/(b)).
#pragma once

#include <cstdint>

#include "gen/taskset_generator.h"
#include "util/rng.h"

namespace rtpool::exp {

enum class Scheduler { kGlobal, kPartitioned };

struct PointConfig {
  gen::TaskSetParams gen;      ///< Generator parameters (m, n, U, NFJ, window).
  bool filter_baseline = false;///< Discard sets the baseline rejects.
  int trials = 500;            ///< Accepted task sets per point (paper: 500).
  /// Upper bound on generation attempts (incl. discarded sets) per point;
  /// prevents infinite loops when the filter is too strict.
  int max_attempts = 100000;
};

struct PointResult {
  std::size_t accepted = 0;
  std::size_t baseline_schedulable = 0;
  std::size_t proposed_schedulable = 0;
  std::size_t discarded = 0;        ///< Sets rejected by the baseline filter.
  std::size_t generation_errors = 0;///< Blocking-window resampling failures.
  bool attempts_exhausted = false;  ///< Point is incomplete (filter too strict).

  double baseline_ratio() const {
    return accepted == 0 ? 0.0
                         : static_cast<double>(baseline_schedulable) /
                               static_cast<double>(accepted);
  }
  double proposed_ratio() const {
    return accepted == 0 ? 0.0
                         : static_cast<double>(proposed_schedulable) /
                               static_cast<double>(accepted);
  }
};

/// Evaluate one point: generate task sets and apply both tests.
PointResult evaluate_point(Scheduler scheduler, const PointConfig& config,
                           util::Rng& rng);

/// Per-set verdicts, exposed for tests and custom sweeps.
struct SetVerdict {
  bool baseline = false;
  bool proposed = false;
};
SetVerdict evaluate_task_set(Scheduler scheduler, const model::TaskSet& ts);

}  // namespace rtpool::exp
