// Schedulability-ratio experiments (Section 5).
//
// Each evaluation point generates random task sets and compares two
// schedulability tests:
//
//   Global      baseline: Melani et al. [14] (ignores reduced concurrency)
//               proposed: Section 4.1 (interference divided by l̄(τ))
//   Partitioned baseline: worst-fit partitioning + [10]-style RTA
//                         (ignores reduced concurrency, possibly unsafe)
//               proposed: Algorithm 1 partitioning + the same RTA, plus the
//                         Lemma 3 deadlock-freedom requirement
//
// Mirroring the paper's setup, a point can *filter* generation: task sets
// not schedulable by the baseline test are discarded and regenerated, so
// the reported proposed-ratio isolates the cost of reduced concurrency
// (used in the l_max sweeps of Figures 2(a)/(b)).
//
// Determinism & parallelism: every generation attempt k derives its own
// RNG as `rng.fork_with(k)` (a splitmix64-keyed stream independent of how
// many draws other attempts make), and accepted sets are committed in
// strict attempt order. A point's result is therefore BIT-IDENTICAL for
// any ExperimentEngine thread count — parallel fan-out across the
// library's own exec::ThreadPool only changes wall time, never numbers.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "exp/sharded_runner.h"
#include "gen/taskset_generator.h"
#include "util/rng.h"

namespace rtpool::analysis {
class Analyzer;
class RtaContext;
}

namespace rtpool::exp {

/// Legacy two-test selector, kept as a thin alias over the analyzer
/// registry (analysis/analyzer.h) for CSV/report compatibility: every
/// experiment entry point resolves it through `analyzers_for` and runs on
/// the spine.
enum class Scheduler { kGlobal, kPartitioned };

/// The baseline/proposed analyzer pair a Figure-2-style experiment
/// compares. Pointers into the registry (process lifetime, never null in a
/// pair returned by `analyzers_for`/built from registry names).
struct AnalyzerPair {
  const analysis::Analyzer* baseline = nullptr;
  const analysis::Analyzer* proposed = nullptr;
};

/// Registry resolution of the legacy enum:
///   kGlobal      → { "global-baseline",      "global-limited" }
///   kPartitioned → { "partitioned-baseline", "partitioned-proposed" }
AnalyzerPair analyzers_for(Scheduler scheduler);

/// Single source of truth for the scheduler-name ↔ enum mapping used by
/// the CLI and the bench drivers. Throws std::invalid_argument listing the
/// valid names on an unknown name.
Scheduler parse_scheduler(std::string_view name);

/// Canonical name of a scheduler ("global" / "partitioned"), as printed in
/// CSV headers and perf reports.
std::string_view scheduler_name(Scheduler scheduler);

struct PointConfig {
  gen::TaskSetParams gen;      ///< Generator parameters (m, n, U, NFJ, window).
  bool filter_baseline = false;///< Discard sets the baseline rejects.
  int trials = 500;            ///< Accepted task sets per point (paper: 500).
  /// Upper bound on generation attempts (incl. discarded sets) per point;
  /// prevents infinite loops when the filter is too strict.
  int max_attempts = 100000;
  /// Certificate spot-checking: re-run both analyzers with certificate
  /// emission on for roughly this many accepted sets per point (0 = off)
  /// and validate each certificate with the independent checker
  /// (analysis/cert_check.h). Each attempt decides from its own forked RNG
  /// whether it is sampled, so the sampled subset — and every count — is
  /// bit-identical for any engine thread count.
  int certify_sample = 0;
};

/// Per-set verdicts, exposed for tests and custom sweeps.
struct SetVerdict {
  bool baseline = false;
  bool proposed = false;

  friend bool operator==(const SetVerdict&, const SetVerdict&) = default;
};

struct PointResult {
  std::size_t accepted = 0;
  std::size_t baseline_schedulable = 0;
  std::size_t proposed_schedulable = 0;
  std::size_t discarded = 0;        ///< Sets rejected by the baseline filter.
  std::size_t generation_errors = 0;///< Blocking-window resampling failures.
  bool attempts_exhausted = false;  ///< Point is incomplete (filter too strict).
  /// Accepted sets whose certificates were spot-checked (certify_sample).
  std::size_t certified = 0;
  /// Certificates the independent checker rejected (two per certified set
  /// are checked: baseline and proposed). Always 0 for a sound build.
  std::size_t cert_failures = 0;
  /// Verdicts of the accepted sets, committed in attempt order (identical
  /// for every thread count; used by the determinism tests).
  std::vector<SetVerdict> verdicts;

  double baseline_ratio() const {
    return accepted == 0 ? 0.0
                         : static_cast<double>(baseline_schedulable) /
                               static_cast<double>(accepted);
  }
  double proposed_ratio() const {
    return accepted == 0 ? 0.0
                         : static_cast<double>(proposed_schedulable) /
                               static_cast<double>(accepted);
  }

  friend bool operator==(const PointResult&, const PointResult&) = default;
};

/// Run both analyzers of the pair on one task set (baseline first). `ctx`
/// (optional) must have been built for `ts`; the analyses of a trial then
/// share one set of structural caches (priority orders, per-core
/// workloads, blocking vectors) instead of each deriving its own. Verdicts
/// are identical with or without a context.
SetVerdict evaluate_task_set(const AnalyzerPair& pair, const model::TaskSet& ts,
                             analysis::RtaContext* ctx = nullptr);

/// Legacy-enum wrapper: `evaluate_task_set(analyzers_for(scheduler), …)`.
SetVerdict evaluate_task_set(Scheduler scheduler, const model::TaskSet& ts,
                             analysis::RtaContext* ctx = nullptr);

/// Deterministic parallel experiment engine.
///
/// A thin experiment-flavored facade over exp::ShardedRunner (which owns
/// the worker pool — the library's own exec::ThreadPool; the experiment
/// harness dogfoods the runtime it analyzes). All entry points guarantee
/// thread-count-invariant results: work units are seeded per attempt index
/// via Rng::fork_with and folded in attempt order on the calling thread.
/// The attempt loop, the parallel map, and the checkpointable seed-range
/// sweep live in sharded_runner.h; this class keeps the historical API
/// plus the point-evaluation logic of the Figure-2 experiments.
class ExperimentEngine {
 public:
  /// `threads` <= 0 selects std::thread::hardware_concurrency(); 1 runs
  /// everything inline on the calling thread (no pool).
  ///
  /// The worker count is additionally clamped to the hardware concurrency
  /// (unless `clamp_to_hardware` is false): results are thread-count
  /// invariant by construction, so oversubscribing a smaller machine would
  /// only add scheduling jitter and pool overhead without changing a single
  /// number. `threads()` still reports the requested value; `workers()` the
  /// effective one. The opt-out exists for tests that must drive the pool
  /// path regardless of the host's core count.
  explicit ExperimentEngine(int threads = 1, bool clamp_to_hardware = true)
      : runner_(threads, clamp_to_hardware) {}

  ExperimentEngine(const ExperimentEngine&) = delete;
  ExperimentEngine& operator=(const ExperimentEngine&) = delete;

  int threads() const { return runner_.threads(); }

  /// Effective parallelism: min(threads(), hardware_concurrency), >= 1.
  int workers() const { return runner_.workers(); }

  /// The underlying runner (pool + attempt loop + run_range); exposed so
  /// heavier harnesses (the corpus) can share one pool with the
  /// experiment entry points.
  ShardedRunner& runner() { return runner_; }

  /// Evaluate one point: generate task sets and apply the pair's two
  /// analyzers. `rng` is only read as a seed root (fork_with per attempt),
  /// never advanced.
  PointResult evaluate_point(const AnalyzerPair& pair, const PointConfig& config,
                             const util::Rng& rng);

  /// Legacy-enum wrapper: `evaluate_point(analyzers_for(scheduler), …)`.
  PointResult evaluate_point(Scheduler scheduler, const PointConfig& config,
                             const util::Rng& rng);

  /// Generic deterministic speculative attempt loop, the engine's core.
  ///
  /// Conceptually equivalent to the sequential loop
  ///
  ///   while committed < needed and attempts < max_attempts:
  ///       k = attempts++
  ///       r = eval(k, rng.fork_with(k))     // parallelized, speculative
  ///       if commit(k, r): committed++      // strictly in attempt order
  ///
  /// `eval` must be pure w.r.t. everything except its own Rng (it runs on
  /// pool workers, possibly out of order and speculatively past the final
  /// commit); `commit` runs on the calling thread, in attempt order, and
  /// returns whether the attempt filled one of the `needed` slots (a
  /// filtered/failed attempt still consumes budget, as in the paper's
  /// discard-and-regenerate setup).
  template <typename Eval, typename Commit>
  AttemptLoopStats run_attempts(std::size_t needed, std::size_t max_attempts,
                                const util::Rng& rng, Eval&& eval,
                                Commit&& commit) {
    return runner_.run_attempts(needed, max_attempts, rng,
                                std::forward<Eval>(eval),
                                std::forward<Commit>(commit));
  }

  /// Deterministic parallel map over `count` independent trials: trial i is
  /// evaluated with rng.fork_with(i) (on the pool) and folded with
  /// `fold(i, result)` in trial order on the calling thread. Used by the
  /// bench drivers whose per-trial work has no discard/regenerate step.
  template <typename Eval, typename Fold>
  void map_trials(std::size_t count, const util::Rng& rng, Eval&& eval,
                  Fold&& fold) {
    runner_.map_trials(count, rng, std::forward<Eval>(eval),
                       std::forward<Fold>(fold));
  }

 private:
  ShardedRunner runner_;
};

/// Sequential convenience wrapper (an inline ExperimentEngine(1) point).
/// `rng` is used as the seed root of the per-attempt streams and is NOT
/// advanced (per-attempt seeding is what makes results thread-count
/// invariant — and is the one-time break from the pre-engine stream-draw
/// numbers; see EXPERIMENTS.md).
PointResult evaluate_point(const AnalyzerPair& pair, const PointConfig& config,
                           util::Rng& rng);
PointResult evaluate_point(Scheduler scheduler, const PointConfig& config,
                           util::Rng& rng);

}  // namespace rtpool::exp
