#include "exp/schedulability.h"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <string>

#include "analysis/analyzer.h"
#include "analysis/cert_check.h"
#include "analysis/rta_context.h"

namespace rtpool::exp {

AnalyzerPair analyzers_for(Scheduler scheduler) {
  switch (scheduler) {
    case Scheduler::kGlobal:
      return {&analysis::get_analyzer("global-baseline"),
              &analysis::get_analyzer("global-limited")};
    case Scheduler::kPartitioned:
      return {&analysis::get_analyzer("partitioned-baseline"),
              &analysis::get_analyzer("partitioned-proposed")};
  }
  throw std::invalid_argument("analyzers_for: bad Scheduler value");
}

Scheduler parse_scheduler(std::string_view name) {
  if (name == "global") return Scheduler::kGlobal;
  if (name == "partitioned") return Scheduler::kPartitioned;
  throw std::invalid_argument("unknown scheduler '" + std::string(name) +
                              "' (valid: global, partitioned)");
}

std::string_view scheduler_name(Scheduler scheduler) {
  return scheduler == Scheduler::kGlobal ? "global" : "partitioned";
}

SetVerdict evaluate_task_set(const AnalyzerPair& pair, const model::TaskSet& ts,
                             analysis::RtaContext* ctx) {
  std::optional<analysis::RtaContext> local_ctx;
  if (ctx == nullptr) {
    local_ctx.emplace(ts);
    ctx = &*local_ctx;
  }
  SetVerdict verdict;
  verdict.baseline = pair.baseline->analyze(ts, *ctx).schedulable;
  verdict.proposed = pair.proposed->analyze(ts, *ctx).schedulable;
  return verdict;
}

SetVerdict evaluate_task_set(Scheduler scheduler, const model::TaskSet& ts,
                             analysis::RtaContext* ctx) {
  return evaluate_task_set(analyzers_for(scheduler), ts, ctx);
}

namespace {

/// Outcome of one speculative generation attempt (computed on a worker).
struct AttemptOutcome {
  bool generated = false;  ///< false → gen::GenerationError.
  SetVerdict verdict;
  bool certified = false;       ///< Attempt was sampled for certification.
  std::size_t cert_failures = 0;///< Certificates the checker rejected (0–2).
};

/// Salt for the certify-sampling stream: decorrelates the sample decision
/// from every draw the generator makes without advancing the attempt RNG.
constexpr std::uint64_t kCertifySalt = 0x9e3779b97f4a7c15ULL;

/// Run one analyzer with certificate emission on and count a failure when
/// the certificate is missing or the independent checker rejects it.
std::size_t certify_one(const analysis::Analyzer& analyzer,
                        const model::TaskSet& ts, analysis::RtaContext& ctx) {
  analysis::AnalyzerOptions opts;
  opts.diagnostics = true;
  const analysis::Report rep = analyzer.analyze(ts, ctx, opts);
  if (rep.certificate == nullptr) return 1;
  return analysis::cert::check_certificate(ts, *rep.certificate).ok() ? 0 : 1;
}

}  // namespace

PointResult ExperimentEngine::evaluate_point(const AnalyzerPair& pair,
                                             const PointConfig& config,
                                             const util::Rng& rng) {
  PointResult result;
  if (config.trials <= 0) return result;

  const AttemptLoopStats stats = run_attempts(
      static_cast<std::size_t>(config.trials),
      static_cast<std::size_t>(std::max(config.max_attempts, 0)), rng,
      [&](std::size_t /*attempt*/, util::Rng& arng) {
        AttemptOutcome outcome;
        try {
          const model::TaskSet ts = gen::generate_task_set(config.gen, arng);
          outcome.generated = true;
          // One context per trial, one *allocation* per thread: reset()
          // rebinds the thread's context to this attempt's task set while
          // keeping every internal buffer's capacity. Nothing is shared
          // across attempts/threads, so the attempt-order determinism
          // guarantee is untouched.
          thread_local std::optional<analysis::RtaContext> tls_ctx;
          if (!tls_ctx.has_value())
            tls_ctx.emplace(ts);
          else
            tls_ctx->reset(ts);
          analysis::RtaContext& ctx = *tls_ctx;
          outcome.verdict.baseline = pair.baseline->analyze(ts, ctx).schedulable;
          // With the baseline filter on, a failing attempt is discarded by
          // the commit step without ever reading the proposed verdict (or
          // the certification counters) — skip that work here. Lazily
          // evaluated or not, every recorded value is identical, and the
          // skip is a pure function of the attempt's own data, so the
          // thread-count invariance is untouched.
          const bool discarded =
              config.filter_baseline && !outcome.verdict.baseline;
          if (!discarded)
            outcome.verdict.proposed = pair.proposed->analyze(ts, ctx).schedulable;
          if (!discarded && config.certify_sample > 0) {
            // Sample decision from a salted fork of the attempt stream:
            // independent of the generator's draws, so the sampled subset is
            // a pure function of (root seed, attempt index) — identical for
            // every thread count.
            const double p =
                std::min(1.0, static_cast<double>(config.certify_sample) /
                                  static_cast<double>(config.trials));
            util::Rng crng = arng.fork_with(kCertifySalt);
            if (crng.bernoulli(p)) {
              outcome.certified = true;
              outcome.cert_failures = certify_one(*pair.baseline, ts, ctx) +
                                      certify_one(*pair.proposed, ts, ctx);
            }
          }
        } catch (const gen::GenerationError&) {
          outcome.generated = false;
        }
        return outcome;
      },
      [&](std::size_t /*attempt*/, AttemptOutcome& outcome) {
        if (!outcome.generated) {
          ++result.generation_errors;
          return false;
        }
        if (config.filter_baseline && !outcome.verdict.baseline) {
          ++result.discarded;
          return false;
        }
        ++result.accepted;
        if (outcome.verdict.baseline) ++result.baseline_schedulable;
        if (outcome.verdict.proposed) ++result.proposed_schedulable;
        if (outcome.certified) {
          ++result.certified;
          result.cert_failures += outcome.cert_failures;
        }
        result.verdicts.push_back(outcome.verdict);
        return true;
      });
  result.attempts_exhausted = stats.exhausted;
  return result;
}

PointResult ExperimentEngine::evaluate_point(Scheduler scheduler,
                                             const PointConfig& config,
                                             const util::Rng& rng) {
  return evaluate_point(analyzers_for(scheduler), config, rng);
}

PointResult evaluate_point(const AnalyzerPair& pair, const PointConfig& config,
                           util::Rng& rng) {
  ExperimentEngine engine(1);
  return engine.evaluate_point(pair, config, rng);
}

PointResult evaluate_point(Scheduler scheduler, const PointConfig& config,
                           util::Rng& rng) {
  ExperimentEngine engine(1);
  return engine.evaluate_point(scheduler, config, rng);
}

}  // namespace rtpool::exp
