#include "exp/schedulability.h"

#include "analysis/global_rta.h"
#include "analysis/partition.h"
#include "analysis/partitioned_rta.h"

namespace rtpool::exp {

SetVerdict evaluate_task_set(Scheduler scheduler, const model::TaskSet& ts) {
  SetVerdict verdict;
  switch (scheduler) {
    case Scheduler::kGlobal: {
      analysis::GlobalRtaOptions baseline;
      baseline.limited_concurrency = false;
      verdict.baseline = analysis::analyze_global(ts, baseline).schedulable;

      analysis::GlobalRtaOptions limited;
      limited.limited_concurrency = true;
      verdict.proposed = analysis::analyze_global(ts, limited).schedulable;
      break;
    }
    case Scheduler::kPartitioned: {
      // Baseline: worst-fit + RTA oblivious to reduced concurrency ([10]).
      const auto wf = analysis::partition_worst_fit(ts);
      if (wf.success()) {
        analysis::PartitionedRtaOptions opts;
        opts.require_deadlock_free = false;
        verdict.baseline =
            analysis::analyze_partitioned(ts, *wf.partition, opts).schedulable;
      }

      // Proposed: Algorithm 1 + the same RTA + Lemma 3 deadlock freedom.
      const auto alg1 = analysis::partition_algorithm1(ts);
      if (alg1.success()) {
        analysis::PartitionedRtaOptions opts;
        opts.require_deadlock_free = true;
        verdict.proposed =
            analysis::analyze_partitioned(ts, *alg1.partition, opts).schedulable;
      }
      break;
    }
  }
  return verdict;
}

PointResult evaluate_point(Scheduler scheduler, const PointConfig& config,
                           util::Rng& rng) {
  PointResult result;
  int attempts = 0;
  while (result.accepted < static_cast<std::size_t>(config.trials)) {
    if (++attempts > config.max_attempts) {
      result.attempts_exhausted = true;
      break;
    }
    model::TaskSet ts(config.gen.cores);
    try {
      ts = gen::generate_task_set(config.gen, rng);
    } catch (const gen::GenerationError&) {
      ++result.generation_errors;
      continue;
    }

    const SetVerdict verdict = evaluate_task_set(scheduler, ts);
    if (config.filter_baseline && !verdict.baseline) {
      ++result.discarded;
      continue;
    }
    ++result.accepted;
    if (verdict.baseline) ++result.baseline_schedulable;
    if (verdict.proposed) ++result.proposed_schedulable;
  }
  return result;
}

}  // namespace rtpool::exp
