#include "exp/schedulability.h"

#include <thread>

#include "analysis/global_rta.h"
#include "analysis/partition.h"
#include "analysis/partitioned_rta.h"
#include "analysis/rta_context.h"
#include "exec/thread_pool.h"
#include "util/thread_annotations.h"

namespace rtpool::exp {

SetVerdict evaluate_task_set(Scheduler scheduler, const model::TaskSet& ts,
                             analysis::RtaContext* ctx) {
  std::optional<analysis::RtaContext> local_ctx;
  if (ctx == nullptr) {
    local_ctx.emplace(ts);
    ctx = &*local_ctx;
  }
  SetVerdict verdict;
  switch (scheduler) {
    case Scheduler::kGlobal: {
      analysis::GlobalRtaOptions baseline;
      baseline.limited_concurrency = false;
      verdict.baseline = analysis::analyze_global(ts, baseline, ctx).schedulable;

      analysis::GlobalRtaOptions limited;
      limited.limited_concurrency = true;
      verdict.proposed = analysis::analyze_global(ts, limited, ctx).schedulable;
      break;
    }
    case Scheduler::kPartitioned: {
      // Baseline: worst-fit + RTA oblivious to reduced concurrency ([10]).
      const auto wf = analysis::partition_worst_fit(ts);
      if (wf.success()) {
        analysis::PartitionedRtaOptions opts;
        opts.require_deadlock_free = false;
        verdict.baseline =
            analysis::analyze_partitioned(ts, *wf.partition, opts, ctx).schedulable;
      }

      // Proposed: Algorithm 1 + the same RTA + Lemma 3 deadlock freedom.
      const auto alg1 = analysis::partition_algorithm1(ts);
      if (alg1.success()) {
        analysis::PartitionedRtaOptions opts;
        opts.require_deadlock_free = true;
        verdict.proposed =
            analysis::analyze_partitioned(ts, *alg1.partition, opts, ctx)
                .schedulable;
      }
      break;
    }
  }
  return verdict;
}

ExperimentEngine::ExperimentEngine(int threads) {
  if (threads <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads_ = hw == 0 ? 1 : static_cast<int>(hw);
  } else {
    threads_ = threads;
  }
  if (threads_ > 1) {
    pool_ = std::make_unique<exec::ThreadPool>(
        static_cast<std::size_t>(threads_), exec::ThreadPool::QueueMode::kShared);
  }
}

ExperimentEngine::~ExperimentEngine() = default;

void ExperimentEngine::dispatch(std::vector<std::function<void()>>& jobs) {
  if (pool_ == nullptr || jobs.size() <= 1) {
    for (auto& job : jobs) job();
    return;
  }
  // Counter-latch over the library's own primitives: the calling thread
  // sleeps until every job of the batch has run. Jobs never throw (the
  // run_attempts wrappers capture exceptions into per-slot slots).
  struct Latch {
    util::Mutex mutex;
    util::CondVar cv;
    std::size_t remaining = 0;
  } latch;
  latch.remaining = jobs.size();

  std::vector<std::function<void()>> wrapped;
  wrapped.reserve(jobs.size());
  for (auto& job : jobs) {
    wrapped.push_back([&latch, job = std::move(job)] {
      job();
      util::MutexLock lock(latch.mutex);
      if (--latch.remaining == 0) latch.cv.notify_one();
    });
  }
  pool_->submit_batch(std::move(wrapped));

  util::MutexLock lock(latch.mutex);
  while (latch.remaining != 0) latch.cv.wait(latch.mutex);
}

namespace {

/// Outcome of one speculative generation attempt (computed on a worker).
struct AttemptOutcome {
  bool generated = false;  ///< false → gen::GenerationError.
  SetVerdict verdict;
};

}  // namespace

PointResult ExperimentEngine::evaluate_point(Scheduler scheduler,
                                             const PointConfig& config,
                                             const util::Rng& rng) {
  PointResult result;
  if (config.trials <= 0) return result;

  const AttemptLoopStats stats = run_attempts(
      static_cast<std::size_t>(config.trials),
      static_cast<std::size_t>(std::max(config.max_attempts, 0)), rng,
      [&](std::size_t /*attempt*/, util::Rng& arng) {
        AttemptOutcome outcome;
        try {
          const model::TaskSet ts = gen::generate_task_set(config.gen, arng);
          outcome.generated = true;
          // One context per trial: the four analyses of this attempt share
          // caches; nothing is shared across attempts/threads, so the
          // attempt-order determinism guarantee is untouched.
          analysis::RtaContext ctx(ts);
          outcome.verdict = evaluate_task_set(scheduler, ts, &ctx);
        } catch (const gen::GenerationError&) {
          outcome.generated = false;
        }
        return outcome;
      },
      [&](std::size_t /*attempt*/, AttemptOutcome& outcome) {
        if (!outcome.generated) {
          ++result.generation_errors;
          return false;
        }
        if (config.filter_baseline && !outcome.verdict.baseline) {
          ++result.discarded;
          return false;
        }
        ++result.accepted;
        if (outcome.verdict.baseline) ++result.baseline_schedulable;
        if (outcome.verdict.proposed) ++result.proposed_schedulable;
        result.verdicts.push_back(outcome.verdict);
        return true;
      });
  result.attempts_exhausted = stats.exhausted;
  return result;
}

PointResult evaluate_point(Scheduler scheduler, const PointConfig& config,
                           util::Rng& rng) {
  ExperimentEngine engine(1);
  return engine.evaluate_point(scheduler, config, rng);
}

}  // namespace rtpool::exp
