#include "exp/elastic_scenarios.h"

#include <chrono>

#include "util/rng.h"

namespace rtpool::exp {

std::vector<ElasticRequest> make_elastic_scenario(
    const ElasticScenarioParams& params, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<ElasticRequest> requests;
  requests.reserve(params.steps);
  std::vector<std::string> admitted;  // names the stream has admitted so far
  std::size_t next_index = 0;

  for (std::size_t step = 0; step < params.steps; ++step) {
    ElasticRequest req;
    const double roll = rng.uniform(0.0, 1.0);
    if (!admitted.empty() && roll < params.p_evict) {
      req.kind = exec::ModeRequestKind::kEvict;
      req.evict_name = rng.bernoulli(params.p_bogus_evict)
                           ? "never-admitted"
                           : admitted[rng.index(admitted.size())];
    } else if (roll < params.p_evict + params.p_resize) {
      req.kind = exec::ModeRequestKind::kResize;
      req.new_workers = static_cast<std::size_t>(
          rng.uniform_int(static_cast<std::int64_t>(params.min_workers),
                          static_cast<std::int64_t>(params.max_workers)));
    } else {
      req.kind = exec::ModeRequestKind::kAdmit;
      const double util = rng.uniform(0.05, 0.6);
      // Unique name per admission (generate_task names "tau<index>") and a
      // distinct priority so the proposal's priority order is total.
      model::DagTask task =
          gen::generate_task(params.gen, next_index, util, rng);
      req.task = task.with_priority(static_cast<int>(next_index));
      admitted.push_back(req.task->name());
      ++next_index;
    }
    requests.push_back(std::move(req));
  }
  return requests;
}

ElasticReplay replay_elastic(const std::vector<ElasticRequest>& requests,
                             const exec::ModeChangeConfig& config,
                             exec::ThreadPool* pool, bool verify_cold) {
  using Clock = std::chrono::steady_clock;
  exec::ModeChangeController controller(config, pool);
  ElasticReplay out;
  out.log.reserve(requests.size());

  for (const ElasticRequest& req : requests) {
    exec::ModeTransition tr;
    switch (req.kind) {
      case exec::ModeRequestKind::kAdmit:
        tr = controller.admit(*req.task);
        break;
      case exec::ModeRequestKind::kEvict:
        tr = controller.evict(req.evict_name);
        break;
      case exec::ModeRequestKind::kResize:
        tr = controller.resize(req.new_workers);
        break;
    }
    out.warm_wall_s += tr.decision_ms / 1000.0;
    if (tr.committed) ++out.committed;
    else ++out.rejected;
    if (tr.warm_seeded) ++out.warm_seeded;
    out.warm_hits += tr.warm_hits;
    out.incremental_hits += tr.incremental_hits;
    out.incremental_prefix += tr.incremental_prefix;

    // A transition is comparable when the analyzer actually ran: a
    // PROPOSE-stage reject (bogus evict, duplicate name, zero resize)
    // carries a default-constructed Report with no analyzer name.
    if (verify_cold && tr.proposed != nullptr && !tr.report.analyzer.empty()) {
      const auto t0 = Clock::now();
      const analysis::Report cold = controller.cold_analyze(*tr.proposed);
      out.cold_wall_s +=
          std::chrono::duration<double>(Clock::now() - t0).count();
      ++out.verified;
      if (!(cold == tr.report)) out.verdicts_agree = false;
    }
    out.log.push_back(std::move(tr));
  }
  out.log_json = controller.render_log_json(/*include_timings=*/false);
  return out;
}

}  // namespace rtpool::exp
