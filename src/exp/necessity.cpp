#include "exp/necessity.h"

#include <algorithm>
#include <stdexcept>

#include "sim/engine.h"

namespace rtpool::exp {

bool passes_simulation(const model::TaskSet& ts, SimPolicy policy,
                       const std::optional<analysis::TaskSetPartition>& partition,
                       const NecessityOptions& options) {
  if (policy == SimPolicy::kPartitioned && !partition.has_value())
    throw std::invalid_argument("passes_simulation: partitioned needs a partition");

  double max_period = 0.0;
  for (const auto& t : ts.tasks()) max_period = std::max(max_period, t.period());

  sim::SimConfig cfg;
  cfg.policy = policy == SimPolicy::kGlobal ? sim::SchedulingPolicy::kGlobal
                                            : sim::SchedulingPolicy::kPartitioned;
  cfg.partition = partition;
  cfg.horizon = options.windows * max_period;
  cfg.stop_on_miss = true;

  const auto synchronous = sim::simulate(ts, cfg);
  if (synchronous.deadlock.has_value() || synchronous.any_deadline_miss)
    return false;

  for (int scenario = 0; scenario < options.jitter_scenarios; ++scenario) {
    cfg.release_jitter_frac = options.jitter_frac;
    cfg.seed = static_cast<std::uint64_t>(scenario + 1);
    const auto run = sim::simulate(ts, cfg);
    if (run.deadlock.has_value() || run.any_deadline_miss) return false;
  }
  return true;
}

}  // namespace rtpool::exp
