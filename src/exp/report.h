// Console/CSV reporting for the figure-reproduction benches.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "exp/schedulability.h"

namespace rtpool::exp {

/// One row of a sweep: x value plus the two ratios.
struct SweepRow {
  double x = 0.0;
  PointResult global;       ///< Global-scheduling point at this x.
  PointResult partitioned;  ///< Partitioned-scheduling point at this x.
};

/// Print a figure-style table: header, one row per x with baseline and
/// proposed schedulability ratios for both schedulers, plus bookkeeping.
void print_sweep(const std::string& title, const std::string& x_label,
                 const std::vector<SweepRow>& rows);

/// Dump the same data as CSV (for plotting); no-op when path is empty.
void write_sweep_csv(const std::string& path, const std::string& x_label,
                     const std::vector<SweepRow>& rows);

}  // namespace rtpool::exp
