// Deterministic parallel attempt runner + checkpointable sharded sweeps.
//
// ShardedRunner is the machinery that used to live inside
// ExperimentEngine: a worker pool (the library's own exec::ThreadPool —
// the harness dogfoods the runtime it analyzes), a speculative
// attempt-ordered commit loop (`run_attempts`), and a deterministic
// parallel map (`map_trials`). ExperimentEngine still exposes the same
// API and now delegates here; the corpus runner (src/corpus) rides the
// same spine directly.
//
// On top of those, `run_range` adds the corpus-scale primitive: a sweep
// over an *absolute* seed range [begin, end) split into contiguous
// shards. Every seed s is evaluated with `root.fork_with(s)` — keyed by
// the absolute seed, never by its position inside a shard — and folded
// strictly in seed order on the calling thread. Results are therefore
// bit-identical for any thread count AND any shard count; shards only
// set the checkpoint granularity. After each shard the caller's
// accumulated state is snapshotted into a JSON checkpoint file, so a
// killed run resumes at the last shard boundary and finishes with
// exactly the numbers of a straight-through run (property-tested in
// tests/test_corpus.cpp).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <type_traits>
#include <vector>

#include "util/rng.h"

namespace rtpool::exec {
class ThreadPool;
}

namespace rtpool::exp {

/// Bookkeeping of one deterministic attempt loop.
struct AttemptLoopStats {
  std::size_t attempts = 0;  ///< Attempts consumed (committed, in order).
  bool exhausted = false;    ///< Budget ran out before `needed` commits.
};

/// Half-open absolute seed range [begin, end).
struct SeedRange {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;

  std::uint64_t size() const { return end > begin ? end - begin : 0; }

  friend bool operator==(const SeedRange&, const SeedRange&) = default;
};

/// Configuration of a checkpointable `run_range` sweep.
struct RangeOptions {
  SeedRange range;
  /// Contiguous sub-ranges processed strictly in order (parallelism lives
  /// *within* a shard); also the checkpoint granularity. Clamped to the
  /// range size. Shard boundaries never change any number.
  std::size_t shards = 1;
  /// Checkpoint file path; empty disables checkpointing entirely.
  std::string checkpoint_path;
  /// Resume from `checkpoint_path`. The file must exist and match
  /// `fingerprint` + range + shards exactly (std::runtime_error otherwise:
  /// silently restarting a mismatched job would corrupt the statistics).
  bool resume = false;
  /// Caller-chosen identity string for the job (config digest). Stored
  /// verbatim in the checkpoint and validated on resume.
  std::string fingerprint;
  /// Stop (at the next shard boundary) once at least this many seeds have
  /// been evaluated by THIS invocation; 0 = no budget. The checkpoint is
  /// written before stopping, so a later `resume` run continues. Used by
  /// the CI kill/resume proof and by incremental background jobs.
  std::uint64_t budget_seeds = 0;
};

/// Outcome of a `run_range` invocation.
struct RangeStats {
  std::size_t shards_total = 0;
  std::size_t shards_run = 0;       ///< Shards evaluated by this invocation.
  std::size_t shards_restored = 0;  ///< Shards skipped via the checkpoint.
  std::uint64_t seeds_evaluated = 0;///< Seeds evaluated by this invocation.
  bool complete = false;            ///< Whole range covered (restored + run).

  friend bool operator==(const RangeStats&, const RangeStats&) = default;
};

/// Deterministic parallel runner with sharded checkpoint/resume.
class ShardedRunner {
 public:
  /// `threads` <= 0 selects std::thread::hardware_concurrency(); 1 runs
  /// everything inline on the calling thread (no pool). The worker count
  /// is additionally clamped to the hardware (unless `clamp_to_hardware`
  /// is false): results are thread-count invariant by construction, so
  /// oversubscription could only add jitter. `threads()` reports the
  /// requested value; `workers()` the effective one.
  explicit ShardedRunner(int threads = 1, bool clamp_to_hardware = true);
  ~ShardedRunner();

  ShardedRunner(const ShardedRunner&) = delete;
  ShardedRunner& operator=(const ShardedRunner&) = delete;

  int threads() const { return threads_; }
  int workers() const { return workers_; }

  /// Generic deterministic speculative attempt loop (see ExperimentEngine's
  /// historical doc): conceptually
  ///
  ///   while committed < needed and attempts < max_attempts:
  ///       k = attempts++
  ///       r = eval(k, rng.fork_with(k))     // parallelized, speculative
  ///       if commit(k, r): committed++      // strictly in attempt order
  ///
  /// `eval` must be pure w.r.t. everything except its own Rng; `commit`
  /// runs on the calling thread, in attempt order.
  template <typename Eval, typename Commit>
  AttemptLoopStats run_attempts(std::size_t needed, std::size_t max_attempts,
                                const util::Rng& rng, Eval&& eval,
                                Commit&& commit) {
    using Result = std::decay_t<std::invoke_result_t<Eval&, std::size_t, util::Rng&>>;
    AttemptLoopStats stats;
    if (needed == 0 || max_attempts == 0) {
      stats.exhausted = needed > 0;
      return stats;
    }

    std::size_t committed = 0;
    if (pool_ == nullptr) {
      // Inline path: one attempt at a time, no speculation.
      while (committed < needed) {
        if (stats.attempts == max_attempts) {
          stats.exhausted = true;
          return stats;
        }
        const std::size_t k = stats.attempts++;
        util::Rng arng = rng.fork_with(k);
        Result r = eval(k, arng);
        if (commit(k, r)) ++committed;
      }
      return stats;
    }

    std::vector<std::optional<Result>> slots;
    std::vector<std::exception_ptr> errors;
    std::vector<std::function<void()>> jobs;
    std::size_t next_attempt = 0;
    while (committed < needed && next_attempt < max_attempts) {
      // Speculative batch: sized from the acceptance rate observed so far
      // so each round roughly finishes the point. Any size produces
      // bit-identical results — commits are strictly attempt-ordered;
      // oversized batches only waste eval work past the final commit.
      const double rate =
          stats.attempts == 0
              ? 1.0
              : std::max(static_cast<double>(committed) /
                             static_cast<double>(stats.attempts),
                         0.02);
      std::size_t batch = static_cast<std::size_t>(
          static_cast<double>(needed - committed) / rate) + 1;
      batch = std::clamp<std::size_t>(batch, static_cast<std::size_t>(workers_),
                                      4096);
      batch = std::min(batch, max_attempts - next_attempt);

      const std::size_t base = next_attempt;
      next_attempt += batch;
      slots.assign(batch, std::nullopt);
      errors.assign(batch, nullptr);
      // One job per worker, pulling attempt indices from a shared cursor:
      // the per-attempt std::function + queue round-trip of the old
      // one-job-per-attempt dispatch dominated small evals, and a shared
      // cursor load-balances long-tailed attempts for free. Slot writes are
      // published to the caller by dispatch()'s completion latch.
      const std::size_t njobs =
          std::min<std::size_t>(static_cast<std::size_t>(workers_), batch);
      std::atomic<std::size_t> cursor{0};
      jobs.clear();
      jobs.reserve(njobs);
      for (std::size_t j = 0; j < njobs; ++j) {
        jobs.push_back([this_eval = &eval, &rng, &slots, &errors, &cursor,
                        base, batch] {
          for (;;) {
            const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
            if (i >= batch) return;
            util::Rng arng = rng.fork_with(base + i);
            try {
              slots[i].emplace((*this_eval)(base + i, arng));
            } catch (...) {
              errors[i] = std::current_exception();
            }
          }
        });
      }
      dispatch(jobs);

      for (std::size_t i = 0; i < batch && committed < needed; ++i) {
        if (errors[i]) std::rethrow_exception(errors[i]);
        ++stats.attempts;
        if (commit(base + i, *slots[i])) ++committed;
      }
    }
    stats.exhausted = committed < needed;
    return stats;
  }

  /// Deterministic parallel map over `count` independent trials: trial i is
  /// evaluated with rng.fork_with(i) (on the pool) and folded with
  /// `fold(i, result)` in trial order on the calling thread.
  template <typename Eval, typename Fold>
  void map_trials(std::size_t count, const util::Rng& rng, Eval&& eval,
                  Fold&& fold) {
    run_attempts(count, count, rng, eval,
                 [&fold](std::size_t i, auto& r) {
                   fold(i, r);
                   return true;
                 });
  }

  /// Checkpointable sharded sweep over the absolute seed range of `opt`.
  ///
  ///   eval(seed, srng)   runs on workers with srng = root.fork_with(seed)
  ///                      (keyed by the ABSOLUTE seed — shard boundaries
  ///                      never reach the stream derivation);
  ///   fold(seed, result) runs strictly in seed order on the calling thread;
  ///   save_state()       serializes the caller's accumulated state (any
  ///                      string, typically JSON) after each shard;
  ///   load_state(blob)   restores it when resuming.
  ///
  /// Throws std::runtime_error on a resume mismatch (missing/garbled
  /// checkpoint, or fingerprint/range/shards differing from the file).
  template <typename Eval, typename Fold>
  RangeStats run_range(const RangeOptions& opt, const util::Rng& root,
                       Eval&& eval, Fold&& fold,
                       const std::function<std::string()>& save_state,
                       const std::function<void(const std::string&)>& load_state) {
    RangeStats stats;
    const std::uint64_t total = opt.range.size();
    stats.shards_total = plan_shards(opt);
    std::size_t completed = 0;
    if (opt.resume) {
      completed = restore(opt, stats.shards_total, load_state);
      stats.shards_restored = completed;
    }
    for (std::size_t shard = completed; shard < stats.shards_total; ++shard) {
      const SeedRange sub = shard_range(opt.range, stats.shards_total, shard);
      run_attempts(
          static_cast<std::size_t>(sub.size()),
          static_cast<std::size_t>(sub.size()), root,
          [&eval, &root, base = sub.begin](std::size_t k, util::Rng&) {
            // Re-derive the stream from the ABSOLUTE seed: the arng handed
            // in is keyed by the shard-relative index and must not be used.
            const std::uint64_t seed = base + k;
            util::Rng srng = root.fork_with(seed);
            return eval(seed, srng);
          },
          [&fold, base = sub.begin](std::size_t k, auto& r) {
            fold(base + k, r);
            return true;
          });
      ++stats.shards_run;
      stats.seeds_evaluated += sub.size();
      if (!opt.checkpoint_path.empty())
        write_checkpoint(opt, stats.shards_total, shard + 1, save_state());
      if (opt.budget_seeds != 0 && stats.seeds_evaluated >= opt.budget_seeds &&
          shard + 1 < stats.shards_total) {
        return stats;  // Paused at a shard boundary; checkpoint written.
      }
    }
    stats.complete = total == 0 || stats.shards_restored + stats.shards_run ==
                                       stats.shards_total;
    return stats;
  }

  /// The i-th of `shards` contiguous sub-ranges of `range` (sizes differ by
  /// at most one; exposed for tests and progress reporting).
  static SeedRange shard_range(const SeedRange& range, std::size_t shards,
                               std::size_t index);

 private:
  /// Effective shard count: clamped to [1, range size] (every shard
  /// non-empty so "one shard == some progress" holds for the budget logic).
  static std::size_t plan_shards(const RangeOptions& opt);

  /// Validate + load the checkpoint; returns completed_shards and feeds the
  /// state blob to `load_state`. Throws std::runtime_error on mismatch.
  std::size_t restore(const RangeOptions& opt, std::size_t shards_total,
                      const std::function<void(const std::string&)>& load_state);

  /// Atomically (write-to-temp + rename) persist the checkpoint.
  void write_checkpoint(const RangeOptions& opt, std::size_t shards_total,
                        std::size_t completed_shards, const std::string& state);

  /// Run all jobs (on the pool when present, inline otherwise) and wait for
  /// completion. Jobs must not throw (callers capture exceptions).
  void dispatch(std::vector<std::function<void()>>& jobs);

  int threads_ = 1;  ///< Requested parallelism (reporting only).
  int workers_ = 1;  ///< Effective parallelism (clamped to the hardware).
  std::unique_ptr<exec::ThreadPool> pool_;
};

}  // namespace rtpool::exp
