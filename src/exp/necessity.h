// Simulation-based NECESSARY schedulability condition.
//
// The analyses of Section 4 are sufficient-only. Running the simulator on
// the synchronous-periodic instantiation gives the complementary necessary
// condition: if some job misses its deadline (or the pool deadlocks) in
// this concrete legal scenario, the task set is definitely not schedulable.
// (For global FP scheduling of DAG tasks the synchronous arrival sequence
// is NOT a proven critical instant, so passing the simulation does not
// prove schedulability — the gap between the two conditions brackets the
// analysis pessimism, measured by bench/gap_analysis.)
#pragma once

#include "analysis/partition.h"
#include "model/task_set.h"

namespace rtpool::exp {

enum class SimPolicy { kGlobal, kPartitioned };

struct NecessityOptions {
  /// Simulated windows: horizon = windows * max period.
  double windows = 4.0;
  /// Extra sporadic-jitter scenarios simulated on top of the synchronous
  /// one (each with a different seed); any miss anywhere fails the test.
  int jitter_scenarios = 0;
  double jitter_frac = 0.3;
};

/// True iff no deadline miss and no deadlock was observed — a NECESSARY
/// condition for schedulability. For kPartitioned, `partition` must be set.
bool passes_simulation(const model::TaskSet& ts, SimPolicy policy,
                       const std::optional<analysis::TaskSetPartition>& partition,
                       const NecessityOptions& options = {});

}  // namespace rtpool::exp
