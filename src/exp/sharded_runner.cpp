#include "exp/sharded_runner.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "exec/thread_pool.h"
#include "util/json.h"
#include "util/thread_annotations.h"

namespace rtpool::exp {

namespace {

constexpr const char* kCheckpointSchema = "rtpool-shard-checkpoint-v1";

std::uint64_t as_u64(const util::JsonValue& v) {
  return static_cast<std::uint64_t>(v.as_number());
}

}  // namespace

ShardedRunner::ShardedRunner(int threads, bool clamp_to_hardware) {
  const unsigned hw = std::thread::hardware_concurrency();
  const int hw_threads = hw == 0 ? 1 : static_cast<int>(hw);
  threads_ = threads <= 0 ? hw_threads : threads;
  // Clamp the effective worker count to the hardware: results are
  // thread-count invariant, so extra workers beyond the cores could only
  // add contention, never speed or numbers.
  workers_ = clamp_to_hardware ? std::min(threads_, hw_threads) : threads_;
  if (workers_ > 1) {
    pool_ = std::make_unique<exec::ThreadPool>(
        static_cast<std::size_t>(workers_), exec::ThreadPool::QueueMode::kShared);
  }
}

ShardedRunner::~ShardedRunner() = default;

void ShardedRunner::dispatch(std::vector<std::function<void()>>& jobs) {
  if (pool_ == nullptr || jobs.size() <= 1) {
    for (auto& job : jobs) job();
    return;
  }
  // Counter-latch over the library's own primitives: the calling thread
  // sleeps until every job of the batch has run. Jobs never throw (the
  // run_attempts wrappers capture exceptions into per-slot slots).
  struct Latch {
    util::Mutex mutex;
    util::CondVar cv;
    std::size_t remaining = 0;
  } latch;
  latch.remaining = jobs.size();

  std::vector<std::function<void()>> wrapped;
  wrapped.reserve(jobs.size());
  for (auto& job : jobs) {
    wrapped.push_back([&latch, job = std::move(job)] {
      job();
      util::MutexLock lock(latch.mutex);
      if (--latch.remaining == 0) latch.cv.notify_one();
    });
  }
  pool_->submit_batch(std::move(wrapped));

  util::MutexLock lock(latch.mutex);
  while (latch.remaining != 0) latch.cv.wait(latch.mutex);
}

SeedRange ShardedRunner::shard_range(const SeedRange& range, std::size_t shards,
                                     std::size_t index) {
  const std::uint64_t total = range.size();
  if (shards == 0 || index >= shards) return {range.begin, range.begin};
  const std::uint64_t n = static_cast<std::uint64_t>(shards);
  const std::uint64_t base = total / n;
  const std::uint64_t extra = total % n;  // First `extra` shards get +1.
  const std::uint64_t i = static_cast<std::uint64_t>(index);
  const std::uint64_t begin =
      range.begin + base * i + std::min<std::uint64_t>(i, extra);
  const std::uint64_t len = base + (i < extra ? 1 : 0);
  return {begin, begin + len};
}

std::size_t ShardedRunner::plan_shards(const RangeOptions& opt) {
  const std::uint64_t total = opt.range.size();
  if (total == 0) return 0;
  std::size_t shards = std::max<std::size_t>(opt.shards, 1);
  if (static_cast<std::uint64_t>(shards) > total)
    shards = static_cast<std::size_t>(total);
  return shards;
}

std::size_t ShardedRunner::restore(
    const RangeOptions& opt, std::size_t shards_total,
    const std::function<void(const std::string&)>& load_state) {
  if (opt.checkpoint_path.empty())
    throw std::runtime_error("run_range: resume requested without a checkpoint path");
  std::ifstream in(opt.checkpoint_path);
  if (!in)
    throw std::runtime_error("run_range: cannot open checkpoint '" +
                             opt.checkpoint_path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  util::JsonValue doc = util::parse_json(buf.str());
  const auto fail = [&](const std::string& what) {
    throw std::runtime_error("run_range: checkpoint '" + opt.checkpoint_path +
                             "' mismatch: " + what);
  };
  if (!doc.is_object() || !doc.contains("schema") ||
      doc.at("schema").as_string() != kCheckpointSchema)
    fail("unknown schema");
  if (doc.at("fingerprint").as_string() != opt.fingerprint)
    fail("fingerprint differs (checkpoint is from another job configuration)");
  if (as_u64(doc.at("seed_begin")) != opt.range.begin ||
      as_u64(doc.at("seed_end")) != opt.range.end)
    fail("seed range differs");
  if (as_u64(doc.at("shards")) != static_cast<std::uint64_t>(shards_total))
    fail("shard count differs");
  const std::uint64_t completed = as_u64(doc.at("completed_shards"));
  if (completed > shards_total) fail("completed_shards out of range");
  load_state(doc.at("state").as_string());
  return static_cast<std::size_t>(completed);
}

void ShardedRunner::write_checkpoint(const RangeOptions& opt,
                                     std::size_t shards_total,
                                     std::size_t completed_shards,
                                     const std::string& state) {
  const std::string tmp = opt.checkpoint_path + ".tmp";
  {
    std::ofstream out(tmp);
    if (!out)
      throw std::runtime_error("run_range: cannot write checkpoint '" + tmp + "'");
    util::JsonWriter w(out);
    w.begin_object()
        .kv("schema", kCheckpointSchema)
        .kv("fingerprint", opt.fingerprint)
        .kv("seed_begin", opt.range.begin)
        .kv("seed_end", opt.range.end)
        .kv("shards", static_cast<std::uint64_t>(shards_total))
        .kv("completed_shards", static_cast<std::uint64_t>(completed_shards))
        .kv("state", state)
        .end_object();
    out << '\n';
    if (!out.good())
      throw std::runtime_error("run_range: short write to checkpoint '" + tmp + "'");
  }
  // Atomic publish: a kill mid-write leaves the previous checkpoint intact.
  if (std::rename(tmp.c_str(), opt.checkpoint_path.c_str()) != 0)
    throw std::runtime_error("run_range: cannot rename checkpoint '" + tmp +
                             "' to '" + opt.checkpoint_path + "'");
}

}  // namespace rtpool::exp
