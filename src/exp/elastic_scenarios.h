// Seeded online mode-change scenarios for the ModeChangeController.
//
// The controller's determinism contract (exec/mode_change.h) is only
// testable against a reproducible request stream. make_elastic_scenario
// derives one entirely from a 64-bit seed: a sequence of admit / evict /
// resize requests with generated NFJ tasks (unique names, distinct
// priorities) and occasional invalid requests (evicting a task that never
// existed) to exercise the reject path. replay_elastic feeds the stream to
// a fresh controller and — optionally — re-runs every analyzed proposal
// COLD through the same analyzer, asserting the warm-started admission
// verdicts are bit-identical (Report::operator== includes certificates).
// The warm/cold wall-clock split is the admission-latency datum consumed
// by bench/perf_sweep.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "exec/mode_change.h"
#include "gen/taskset_generator.h"
#include "model/dag_task.h"

namespace rtpool::exp {

struct ElasticScenarioParams {
  std::size_t steps = 12;       ///< Requests in the stream.
  std::size_t min_workers = 2;  ///< Resize draw range (inclusive).
  std::size_t max_workers = 8;
  double p_evict = 0.25;        ///< Per-step eviction probability.
  double p_resize = 0.20;       ///< Per-step resize probability (else admit).
  double p_bogus_evict = 0.15;  ///< Eviction of a never-admitted name.
  /// Task shape for admissions; `cores` is irrelevant (the controller's
  /// mode supplies m), utilizations are drawn per step.
  gen::TaskSetParams gen;
};

/// One request of the stream.
struct ElasticRequest {
  exec::ModeRequestKind kind = exec::ModeRequestKind::kAdmit;
  std::optional<model::DagTask> task;  ///< Present for admits.
  std::string evict_name;              ///< Present for evicts.
  std::size_t new_workers = 0;         ///< Present for resizes.
};

/// Derive the request stream for (params, seed). Deterministic: the same
/// pair yields byte-identical tasks and requests. Tracks which names the
/// stream itself admitted so evictions (except the deliberate bogus ones)
/// target plausibly-live tasks.
std::vector<ElasticRequest> make_elastic_scenario(
    const ElasticScenarioParams& params, std::uint64_t seed);

struct ElasticReplay {
  std::vector<exec::ModeTransition> log;  ///< One entry per request.
  std::size_t committed = 0;
  std::size_t rejected = 0;
  std::size_t warm_seeded = 0;   ///< Admissions that reused warm state.
  std::size_t warm_hits = 0;     ///< Total warm-started fixed-point iters.
  std::size_t incremental_hits = 0;    ///< Per-task fixed points copied.
  std::size_t incremental_prefix = 0;  ///< Sum of copyable prefix lengths.
  /// Warm == cold verdict agreement over every analyzed proposal (always
  /// true when verify_cold was off or nothing was comparable).
  bool verdicts_agree = true;
  std::size_t verified = 0;      ///< Proposals compared against a cold run.
  double warm_wall_s = 0.0;      ///< Sum of in-controller decision times.
  double cold_wall_s = 0.0;      ///< Sum of independent cold re-analyses.
  std::string log_json;          ///< render_log_json(include_timings=false).
};

/// Feed `requests` to a fresh controller built from `config` (and an
/// optional pool, which then receives committed resizes). With verify_cold,
/// every transition that reached analysis is re-analyzed cold and compared
/// by Report value equality — the warm-equals-cold property.
ElasticReplay replay_elastic(const std::vector<ElasticRequest>& requests,
                             const exec::ModeChangeConfig& config,
                             exec::ThreadPool* pool = nullptr,
                             bool verify_cold = true);

}  // namespace rtpool::exp
