// JSON export of a complete analysis report for one task set — every test
// the library implements, in one machine-readable document (for CI
// dashboards and plotting; consumed by `rtpool_cli --json`).
#pragma once

#include <iosfwd>
#include <string>

#include "model/task_set.h"

namespace rtpool::exp {

/// Analyze `ts` with all available tests (deadlock bounds, global RTA
/// baseline/limited/antichain, worst-fit and Algorithm 1 partitioned RTA,
/// federated classic/limited) and write one JSON object.
void write_analysis_report(std::ostream& os, const model::TaskSet& ts);

/// Convenience: write to a file; throws std::runtime_error on I/O failure.
void save_analysis_report(const std::string& path, const model::TaskSet& ts);

}  // namespace rtpool::exp
