#include "exp/report.h"

#include <cstdio>

#include "util/csv.h"

namespace rtpool::exp {

void print_sweep(const std::string& title, const std::string& x_label,
                 const std::vector<SweepRow>& rows) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("%-8s | %-17s %-17s | %-17s %-17s\n", x_label.c_str(),
              "glob-baseline[14]", "glob-proposed", "part-baseline[10]",
              "part-proposed(A1)");
  std::printf("---------+-------------------------------------+---------------"
              "----------------------\n");
  for (const SweepRow& r : rows) {
    std::printf("%-8g | %-17.3f %-17.3f | %-17.3f %-17.3f", r.x,
                r.global.baseline_ratio(), r.global.proposed_ratio(),
                r.partitioned.baseline_ratio(), r.partitioned.proposed_ratio());
    if (r.global.attempts_exhausted || r.partitioned.attempts_exhausted)
      std::printf("  [incomplete: %zu/%zu sets]",
                  std::min(r.global.accepted, r.partitioned.accepted),
                  std::max(r.global.accepted, r.partitioned.accepted));
    std::printf("\n");
  }
  std::fflush(stdout);
}

void write_sweep_csv(const std::string& path, const std::string& x_label,
                     const std::vector<SweepRow>& rows) {
  if (path.empty()) return;
  util::CsvWriter csv(path, {x_label, "global_baseline", "global_proposed",
                             "partitioned_baseline", "partitioned_proposed",
                             "global_accepted", "partitioned_accepted",
                             "global_discarded", "partitioned_discarded"});
  for (const SweepRow& r : rows) {
    csv.row_values(r.x, r.global.baseline_ratio(), r.global.proposed_ratio(),
                   r.partitioned.baseline_ratio(), r.partitioned.proposed_ratio(),
                   r.global.accepted, r.partitioned.accepted, r.global.discarded,
                   r.partitioned.discarded);
  }
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace rtpool::exp
