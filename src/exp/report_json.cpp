#include "exp/report_json.h"

#include <fstream>

#include "analysis/antichain.h"
#include "analysis/concurrency.h"
#include "analysis/deadlock.h"
#include "analysis/federated.h"
#include "analysis/global_rta.h"
#include "analysis/partition.h"
#include "analysis/partitioned_rta.h"
#include "util/json.h"

namespace rtpool::exp {

namespace {

void write_global(util::JsonWriter& json, const model::TaskSet& ts,
                  const analysis::GlobalRtaOptions& options) {
  const auto result = analysis::analyze_global(ts, options);
  json.begin_object();
  json.kv("schedulable", result.schedulable);
  json.key("tasks").begin_array();
  for (std::size_t i = 0; i < ts.size(); ++i) {
    json.begin_object()
        .kv("name", ts.task(i).name())
        .kv("response_time", result.per_task[i].response_time)
        .kv("schedulable", result.per_task[i].schedulable)
        .kv("concurrency_bound", static_cast<std::int64_t>(
                                     result.per_task[i].concurrency_bound))
        .end_object();
  }
  json.end_array();
  json.end_object();
}

void write_partitioned(util::JsonWriter& json, const model::TaskSet& ts,
                       const analysis::PartitionResult& partition,
                       bool require_deadlock_free) {
  json.begin_object();
  json.kv("partition_found", partition.success());
  if (!partition.success()) {
    json.kv("failure", partition.failure);
    json.end_object();
    return;
  }
  analysis::PartitionedRtaOptions opts;
  opts.require_deadlock_free = require_deadlock_free;
  const auto result = analysis::analyze_partitioned(ts, *partition.partition, opts);
  json.kv("schedulable", result.schedulable);
  json.kv("deadlock_free", analysis::task_set_deadlock_free_partitioned(
                               ts, *partition.partition));
  json.key("core_utilization").begin_array();
  for (double u : partition.partition->core_utilization(ts)) json.value(u);
  json.end_array();
  json.key("tasks").begin_array();
  for (std::size_t i = 0; i < ts.size(); ++i) {
    json.begin_object()
        .kv("name", ts.task(i).name())
        .kv("response_time", result.per_task[i].response_time)
        .kv("schedulable", result.per_task[i].schedulable)
        .kv("deadlock_free", result.per_task[i].deadlock_free);
    json.key("assignment").begin_array();
    for (analysis::ThreadId t : partition.partition->per_task[i].thread_of)
      json.value(static_cast<std::uint64_t>(t));
    json.end_array();
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

void write_federated(util::JsonWriter& json, const model::TaskSet& ts,
                     bool limited) {
  analysis::FederatedOptions options;
  options.limited_concurrency = limited;
  const auto result = analysis::analyze_federated(ts, options);
  json.begin_object();
  json.kv("schedulable", result.schedulable);
  json.kv("dedicated_cores", result.dedicated_cores);
  json.key("tasks").begin_array();
  for (std::size_t i = 0; i < ts.size(); ++i) {
    json.begin_object()
        .kv("name", ts.task(i).name())
        .kv("dedicated", result.per_task[i].dedicated)
        .kv("cores", result.per_task[i].cores)
        .kv("schedulable", result.per_task[i].schedulable)
        .end_object();
  }
  json.end_array();
  json.end_object();
}

}  // namespace

void write_analysis_report(std::ostream& os, const model::TaskSet& ts) {
  util::JsonWriter json(os);
  json.begin_object();
  json.kv("cores", ts.core_count());
  json.kv("total_utilization", ts.total_utilization());

  json.key("tasks").begin_array();
  for (const model::DagTask& t : ts.tasks()) {
    const auto deadlock = analysis::check_deadlock_free_global(t, ts.core_count());
    json.begin_object()
        .kv("name", t.name())
        .kv("nodes", t.node_count())
        .kv("volume", t.volume())
        .kv("critical_path", t.critical_path_length())
        .kv("period", t.period())
        .kv("deadline", t.deadline())
        .kv("priority", t.priority())
        .kv("utilization", t.utilization())
        .kv("blocking_forks", t.blocking_fork_count())
        .kv("max_affecting_forks", deadlock.max_forks)
        .kv("concurrency_lower_bound",
            static_cast<std::int64_t>(deadlock.concurrency_bound))
        .kv("concurrency_lower_bound_antichain",
            static_cast<std::int64_t>(
                analysis::available_concurrency_lower_bound_antichain(
                    t, ts.core_count())))
        .kv("deadlock_free_global", deadlock.deadlock_free)
        .end_object();
  }
  json.end_array();

  analysis::GlobalRtaOptions baseline;
  json.key("global_baseline");
  write_global(json, ts, baseline);

  analysis::GlobalRtaOptions limited;
  limited.limited_concurrency = true;
  json.key("global_limited");
  write_global(json, ts, limited);

  limited.concurrency = analysis::ConcurrencyBound::kMaxAntichain;
  json.key("global_limited_antichain");
  write_global(json, ts, limited);

  json.key("partitioned_worst_fit");
  write_partitioned(json, ts, analysis::partition_worst_fit(ts),
                    /*require_deadlock_free=*/false);

  json.key("partitioned_algorithm1");
  write_partitioned(json, ts, analysis::partition_algorithm1(ts),
                    /*require_deadlock_free=*/true);

  json.key("federated_classic");
  write_federated(json, ts, /*limited=*/false);

  json.key("federated_limited");
  write_federated(json, ts, /*limited=*/true);

  json.end_object();
}

void save_analysis_report(const std::string& path, const model::TaskSet& ts) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_analysis_report: cannot open " + path);
  write_analysis_report(out, ts);
}

}  // namespace rtpool::exp
