// Discrete-event simulator of parallel tasks executed by thread pools
// (the system model of Section 2, executable).
//
// Simulated mechanics:
//  * m identical cores; each task τ_i owns a pool Φ_i of m threads at the
//    task's fixed priority π_i.
//  * Thread scheduling is global (the m highest-priority busy threads run,
//    threads migrate freely) or partitioned (thread φ_{i,j} is pinned to
//    core j) — fixed-priority preemptive in both cases; equal-priority
//    threads never preempt each other.
//  * Intra-pool dispatching is work-conserving FIFO: one logical queue per
//    pool under global scheduling, one queue per thread under partitioned
//    scheduling (nodes then need a node-to-thread assignment).
//  * Nodes run to completion on their serving thread (no intra-pool
//    preemption or migration of nodes), but the thread itself can be
//    preempted by higher-priority threads.
//  * A BF node spawns its children on completion and *suspends its thread*
//    until the whole blocking region completes; the matching BJ then runs
//    directly on the resumed thread (it never passes through a queue) —
//    the condition-variable semantics of Listing 1.
//
// The simulator measures response times, deadline misses, the available
// concurrency l(t, τ) (minimum observed), optionally a full execution
// trace, and detects *permanent* stalls (deadlocks) exactly, reporting the
// first deadlocked task with a witness description.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/partition.h"
#include "model/task_set.h"
#include "util/rng.h"
#include "util/time.h"

namespace rtpool::sim {

enum class SchedulingPolicy { kGlobal, kPartitioned };

struct SimConfig {
  SchedulingPolicy policy = SchedulingPolicy::kGlobal;
  /// Simulate releases in [0, horizon); running jobs are completed or cut
  /// off at `horizon` (incomplete jobs count as deadline misses).
  util::Time horizon = 0.0;
  /// Node-to-thread assignment; required when policy == kPartitioned.
  std::optional<analysis::TaskSetPartition> partition;
  /// Partitioned only: idle threads with an empty own queue steal from the
  /// back of a sibling queue (footnote 1 of the paper: practical
  /// implementations replicate global scheduling with work stealing).
  /// Stealing lets queued nodes escape a suspended thread, so partitions
  /// that deadlock under strict per-thread FIFO may complete.
  bool work_stealing = false;
  /// Record per-node execution intervals (costs memory; for demos/tests).
  bool collect_trace = false;
  /// Stop at the first deadline miss (the schedulability verdict is final).
  bool stop_on_miss = false;
  /// Sporadic release jitter: job k+1 is released T + U[0, jitter_frac*T]
  /// after job k (0 = strictly periodic, synchronous start at time 0).
  double release_jitter_frac = 0.0;
  /// Seed for sporadic jitter (unused when jitter is 0).
  std::uint64_t seed = 1;
};

/// One completed (or cut-off) job.
struct JobRecord {
  std::size_t task_index = 0;
  std::uint64_t job_number = 0;
  util::Time release = 0.0;
  util::Time completion = 0.0;  ///< = horizon when cut off.
  util::Time response = 0.0;
  bool completed = false;
  bool deadline_miss = false;

  friend bool operator==(const JobRecord&, const JobRecord&) = default;
};

/// Aggregates per task.
struct TaskStats {
  std::size_t jobs_released = 0;
  std::size_t jobs_completed = 0;
  std::size_t deadline_misses = 0;
  util::Time max_response = 0.0;
  /// Minimum observed available concurrency l(t, τ) while a job was in
  /// progress (= pool size if the task never blocks).
  long min_available_concurrency = 0;

  friend bool operator==(const TaskStats&, const TaskStats&) = default;
};

/// A node execution interval on a core (trace entry).
struct ExecutionInterval {
  std::size_t core = 0;
  std::size_t task_index = 0;
  model::NodeId node = 0;
  util::Time start = 0.0;
  util::Time end = 0.0;

  friend bool operator==(const ExecutionInterval&, const ExecutionInterval&) =
      default;
};

/// Permanent stall report.
struct DeadlockInfo {
  std::size_t task_index = 0;
  util::Time time = 0.0;
  std::string description;

  friend bool operator==(const DeadlockInfo&, const DeadlockInfo&) = default;
};

struct SimResult {
  std::vector<JobRecord> jobs;
  std::vector<TaskStats> per_task;
  std::optional<DeadlockInfo> deadlock;
  std::vector<ExecutionInterval> trace;
  bool any_deadline_miss = false;

  /// Largest observed response time of a task (0 if it never completed a job).
  util::Time max_response(std::size_t task_index) const {
    return per_task.at(task_index).max_response;
  }

  friend bool operator==(const SimResult&, const SimResult&) = default;
};

/// Run the simulation. Throws std::invalid_argument on inconsistent
/// configuration (missing partition, non-positive horizon, ...).
SimResult simulate(const model::TaskSet& ts, const SimConfig& config);

// ---------------------------------------------------------------------------
// Oracle mode: the simulator as a necessary-condition check.
//
// Analysis is sufficient, simulation is necessary: an analysis that accepts
// a set which the simulator then runs into a deadline miss or a deadlock is
// UNSOUND (the safety direction). oracle_verdict condenses a run into the
// structured verdict the corpus runner, the CLI `--simulate` view, and
// witness replay all consume, with a handle on the full result (trace
// included when requested) for the first violation.
// ---------------------------------------------------------------------------

enum class SimOutcome : unsigned char {
  kOk,            ///< Every job in the horizon met its deadline.
  kDeadlineMiss,  ///< At least one job missed (first one reported).
  kDeadlock,      ///< A permanent stall (Lemma 1/2 territory) was detected.
};

/// Canonical names: "ok" / "deadline-miss" / "deadlock" (witness schema).
const char* to_string(SimOutcome outcome);

/// Inverse of to_string; throws std::invalid_argument on unknown names.
SimOutcome parse_sim_outcome(const std::string& name);

struct OracleOptions {
  SchedulingPolicy policy = SchedulingPolicy::kGlobal;
  /// Required when policy == kPartitioned.
  std::optional<analysis::TaskSetPartition> partition;
  /// Horizon = windows * max period (>= 1 job of every task; 4 windows
  /// catches backlog-induced misses, matching exp::NecessityOptions).
  double windows = 4.0;
  bool work_stealing = false;
  /// Record the full execution trace in the attached result (memory!).
  bool collect_trace = false;
  double release_jitter_frac = 0.0;
  std::uint64_t seed = 1;
};

/// Structured oracle verdict: outcome + first-violation coordinates + a
/// shared handle on the full simulation result.
struct SimVerdict {
  SimOutcome outcome = SimOutcome::kOk;
  /// Valid when outcome != kOk: the violating task / detection time.
  std::size_t first_violation_task = 0;
  util::Time first_violation_time = 0.0;
  /// Human-readable one-liner ("task 2 job 3 missed: R=41.5 > D=30", or the
  /// deadlock witness description).
  std::string description;
  util::Time horizon = 0.0;
  /// The full run (per-task stats, job records, trace when requested).
  std::shared_ptr<const SimResult> result;

  bool safe() const { return outcome == SimOutcome::kOk; }
};

/// Simulate `ts` with stop-on-first-miss semantics and condense the run into
/// a SimVerdict. Throws like simulate() on inconsistent configuration.
SimVerdict oracle_verdict(const model::TaskSet& ts, const OracleOptions& options);

}  // namespace rtpool::sim
