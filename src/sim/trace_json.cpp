#include "sim/trace_json.h"

#include <fstream>

#include "util/json.h"

namespace rtpool::sim {

void write_chrome_trace(std::ostream& os, const model::TaskSet& ts,
                        const SimResult& result) {
  util::JsonWriter json(os);
  json.begin_object();
  json.key("traceEvents").begin_array();

  // Name the "threads" (one per core).
  for (std::size_t core = 0; core < ts.core_count(); ++core) {
    json.begin_object()
        .kv("name", "thread_name")
        .kv("ph", "M")
        .kv("pid", 1)
        .kv("tid", core)
        .key("args")
        .begin_object()
        .kv("name", "core " + std::to_string(core))
        .end_object()
        .end_object();
  }

  for (const ExecutionInterval& iv : result.trace) {
    const model::DagTask& task = ts.task(iv.task_index);
    json.begin_object()
        .kv("name", task.name() + "/v" + std::to_string(iv.node))
        .kv("cat", model::to_string(task.type(iv.node)))
        .kv("ph", "X")
        .kv("pid", 1)
        .kv("tid", iv.core)
        .kv("ts", iv.start)
        .kv("dur", iv.end - iv.start)
        .key("args")
        .begin_object()
        .kv("task", task.name())
        .kv("node", static_cast<std::uint64_t>(iv.node))
        .kv("type", model::to_string(task.type(iv.node)))
        .end_object()
        .end_object();
  }

  for (const JobRecord& job : result.jobs) {
    if (!job.deadline_miss) continue;
    json.begin_object()
        .kv("name", ts.task(job.task_index).name() + " deadline miss")
        .kv("ph", "i")
        .kv("pid", 1)
        .kv("tid", 0)
        .kv("ts", job.completion)
        .kv("s", "g")
        .end_object();
  }

  if (result.deadlock.has_value()) {
    json.begin_object()
        .kv("name", "DEADLOCK: " + result.deadlock->description)
        .kv("ph", "i")
        .kv("pid", 1)
        .kv("tid", 0)
        .kv("ts", result.deadlock->time)
        .kv("s", "g")
        .end_object();
  }

  json.end_array();
  json.kv("displayTimeUnit", "ms");
  json.end_object();
}

void save_chrome_trace(const std::string& path, const model::TaskSet& ts,
                       const SimResult& result) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_chrome_trace: cannot open " + path);
  write_chrome_trace(out, ts, result);
}

}  // namespace rtpool::sim
