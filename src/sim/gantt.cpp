#include "sim/gantt.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace rtpool::sim {

std::string render_ascii_gantt(const model::TaskSet& ts,
                               const std::vector<ExecutionInterval>& trace,
                               const GanttOptions& options) {
  if (trace.empty() || options.width == 0) return "";

  util::Time end = options.end;
  if (end < 0.0) {
    end = 0.0;
    for (const auto& iv : trace) end = std::max(end, iv.end);
  }
  const util::Time start = options.start;
  if (!(end > start)) return "";
  const util::Time span = end - start;
  const double per_char = span / static_cast<double>(options.width);

  std::vector<std::string> rows(ts.core_count(),
                                std::string(options.width, '.'));
  for (const auto& iv : trace) {
    if (iv.end <= start || iv.start >= end || iv.core >= rows.size()) continue;
    const double lo = std::max(iv.start, start) - start;
    const double hi = std::min(iv.end, end) - start;
    auto first = static_cast<std::size_t>(lo / per_char);
    auto last = static_cast<std::size_t>(hi / per_char);
    first = std::min(first, options.width - 1);
    last = std::min(std::max(last, first + 1), options.width);
    const char label = static_cast<char>('A' + (iv.task_index % 26));
    for (std::size_t c = first; c < last; ++c) rows[iv.core][c] = label;
  }

  std::ostringstream os;
  char buf[64];
  std::snprintf(buf, sizeof buf, "t=%-10.4g", start);
  os << "        " << buf
     << std::string(options.width > 22 ? options.width - 22 : 0, ' ');
  std::snprintf(buf, sizeof buf, "%10.4g", end);
  os << buf << "\n";
  for (std::size_t core = 0; core < rows.size(); ++core) {
    std::snprintf(buf, sizeof buf, "core %2zu |", core);
    os << buf << rows[core] << "|\n";
  }
  os << "legend: ";
  for (std::size_t i = 0; i < ts.size() && i < 26; ++i) {
    if (i != 0) os << ", ";
    os << static_cast<char>('A' + i) << '=' << ts.task(i).name();
  }
  os << "\n";
  return os.str();
}

}  // namespace rtpool::sim
