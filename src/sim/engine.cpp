#include "sim/engine.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace rtpool::sim {

namespace {

using model::DagTask;
using model::NodeId;
using model::NodeType;
using util::Time;

constexpr double kEps = 1e-9;

/// Completion tolerance at simulation time `now`: must dominate the
/// floating-point ULP of the time axis, which grows with |now| — an
/// absolute epsilon alone livelocks once ulp(now) exceeds it (a residual
/// `remaining` smaller than half an ULP can neither complete nor advance
/// the clock, because now + remaining rounds back to now).
inline double completion_eps(double now) { return kEps * std::max(1.0, now); }

/// What a pool thread is doing.
enum class ThreadMode {
  kIdle,       ///< No current node; may pull from a queue.
  kBusy,       ///< Serving a node (running or preempted).
  kSuspended,  ///< Blocked on a barrier (BF executed, region incomplete).
};

struct ThreadState {
  ThreadMode mode = ThreadMode::kIdle;
  NodeId node = 0;        ///< Valid when kBusy.
  Time remaining = 0.0;   ///< Remaining execution of `node` when kBusy.
  std::size_t region = 0; ///< Awaited region index when kSuspended.
};

/// Runtime state of one task (its pool and current job).
struct PoolState {
  std::vector<ThreadState> threads;
  std::deque<NodeId> pool_queue;                ///< Global intra-pool queue.
  std::vector<std::deque<NodeId>> thread_queues;///< Partitioned queues.

  bool job_active = false;
  std::uint64_t job_number = 0;
  Time job_release = 0.0;
  std::vector<bool> done;            ///< Per node, current job.
  std::vector<std::size_t> preds_left;
  std::size_t nodes_left = 0;
  std::vector<std::size_t> region_thread;  ///< Suspended thread per region.

  std::deque<Time> backlog;          ///< Release times waiting for the pool.
  Time next_release = 0.0;
  bool releases_exhausted = false;

  std::size_t suspended_count = 0;
  long min_available = 0;
  bool deadlocked = false;
};

/// Identity of a running thread (for core assignment / traces).
struct RunSlot {
  std::size_t task = 0;
  std::size_t thread = 0;
  bool operator==(const RunSlot&) const = default;
};

class Engine {
 public:
  Engine(const model::TaskSet& ts, const SimConfig& config)
      : ts_(ts), config_(config), m_(ts.core_count()), rng_(config.seed) {
    if (!(config_.horizon > 0.0))
      throw std::invalid_argument("simulate: horizon must be > 0");
    if (config_.policy == SchedulingPolicy::kPartitioned) {
      if (!config_.partition.has_value())
        throw std::invalid_argument("simulate: partitioned policy needs a partition");
      if (config_.partition->per_task.size() != ts_.size())
        throw std::invalid_argument("simulate: partition size mismatch");
      for (std::size_t i = 0; i < ts_.size(); ++i) {
        if (config_.partition->per_task[i].thread_of.size() != ts_.task(i).node_count())
          throw std::invalid_argument("simulate: assignment size mismatch for task " +
                                      std::to_string(i));
        for (analysis::ThreadId th : config_.partition->per_task[i].thread_of)
          if (th >= m_)
            throw std::invalid_argument("simulate: thread id out of range");
      }
    }
    if (config_.release_jitter_frac < 0.0)
      throw std::invalid_argument("simulate: negative release jitter");

    pools_.resize(ts_.size());
    for (std::size_t i = 0; i < ts_.size(); ++i) {
      PoolState& p = pools_[i];
      p.threads.resize(m_);
      p.thread_queues.resize(m_);
      p.region_thread.assign(ts_.task(i).blocking_regions().size(), m_);
      p.min_available = static_cast<long>(m_);
      p.next_release = 0.0;
    }
    running_.assign(m_, std::nullopt);
    open_interval_.assign(m_, std::nullopt);
    result_.per_task.resize(ts_.size());
  }

  SimResult run() {
    Time t = 0.0;
    process_instant(t);
    while (!halted_) {
      Time next = next_event_time(t);
      if (!std::isfinite(next) || next > config_.horizon + kEps) break;
      // Defensive forced progress: with the relative completion epsilon the
      // next event is always strictly later, but never trust FP blindly.
      if (!(next > t)) next = t + completion_eps(t);
      advance(next - t);
      t = next;
      process_instant(t);
    }
    finalize(std::min(config_.horizon, std::max(t, 0.0)));
    return std::move(result_);
  }

 private:
  // ---- queue helpers -------------------------------------------------

  bool partitioned() const { return config_.policy == SchedulingPolicy::kPartitioned; }

  analysis::ThreadId thread_of(std::size_t task, NodeId v) const {
    return config_.partition->per_task[task].thread_of[v];
  }

  void enqueue(std::size_t task, NodeId v) {
    PoolState& p = pools_[task];
    if (partitioned()) {
      p.thread_queues[thread_of(task, v)].push_back(v);
    } else {
      p.pool_queue.push_back(v);
    }
  }

  // ---- job lifecycle -------------------------------------------------

  void start_job(std::size_t task, Time release, Time /*now*/) {
    const DagTask& dag_task = ts_.task(task);
    PoolState& p = pools_[task];
    p.job_active = true;
    ++p.job_number;
    p.job_release = release;
    p.done.assign(dag_task.node_count(), false);
    p.preds_left.resize(dag_task.node_count());
    for (NodeId v = 0; v < dag_task.node_count(); ++v)
      p.preds_left[v] = dag_task.dag().in_degree(v);
    p.nodes_left = dag_task.node_count();
    std::fill(p.region_thread.begin(), p.region_thread.end(), m_);
    enqueue(task, dag_task.source());
  }

  void record_available(std::size_t task) {
    PoolState& p = pools_[task];
    if (!p.job_active) return;
    const long avail = static_cast<long>(m_) - static_cast<long>(p.suspended_count);
    p.min_available = std::min(p.min_available, avail);
  }

  void complete_job(std::size_t task, Time now) {
    PoolState& p = pools_[task];
    const DagTask& dag_task = ts_.task(task);

    JobRecord rec;
    rec.task_index = task;
    rec.job_number = p.job_number;
    rec.release = p.job_release;
    rec.completion = now;
    rec.response = now - p.job_release;
    rec.completed = true;
    rec.deadline_miss = rec.response > dag_task.deadline() + kEps;
    result_.jobs.push_back(rec);

    TaskStats& stats = result_.per_task[task];
    ++stats.jobs_completed;
    stats.max_response = std::max(stats.max_response, rec.response);
    if (rec.deadline_miss) {
      ++stats.deadline_misses;
      result_.any_deadline_miss = true;
      if (config_.stop_on_miss) halted_ = true;
    }

    p.job_active = false;
    if (!p.backlog.empty()) {
      const Time release = p.backlog.front();
      p.backlog.pop_front();
      start_job(task, release, now);
    }
  }

  // ---- node completion ------------------------------------------------

  void complete_node(std::size_t task, std::size_t thread, Time now) {
    PoolState& p = pools_[task];
    const DagTask& dag_task = ts_.task(task);
    ThreadState& th = p.threads[thread];
    const NodeId v = th.node;

    th.mode = ThreadMode::kIdle;
    p.done[v] = true;
    --p.nodes_left;

    // Release successors (Listing 1: the fork spawns before the wait).
    for (NodeId w : dag_task.dag().successors(v)) {
      if (--p.preds_left[w] != 0) continue;
      if (dag_task.type(w) == NodeType::BJ) {
        resume_join(task, w, now);
      } else {
        enqueue(task, w);
      }
    }

    // A blocking fork now suspends its serving thread on the barrier —
    // unless the barrier is already open (all successors were released and
    // the region completed through zero-length children; with positive
    // WCETs this cannot happen, but the model allows zero-WCET nodes).
    if (dag_task.type(v) == NodeType::BF) {
      const std::size_t region = *dag_task.region_of(v);
      const NodeId join = dag_task.join_of(v);
      if (p.preds_left[join] == 0 && !p.done[join]) {
        // Barrier already open: run the join directly on this thread.
        th.mode = ThreadMode::kBusy;
        th.node = join;
        th.remaining = dag_task.wcet(join);
      } else if (!p.done[join]) {
        th.mode = ThreadMode::kSuspended;
        th.region = region;
        p.region_thread[region] = thread;
        ++p.suspended_count;
        record_available(task);
      }
    }

    if (p.nodes_left == 0) complete_job(task, now);
  }

  void resume_join(std::size_t task, NodeId join, Time /*now*/) {
    PoolState& p = pools_[task];
    const DagTask& dag_task = ts_.task(task);
    const std::size_t region = *dag_task.region_of(join);
    const std::size_t thread = p.region_thread[region];
    if (thread >= m_) {
      // The fork has not suspended yet (it is still executing or its
      // completion is being processed). complete_node() handles this case
      // by running the join directly; nothing to do here.
      return;
    }
    ThreadState& th = p.threads[thread];
    th.mode = ThreadMode::kBusy;
    th.node = join;
    th.remaining = dag_task.wcet(join);
    p.region_thread[region] = m_;
    --p.suspended_count;
    record_available(task);
  }

  // ---- dispatching ------------------------------------------------------

  /// Number of busy threads with priority at least `prio` (lower value =
  /// higher priority; equal-priority busy threads are ahead in FIFO order).
  std::size_t busy_at_least(int prio) const {
    std::size_t count = 0;
    for (std::size_t i = 0; i < ts_.size(); ++i) {
      if (ts_.task(i).priority() > prio) continue;
      for (const ThreadState& th : pools_[i].threads)
        if (th.mode == ThreadMode::kBusy) ++count;
    }
    return count;
  }

  void dispatch_global() {
    // Work-conserving activation: idle threads pull from their pool queue
    // whenever the pulled node would immediately get a core.
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t i = 0; i < ts_.size(); ++i) {
        PoolState& p = pools_[i];
        if (p.pool_queue.empty()) continue;
        const int prio = ts_.task(i).priority();
        for (std::size_t th = 0; th < m_ && !p.pool_queue.empty(); ++th) {
          if (p.threads[th].mode != ThreadMode::kIdle) continue;
          if (busy_at_least(prio) >= m_) break;  // would not get a core
          const NodeId v = p.pool_queue.front();
          p.pool_queue.pop_front();
          p.threads[th].mode = ThreadMode::kBusy;
          p.threads[th].node = v;
          p.threads[th].remaining = ts_.task(i).wcet(v);
          changed = true;
        }
      }
    }

    // Give the m highest-priority busy threads the cores.
    std::vector<RunSlot> busy;
    for (std::size_t i : ts_.priority_order())
      for (std::size_t th = 0; th < m_; ++th)
        if (pools_[i].threads[th].mode == ThreadMode::kBusy)
          busy.push_back({i, th});
    if (busy.size() > m_) busy.resize(m_);
    assign_cores(busy);
  }

  /// Victim queue index an idle thread of pool `p` on `core` would steal
  /// from (first nonempty sibling queue, scanning upward), or m_ if none.
  std::size_t steal_victim(const PoolState& p, std::size_t core) const {
    for (std::size_t k = 1; k < m_; ++k) {
      const std::size_t victim = (core + k) % m_;
      if (!p.thread_queues[victim].empty()) return victim;
    }
    return m_;
  }

  void dispatch_partitioned() {
    std::vector<RunSlot> winners;
    for (std::size_t core = 0; core < m_; ++core) {
      std::optional<RunSlot> best;
      int best_prio = std::numeric_limits<int>::max();
      for (std::size_t i : ts_.priority_order()) {
        const int prio = ts_.task(i).priority();
        PoolState& p = pools_[i];
        const ThreadState& th = p.threads[core];
        const bool busy = th.mode == ThreadMode::kBusy;
        const bool can_start =
            th.mode == ThreadMode::kIdle &&
            (!p.thread_queues[core].empty() ||
             (config_.work_stealing && steal_victim(p, core) < m_));
        if ((busy || can_start) && prio < best_prio) {
          best = RunSlot{i, core};
          best_prio = prio;
        }
      }
      if (!best.has_value()) continue;
      PoolState& p = pools_[best->task];
      ThreadState& th = p.threads[core];
      if (th.mode == ThreadMode::kIdle) {
        NodeId v = 0;
        if (!p.thread_queues[core].empty()) {
          v = p.thread_queues[core].front();
          p.thread_queues[core].pop_front();
        } else {
          // Steal from the back of the victim queue, Eigen-style.
          const std::size_t victim = steal_victim(p, core);
          v = p.thread_queues[victim].back();
          p.thread_queues[victim].pop_back();
        }
        th.mode = ThreadMode::kBusy;
        th.node = v;
        th.remaining = ts_.task(best->task).wcet(v);
      }
      winners.push_back(*best);
    }
    assign_cores(winners);
  }

  /// Map the chosen run slots onto cores, keeping continuing slots on their
  /// previous core so traces show stable placements.
  void assign_cores(const std::vector<RunSlot>& slots) {
    std::vector<std::optional<RunSlot>> next(m_);
    std::vector<bool> placed(slots.size(), false);

    for (std::size_t c = 0; c < m_; ++c) {
      if (!running_[c].has_value()) continue;
      for (std::size_t s = 0; s < slots.size(); ++s) {
        if (!placed[s] && slots[s] == *running_[c]) {
          next[c] = slots[s];
          placed[s] = true;
          break;
        }
      }
    }
    std::size_t cursor = 0;
    for (std::size_t s = 0; s < slots.size(); ++s) {
      if (placed[s]) continue;
      while (cursor < m_ && next[cursor].has_value()) ++cursor;
      if (cursor >= m_) break;  // defensive; slots.size() <= m_ by construction
      next[cursor] = slots[s];
    }
    running_ = std::move(next);
  }

  // ---- trace -----------------------------------------------------------

  void trace_switch(Time now) {
    if (!config_.collect_trace) return;
    for (std::size_t c = 0; c < m_; ++c) {
      const auto& open = open_interval_[c];
      const auto& cur = running_[c];
      const bool same =
          open.has_value() && cur.has_value() && open->slot == cur.value() &&
          open->node == pools_[cur->task].threads[cur->thread].node;
      if (same) continue;
      if (open.has_value() && now > open->start + kEps) {
        result_.trace.push_back({c, open->slot.task, open->node, open->start, now});
      }
      if (cur.has_value()) {
        open_interval_[c] = OpenInterval{
            *cur, pools_[cur->task].threads[cur->thread].node, now};
      } else {
        open_interval_[c].reset();
      }
    }
  }

  // ---- main loop pieces --------------------------------------------------

  void advance(Time dt) {
    for (const auto& slot : running_) {
      if (!slot.has_value()) continue;
      ThreadState& th = pools_[slot->task].threads[slot->thread];
      th.remaining -= dt;
    }
  }

  void process_instant(Time t) {
    bool changed = true;
    while (changed && !halted_) {
      changed = false;

      // Job releases due at t.
      for (std::size_t i = 0; i < ts_.size(); ++i) {
        PoolState& p = pools_[i];
        while (!p.releases_exhausted && p.next_release <= t + kEps) {
          const Time release = p.next_release;
          ++result_.per_task[i].jobs_released;
          if (p.job_active) {
            p.backlog.push_back(release);
          } else {
            start_job(i, release, t);
          }
          schedule_next_release(i, release);
          changed = true;
        }
      }

      if (partitioned()) {
        dispatch_partitioned();
      } else {
        dispatch_global();
      }

      // Completions of running nodes that have exhausted their budget.
      for (std::size_t c = 0; c < m_; ++c) {
        if (!running_[c].has_value()) continue;
        const RunSlot slot = *running_[c];
        ThreadState& th = pools_[slot.task].threads[slot.thread];
        if (th.mode == ThreadMode::kBusy && th.remaining <= completion_eps(t)) {
          // Close the trace interval at the true finish time.
          if (config_.collect_trace && open_interval_[c].has_value()) {
            const OpenInterval& oi = *open_interval_[c];
            if (t > oi.start + kEps)
              result_.trace.push_back({c, oi.slot.task, oi.node, oi.start, t});
            open_interval_[c].reset();
          }
          complete_node(slot.task, slot.thread, t);
          running_[c].reset();
          changed = true;
        }
      }
    }
    trace_switch(t);
    detect_deadlocks(t);
  }

  void schedule_next_release(std::size_t task, Time current_release) {
    PoolState& p = pools_[task];
    const Time period = ts_.task(task).period();
    Time next = current_release + period;
    if (config_.release_jitter_frac > 0.0)
      next += period * rng_.uniform(0.0, config_.release_jitter_frac);
    if (next >= config_.horizon - kEps) {
      p.releases_exhausted = true;
    } else {
      p.next_release = next;
    }
  }

  /// A task is permanently stuck exactly when its job is incomplete and no
  /// pool thread is busy after a work-conserving dispatch: every remaining
  /// node either waits behind a suspended thread or belongs to an unopened
  /// barrier whose members do (see engine.h).
  void detect_deadlocks(Time t) {
    if (result_.deadlock.has_value()) return;
    for (std::size_t i = 0; i < ts_.size(); ++i) {
      PoolState& p = pools_[i];
      if (!p.job_active || p.deadlocked) continue;
      const bool any_busy =
          std::any_of(p.threads.begin(), p.threads.end(), [](const ThreadState& th) {
            return th.mode == ThreadMode::kBusy;
          });
      if (any_busy) continue;

      // Distinguish a *preempted* pool (work is dispatchable, the threads
      // simply lost their cores to higher-priority tasks) from a *stuck*
      // one: dispatchable work means an idle (non-suspended) thread can
      // still pull a queued node once a core frees up.
      bool dispatchable = false;
      if (partitioned()) {
        for (std::size_t th = 0; th < m_; ++th) {
          if (p.threads[th].mode != ThreadMode::kIdle) continue;
          if (!p.thread_queues[th].empty() ||
              (config_.work_stealing && steal_victim(p, th) < m_)) {
            dispatchable = true;
            break;
          }
        }
      } else {
        const bool any_idle =
            std::any_of(p.threads.begin(), p.threads.end(), [](const ThreadState& th) {
              return th.mode == ThreadMode::kIdle;
            });
        dispatchable = any_idle && !p.pool_queue.empty();
      }
      if (dispatchable) continue;

      p.deadlocked = true;
      DeadlockInfo info;
      info.task_index = i;
      info.time = t;
      info.description =
          ts_.task(i).name() + " stalled at t=" + std::to_string(t) + ": " +
          std::to_string(p.suspended_count) + "/" + std::to_string(m_) +
          " threads suspended on barriers, no runnable node remains (" +
          std::to_string(p.nodes_left) + " nodes pending)";
      result_.deadlock = info;
      halted_ = true;
      return;
    }
  }

  Time next_event_time(Time t) const {
    Time next = std::numeric_limits<Time>::infinity();
    for (std::size_t i = 0; i < ts_.size(); ++i)
      if (!pools_[i].releases_exhausted)
        next = std::min(next, pools_[i].next_release);
    for (const auto& slot : running_) {
      if (!slot.has_value()) continue;
      const ThreadState& th = pools_[slot->task].threads[slot->thread];
      next = std::min(next, t + std::max(th.remaining, 0.0));
    }
    return next;
  }

  void finalize(Time t) {
    trace_switch(t);
    for (std::size_t i = 0; i < ts_.size(); ++i) {
      PoolState& p = pools_[i];
      result_.per_task[i].min_available_concurrency = p.min_available;
      if (!p.job_active) continue;
      // Cut-off job: only count a miss if its deadline already passed.
      JobRecord rec;
      rec.task_index = i;
      rec.job_number = p.job_number;
      rec.release = p.job_release;
      rec.completion = t;
      rec.response = t - p.job_release;
      rec.completed = false;
      rec.deadline_miss = p.job_release + ts_.task(i).deadline() < t - kEps ||
                          p.deadlocked;
      if (rec.deadline_miss) {
        ++result_.per_task[i].deadline_misses;
        result_.any_deadline_miss = true;
      }
      result_.jobs.push_back(rec);
    }
  }

  struct OpenInterval {
    RunSlot slot;
    NodeId node = 0;
    Time start = 0.0;
  };

  const model::TaskSet& ts_;
  SimConfig config_;
  std::size_t m_;
  util::Rng rng_;

  std::vector<PoolState> pools_;
  std::vector<std::optional<RunSlot>> running_;  ///< Per core.
  std::vector<std::optional<OpenInterval>> open_interval_{};
  SimResult result_;
  bool halted_ = false;
};

}  // namespace

SimResult simulate(const model::TaskSet& ts, const SimConfig& config) {
  return Engine(ts, config).run();
}

const char* to_string(SimOutcome outcome) {
  switch (outcome) {
    case SimOutcome::kOk: return "ok";
    case SimOutcome::kDeadlineMiss: return "deadline-miss";
    case SimOutcome::kDeadlock: return "deadlock";
  }
  return "ok";
}

SimOutcome parse_sim_outcome(const std::string& name) {
  if (name == "ok") return SimOutcome::kOk;
  if (name == "deadline-miss") return SimOutcome::kDeadlineMiss;
  if (name == "deadlock") return SimOutcome::kDeadlock;
  throw std::invalid_argument("unknown sim outcome '" + name +
                              "' (valid: ok, deadline-miss, deadlock)");
}

SimVerdict oracle_verdict(const model::TaskSet& ts,
                          const OracleOptions& options) {
  if (!(options.windows > 0.0))
    throw std::invalid_argument("oracle_verdict: windows must be positive");
  util::Time max_period = 0.0;
  for (const model::DagTask& task : ts.tasks())
    max_period = std::max(max_period, task.period());

  SimConfig config;
  config.policy = options.policy;
  config.horizon = options.windows * max_period;
  config.partition = options.partition;
  config.work_stealing = options.work_stealing;
  config.collect_trace = options.collect_trace;
  config.stop_on_miss = true;
  config.release_jitter_frac = options.release_jitter_frac;
  config.seed = options.seed;

  SimVerdict verdict;
  verdict.horizon = config.horizon;
  auto result = std::make_shared<SimResult>(simulate(ts, config));

  // A deadlock outranks the misses it causes: finalize marks every job cut
  // off by the stall as missed, but the stall itself is the event.
  if (result->deadlock.has_value()) {
    verdict.outcome = SimOutcome::kDeadlock;
    verdict.first_violation_task = result->deadlock->task_index;
    verdict.first_violation_time = result->deadlock->time;
    verdict.description = result->deadlock->description;
  } else if (result->any_deadline_miss) {
    verdict.outcome = SimOutcome::kDeadlineMiss;
    // Jobs are recorded in completion order; the first missing record is
    // the first violation the run observed.
    for (const JobRecord& rec : result->jobs) {
      if (!rec.deadline_miss) continue;
      verdict.first_violation_task = rec.task_index;
      verdict.first_violation_time = rec.completion;
      {
        std::ostringstream os;
        os << "task " << rec.task_index << " ('"
           << ts.task(rec.task_index).name() << "') job " << rec.job_number
           << (rec.completed ? " missed: R=" : " cut off: R>=") << rec.response
           << " > D=" << ts.task(rec.task_index).deadline();
        verdict.description = os.str();
      }
      break;
    }
  }
  verdict.result = std::move(result);
  return verdict;
}

}  // namespace rtpool::sim
