// Export simulator traces in the Chrome tracing ("about://tracing" /
// Perfetto) JSON event format: one row per core, one duration event per
// ExecutionInterval, plus instant events for deadlocks and deadline misses.
#pragma once

#include <iosfwd>
#include <string>

#include "model/task_set.h"
#include "sim/engine.h"

namespace rtpool::sim {

/// Write `result`'s trace (requires SimConfig::collect_trace). Time unit:
/// one model time unit = 1 µs in the trace. Cores appear as tid 0..m-1.
void write_chrome_trace(std::ostream& os, const model::TaskSet& ts,
                        const SimResult& result);

/// Convenience: write to a file; throws std::runtime_error on I/O failure.
void save_chrome_trace(const std::string& path, const model::TaskSet& ts,
                       const SimResult& result);

}  // namespace rtpool::sim
