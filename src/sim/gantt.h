// ASCII Gantt rendering of simulator traces (for examples and debugging).
#pragma once

#include <string>
#include <vector>

#include "model/task_set.h"
#include "sim/engine.h"

namespace rtpool::sim {

struct GanttOptions {
  std::size_t width = 72;     ///< Characters used for the time axis.
  util::Time start = 0.0;     ///< Left edge of the rendered window.
  util::Time end = -1.0;      ///< Right edge; < 0 = end of the trace.
};

/// Render one row per core: task letters ('A' = task 0) in executing slots,
/// '.' for idle time, with a time ruler on top. Intervals shorter than one
/// character still occupy one character (labels may overwrite each other at
/// coarse scales). Returns "" for an empty trace.
std::string render_ascii_gantt(const model::TaskSet& ts,
                               const std::vector<ExecutionInterval>& trace,
                               const GanttOptions& options = {});

}  // namespace rtpool::sim
