// DAG algorithms: topological order, longest (critical) paths, and helpers.
#pragma once

#include <vector>

#include "graph/dag.h"
#include "util/time.h"

namespace rtpool::graph {

/// Kahn topological order. Throws CycleError if the graph has a cycle.
std::vector<NodeId> topological_order(const Dag& dag);

/// Result of a weighted longest-path computation.
struct LongestPathResult {
  util::Time length = 0.0;          ///< Weight sum along the heaviest path.
  std::vector<NodeId> path;         ///< Node sequence realizing it.
};

/// Longest path in the DAG where node v has weight `weights[v]` (edge
/// weights are zero): the paper's `len(λ)` with weights = WCETs gives the
/// critical path λ*. Empty graph yields length 0 and an empty path.
/// Throws std::invalid_argument if weights.size() != dag.size().
LongestPathResult longest_path(const Dag& dag, const std::vector<util::Time>& weights);

/// Same, over a caller-supplied topological order of `dag` — skips the Kahn
/// pass. DagTask construction threads its one cached order through every
/// derived computation (acyclicity, closure, critical path) instead of
/// re-deriving it three times.
LongestPathResult longest_path(const Dag& dag, const std::vector<NodeId>& order,
                               const std::vector<util::Time>& weights);

/// Length of the longest path only, over a caller-supplied topological
/// order of `dag` and a reusable DP buffer (`scratch` is resized as
/// needed). Bit-identical to `longest_path(dag, weights).length` but skips
/// the Kahn pass, the path reconstruction, and all allocations — the
/// fixed-point hot loops (partitioned RTA, RtaContext) call this with the
/// cached per-task order. Throws std::invalid_argument on size mismatch.
util::Time longest_path_length(const Dag& dag, const std::vector<NodeId>& order,
                               const std::vector<util::Time>& weights,
                               std::vector<util::Time>& scratch);

/// Per-node earliest-finish values of the weighted longest path ending AT
/// each node (inclusive of the node's own weight). Used by analyses that
/// need the full DP table rather than just the critical path.
std::vector<util::Time> longest_path_to(const Dag& dag,
                                        const std::vector<util::Time>& weights);

/// Sum of all node weights (the paper's vol(τ) with weights = WCETs).
util::Time total_weight(const std::vector<util::Time>& weights);

/// True if `dag` is weakly connected (ignoring edge direction). The empty
/// graph and singleton graphs are connected.
bool is_weakly_connected(const Dag& dag);

}  // namespace rtpool::graph
