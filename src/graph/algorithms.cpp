#include "graph/algorithms.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace rtpool::graph {

std::vector<NodeId> topological_order(const Dag& dag) {
  const std::size_t n = dag.size();
  std::vector<std::size_t> indeg(n);
  std::vector<NodeId> order;
  order.reserve(n);
  std::vector<NodeId> frontier;
  for (NodeId v = 0; v < n; ++v) {
    indeg[v] = dag.in_degree(v);
    if (indeg[v] == 0) frontier.push_back(v);
  }
  while (!frontier.empty()) {
    const NodeId v = frontier.back();
    frontier.pop_back();
    order.push_back(v);
    for (NodeId w : dag.successors(v)) {
      if (--indeg[w] == 0) frontier.push_back(w);
    }
  }
  if (order.size() != n) throw CycleError();
  return order;
}

LongestPathResult longest_path(const Dag& dag, const std::vector<util::Time>& weights) {
  if (dag.size() == 0) {
    if (!weights.empty())
      throw std::invalid_argument("longest_path: weight count mismatch");
    return LongestPathResult{};
  }
  return longest_path(dag, topological_order(dag), weights);
}

LongestPathResult longest_path(const Dag& dag, const std::vector<NodeId>& order,
                               const std::vector<util::Time>& weights) {
  if (weights.size() != dag.size() || order.size() != dag.size())
    throw std::invalid_argument("longest_path: weight count mismatch");
  LongestPathResult result;
  if (dag.size() == 0) return result;

  std::vector<util::Time> best(dag.size(), 0.0);
  std::vector<NodeId> parent(dag.size(), dag.size());
  for (NodeId v : order) {
    best[v] = weights[v];
    for (NodeId u : dag.predecessors(v)) {
      if (best[u] + weights[v] > best[v]) {
        best[v] = best[u] + weights[v];
        parent[v] = u;
      }
    }
  }
  NodeId end = 0;
  for (NodeId v = 0; v < dag.size(); ++v)
    if (best[v] > best[end]) end = v;

  result.length = best[end];
  for (NodeId v = end; v != dag.size(); v = parent[v]) {
    result.path.push_back(v);
    if (parent[v] == dag.size()) break;
  }
  std::reverse(result.path.begin(), result.path.end());
  return result;
}

util::Time longest_path_length(const Dag& dag, const std::vector<NodeId>& order,
                               const std::vector<util::Time>& weights,
                               std::vector<util::Time>& scratch) {
  if (weights.size() != dag.size() || order.size() != dag.size())
    throw std::invalid_argument("longest_path_length: size mismatch");
  if (dag.size() == 0) return 0.0;

  scratch.assign(dag.size(), 0.0);
  for (NodeId v : order) {
    scratch[v] = weights[v];
    for (NodeId u : dag.predecessors(v)) {
      if (scratch[u] + weights[v] > scratch[v]) scratch[v] = scratch[u] + weights[v];
    }
  }
  util::Time best = scratch[0];
  for (NodeId v = 1; v < dag.size(); ++v)
    if (scratch[v] > best) best = scratch[v];
  return best;
}

std::vector<util::Time> longest_path_to(const Dag& dag,
                                        const std::vector<util::Time>& weights) {
  if (weights.size() != dag.size())
    throw std::invalid_argument("longest_path_to: weight count mismatch");
  std::vector<util::Time> best(dag.size(), 0.0);
  for (NodeId v : topological_order(dag)) {
    best[v] = weights[v];
    for (NodeId u : dag.predecessors(v))
      best[v] = std::max(best[v], best[u] + weights[v]);
  }
  return best;
}

util::Time total_weight(const std::vector<util::Time>& weights) {
  return std::accumulate(weights.begin(), weights.end(), util::Time{0.0});
}

bool is_weakly_connected(const Dag& dag) {
  const std::size_t n = dag.size();
  if (n <= 1) return true;
  std::vector<bool> seen(n, false);
  std::vector<NodeId> stack{0};
  seen[0] = true;
  std::size_t visited = 0;
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    ++visited;
    for (NodeId w : dag.successors(v))
      if (!seen[w]) { seen[w] = true; stack.push_back(w); }
    for (NodeId w : dag.predecessors(v))
      if (!seen[w]) { seen[w] = true; stack.push_back(w); }
  }
  return visited == n;
}

}  // namespace rtpool::graph
