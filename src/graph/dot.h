// Graphviz DOT export for debugging and documentation.
#pragma once

#include <string>
#include <vector>

#include "graph/dag.h"

namespace rtpool::graph {

/// Render `dag` as a DOT digraph. `labels` (optional) supplies per-node
/// labels; when empty, node ids are used. Throws std::invalid_argument if a
/// non-empty label vector has the wrong size.
std::string to_dot(const Dag& dag, const std::vector<std::string>& labels = {},
                   const std::string& graph_name = "dag");

}  // namespace rtpool::graph
