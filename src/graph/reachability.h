// Transitive reachability closure over a DAG.
//
// The paper's sets pred(v)/succ(v) are *transitive* (Section 2): they include
// nodes connected through intermediate vertices. This class materializes the
// closure in one flat row-major word array (ancestor rows, then descendant
// rows), computed in O(|V|·|E|/64) by sweeping a topological order, and
// answers "may v and w execute concurrently?" (neither reaches the other) in
// O(|V|/64). Flat storage means construction performs a single allocation
// instead of 2·|V| per-row bitset allocations — most Reachability objects
// are built and discarded by the task generator, where that count dominated.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/dag.h"
#include "util/bitset.h"

namespace rtpool::graph {

/// Immutable transitive-closure view of a Dag snapshot.
class Reachability {
 public:
  /// Builds the closure; throws CycleError if `dag` has a cycle.
  explicit Reachability(const Dag& dag);

  /// Same, sweeping a caller-supplied topological order of `dag` instead of
  /// running Kahn again (the order's validity is the caller's contract).
  Reachability(const Dag& dag, const std::vector<NodeId>& order);

  std::size_t size() const { return n_; }

  /// True if there is a directed path from `from` to `to` (from != to).
  bool reaches(NodeId from, NodeId to) const {
    check_node(from);
    if (to >= n_) throw std::out_of_range("Reachability: node out of range");
    return (desc_row(from)[to / 64] >> (to % 64)) & 1u;
  }

  /// True if neither node reaches the other (and they differ): the two nodes
  /// are not ordered by precedence constraints and may run concurrently.
  bool concurrent(NodeId a, NodeId b) const {
    if (a == b) return false;
    return !reaches(a, b) && !reaches(b, a);
  }

  /// Transitive predecessors of v (the paper's pred(v)).
  util::BitsetView ancestors(NodeId v) const {
    check_node(v);
    return {anc_row(v), n_};
  }

  /// Transitive successors of v (the paper's succ(v)).
  util::BitsetView descendants(NodeId v) const {
    check_node(v);
    return {desc_row(v), n_};
  }

  /// Writes into `out` the mask of nodes precedence-unordered with v:
  /// ~(ancestors(v) | descendants(v) | {v}). Exactly the nodes that may
  /// execute concurrently with v, as one word-parallel mask — the kernel
  /// behind the partitioned analysis' FIFO blocking vector (B_v) and any
  /// other "who can race v" query. Computed on demand in O(|V|/64) from the
  /// stored closures into the caller's reusable scratch (resized if needed);
  /// nothing extra is materialized at construction.
  void unordered_mask(NodeId v, util::DynamicBitset& out) const;

 private:
  void check_node(NodeId v) const {
    if (v >= n_) throw std::out_of_range("Reachability: node out of range");
  }
  const std::uint64_t* anc_row(NodeId v) const {
    return words_.data() + static_cast<std::size_t>(v) * wpr_;
  }
  const std::uint64_t* desc_row(NodeId v) const {
    return words_.data() + (n_ + static_cast<std::size_t>(v)) * wpr_;
  }
  std::uint64_t* anc_row(NodeId v) {
    return words_.data() + static_cast<std::size_t>(v) * wpr_;
  }
  std::uint64_t* desc_row(NodeId v) {
    return words_.data() + (n_ + static_cast<std::size_t>(v)) * wpr_;
  }

  std::size_t n_ = 0;    ///< Node count (rows per direction).
  std::size_t wpr_ = 0;  ///< 64-bit words per row.
  std::vector<std::uint64_t> words_;  ///< [anc rows | desc rows], row-major.
};

}  // namespace rtpool::graph
