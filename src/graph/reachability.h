// Transitive reachability closure over a DAG.
//
// The paper's sets pred(v)/succ(v) are *transitive* (Section 2): they include
// nodes connected through intermediate vertices. This class materializes the
// closure as one bitset per node, computed in O(|V|·|E|/64) by sweeping a
// topological order, and answers "may v and w execute concurrently?"
// (neither reaches the other) in O(|V|/64).
#pragma once

#include <vector>

#include "graph/dag.h"
#include "util/bitset.h"

namespace rtpool::graph {

/// Immutable transitive-closure view of a Dag snapshot.
class Reachability {
 public:
  /// Builds the closure; throws CycleError if `dag` has a cycle.
  explicit Reachability(const Dag& dag);

  std::size_t size() const { return ancestors_.size(); }

  /// True if there is a directed path from `from` to `to` (from != to).
  bool reaches(NodeId from, NodeId to) const;

  /// True if neither node reaches the other (and they differ): the two nodes
  /// are not ordered by precedence constraints and may run concurrently.
  bool concurrent(NodeId a, NodeId b) const;

  /// Transitive predecessors of v (the paper's pred(v)).
  const util::DynamicBitset& ancestors(NodeId v) const { return ancestors_.at(v); }

  /// Transitive successors of v (the paper's succ(v)).
  const util::DynamicBitset& descendants(NodeId v) const { return descendants_.at(v); }

  /// Writes into `out` the mask of nodes precedence-unordered with v:
  /// ~(ancestors(v) | descendants(v) | {v}). Exactly the nodes that may
  /// execute concurrently with v, as one word-parallel mask — the kernel
  /// behind the partitioned analysis' FIFO blocking vector (B_v) and any
  /// other "who can race v" query. Computed on demand in O(|V|/64) from the
  /// stored closures into the caller's reusable scratch (resized if needed);
  /// nothing extra is materialized at construction, which keeps task
  /// generation — where most Reachability objects are built and discarded —
  /// free of the table's cost.
  void unordered_mask(NodeId v, util::DynamicBitset& out) const;

 private:
  std::vector<util::DynamicBitset> ancestors_;
  std::vector<util::DynamicBitset> descendants_;
};

}  // namespace rtpool::graph
