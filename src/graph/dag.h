// Directed acyclic graph substrate.
//
// Nodes are dense indices 0..size()-1; the task model layer attaches its
// per-node attributes (WCET, type) in parallel arrays. The class maintains
// forward and backward adjacency and validates acyclicity on demand.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace rtpool::graph {

/// Dense node identifier within one graph.
using NodeId = std::uint32_t;

/// Directed edge (from, to).
struct Edge {
  NodeId from;
  NodeId to;
  bool operator==(const Edge&) const = default;
};

/// Mutable DAG with O(1) amortized edge insertion.
///
/// Invariants: node ids are < size(); duplicate edges and self-loops are
/// rejected at insertion. Acyclicity is *not* enforced per insertion (that
/// would be O(V+E) each time); call `is_acyclic()` or let algorithms that
/// require topological order throw `CycleError`.
class Dag {
 public:
  Dag() = default;
  explicit Dag(std::size_t node_count) : succ_(node_count), pred_(node_count) {}

  std::size_t size() const { return succ_.size(); }
  std::size_t edge_count() const { return edge_count_; }

  /// Append a new node; returns its id.
  NodeId add_node();

  /// Add edge from -> to. Throws std::invalid_argument on self-loop,
  /// duplicate edge, or out-of-range ids.
  void add_edge(NodeId from, NodeId to);

  /// Add edge from -> to without the duplicate scan. Precondition (the
  /// caller's contract): both ids are in range, from != to, and the edge is
  /// not already present. The structural generators qualify — every edge
  /// they insert has a freshly created endpoint — and the per-edge
  /// duplicate scan was a measurable share of generation time.
  void add_edge_unchecked(NodeId from, NodeId to) {
    succ_[from].push_back(to);
    pred_[to].push_back(from);
    ++edge_count_;
  }

  /// Reserve adjacency storage for `node_count` nodes (growth hint only).
  void reserve(std::size_t node_count) {
    succ_.reserve(node_count);
    pred_.reserve(node_count);
  }

  /// True if the edge exists (O(out-degree of `from`)).
  bool has_edge(NodeId from, NodeId to) const;

  // Adjacency accessors are inline: analysis inner loops call them per
  // edge visit (millions of times per bench run) and the out-of-line call
  // cost exceeded the bounds-checked vector index they wrap.
  const std::vector<NodeId>& successors(NodeId v) const {
    check_node(v);
    return succ_[v];
  }
  const std::vector<NodeId>& predecessors(NodeId v) const {
    check_node(v);
    return pred_[v];
  }

  std::size_t out_degree(NodeId v) const { return successors(v).size(); }
  std::size_t in_degree(NodeId v) const { return predecessors(v).size(); }

  /// Nodes without incoming / outgoing edges.
  std::vector<NodeId> sources() const;
  std::vector<NodeId> sinks() const;

  /// All edges in insertion-independent (from, to) order.
  std::vector<Edge> edges() const;

  bool is_acyclic() const;

 private:
  void check_node(NodeId v) const {
    if (v >= succ_.size())
      throw std::invalid_argument("Dag: node id out of range");
  }

  std::vector<std::vector<NodeId>> succ_;
  std::vector<std::vector<NodeId>> pred_;
  std::size_t edge_count_ = 0;
};

/// Thrown by algorithms that require acyclicity when the graph has a cycle.
class CycleError : public std::invalid_argument {
 public:
  CycleError() : std::invalid_argument("graph contains a cycle") {}
};

}  // namespace rtpool::graph
