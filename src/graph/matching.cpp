#include "graph/matching.h"

namespace rtpool::graph {

BipartiteMatcher::BipartiteMatcher(std::size_t left_size, std::size_t right_size)
    : adj_(left_size), match_right_(right_size, kFree) {}

void BipartiteMatcher::add_edge(std::size_t left, std::size_t right) {
  adj_.at(left).push_back(right);
}

std::size_t BipartiteMatcher::max_matching() {
  std::size_t matched = 0;
  for (std::size_t u = 0; u < adj_.size(); ++u) {
    visited_.assign(match_right_.size(), false);
    if (augment(u)) ++matched;
  }
  return matched;
}

BipartiteMatcher::VertexCover BipartiteMatcher::min_vertex_cover() const {
  const std::size_t nl = adj_.size();
  const std::size_t nr = match_right_.size();
  std::vector<bool> matched_left(nl, false);
  for (std::size_t v = 0; v < nr; ++v)
    if (match_right_[v] != kFree) matched_left[match_right_[v]] = true;

  // BFS over alternating paths: left → right along non-matching edges,
  // right → left along matching edges, seeded at unmatched left vertices.
  std::vector<bool> z_left(nl, false);
  std::vector<bool> z_right(nr, false);
  std::vector<std::size_t> frontier;
  for (std::size_t u = 0; u < nl; ++u)
    if (!matched_left[u]) {
      z_left[u] = true;
      frontier.push_back(u);
    }
  while (!frontier.empty()) {
    const std::size_t u = frontier.back();
    frontier.pop_back();
    for (std::size_t v : adj_[u]) {
      if (z_right[v] || match_right_[v] == u) continue;
      z_right[v] = true;
      const std::size_t w = match_right_[v];
      if (w != kFree && !z_left[w]) {
        z_left[w] = true;
        frontier.push_back(w);
      }
    }
  }

  VertexCover cover{std::vector<bool>(nl, false), std::vector<bool>(nr, false)};
  for (std::size_t u = 0; u < nl; ++u) cover.left[u] = !z_left[u];
  for (std::size_t v = 0; v < nr; ++v) cover.right[v] = z_right[v];
  return cover;
}

bool BipartiteMatcher::augment(std::size_t u) {
  for (std::size_t v : adj_[u]) {
    if (visited_[v]) continue;
    visited_[v] = true;
    if (match_right_[v] == kFree || augment(match_right_[v])) {
      match_right_[v] = u;
      return true;
    }
  }
  return false;
}

}  // namespace rtpool::graph
