// Maximum bipartite matching (Kuhn augmenting paths) with König minimum
// vertex cover extraction.
//
// Used by the antichain analysis: Dilworth's theorem reduces the maximum
// antichain of a poset to a minimum chain cover, computed as |elements|
// minus a maximum matching on the transitive comparability relation
// (Fulkerson's reduction). The König cover then yields the members of one
// maximum antichain (the wait-for-cycle witness of lint rule RTP-L2).
//
// Hopcroft-Karp is overkill at the sizes involved (a handful of blocking
// forks per task); Kuhn's algorithm gives O(V·E) with trivial code.
#pragma once

#include <cstddef>
#include <vector>

namespace rtpool::graph {

/// Bipartite graph with a fixed left/right partition; edges are added
/// explicitly, then max_matching() / min_vertex_cover() are queried.
class BipartiteMatcher {
 public:
  BipartiteMatcher(std::size_t left_size, std::size_t right_size);

  void add_edge(std::size_t left, std::size_t right);

  /// Size of a maximum matching (Kuhn augmenting paths).
  std::size_t max_matching();

  /// König's theorem: the minimum vertex cover of the bipartite graph,
  /// derived from a maximum matching (call max_matching() first) via the
  /// alternating-path reachable set Z: cover = (L \ Z_L) ∪ (R ∩ Z_R).
  /// Returns per-side membership flags.
  struct VertexCover {
    std::vector<bool> left;
    std::vector<bool> right;
  };
  VertexCover min_vertex_cover() const;

 private:
  static constexpr std::size_t kFree = static_cast<std::size_t>(-1);

  bool augment(std::size_t u);

  std::vector<std::vector<std::size_t>> adj_;
  std::vector<std::size_t> match_right_;
  std::vector<bool> visited_;
};

}  // namespace rtpool::graph
