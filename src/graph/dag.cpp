#include "graph/dag.h"

#include <algorithm>
#include <stdexcept>

#include "graph/algorithms.h"

namespace rtpool::graph {

NodeId Dag::add_node() {
  succ_.emplace_back();
  pred_.emplace_back();
  return static_cast<NodeId>(succ_.size() - 1);
}

void Dag::add_edge(NodeId from, NodeId to) {
  check_node(from);
  check_node(to);
  if (from == to) throw std::invalid_argument("Dag: self-loop rejected");
  if (has_edge(from, to)) throw std::invalid_argument("Dag: duplicate edge rejected");
  succ_[from].push_back(to);
  pred_[to].push_back(from);
  ++edge_count_;
}

bool Dag::has_edge(NodeId from, NodeId to) const {
  check_node(from);
  check_node(to);
  const auto& s = succ_[from];
  return std::find(s.begin(), s.end(), to) != s.end();
}

std::vector<NodeId> Dag::sources() const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < size(); ++v)
    if (pred_[v].empty()) out.push_back(v);
  return out;
}

std::vector<NodeId> Dag::sinks() const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < size(); ++v)
    if (succ_[v].empty()) out.push_back(v);
  return out;
}

std::vector<Edge> Dag::edges() const {
  std::vector<Edge> out;
  out.reserve(edge_count_);
  for (NodeId v = 0; v < size(); ++v)
    for (NodeId w : succ_[v]) out.push_back({v, w});
  std::sort(out.begin(), out.end(), [](const Edge& a, const Edge& b) {
    return a.from != b.from ? a.from < b.from : a.to < b.to;
  });
  return out;
}

bool Dag::is_acyclic() const {
  try {
    (void)topological_order(*this);
    return true;
  } catch (const CycleError&) {
    return false;
  }
}

}  // namespace rtpool::graph
