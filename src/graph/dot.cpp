#include "graph/dot.h"

#include <sstream>
#include <stdexcept>

namespace rtpool::graph {

std::string to_dot(const Dag& dag, const std::vector<std::string>& labels,
                   const std::string& graph_name) {
  if (!labels.empty() && labels.size() != dag.size())
    throw std::invalid_argument("to_dot: label count mismatch");

  std::ostringstream os;
  os << "digraph " << graph_name << " {\n";
  os << "  rankdir=TB;\n";
  for (NodeId v = 0; v < dag.size(); ++v) {
    os << "  n" << v << " [label=\"";
    if (labels.empty()) {
      os << 'v' << v;
    } else {
      for (char c : labels[v]) {
        if (c == '"' || c == '\\') os << '\\';
        os << c;
      }
    }
    os << "\"];\n";
  }
  for (const Edge& e : dag.edges())
    os << "  n" << e.from << " -> n" << e.to << ";\n";
  os << "}\n";
  return os.str();
}

}  // namespace rtpool::graph
