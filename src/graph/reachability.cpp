#include "graph/reachability.h"

#include "graph/algorithms.h"

namespace rtpool::graph {

Reachability::Reachability(const Dag& dag) {
  const std::size_t n = dag.size();
  const auto order = topological_order(dag);

  ancestors_.assign(n, util::DynamicBitset(n));
  descendants_.assign(n, util::DynamicBitset(n));

  for (NodeId v : order) {
    for (NodeId u : dag.predecessors(v)) {
      ancestors_[v].set(u);
      ancestors_[v].or_assign(ancestors_[u]);
    }
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId v = *it;
    for (NodeId w : dag.successors(v)) {
      descendants_[v].set(w);
      descendants_[v].or_assign(descendants_[w]);
    }
  }

}

void Reachability::unordered_mask(NodeId v, util::DynamicBitset& out) const {
  if (out.size() != size()) out = util::DynamicBitset(size());
  out.set_all();
  out.and_not_assign(ancestors_.at(v));
  out.and_not_assign(descendants_[v]);
  out.reset(v);
}

bool Reachability::reaches(NodeId from, NodeId to) const {
  return descendants_.at(from).test(to);
}

bool Reachability::concurrent(NodeId a, NodeId b) const {
  if (a == b) return false;
  return !reaches(a, b) && !reaches(b, a);
}

}  // namespace rtpool::graph
