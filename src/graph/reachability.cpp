#include "graph/reachability.h"

#include "graph/algorithms.h"

namespace rtpool::graph {

Reachability::Reachability(const Dag& dag)
    : Reachability(dag, topological_order(dag)) {}

Reachability::Reachability(const Dag& dag, const std::vector<NodeId>& order)
    : n_(dag.size()), wpr_((dag.size() + 63) / 64) {
  words_.assign(2 * n_ * wpr_, 0);

  for (NodeId v : order) {
    std::uint64_t* row = anc_row(v);
    for (NodeId u : dag.predecessors(v)) {
      row[u / 64] |= std::uint64_t{1} << (u % 64);
      const std::uint64_t* from = anc_row(u);
      for (std::size_t w = 0; w < wpr_; ++w) row[w] |= from[w];
    }
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId v = *it;
    std::uint64_t* row = desc_row(v);
    for (NodeId w : dag.successors(v)) {
      row[w / 64] |= std::uint64_t{1} << (w % 64);
      const std::uint64_t* from = desc_row(w);
      for (std::size_t k = 0; k < wpr_; ++k) row[k] |= from[k];
    }
  }
}

void Reachability::unordered_mask(NodeId v, util::DynamicBitset& out) const {
  if (out.size() != size()) out = util::DynamicBitset(size());
  out.set_all();
  out.and_not_assign(ancestors(v));
  out.and_not_assign(descendants(v));
  out.reset(v);
}

}  // namespace rtpool::graph
