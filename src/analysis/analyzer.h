// The analysis spine: one pluggable interface over every schedulability
// analysis in the library.
//
// The repo grew three analysis families (global Melani-style RTA with the
// paper's limited-concurrency adaptation, partitioned Fonseca-style RTA
// over Algorithm-1/worst-fit partitions, federated scheduling) and every
// consumer — the experiment engine, the sensitivity search, the CLI, nine
// bench drivers — used to bind to each family through its own free-function
// signature, options struct and result struct. This header collapses those
// call shapes into a single spine:
//
//                   ┌─────────────────────────────┐
//    name ────────► │  registry (find / get / …)  │
//                   └──────────────┬──────────────┘
//                                  ▼
//        Analyzer::analyze(TaskSet, RtaContext&, Options) -> Report
//                                  │
//            ┌─────────────────────┼──────────────────────┐
//            ▼                     ▼                      ▼
//      analyze_global      analyze_partitioned     analyze_federated
//      (global_rta.h)      (partitioned_rta.h)     (federated.h)
//
// Every registered analyzer is a stateless singleton wrapping one fixed
// configuration of a family kernel (e.g. "global-limited-antichain" is
// analyze_global with limited_concurrency + the antichain bound), so
// results are bit-identical to calling the kernel directly — asserted by
// golden tests on the recorded Figure-2 points. Adding a new analysis means
// implementing Analyzer once and registering it; no consumer changes.
//
// The Options envelope carries only the cross-cutting knobs (WCET scale,
// iteration budget, an optional explicit partition, diagnostics); anything
// that changes *which* test runs is the analyzer's identity and lives in
// its registry name. Warm-start state rides in the RtaContext, exactly as
// for the kernels (see rta_context.h).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/cert.h"
#include "analysis/federated.h"
#include "analysis/global_rta.h"
#include "analysis/partition.h"
#include "analysis/partitioned_rta.h"
#include "model/task_set.h"
#include "util/time.h"

namespace rtpool::analysis {

class RtaContext;

/// Cross-cutting options envelope shared by every analyzer. Subsumes the
/// per-analysis `wcet_scale`/iteration knobs; family-specific switches
/// (interference bound, concurrency bound, deadlock-freedom requirement,
/// partitioner) are part of an analyzer's registry identity instead.
struct AnalyzerOptions {
  /// Analyze as if every WCET were multiplied by this factor (> 0); 1.0 is
  /// bit-identical to the unscaled analysis (sensitivity fast path).
  double wcet_scale = 1.0;
  /// Safety valve for fixed-point iterations.
  int max_iterations = 100000;
  /// Partition-based analyzers only: analyze under this node-to-thread
  /// partition instead of running the analyzer's own partitioner. Borrowed;
  /// must outlive the call. Ignored by analyzers without kUsesPartition.
  const TaskSetPartition* partition = nullptr;
  /// Collect human-readable witness notes (partition failures, Lemma-1
  /// l̄ <= 0 tasks, deadline misses) into Report::notes. Off by default so
  /// the experiment hot path allocates no strings.
  bool diagnostics = false;
};

/// What an analyzer consumes and produces (registry metadata).
struct AnalyzerCapabilities {
  /// Runs over a node-to-thread partition (own partitioner, overridable via
  /// AnalyzerOptions::partition).
  bool uses_partition = false;
  /// Fills TaskVerdict::response_time with a finite bound when schedulable.
  bool reports_response_times = false;
  /// Consults RtaContext warm-start state across scaled re-runs.
  bool supports_warm_start = false;
};

/// Unified per-task verdict. Family-specific fields keep their neutral
/// default when the analyzer does not compute them (e.g. federated leaves
/// response_time infinite, global leaves deadlock_free true).
struct TaskVerdict {
  util::Time response_time = util::kTimeInfinity;
  bool schedulable = false;
  /// l̄(τ) under the global limited-concurrency tests (0 otherwise).
  long concurrency_bound = 0;
  /// Lemma-3 verdict of the task's partition (partitioned family).
  bool deadlock_free = true;
  /// Federated family: task got dedicated cores (heavy / promoted).
  bool dedicated = false;
  /// Federated family: dedicated core allocation (0 for shared tasks).
  std::size_t dedicated_cores = 0;

  friend bool operator==(const TaskVerdict&, const TaskVerdict&) = default;
};

/// One witness diagnostic attached to a Report (only collected when
/// AnalyzerOptions::diagnostics is set).
struct AnalyzerNote {
  std::string code;     ///< Stable tag, e.g. "partition-failure", "lbar-zero".
  std::string task;     ///< Task name ("" = set-level).
  std::string message;  ///< Human-readable witness.

  friend bool operator==(const AnalyzerNote&, const AnalyzerNote&) = default;
};

/// Unified analysis outcome: the Verdict/Report type every consumer sees.
struct Report {
  std::string analyzer;              ///< Registry name that produced it.
  bool schedulable = false;
  std::vector<TaskVerdict> per_task; ///< Indexed like TaskSet::tasks().
  /// The limiting task: when unschedulable, the lowest-index task that
  /// fails; when schedulable, the task with the largest R/D ratio (least
  /// slack). Empty for empty sets or when no task reports a finite
  /// response (e.g. a schedulable federated set).
  std::optional<std::size_t> limiting_task;
  /// R/D of the limiting task (infinite when its response diverged).
  double limiting_ratio = 0.0;
  /// Federated family: total cores consumed by dedicated tasks.
  std::size_t dedicated_cores = 0;
  /// Witness diagnostics (see AnalyzerOptions::diagnostics).
  std::vector<AnalyzerNote> notes;
  /// Machine-checkable proof of the verdict, attached when
  /// AnalyzerOptions::diagnostics is set (see cert.h); validate with
  /// cert::check_certificate. Shared (not copied) when Reports are copied.
  std::shared_ptr<const cert::Certificate> certificate;

  /// Value equality; certificates compare by value (both absent, or both
  /// present and equal), not by pointer identity, so a warm-started Report
  /// equals its cold twin.
  friend bool operator==(const Report& a, const Report& b) {
    const bool certs_equal =
        a.certificate == b.certificate ||
        (a.certificate != nullptr && b.certificate != nullptr &&
         *a.certificate == *b.certificate);
    return certs_equal && a.analyzer == b.analyzer &&
           a.schedulable == b.schedulable && a.per_task == b.per_task &&
           a.limiting_task == b.limiting_task &&
           a.limiting_ratio == b.limiting_ratio &&
           a.dedicated_cores == b.dedicated_cores && a.notes == b.notes;
  }
};

/// A registered schedulability analysis. Implementations are stateless and
/// immutable after registration (analyze() is called concurrently from the
/// experiment engine's workers; all mutable state lives in the caller's
/// RtaContext).
class Analyzer {
 public:
  virtual ~Analyzer() = default;

  /// Registry name, e.g. "global-limited". Stable: used on CLIs and in
  /// reports.
  virtual std::string_view name() const = 0;
  /// One-line human description for --list-analyzers.
  virtual std::string_view description() const = 0;
  virtual AnalyzerCapabilities capabilities() const = 0;

  /// Run the analysis. `ctx` must have been built for `ts` (ModelError
  /// otherwise) and carries the structural caches and warm-start state
  /// across calls, exactly as for the family kernels.
  virtual Report analyze(const model::TaskSet& ts, RtaContext& ctx,
                         const AnalyzerOptions& options = {}) const = 0;

  /// The partition this analyzer would analyze under when
  /// options.partition is null. Fails with an explanatory message for
  /// analyzers without kUsesPartition. Used by the sensitivity driver to
  /// partition once for a whole search.
  virtual PartitionResult make_partition(const model::TaskSet& ts) const;

  /// Convenience: analyze with a throwaway context.
  Report analyze(const model::TaskSet& ts,
                 const AnalyzerOptions& options = {}) const;
};

// ---- static registry ----

/// Look up a registered analyzer; nullptr when unknown.
const Analyzer* find_analyzer(std::string_view name);

/// Look up a registered analyzer; throws std::invalid_argument whose
/// message lists every registered name when unknown.
const Analyzer& get_analyzer(std::string_view name);

/// All registered analyzers, sorted by name.
std::vector<const Analyzer*> registered_analyzers();

/// Register a custom analyzer (the "add an analysis is a one-file change"
/// hook). Throws std::invalid_argument on a duplicate or empty name. The
/// registry takes ownership; registration is permanent for the process.
void register_analyzer(std::unique_ptr<Analyzer> analyzer);

// ---- legacy-options resolvers ----
//
// Map a family options struct onto the registered analyzer with that
// identity (the cross-cutting fields wcet_scale/max_iterations are carried
// by the AnalyzerOptions envelope instead and ignored here). Every
// representable combination has a registered analyzer, so the pre-spine
// entry points remain expressible as one registry lookup.

const Analyzer& analyzer_for(const GlobalRtaOptions& options);
/// Maps require_deadlock_free onto the proposed (Algorithm 1) / baseline
/// (worst-fit) pair; the partitioner identity only matters when no explicit
/// partition is supplied through the envelope.
const Analyzer& analyzer_for(const PartitionedRtaOptions& options);
const Analyzer& analyzer_for(const FederatedOptions& options);

}  // namespace rtpool::analysis
