// Cross-layer cache and warm-start state for repeated response-time
// analyses.
//
// One schedulability probe is never alone: `exp::evaluate_task_set` runs
// four analyses on the same task set per trial, and the sensitivity binary
// search (sensitivity.h) runs the same analysis at dozens of WCET scales.
// Before this class every call re-derived identical state — priority
// orders, per-core workloads W_{j,p}, FIFO blocking vectors B_v, Lemma-3
// verdicts, topological orders, longest-path DP tables. An RtaContext owns
// all of it, computed lazily once per task set. The structural state is
// WCET-scale-invariant; analyses scale it on the fly through
// `options.wcet_scale` (multiplying by 1.0 is exact, so scale 1 stays
// bit-identical to the pre-context code paths).
//
// Flat layout: the context owns a model::TaskSetView — a structure-of-
// arrays mirror of the task set (per-node WCETs, periods, deadlines,
// volumes in contiguous arrays) backed by a per-context std::pmr monotonic
// arena — and stores the partition-bound state (W_{i,p}, B_v) as flat
// task-major arrays. The RTA fixed points and the blocking kernel stream
// these arrays instead of chasing DagTask/Node objects. `reset()` rebinds
// the context to a new task set while keeping every allocation's capacity,
// which lets the experiment engine reuse one context per worker thread
// across trials (the arena is reset, not freed, between trials).
//
// Warm-started fixed points: with `set_warm_start(true)`, analyses record
// their converged per-task (and, for the SPLIT partitioned bound,
// per-segment) response times after a fully schedulable run at scale s;
// later runs at scale s' >= s with the same options (and, for the
// partitioned RTA, the same bound partition) start each fixed-point
// iteration from max(base, recorded value) instead of from the base. The
// RTA recurrences are monotone in the iteration start below the least
// fixed point and responses are monotone in the WCET scale (the clamped
// suspension-as-jitter terms preserve this), so warm-started results are
// BIT-IDENTICAL to cold starts — the iteration merely skips the prefix of
// the climb. Asserted over full scale sweeps in tests/test_rta_context.cpp.
// Runs that end unschedulable never update the warm state, and runs at a
// smaller scale than the recorded one fall back to cold starts.
//
// Incremental re-analysis: with `set_snapshots(true)`, every completed
// analyze_global / analyze_partitioned run records a per-task result
// snapshot (and, when diagnostics were on, the per-task certificate
// payloads). A later context for a CHANGED task set calls
// `begin_incremental(prior, task_map, dirty)`; the analyses then copy the
// recorded verdicts for the longest priority-order prefix of tasks whose
// inputs are provably unchanged — see begin_incremental for the exact
// guard — instead of re-running their fixed points, and bind_partition
// copies unchanged tasks' W_{i,p} rows, B_v vectors and Lemma-3 verdicts.
// The RTA of a task is a deterministic function of (task structure, the
// ordered higher-priority interference terms, options, scale, partition
// row), so results are bit-identical to a cold full run by construction;
// property-tested in tests/test_incremental.cpp.
//
// Ownership rules:
//  * The context borrows the TaskSet: the set must outlive the context and
//    analyses must be invoked with the same set object the context was
//    built for (checked; ModelError otherwise).
//  * NOT thread-safe: use one context per thread. The experiment engine
//    keeps one per worker thread (reset per trial), which keeps results
//    thread-count-invariant.
//  * bind_partition() copies the assignment; re-binding a partition with
//    identical content is a no-op that preserves caches and warm state,
//    while binding a different partition invalidates the partitioned
//    warm state (generation counter).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory_resource>
#include <optional>
#include <span>
#include <vector>

#include "analysis/cert.h"
#include "analysis/federated.h"
#include "analysis/global_rta.h"
#include "analysis/partition.h"
#include "analysis/partitioned_rta.h"
#include "model/task_set.h"
#include "model/task_set_view.h"
#include "util/bitset.h"
#include "util/time.h"

namespace rtpool::analysis {

/// True if the two option sets describe the same analysis up to the WCET
/// scale — the warm-start fingerprint test.
bool same_analysis(const GlobalRtaOptions& a, const GlobalRtaOptions& b);
bool same_analysis(const PartitionedRtaOptions& a, const PartitionedRtaOptions& b);

class RtaContext {
 public:
  explicit RtaContext(const model::TaskSet& ts);

  const model::TaskSet& task_set() const { return *ts_; }

  /// Rebind this context to `ts`, dropping every cache, the partition
  /// binding, warm state, snapshots and incremental state — semantically a
  /// fresh context — while keeping the capacity of every internal
  /// allocation (vectors, bitset scratch, the view arena). The engine's
  /// per-worker context reuse rides on this.
  void reset(const model::TaskSet& ts);

  // ---- flat SoA mirror ----

  /// Structure-of-arrays mirror of the task set, built on first use into
  /// the context's arena (reset() releases and lazily rebuilds it).
  const model::TaskSetView& view();

  // ---- structural caches (lazy, WCET-scale-invariant) ----

  /// Task indices from highest to lowest priority (== ts.priority_order()).
  const std::vector<std::size_t>& priority_order();

  /// Higher-priority task indices of task i (== ts.higher_priority_of(i)).
  const std::vector<std::size_t>& higher_priority(std::size_t i);

  /// Topological order of task i's DAG (served from the task's own cache).
  const std::vector<graph::NodeId>& topo_order(std::size_t i);

  // ---- partition binding ----

  /// Bind `partition`: computes (once) every task's per-core workload
  /// W_{i,p} and FIFO blocking vector B_v at unit scale into flat
  /// task-major arrays, using the word-parallel
  /// `Reachability::unordered_mask` kernel. Re-binding an identical
  /// partition (by content) is a no-op. When incremental state is active,
  /// rows of tasks that are clean and keep their node-to-thread assignment
  /// are copied from the prior context instead of recomputed (pure
  /// functions of unchanged inputs). Throws ModelError on size mismatches
  /// or out-of-range thread ids.
  void bind_partition(const TaskSetPartition& partition);

  bool has_partition() const { return binding_ != 0; }

  /// Monotone generation counter of the current binding (0 = none); bumped
  /// whenever bind_partition() installs different content.
  std::uint64_t binding_generation() const { return binding_; }

  /// W_{i,p} at unit scale (m entries); valid after bind_partition().
  std::span<const util::Time> core_workload(std::size_t i) const {
    return {core_workload_flat_.data() + i * bound_cores_, bound_cores_};
  }

  /// B_v at unit scale (node_count(i) entries); valid after bind_partition().
  std::span<const util::Time> fifo_blocking(std::size_t i) const {
    return {fifo_blocking_flat_.data() + view_.node_offset(i),
            view_.node_count(i)};
  }

  /// Lemma-3 verdict (check_deadlock_free_partitioned) of task i under the
  /// bound partition; computed on first query, cached per binding — the
  /// verdict is structural, hence WCET-scale-invariant.
  bool deadlock_free(std::size_t i);

  // ---- reusable scratch (contents undefined between uses) ----
  std::vector<util::Time>& weights_scratch() { return weights_scratch_; }
  std::vector<util::Time>& dp_scratch() { return dp_scratch_; }
  std::vector<util::Time>& time_scratch() { return time_scratch_; }
  std::vector<std::size_t>& index_scratch() { return index_scratch_; }

  /// One loop-invariant interference term of a partitioned fixed point:
  /// demand += ceil_div(r + jitter, period) * wjp. The analyses hoist
  /// these out of the iteration (they depend only on already-final
  /// higher-priority responses), preserving the exact accumulation order.
  struct InterferenceTerm {
    util::Time wjp;     ///< scale * W_{j,p}.
    util::Time jitter;  ///< max(R_j - wjp, 0).
    util::Time period;  ///< T_j.
  };
  std::vector<InterferenceTerm>& interference_scratch() {
    return interference_scratch_;
  }
  std::vector<std::size_t>& interference_offset_scratch() {
    return interference_offset_scratch_;
  }

  // ---- warm-started fixed points ----

  void set_warm_start(bool enabled) { warm_enabled_ = enabled; }
  bool warm_start_enabled() const { return warm_enabled_; }

  /// Number of fixed-point iterations that started from recorded warm
  /// state (telemetry for benches/tests).
  std::size_t warm_hits() const { return warm_hits_; }
  void note_warm_hit() { ++warm_hits_; }

  /// Warm state recorded by analyze_global (read/written by the analysis;
  /// exposed because the analyses are free functions, not friends).
  struct WarmGlobal {
    bool valid = false;
    double scale = 0.0;               ///< wcet_scale the values were recorded at.
    GlobalRtaOptions options;         ///< Fingerprint (wcet_scale ignored).
    std::vector<util::Time> response; ///< Converged R_i at `scale`.
  };

  /// Warm state recorded by analyze_partitioned.
  struct WarmPartitioned {
    bool valid = false;
    double scale = 0.0;
    std::uint64_t binding = 0;        ///< binding_generation() at record time.
    PartitionedRtaOptions options;    ///< Fingerprint (wcet_scale ignored).
    std::vector<util::Time> response;
    /// Per-task per-node converged segment responses (SPLIT bound only).
    std::vector<std::vector<util::Time>> segments;
  };

  WarmGlobal& warm_global() { return warm_global_; }
  WarmPartitioned& warm_partitioned() { return warm_partitioned_; }

  /// Incremental re-admission entry point: seed this context's GLOBAL warm
  /// state from `prior` (a context for a previous task set), remapping task
  /// indices through `task_map` — task_map[i] is the prior index of this
  /// set's task i, or nullopt for a task with no prior incarnation (it
  /// cold-starts from the base value).
  ///
  /// SOUNDNESS CONTRACT (caller's responsibility): only valid when this
  /// set's workload is a SUPERSET of the prior one per mapped task — i.e.
  /// an admit transition at the same core count, where every surviving task
  /// keeps its WCETs, period, deadline and relative priority order, and new
  /// tasks only ADD interference. Under that premise the prior converged
  /// response of a mapped task is <= its new least fixed point, so the
  /// monotone warm-start machinery keeps results BIT-IDENTICAL to a cold
  /// run (a warm start above the new lfp cannot happen; a diverging warm
  /// run re-runs cold anyway). Evict and resize transitions must NOT seed
  /// (interference shrinks / m changes): analyze cold instead.
  ///
  /// Returns false (and seeds nothing) when `prior` has no valid global
  /// warm state. Throws ModelError when task_map's size differs from this
  /// context's task count or maps out of range. Partitioned warm state is
  /// never seeded (binding generations are per-context).
  bool seed_warm_from(const RtaContext& prior,
                      const std::vector<std::optional<std::size_t>>& task_map);

  // ---- result snapshots + incremental re-analysis ----

  /// When enabled, analyze_global / analyze_partitioned record a per-task
  /// result snapshot after every completed run (plus the certificate
  /// payloads when diagnostics were on). Off by default: the experiment
  /// engine's throwaway per-trial contexts skip the copy.
  void set_snapshots(bool enabled) { snapshots_enabled_ = enabled; }
  bool snapshots_enabled() const { return snapshots_enabled_; }

  /// Snapshot of the last completed analyze_global run on this context.
  struct GlobalSnapshot {
    bool valid = false;
    double scale = 0.0;
    std::size_t cores = 0;
    GlobalRtaOptions options;
    std::vector<TaskRta> per_task;
    /// The response[] array as committed for hp interference (finite for
    /// converged-but-missing tasks, infinite for diverged ones).
    std::vector<util::Time> committed;
    /// Per-task certificate payloads (only when the run had diagnostics).
    std::optional<cert::GlobalCert> cert;
  };

  /// Snapshot of the last completed analyze_partitioned run.
  struct PartitionedSnapshot {
    bool valid = false;
    double scale = 0.0;
    std::size_t cores = 0;
    PartitionedRtaOptions options;
    std::vector<PartitionedTaskRta> per_task;
    std::vector<util::Time> committed;
    /// The analyzed node-to-thread partition, echoed per task — the reuse
    /// guard compares rows against the new partition.
    std::vector<std::vector<ThreadId>> thread_of;
    std::optional<cert::PartitionedCert> cert;
  };

  GlobalSnapshot& global_snapshot() { return global_snapshot_; }
  PartitionedSnapshot& partitioned_snapshot() { return partitioned_snapshot_; }

  /// Sentinel for "task has no prior incarnation".
  static constexpr std::size_t kNoPrior = static_cast<std::size_t>(-1);

  /// Arm incremental re-analysis against `prior` (a context whose last
  /// analyses were recorded via set_snapshots(true)). `task_map[i]` is the
  /// prior index of this set's task i (nullopt = new task); `dirty[i]`
  /// marks a mapped task whose content changed (empty = none dirty).
  ///
  /// Computes the longest prefix of this set's priority order whose
  /// verdicts can be COPIED from the prior run. Task idx (at priority
  /// position k, prior incarnation j) is in the prefix iff
  ///   * it is mapped and not dirty (caller guarantees: identical graph,
  ///     node WCETs/types, period, deadline), and
  ///   * every higher-priority task (positions 0..k-1) is in the prefix,
  ///     and their prior incarnations are EXACTLY the prior higher-priority
  ///     set of j (checked against the prior priority values) — so the
  ///     ordered interference inputs of j's fixed point are unchanged.
  /// Family-specific guards (same options fingerprint, equal wcet_scale,
  /// equal core count, equal partition rows, certificate availability) are
  /// applied per analyze call on top of this structural prefix.
  ///
  /// Copies everything needed out of `prior` (snapshots, partition-bound
  /// flat rows); `prior` may be destroyed afterwards. Returns the prefix
  /// length. Throws ModelError on task_map size/range mismatches.
  std::size_t begin_incremental(
      const RtaContext& prior,
      const std::vector<std::optional<std::size_t>>& task_map,
      const std::vector<char>& dirty = {});

  bool incremental_active() const { return incremental_.active; }
  std::size_t incremental_prefix() const { return incremental_.prefix; }
  /// Prior index per task (kNoPrior when unmapped); valid when active.
  const std::vector<std::size_t>& incremental_prior_index() const {
    return incremental_.prior_index;
  }
  const GlobalSnapshot& incremental_prior_global() const {
    return incremental_.prior_global;
  }
  const PartitionedSnapshot& incremental_prior_partitioned() const {
    return incremental_.prior_partitioned;
  }

  /// Number of per-task fixed points skipped by copying prior verdicts.
  std::size_t incremental_hits() const { return incremental_hits_; }
  void note_incremental_hit() { ++incremental_hits_; }

 private:
  void rebuild_view();
  void compute_fifo_blocking_row(std::size_t i,
                                 const std::vector<ThreadId>& thread_of);

  const model::TaskSet* ts_;

  // ---- flat SoA mirror + arena ----
  std::vector<std::byte> arena_buffer_;
  std::optional<std::pmr::monotonic_buffer_resource> view_arena_;
  model::TaskSetView view_;
  bool view_built_ = false;

  std::vector<std::size_t> priority_order_;
  bool priority_order_built_ = false;
  std::vector<std::vector<std::size_t>> higher_priority_;
  std::vector<char> higher_priority_built_;

  TaskSetPartition bound_;
  std::uint64_t binding_ = 0;
  std::size_t bound_cores_ = 0;
  /// W_{i,p}, task-major: task i owns [i*m, (i+1)*m).
  std::vector<util::Time> core_workload_flat_;
  /// B_v, task-major: task i owns [view.node_offset(i), +node_count(i)).
  std::vector<util::Time> fifo_blocking_flat_;
  std::vector<signed char> deadlock_free_;  ///< -1 unknown, else 0/1.

  std::vector<util::Time> weights_scratch_;
  std::vector<util::Time> dp_scratch_;
  std::vector<util::Time> time_scratch_;
  std::vector<std::size_t> index_scratch_;
  std::vector<InterferenceTerm> interference_scratch_;
  std::vector<std::size_t> interference_offset_scratch_;
  std::vector<util::DynamicBitset> on_core_scratch_;

  bool warm_enabled_ = false;
  std::size_t warm_hits_ = 0;
  WarmGlobal warm_global_;
  WarmPartitioned warm_partitioned_;

  bool snapshots_enabled_ = false;
  GlobalSnapshot global_snapshot_;
  PartitionedSnapshot partitioned_snapshot_;

  struct Incremental {
    bool active = false;
    std::size_t prefix = 0;
    std::vector<std::size_t> prior_index;  ///< kNoPrior when unmapped.
    std::vector<char> clean;               ///< mapped && !dirty, per task.
    GlobalSnapshot prior_global;
    PartitionedSnapshot prior_partitioned;
    /// Prior partition-bound flat state for W/B/Lemma-3 row reuse.
    std::vector<util::Time> prior_core_workload_flat;
    std::vector<util::Time> prior_fifo_blocking_flat;
    std::vector<std::size_t> prior_node_offset;
    std::vector<std::vector<ThreadId>> prior_thread_of;
    std::vector<signed char> prior_deadlock_free;
    std::size_t prior_cores = 0;
  };
  Incremental incremental_;
  std::size_t incremental_hits_ = 0;
};

}  // namespace rtpool::analysis
