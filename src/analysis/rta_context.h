// Cross-layer cache and warm-start state for repeated response-time
// analyses.
//
// One schedulability probe is never alone: `exp::evaluate_task_set` runs
// four analyses on the same task set per trial, and the sensitivity binary
// search (sensitivity.h) runs the same analysis at dozens of WCET scales.
// Before this class every call re-derived identical state — priority
// orders, per-core workloads W_{j,p}, FIFO blocking vectors B_v, Lemma-3
// verdicts, topological orders, longest-path DP tables. An RtaContext owns
// all of it, computed lazily once per task set. The structural state is
// WCET-scale-invariant; analyses scale it on the fly through
// `options.wcet_scale` (multiplying by 1.0 is exact, so scale 1 stays
// bit-identical to the pre-context code paths).
//
// Warm-started fixed points: with `set_warm_start(true)`, analyses record
// their converged per-task (and, for the SPLIT partitioned bound,
// per-segment) response times after a fully schedulable run at scale s;
// later runs at scale s' >= s with the same options (and, for the
// partitioned RTA, the same bound partition) start each fixed-point
// iteration from max(base, recorded value) instead of from the base. The
// RTA recurrences are monotone in the iteration start below the least
// fixed point and responses are monotone in the WCET scale (the clamped
// suspension-as-jitter terms preserve this), so warm-started results are
// BIT-IDENTICAL to cold starts — the iteration merely skips the prefix of
// the climb. Asserted over full scale sweeps in tests/test_rta_context.cpp.
// Runs that end unschedulable never update the warm state, and runs at a
// smaller scale than the recorded one fall back to cold starts.
//
// Ownership rules:
//  * The context borrows the TaskSet: the set must outlive the context and
//    analyses must be invoked with the same set object the context was
//    built for (checked; ModelError otherwise).
//  * NOT thread-safe: use one context per thread. The experiment engine
//    creates one per trial on the evaluating worker, which keeps results
//    thread-count-invariant.
//  * bind_partition() copies the assignment; re-binding a partition with
//    identical content is a no-op that preserves caches and warm state,
//    while binding a different partition invalidates the partitioned
//    warm state (generation counter).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "analysis/federated.h"
#include "analysis/global_rta.h"
#include "analysis/partition.h"
#include "analysis/partitioned_rta.h"
#include "model/task_set.h"
#include "util/time.h"

namespace rtpool::analysis {

/// True if the two option sets describe the same analysis up to the WCET
/// scale — the warm-start fingerprint test.
bool same_analysis(const GlobalRtaOptions& a, const GlobalRtaOptions& b);
bool same_analysis(const PartitionedRtaOptions& a, const PartitionedRtaOptions& b);

class RtaContext {
 public:
  explicit RtaContext(const model::TaskSet& ts);

  const model::TaskSet& task_set() const { return *ts_; }

  // ---- structural caches (lazy, WCET-scale-invariant) ----

  /// Task indices from highest to lowest priority (== ts.priority_order()).
  const std::vector<std::size_t>& priority_order();

  /// Higher-priority task indices of task i (== ts.higher_priority_of(i)).
  const std::vector<std::size_t>& higher_priority(std::size_t i);

  /// Cached topological order of task i's DAG.
  const std::vector<graph::NodeId>& topo_order(std::size_t i);

  // ---- partition binding ----

  /// Bind `partition`: computes (once) every task's per-core workload
  /// W_{i,p} and FIFO blocking vector B_v at unit scale, using the
  /// word-parallel `Reachability::unordered_mask` kernel. Re-binding an
  /// identical partition (by content) is a no-op. Throws ModelError on
  /// size mismatches or out-of-range thread ids.
  void bind_partition(const TaskSetPartition& partition);

  bool has_partition() const { return binding_ != 0; }

  /// Monotone generation counter of the current binding (0 = none); bumped
  /// whenever bind_partition() installs different content.
  std::uint64_t binding_generation() const { return binding_; }

  /// W_{i,p} at unit scale; valid after bind_partition().
  const std::vector<util::Time>& core_workload(std::size_t i) const {
    return core_workload_.at(i);
  }

  /// B_v at unit scale; valid after bind_partition().
  const std::vector<util::Time>& fifo_blocking(std::size_t i) const {
    return fifo_blocking_.at(i);
  }

  /// Lemma-3 verdict (check_deadlock_free_partitioned) of task i under the
  /// bound partition; computed on first query, cached per binding — the
  /// verdict is structural, hence WCET-scale-invariant.
  bool deadlock_free(std::size_t i);

  // ---- reusable scratch (contents undefined between uses) ----
  std::vector<util::Time>& weights_scratch() { return weights_scratch_; }
  std::vector<util::Time>& dp_scratch() { return dp_scratch_; }
  std::vector<util::Time>& time_scratch() { return time_scratch_; }
  std::vector<std::size_t>& index_scratch() { return index_scratch_; }

  // ---- warm-started fixed points ----

  void set_warm_start(bool enabled) { warm_enabled_ = enabled; }
  bool warm_start_enabled() const { return warm_enabled_; }

  /// Number of fixed-point iterations that started from recorded warm
  /// state (telemetry for benches/tests).
  std::size_t warm_hits() const { return warm_hits_; }
  void note_warm_hit() { ++warm_hits_; }

  /// Warm state recorded by analyze_global (read/written by the analysis;
  /// exposed because the analyses are free functions, not friends).
  struct WarmGlobal {
    bool valid = false;
    double scale = 0.0;               ///< wcet_scale the values were recorded at.
    GlobalRtaOptions options;         ///< Fingerprint (wcet_scale ignored).
    std::vector<util::Time> response; ///< Converged R_i at `scale`.
  };

  /// Warm state recorded by analyze_partitioned.
  struct WarmPartitioned {
    bool valid = false;
    double scale = 0.0;
    std::uint64_t binding = 0;        ///< binding_generation() at record time.
    PartitionedRtaOptions options;    ///< Fingerprint (wcet_scale ignored).
    std::vector<util::Time> response;
    /// Per-task per-node converged segment responses (SPLIT bound only).
    std::vector<std::vector<util::Time>> segments;
  };

  WarmGlobal& warm_global() { return warm_global_; }
  WarmPartitioned& warm_partitioned() { return warm_partitioned_; }

  /// Incremental re-admission entry point: seed this context's GLOBAL warm
  /// state from `prior` (a context for a previous task set), remapping task
  /// indices through `task_map` — task_map[i] is the prior index of this
  /// set's task i, or nullopt for a task with no prior incarnation (it
  /// cold-starts from the base value).
  ///
  /// SOUNDNESS CONTRACT (caller's responsibility): only valid when this
  /// set's workload is a SUPERSET of the prior one per mapped task — i.e.
  /// an admit transition at the same core count, where every surviving task
  /// keeps its WCETs, period, deadline and relative priority order, and new
  /// tasks only ADD interference. Under that premise the prior converged
  /// response of a mapped task is <= its new least fixed point, so the
  /// monotone warm-start machinery keeps results BIT-IDENTICAL to a cold
  /// run (a warm start above the new lfp cannot happen; a diverging warm
  /// run re-runs cold anyway). Evict and resize transitions must NOT seed
  /// (interference shrinks / m changes): analyze cold instead.
  ///
  /// Returns false (and seeds nothing) when `prior` has no valid global
  /// warm state. Throws ModelError when task_map's size differs from this
  /// context's task count or maps out of range. Partitioned warm state is
  /// never seeded (binding generations are per-context).
  bool seed_warm_from(const RtaContext& prior,
                      const std::vector<std::optional<std::size_t>>& task_map);

 private:
  const model::TaskSet* ts_;

  std::vector<std::size_t> priority_order_;
  bool priority_order_built_ = false;
  std::vector<std::vector<std::size_t>> higher_priority_;
  std::vector<char> higher_priority_built_;
  std::vector<std::vector<graph::NodeId>> topo_;
  std::vector<char> topo_built_;

  TaskSetPartition bound_;
  std::uint64_t binding_ = 0;
  std::vector<std::vector<util::Time>> core_workload_;
  std::vector<std::vector<util::Time>> fifo_blocking_;
  std::vector<signed char> deadlock_free_;  ///< -1 unknown, else 0/1.

  std::vector<util::Time> weights_scratch_;
  std::vector<util::Time> dp_scratch_;
  std::vector<util::Time> time_scratch_;
  std::vector<std::size_t> index_scratch_;

  bool warm_enabled_ = false;
  std::size_t warm_hits_ = 0;
  WarmGlobal warm_global_;
  WarmPartitioned warm_partitioned_;
};

}  // namespace rtpool::analysis
