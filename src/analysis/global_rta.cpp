#include "analysis/global_rta.h"

#include <algorithm>
#include <cmath>

#include "analysis/antichain.h"
#include "analysis/concurrency.h"

namespace rtpool::analysis {

namespace {

using util::Time;

/// I_{j,i}(L): workload of higher-priority task τ_j interfering in a window
/// of length L, given τ_j's already-computed response time R_j.
Time inter_task_interference(const model::DagTask& tj, Time rj, Time window,
                             std::size_t m, InterferenceBound bound) {
  const Time vol = tj.volume();
  // Worst-case release pattern: first job's workload is pushed as late as
  // possible; vol/m is the shortest time in which it can complete on m
  // threads, hence the jitter-like term R_j − vol/m ([14]).
  const Time shifted = window + rj - vol / static_cast<double>(m);
  if (shifted <= 0.0) return 0.0;
  switch (bound) {
    case InterferenceBound::kPaperCeil:
      return util::ceil_div(shifted, tj.period()) * vol;
    case InterferenceBound::kMelaniCarryIn: {
      const double jobs = std::floor(shifted / tj.period() * (1.0 + util::kTimeEps));
      const Time remainder = shifted - jobs * tj.period();
      const Time carry =
          std::min(vol, static_cast<double>(m) * std::max(remainder, 0.0));
      return jobs * vol + carry;
    }
  }
  throw std::invalid_argument("inter_task_interference: bad bound");
}

}  // namespace

GlobalRtaResult analyze_global(const model::TaskSet& ts,
                               const GlobalRtaOptions& options) {
  if (!ts.priorities_distinct())
    throw model::ModelError("analyze_global: task priorities must be distinct");

  const std::size_t m = ts.core_count();
  GlobalRtaResult result;
  result.per_task.resize(ts.size());
  result.schedulable = true;

  std::vector<Time> response(ts.size(), util::kTimeInfinity);

  for (std::size_t idx : ts.priority_order()) {
    const model::DagTask& task = ts.task(idx);
    TaskRta& rta = result.per_task[idx];
    rta.concurrency_bound =
        options.concurrency == ConcurrencyBound::kMaxAntichain
            ? available_concurrency_lower_bound_antichain(task, m)
            : available_concurrency_lower_bound(task, m);

    double denominator = static_cast<double>(m);
    if (options.limited_concurrency) {
      if (rta.concurrency_bound <= 0) {
        // Lemma 1: the pool can stall; no response-time bound exists.
        rta.schedulable = false;
        rta.response_time = util::kTimeInfinity;
        result.schedulable = false;
        continue;
      }
      denominator = static_cast<double>(rta.concurrency_bound);
    }

    const Time len = task.critical_path_length();
    const Time self_interference = task.volume() - len;  // I_{i,i} ([9,14])
    const auto hp = ts.higher_priority_of(idx);

    // If any higher-priority task already diverged, so does this one.
    const bool hp_diverged = std::any_of(hp.begin(), hp.end(), [&](std::size_t j) {
      return !std::isfinite(response[j]);
    });
    if (hp_diverged) {
      rta.schedulable = false;
      rta.response_time = util::kTimeInfinity;
      result.schedulable = false;
      continue;
    }

    Time r = len;
    bool converged = false;
    for (int iter = 0; iter < options.max_iterations; ++iter) {
      Time interference = self_interference;
      for (std::size_t j : hp) {
        interference +=
            inter_task_interference(ts.task(j), response[j], r, m, options.bound);
      }
      const Time next = len + interference / denominator;
      if (util::time_le(next, r)) {
        converged = true;
        break;
      }
      r = next;
      if (util::time_lt(task.deadline(), r)) break;  // already missed
    }

    rta.response_time = r;
    rta.schedulable = converged && util::time_le(r, task.deadline());
    response[idx] = rta.response_time;
    if (!rta.schedulable) {
      result.schedulable = false;
      if (!converged) response[idx] = util::kTimeInfinity;
    }
  }
  return result;
}

}  // namespace rtpool::analysis
