#include "analysis/global_rta.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "analysis/antichain.h"
#include "analysis/cert.h"
#include "analysis/concurrency.h"
#include "analysis/rta_context.h"

namespace rtpool::analysis {

namespace {

using util::Time;

/// I_{j,i}(L): workload of higher-priority task τ_j interfering in a window
/// of length L, given τ_j's already-computed response time R_j. `svol` and
/// `svolm` are the pre-scaled vol(τ_j) and vol(τ_j)/m (hoisted out of the
/// fixed-point iteration — they are loop-invariant).
Time inter_task_interference(Time svol, Time svolm, Time period, Time rj,
                             Time window, std::size_t m, InterferenceBound bound) {
  // Worst-case release pattern: first job's workload is pushed as late as
  // possible; vol/m is the shortest time in which it can complete on m
  // threads, hence the jitter-like term R_j − vol/m ([14]).
  const Time shifted = window + rj - svolm;
  if (shifted <= 0.0) return 0.0;
  switch (bound) {
    case InterferenceBound::kPaperCeil:
      return util::ceil_div(shifted, period) * svol;
    case InterferenceBound::kMelaniCarryIn: {
      const double jobs = std::floor(shifted / period * (1.0 + util::kTimeEps));
      const Time remainder = shifted - jobs * period;
      const Time carry =
          std::min(svol, static_cast<double>(m) * std::max(remainder, 0.0));
      return jobs * svol + carry;
    }
  }
  throw std::invalid_argument("inter_task_interference: bad bound");
}

}  // namespace

GlobalRtaResult analyze_global(const model::TaskSet& ts,
                               const GlobalRtaOptions& options, RtaContext* ctx,
                               cert::GlobalCert* certificate) {
  if (!ts.priorities_distinct())
    throw model::ModelError("analyze_global: task priorities must be distinct");
  if (!(options.wcet_scale > 0.0))
    throw model::ModelError("analyze_global: wcet_scale must be > 0");

  std::optional<RtaContext> local_ctx;
  if (ctx == nullptr) {
    local_ctx.emplace(ts);
    ctx = &*local_ctx;
  } else if (&ctx->task_set() != &ts) {
    throw model::ModelError("analyze_global: context bound to another task set");
  }

  const std::size_t m = ts.core_count();
  const double scale = options.wcet_scale;
  if (certificate != nullptr) {
    certificate->limited = options.limited_concurrency;
    certificate->antichain_bound =
        options.concurrency == ConcurrencyBound::kMaxAntichain;
    certificate->carry_in = options.bound == InterferenceBound::kMelaniCarryIn;
    certificate->max_iterations = options.max_iterations;
    certificate->per_task.assign(ts.size(), cert::GlobalTaskCert{});
  }
  GlobalRtaResult result;
  result.per_task.resize(ts.size());
  result.schedulable = true;

  // Hoisted per-task constants: pre-scaled volume, volume/m and the period.
  // The fixed-point loop below reads these instead of re-deriving them from
  // the DagTask on every iteration.
  std::vector<Time>& svol = ctx->weights_scratch();
  std::vector<Time>& svolm = ctx->dp_scratch();
  std::vector<Time>& period = ctx->time_scratch();
  svol.resize(ts.size());
  svolm.resize(ts.size());
  period.resize(ts.size());
  for (std::size_t i = 0; i < ts.size(); ++i) {
    svol[i] = scale * ts.task(i).volume();
    svolm[i] = svol[i] / static_cast<double>(m);
    period[i] = ts.task(i).period();
  }

  RtaContext::WarmGlobal& warm = ctx->warm_global();
  const bool use_warm = ctx->warm_start_enabled() && warm.valid &&
                        same_analysis(warm.options, options) && warm.scale <= scale;

  // Incremental re-analysis: copy the structural prefix's verdicts from the
  // prior run when the analysis fingerprint matches (see rta_context.h).
  const RtaContext::GlobalSnapshot* prior_snap = nullptr;
  std::size_t inc_limit = 0;
  if (ctx->incremental_active()) {
    const RtaContext::GlobalSnapshot& s = ctx->incremental_prior_global();
    if (s.valid && s.cores == m && s.scale == scale &&
        same_analysis(s.options, options) &&
        (certificate == nullptr || s.cert.has_value())) {
      prior_snap = &s;
      inc_limit = ctx->incremental_prefix();
    }
  }

  std::vector<Time> response(ts.size(), util::kTimeInfinity);

  const std::vector<std::size_t>& order = ctx->priority_order();
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    const std::size_t idx = order[pos];
    const model::DagTask& task = ts.task(idx);
    TaskRta& rta = result.per_task[idx];
    cert::GlobalTaskCert* tcert =
        certificate != nullptr ? &certificate->per_task[idx] : nullptr;

    if (pos < inc_limit) {
      const std::size_t j = ctx->incremental_prior_index()[idx];
      rta = prior_snap->per_task[j];
      response[idx] = prior_snap->committed[j];
      if (!rta.schedulable) result.schedulable = false;
      if (tcert != nullptr) *tcert = prior_snap->cert->per_task[j];
      ctx->note_incremental_hit();
      continue;
    }

    if (tcert != nullptr && options.limited_concurrency)
      tcert->concurrency = cert::make_concurrency_witness(
          task, options.concurrency == ConcurrencyBound::kMaxAntichain);
    rta.concurrency_bound =
        options.concurrency == ConcurrencyBound::kMaxAntichain
            ? available_concurrency_lower_bound_antichain(task, m)
            : available_concurrency_lower_bound(task, m);

    double denominator = static_cast<double>(m);
    if (options.limited_concurrency) {
      if (rta.concurrency_bound <= 0) {
        // Lemma 1: the pool can stall; no response-time bound exists.
        rta.schedulable = false;
        rta.response_time = util::kTimeInfinity;
        result.schedulable = false;
        if (tcert != nullptr) tcert->claim = cert::TaskClaim::kConcurrencyZero;
        continue;
      }
      denominator = static_cast<double>(rta.concurrency_bound);
    }

    const Time len = scale * task.critical_path_length();
    const Time self_interference = svol[idx] - len;  // I_{i,i} ([9,14])
    const auto& hp = ctx->higher_priority(idx);

    // If any higher-priority task already diverged, so does this one.
    const bool hp_diverged = std::any_of(hp.begin(), hp.end(), [&](std::size_t j) {
      return !std::isfinite(response[j]);
    });
    if (hp_diverged) {
      rta.schedulable = false;
      rta.response_time = util::kTimeInfinity;
      result.schedulable = false;
      if (tcert != nullptr) {
        tcert->claim = cert::TaskClaim::kHpDiverged;
        for (std::size_t j : hp) {
          if (!std::isfinite(response[j])) {
            tcert->blocker = j;
            break;
          }
        }
      }
      continue;
    }

    const Time deadline = task.deadline();
    const auto iterate = [&](Time start, Time& r_out) {
      Time r = start;
      bool converged = false;
      for (int iter = 0; iter < options.max_iterations; ++iter) {
        Time interference = self_interference;
        for (std::size_t j : hp) {
          interference += inter_task_interference(svol[j], svolm[j], period[j],
                                                  response[j], r, m, options.bound);
        }
        const Time next = len + interference / denominator;
        if (util::time_le(next, r)) {
          converged = true;
          break;
        }
        r = next;
        if (util::time_lt(deadline, r)) break;  // already missed
      }
      r_out = r;
      return converged;
    };

    Time start = len;
    const bool warm_used = use_warm && warm.response[idx] > start;
    if (warm_used) start = warm.response[idx];
    Time r;
    bool converged = iterate(start, r);
    if (warm_used && !(converged && util::time_le(r, deadline))) {
      // A diverging iteration stops at the first iterate past the deadline,
      // and that partial value depends on the starting point. Rerun cold so
      // the reported bookkeeping matches a cold run bit-for-bit; divergence
      // is detected within a handful of iterations, so this stays cheap.
      converged = iterate(len, r);
    } else if (warm_used) {
      ctx->note_warm_hit();
    }

    rta.response_time = r;
    rta.schedulable = converged && util::time_le(r, deadline);
    response[idx] = rta.response_time;
    if (!rta.schedulable) {
      result.schedulable = false;
      if (!converged) response[idx] = util::kTimeInfinity;
    }
    if (tcert != nullptr) {
      tcert->schedulable = rta.schedulable;
      tcert->response = r;
      tcert->denominator = denominator;
      tcert->critical_path = len;
      tcert->self_interference = self_interference;
      if (converged) {
        // The interference breakdown is re-evaluated at the final iterate:
        // the recorded operands are a function of (r, hp responses) only,
        // so warm-started and cold runs record identical certificates.
        tcert->claim = cert::TaskClaim::kConverged;
        tcert->hp_interference.reserve(hp.size());
        for (std::size_t j : hp)
          tcert->hp_interference.push_back(inter_task_interference(
              svol[j], svolm[j], period[j], response[j], r, m, options.bound));
      } else {
        tcert->claim = util::time_lt(deadline, r)
                           ? cert::TaskClaim::kDeadlineMiss
                           : cert::TaskClaim::kIterationBudget;
      }
    }
  }

  // Warm state is only trustworthy after a fully schedulable run: every
  // recorded value is then a converged least fixed point. (Incrementally
  // copied responses ARE the prior converged fixed points, so copies do
  // not disturb this invariant.)
  if (ctx->warm_start_enabled() && result.schedulable) {
    warm.valid = true;
    warm.scale = scale;
    warm.options = options;
    warm.response = response;
  }

  if (ctx->snapshots_enabled()) {
    RtaContext::GlobalSnapshot& snap = ctx->global_snapshot();
    snap.valid = true;
    snap.scale = scale;
    snap.cores = m;
    snap.options = options;
    snap.per_task = result.per_task;
    snap.committed = response;
    if (certificate != nullptr)
      snap.cert = *certificate;
    else
      snap.cert.reset();
  }
  return result;
}

}  // namespace rtpool::analysis
