// Federated scheduling (Li et al. [13]) adapted to the thread-pool model —
// the third scheduling family the paper cites, provided as an additional
// baseline and as an extension of the paper's analysis style.
//
// Classic federated scheduling:
//  * heavy tasks (U_i > 1) get n_i dedicated cores with
//        n_i = ceil( (vol_i − len_i) / (D_i − len_i) ),
//    which guarantees R_i <= len_i + (vol_i − len_i)/n_i <= D_i;
//  * light tasks (U_i <= 1) are serialized (WCET = vol_i) and partitioned
//    on the remaining cores (worst-fit decreasing), each core checked with
//    uniprocessor fixed-priority RTA.
//
// Limited-concurrency adaptation (this library's extension, following
// Section 4.1's reasoning): a heavy task's pool of n_i threads loses up to
// b̄_i of them to suspended forks, so the dedicated allocation becomes
//
//        n_i' = ceil( (vol_i − len_i) / (D_i − len_i) ) + b̄(τ_i).
//
// Moreover a *light* task with blocking regions cannot be serialized at
// all: on a single thread its first BF suspends the only thread and the
// job deadlocks (Lemma 1 with l = 0). Such tasks are promoted to dedicated
// allocations of max(1, ceil(...)) + b̄ cores.
#pragma once

#include <vector>

#include "model/task_set.h"

namespace rtpool::analysis {

namespace cert {
struct FederatedCert;
}  // namespace cert

struct FederatedOptions {
  /// false = classic federated scheduling (blocking ignored, may deadlock);
  /// true = the limited-concurrency adaptation described above.
  bool limited_concurrency = false;
  /// Analyze as if every WCET were multiplied by this factor (> 0); 1.0 is
  /// bit-identical to the unscaled analysis (sensitivity fast path).
  double wcet_scale = 1.0;
};

struct FederatedTaskResult {
  bool dedicated = false;          ///< Got its own cores (heavy / promoted).
  std::size_t cores = 0;           ///< Dedicated cores (0 for shared tasks).
  bool schedulable = false;
};

struct FederatedResult {
  bool schedulable = false;
  std::size_t dedicated_cores = 0;  ///< Total cores consumed by dedicated tasks.
  std::vector<FederatedTaskResult> per_task;
};

class RtaContext;

/// Run the federated test. Light shared tasks are prioritized
/// deadline-monotonically on their cores regardless of the task-set
/// priorities (federated scheduling assigns its own).
///
/// `ctx` (optional, see rta_context.h) must have been built for `ts`; it
/// provides reusable scratch so repeated scaled probes allocate nothing.
///
/// `certificate` (optional): when non-null, filled with a machine-checkable
/// proof of the result (see cert.h) — the dedicated-core allocations with
/// their b̄ witnesses, the shared-core placement in its analyzed
/// (deadline-monotonic) order, and the per-task uniprocessor-RTA iterates.
FederatedResult analyze_federated(const model::TaskSet& ts,
                                  const FederatedOptions& options = {},
                                  RtaContext* ctx = nullptr,
                                  cert::FederatedCert* certificate = nullptr);

}  // namespace rtpool::analysis
