#include "analysis/partition.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "analysis/concurrency.h"
#include "analysis/partitioned_rta.h"

namespace rtpool::analysis {

namespace {

constexpr double kCapacityEps = 1e-9;

/// Shared per-core utilization ledger used by the tie-break heuristics.
class CoreLoad {
 public:
  explicit CoreLoad(std::size_t cores) : util_(cores, 0.0) {}

  double load(ThreadId core) const { return util_.at(core); }
  void add(ThreadId core, double u) { util_.at(core) += u; }
  std::size_t cores() const { return util_.size(); }

  /// Pick a non-banned core according to the tie-break rule; respects the
  /// capacity limit when `capacity_check` is set. `banned` is a per-core
  /// mask (empty = every core eligible) — taking the mask directly avoids
  /// materializing an eligible-core vector in the placement inner loop.
  /// With a non-null `rng`, picks uniformly among the allowed cores instead
  /// (randomized Algorithm 1 restarts; one index draw, like the eligible-
  /// vector implementation it replaces).
  std::optional<ThreadId> pick(const std::vector<char>& banned,
                               TieBreak tie_break, double extra_util,
                               bool capacity_check, util::Rng* rng = nullptr) const {
    const auto allowed = [&](ThreadId c) {
      if (!banned.empty() && banned[c]) return false;
      return !capacity_check || util_[c] + extra_util <= 1.0 + kCapacityEps;
    };
    if (rng != nullptr) {
      std::size_t count = 0;
      for (ThreadId c = 0; c < util_.size(); ++c)
        if (allowed(c)) ++count;
      if (count == 0) return std::nullopt;
      std::size_t target = rng->index(count);
      for (ThreadId c = 0; c < util_.size(); ++c) {
        if (!allowed(c)) continue;
        if (target == 0) return c;
        --target;
      }
      return std::nullopt;  // unreachable
    }
    std::optional<ThreadId> best;
    for (ThreadId c = 0; c < util_.size(); ++c) {
      if (!allowed(c)) continue;
      if (!best.has_value()) {
        best = c;
        continue;
      }
      if (tie_break == TieBreak::kWorstFit && util_[c] < util_[*best]) best = c;
      // kFirstFit keeps the first (lowest-index) eligible core.
    }
    return best;
  }

 private:
  std::vector<double> util_;
};

constexpr ThreadId kUnassigned = std::numeric_limits<ThreadId>::max();

}  // namespace

std::vector<double> TaskSetPartition::core_utilization(const TaskSet& ts) const {
  std::vector<double> util(ts.core_count(), 0.0);
  for (std::size_t i = 0; i < ts.size(); ++i) {
    const model::DagTask& task = ts.task(i);
    const NodeAssignment& asg = per_task.at(i);
    for (model::NodeId v = 0; v < task.node_count(); ++v)
      util.at(asg.thread_of.at(v)) += task.wcet(v) / task.period();
  }
  return util;
}

namespace {

PartitionResult partition_algorithm1_impl(const TaskSet& ts, TieBreak tie_break,
                                          bool capacity_check, util::Rng* rng) {
  const std::size_t m = ts.core_count();
  CoreLoad load(m);
  TaskSetPartition partition;
  partition.per_task.resize(ts.size());

  // Scratch buffers shared across tasks and placement steps: the X(v)
  // bitsets, the per-core banned masks and the pending-BF worklist are the
  // inner-loop allocations this hot path used to make per node.
  std::vector<util::DynamicBitset> X;
  std::vector<char> phi_bf(m);
  std::vector<char> banned(m);
  std::vector<std::size_t> pending;

  for (std::size_t i = 0; i < ts.size(); ++i) {
    const model::DagTask& task = ts.task(i);
    std::vector<ThreadId>& T = partition.per_task[i].thread_of;
    T.assign(task.node_count(), kUnassigned);

    // X(v) = C(v) ∪ F'(v) for every node, as used at line 5 of Algorithm 1.
    all_affecting_forks(task, X);

    auto node_util = [&](model::NodeId v) { return task.wcet(v) / task.period(); };

    auto assign = [&](model::NodeId v, ThreadId core) {
      T[v] = core;
      load.add(core, node_util(v));
    };

    // Mark the threads hosting at least one *already allocated* node of
    // `forks` in the reused mask `used`.
    auto hosting_threads = [&](const util::DynamicBitset& forks,
                               std::vector<char>& used) {
      std::fill(used.begin(), used.end(), 0);
      forks.for_each([&](std::size_t x) {
        const ThreadId t = T[x];
        if (t != kUnassigned) used[t] = 1;
      });
    };

    for (model::NodeId v = 0; v < task.node_count(); ++v) {
      if (task.type(v) == model::NodeType::BJ) continue;  // forced with its BF

      hosting_threads(X[v], phi_bf);
      const std::size_t phi_bf_count = static_cast<std::size_t>(
          std::count(phi_bf.begin(), phi_bf.end(), char{1}));

      if (T[v] != kUnassigned && phi_bf[T[v]]) {
        return {std::nullopt,
                task.name() + ": node " + std::to_string(v) +
                    " already shares a thread with a dangerous BF (line 7)"};
      }
      if (T[v] == kUnassigned && phi_bf_count >= m) {
        return {std::nullopt,
                task.name() + ": dangerous BFs of node " + std::to_string(v) +
                    " cover all threads (line 9)"};
      }
      if (T[v] == kUnassigned) {
        const auto choice =
            load.pick(phi_bf, tie_break, node_util(v), capacity_check, rng);
        if (!choice.has_value()) {
          return {std::nullopt,
                  task.name() + ": no core has capacity for node " + std::to_string(v)};
        }
        assign(v, *choice);
      }
      if (task.type(v) == model::NodeType::BF) {
        const model::NodeId join = task.join_of(v);
        if (T[join] == kUnassigned) assign(join, T[v]);  // line 13
      }

      // Lines 14-18: pre-place the still-unallocated dangerous BFs so they
      // cannot later land on v's thread.
      pending.clear();
      X[v].for_each([&](std::size_t f) {
        if (T[f] == kUnassigned) pending.push_back(f);
      });
      for (std::size_t fi : pending) {
        const auto f = static_cast<model::NodeId>(fi);
        // Φ'_BF, line 15: C(f) equals X(f) here since every member of X(v)
        // is a BF node (affecting_blocking_forks only adds F(v) for BC
        // nodes), so the precomputed set is reused instead of recomputed.
        hosting_threads(X[f], banned);
        banned[T[v]] = 1;
        if (static_cast<std::size_t>(std::count(banned.begin(), banned.end(),
                                                char{1})) >= m) {
          return {std::nullopt,
                  task.name() + ": cannot segregate BF " + std::to_string(fi) +
                      " required by node " + std::to_string(v) + " (line 17)"};
        }
        const auto choice =
            load.pick(banned, tie_break, node_util(f), capacity_check, rng);
        if (!choice.has_value()) {
          return {std::nullopt,
                  task.name() + ": no core has capacity for BF " + std::to_string(fi)};
        }
        assign(f, *choice);
      }
    }
  }
  return {std::move(partition), ""};
}

}  // namespace

PartitionResult partition_algorithm1(const TaskSet& ts, TieBreak tie_break,
                                     bool capacity_check) {
  return partition_algorithm1_impl(ts, tie_break, capacity_check, nullptr);
}

PartitionResult partition_algorithm1_randomized(const TaskSet& ts, util::Rng& rng,
                                                int restarts,
                                                RandomizedObjective objective) {
  // Score a candidate: (schedulable?, max_i R_i/D_i). Lower is better.
  const auto score = [&](const TaskSetPartition& partition)
      -> std::pair<bool, double> {
    const PartitionedRtaResult rta = analyze_partitioned(ts, partition);
    double worst = 0.0;
    for (std::size_t i = 0; i < ts.size(); ++i) {
      const double r = rta.per_task[i].response_time / ts.task(i).deadline();
      worst = std::max(worst, r);
    }
    return {rta.schedulable, worst};
  };

  PartitionResult best = partition_algorithm1(ts);
  std::optional<std::pair<bool, double>> best_score;
  if (best.success()) {
    best_score = score(*best.partition);
    if (objective == RandomizedObjective::kSchedulable && best_score->first)
      return best;
  }

  for (int attempt = 0; attempt < restarts; ++attempt) {
    PartitionResult candidate =
        partition_algorithm1_impl(ts, TieBreak::kWorstFit, false, &rng);
    if (!candidate.success()) continue;
    const auto candidate_score = score(*candidate.partition);
    const bool better =
        !best_score.has_value() ||
        (candidate_score.first && !best_score->first) ||
        (candidate_score.first == best_score->first &&
         candidate_score.second < best_score->second);
    if (better) {
      best = std::move(candidate);
      best_score = candidate_score;
      if (objective == RandomizedObjective::kSchedulable && best_score->first)
        return best;
    }
  }
  if (!best.success() && best.failure.empty())
    best.failure = "algorithm 1 failed in every restart";
  return best;
}

PartitionResult partition_worst_fit(const TaskSet& ts) {
  const std::size_t m = ts.core_count();
  CoreLoad load(m);
  TaskSetPartition partition;
  partition.per_task.resize(ts.size());

  // Hoisted out of the per-task loop: each vector is re-assigned per task,
  // reusing its storage across the set (and across same-sized tasks this
  // never reallocates).
  std::vector<model::NodeId> unit_of;
  std::vector<double> unit_util;
  std::vector<model::NodeId> units;

  for (std::size_t i = 0; i < ts.size(); ++i) {
    const model::DagTask& task = ts.task(i);
    std::vector<ThreadId>& T = partition.per_task[i].thread_of;
    T.assign(task.node_count(), kUnassigned);

    // Fuse every BF with its BJ (two halves of one function, one thread);
    // represent each unit by its lowest node id.
    unit_of.resize(task.node_count());
    std::iota(unit_of.begin(), unit_of.end(), model::NodeId{0});
    for (const model::BlockingRegion& r : task.blocking_regions())
      unit_of[r.join] = r.fork;

    unit_util.assign(task.node_count(), 0.0);
    for (model::NodeId v = 0; v < task.node_count(); ++v)
      unit_util[unit_of[v]] += task.wcet(v) / task.period();

    units.clear();
    for (model::NodeId v = 0; v < task.node_count(); ++v)
      if (unit_of[v] == v) units.push_back(v);
    // Worst-fit decreasing; the id tie-break reproduces stable_sort's
    // original-order guarantee (units were generated ascending by id)
    // without its merge buffer.
    std::sort(units.begin(), units.end(), [&](model::NodeId a, model::NodeId b) {
      return unit_util[a] != unit_util[b] ? unit_util[a] > unit_util[b] : a < b;
    });

    const std::vector<char> no_banned;  // every core eligible
    for (model::NodeId u : units) {
      const auto choice =
          load.pick(no_banned, TieBreak::kWorstFit, unit_util[u], /*capacity_check=*/true);
      if (!choice.has_value()) {
        return {std::nullopt, task.name() + ": worst-fit cannot place node " +
                                  std::to_string(u) + " within unit capacity"};
      }
      T[u] = *choice;
      load.add(*choice, unit_util[u]);
    }
    // Propagate the unit choice to fused BJs.
    for (model::NodeId v = 0; v < task.node_count(); ++v)
      if (T[v] == kUnassigned) T[v] = T[unit_of[v]];
  }
  return {std::move(partition), ""};
}

}  // namespace rtpool::analysis
