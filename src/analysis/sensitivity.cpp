#include "analysis/sensitivity.h"

#include <stdexcept>
#include <vector>

namespace rtpool::analysis {

model::TaskSet scale_wcets(const model::TaskSet& ts, double factor) {
  if (!(factor > 0.0))
    throw std::invalid_argument("scale_wcets: factor must be > 0");
  model::TaskSet out(ts.core_count());
  for (const model::DagTask& t : ts.tasks()) {
    graph::Dag dag = t.dag();
    std::vector<model::Node> nodes;
    nodes.reserve(t.node_count());
    for (model::NodeId v = 0; v < t.node_count(); ++v)
      nodes.push_back({t.wcet(v) * factor, t.type(v)});
    out.add(model::DagTask(t.name(), std::move(dag), std::move(nodes),
                           t.period(), t.deadline(), t.priority()));
  }
  return out;
}

double critical_scaling_factor(const model::TaskSet& ts,
                               const SchedulabilityTest& test,
                               const SensitivityOptions& options) {
  if (!(options.hi > options.lo) || !(options.tolerance > 0.0))
    throw std::invalid_argument("critical_scaling_factor: bad bracket");

  double lo = options.lo;
  double hi = options.hi;

  // The bracket must start from a passing point: probe just above lo.
  const double probe = lo + options.tolerance;
  if (!test(scale_wcets(ts, probe))) return 0.0;
  if (test(scale_wcets(ts, hi))) return hi;

  double best = probe;
  for (int iter = 0; iter < options.max_iterations && hi - lo > options.tolerance;
       ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (test(scale_wcets(ts, mid))) {
      best = mid;
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return best;
}

}  // namespace rtpool::analysis
