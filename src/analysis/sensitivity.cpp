#include "analysis/sensitivity.h"

#include <stdexcept>
#include <vector>

#include "analysis/rta_context.h"
#include "util/time.h"

namespace rtpool::analysis {

namespace {

/// Shared bisection driver. `probe(s)` returns the schedulability verdict
/// at scale s; the probe sequence (lo + tol, hi, then midpoints) is shared
/// by the generic and fast paths so their searches are comparable
/// probe-for-probe.
double bisect_scaling_factor(const std::function<bool(double)>& probe,
                             const SensitivityOptions& options) {
  if (!(options.hi > options.lo) || !(options.tolerance > 0.0))
    throw std::invalid_argument("critical_scaling_factor: bad bracket");

  double lo = options.lo;
  double hi = options.hi;

  // The bracket must start from a passing point: probe just above lo.
  const double first = lo + options.tolerance;
  if (!probe(first)) return 0.0;
  if (probe(hi)) return hi;

  double best = first;
  for (int iter = 0; iter < options.max_iterations && hi - lo > options.tolerance;
       ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (probe(mid)) {
      best = mid;
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return best;
}

/// Verdict-safe probe cutoff: every analysis in this library lower-bounds
/// a task's response time by s·len (global: the fixed point starts there;
/// partitioned: segment bases dominate s·C_v and compose along the longest
/// path; federated: dedicated allocation requires D > s·len and serialized
/// tasks have C = s·vol >= s·len). So if any scaled critical path exceeds
/// its deadline the analysis is guaranteed to fail — skip it.
bool critical_path_exceeds_deadline(const model::TaskSet& ts, double s) {
  for (const model::DagTask& t : ts.tasks())
    if (util::time_lt(t.deadline(), s * t.critical_path_length())) return true;
  return false;
}

}  // namespace

model::TaskSet scale_wcets(const model::TaskSet& ts, double factor) {
  if (!(factor > 0.0))
    throw std::invalid_argument("scale_wcets: factor must be > 0");
  model::TaskSet out(ts.core_count());
  for (const model::DagTask& t : ts.tasks()) {
    graph::Dag dag = t.dag();
    std::vector<model::Node> nodes;
    nodes.reserve(t.node_count());
    for (model::NodeId v = 0; v < t.node_count(); ++v)
      nodes.push_back({t.wcet(v) * factor, t.type(v)});
    out.add(model::DagTask(t.name(), std::move(dag), std::move(nodes),
                           t.period(), t.deadline(), t.priority()));
  }
  return out;
}

double critical_scaling_factor(const model::TaskSet& ts,
                               const SchedulabilityTest& test,
                               const SensitivityOptions& options) {
  return bisect_scaling_factor(
      [&](double s) { return test(scale_wcets(ts, s)); }, options);
}

SensitivityResult critical_scaling_factor(const model::TaskSet& ts,
                                          const Analyzer& analyzer,
                                          const AnalyzerOptions& base,
                                          const SensitivityOptions& options) {
  SensitivityResult result;
  RtaContext ctx(ts);
  ctx.set_warm_start(options.warm_start);

  AnalyzerOptions probe_options = base;
  PartitionResult owned_partition;
  if (analyzer.capabilities().uses_partition && probe_options.partition == nullptr) {
    owned_partition = analyzer.make_partition(ts);
    // An unpartitionable set fails every probe: the factor is 0.0
    // (infeasible), reported without throwing — matching the analyzer's
    // own clean-Report behaviour on partition failure.
    if (!owned_partition.success()) return result;
    probe_options.partition = &*owned_partition.partition;
  }
  // Bind once: blocking vectors, per-core workloads and Lemma-3 verdicts
  // are computed a single time for the entire search (the per-probe rebind
  // inside the kernel is a content-compare no-op).
  if (probe_options.partition != nullptr)
    ctx.bind_partition(*probe_options.partition);

  result.factor = bisect_scaling_factor(
      [&](double s) {
        ++result.probes;
        if (options.critical_path_cutoff && critical_path_exceeds_deadline(ts, s)) {
          ++result.cutoff_probes;
          return false;
        }
        probe_options.wcet_scale = s;
        return analyzer.analyze(ts, ctx, probe_options).schedulable;
      },
      options);
  result.warm_hits = ctx.warm_hits();
  return result;
}

SensitivityResult critical_scaling_factor_global(
    const model::TaskSet& ts, const GlobalRtaOptions& rta,
    const SensitivityOptions& options) {
  AnalyzerOptions base;
  base.max_iterations = rta.max_iterations;
  return critical_scaling_factor(ts, analyzer_for(rta), base, options);
}

SensitivityResult critical_scaling_factor_partitioned(
    const model::TaskSet& ts, const TaskSetPartition& partition,
    const PartitionedRtaOptions& rta, const SensitivityOptions& options) {
  AnalyzerOptions base;
  base.max_iterations = rta.max_iterations;
  base.partition = &partition;
  return critical_scaling_factor(ts, analyzer_for(rta), base, options);
}

SensitivityResult critical_scaling_factor_federated(
    const model::TaskSet& ts, const FederatedOptions& fed,
    const SensitivityOptions& options) {
  return critical_scaling_factor(ts, analyzer_for(fed), {}, options);
}

}  // namespace rtpool::analysis
