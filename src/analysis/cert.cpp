#include "analysis/cert.h"

#include "analysis/antichain.h"
#include "analysis/concurrency.h"

namespace rtpool::analysis::cert {

const char* to_string(Family family) {
  switch (family) {
    case Family::kGlobal: return "global";
    case Family::kPartitioned: return "partitioned";
    case Family::kFederated: return "federated";
  }
  return "?";
}

const char* to_string(TaskClaim claim) {
  switch (claim) {
    case TaskClaim::kConverged: return "converged";
    case TaskClaim::kDeadlineMiss: return "deadline-miss";
    case TaskClaim::kIterationBudget: return "iteration-budget";
    case TaskClaim::kConcurrencyZero: return "concurrency-zero";
    case TaskClaim::kEq3Violation: return "eq3-violation";
    case TaskClaim::kHpDiverged: return "hp-diverged";
    case TaskClaim::kPartitionFailure: return "partition-failure";
    case TaskClaim::kDedicated: return "dedicated";
    case TaskClaim::kAllocationFailure: return "allocation-failure";
    case TaskClaim::kSharedCoreFailure: return "shared-core-failure";
    case TaskClaim::kNoSharedCores: return "no-shared-cores";
  }
  return "?";
}

ConcurrencyWitness make_concurrency_witness(const model::DagTask& task,
                                            bool antichain) {
  ConcurrencyWitness w;
  w.antichain = antichain;
  if (antichain) {
    w.forks = max_simultaneous_suspension_set(task);
    w.bbar = w.forks.size();
    return w;
  }
  // Affecting-forks form: the first node achieving b̄ = max_v |X(v)|.
  std::size_t best = 0;
  std::size_t pivot = 0;
  for (model::NodeId v = 0; v < task.node_count(); ++v) {
    const std::size_t count = affecting_blocking_forks(task, v).count();
    if (count > best) {
      best = count;
      pivot = v;
    }
  }
  w.bbar = best;
  w.pivot = pivot;
  if (best > 0) {
    affecting_blocking_forks(task, static_cast<model::NodeId>(pivot))
        .for_each([&](std::size_t f) {
          w.forks.push_back(static_cast<model::NodeId>(f));
        });
  }
  return w;
}

}  // namespace rtpool::analysis::cert
