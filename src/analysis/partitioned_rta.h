// Partitioned fixed-priority response-time analysis (Section 4.2).
//
// The paper analyzes partitioned task sets with the method of Fonseca et
// al. [10] combined with the SPLIT treatment of self-suspensions. We
// implement a documented segment-based variant of that approach (see
// DESIGN.md, "Substitutions"):
//
//  * Every node v of τ_i is a *segment* executing on core p = T(v).
//  * The segment response time R_v is the least fixed point of
//
//      x = C_v + B_v + Σ_{j ∈ hp(i), W_{j,p} > 0} ceil((x + J_{j,p})/T_j)·W_{j,p}
//
//    where W_{j,p} is τ_j's total WCET on core p, J_{j,p} = R_j − W_{j,p}
//    is the standard suspension-as-jitter bound, and B_v is the FIFO
//    work-queue blocking: the WCETs of τ_i's own nodes on core p that are
//    not precedence-ordered with v (each can sit in the queue ahead of v
//    at most once per job). BJ segments take B_v = 0: a join does not pass
//    through the work-queue; it resumes the suspended function directly.
//  * The task response time is the longest path through the DAG with node
//    weights R_v — interference is charged once per segment, as in SPLIT.
//
// This analysis is agnostic to reduced-concurrency delays (a node queued
// behind a *suspended* thread), exactly like the state of the art the paper
// discusses: it is only safe for partitions where such delays cannot occur,
// e.g. those produced by Algorithm 1. `analyze_partitioned` therefore
// reports, alongside the response times, whether the partition satisfies
// Eq. (3) (no reduced-concurrency delay / deadlock, Lemma 3).
#pragma once

#include <vector>

#include "analysis/partition.h"
#include "model/task_set.h"
#include "util/time.h"

namespace rtpool::analysis {

/// Composition rule for the per-core interference.
enum class PartitionedBound {
  /// SPLIT-style: interference charged once per *segment* (node); the task
  /// response time is the longest path over segment response times. The
  /// default, matching the description above.
  kSplitPerSegment,
  /// Holistic: interference of each hp task charged once per *core* over
  /// the whole response window; the base is the longest path over
  /// C_v + B_v. Less pessimistic when a task has many segments per core,
  /// more pessimistic when the per-core footprints are small (ablation
  /// bench `ablation_partition`).
  kHolisticPath,
};

struct PartitionedRtaOptions {
  int max_iterations = 100000;
  /// When true (default), a task set whose partition violates Eq. (3) or
  /// whose l̄(τ) <= 0 is marked unschedulable (the RTA result would be
  /// unsafe). Disable to reproduce the *baseline* behaviour of prior work
  /// that ignores reduced concurrency ([10] as used in Section 5).
  bool require_deadlock_free = true;
  PartitionedBound bound = PartitionedBound::kSplitPerSegment;
};

struct PartitionedTaskRta {
  util::Time response_time = util::kTimeInfinity;
  bool schedulable = false;
  bool deadlock_free = false;  ///< Lemma 3 verdict for this task's partition.
};

struct PartitionedRtaResult {
  bool schedulable = false;
  std::vector<PartitionedTaskRta> per_task;
};

/// Analyze `ts` under the node-to-thread `partition`. Priorities must be
/// distinct. Throws ModelError on malformed inputs (size mismatches).
PartitionedRtaResult analyze_partitioned(const model::TaskSet& ts,
                                         const TaskSetPartition& partition,
                                         const PartitionedRtaOptions& options = {});

}  // namespace rtpool::analysis
