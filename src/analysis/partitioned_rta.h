// Partitioned fixed-priority response-time analysis (Section 4.2).
//
// The paper analyzes partitioned task sets with the method of Fonseca et
// al. [10] combined with the SPLIT treatment of self-suspensions. We
// implement a documented segment-based variant of that approach (see
// DESIGN.md, "Substitutions"):
//
//  * Every node v of τ_i is a *segment* executing on core p = T(v).
//  * The segment response time R_v is the least fixed point of
//
//      x = C_v + B_v + Σ_{j ∈ hp(i), W_{j,p} > 0} ceil((x + J_{j,p})/T_j)·W_{j,p}
//
//    where W_{j,p} is τ_j's total WCET on core p, J_{j,p} = R_j − W_{j,p}
//    is the standard suspension-as-jitter bound, and B_v is the FIFO
//    work-queue blocking: the WCETs of τ_i's own nodes on core p that are
//    not precedence-ordered with v (each can sit in the queue ahead of v
//    at most once per job). BJ segments take B_v = 0: a join does not pass
//    through the work-queue; it resumes the suspended function directly.
//  * The task response time is the longest path through the DAG with node
//    weights R_v — interference is charged once per segment, as in SPLIT.
//
// This analysis is agnostic to reduced-concurrency delays (a node queued
// behind a *suspended* thread), exactly like the state of the art the paper
// discusses: it is only safe for partitions where such delays cannot occur,
// e.g. those produced by Algorithm 1. `analyze_partitioned` therefore
// reports, alongside the response times, whether the partition satisfies
// Eq. (3) (no reduced-concurrency delay / deadlock, Lemma 3).
#pragma once

#include <vector>

#include "analysis/partition.h"
#include "model/task_set.h"
#include "util/time.h"

namespace rtpool::analysis {

namespace cert {
struct PartitionedCert;
}  // namespace cert

/// Composition rule for the per-core interference.
enum class PartitionedBound {
  /// SPLIT-style: interference charged once per *segment* (node); the task
  /// response time is the longest path over segment response times. The
  /// default, matching the description above.
  kSplitPerSegment,
  /// Holistic: interference of each hp task charged once per *core* over
  /// the whole response window; the base is the longest path over
  /// C_v + B_v. Less pessimistic when a task has many segments per core,
  /// more pessimistic when the per-core footprints are small (ablation
  /// bench `ablation_partition`).
  kHolisticPath,
};

struct PartitionedRtaOptions {
  int max_iterations = 100000;
  /// When true (default), a task set whose partition violates Eq. (3) or
  /// whose l̄(τ) <= 0 is marked unschedulable (the RTA result would be
  /// unsafe). Disable to reproduce the *baseline* behaviour of prior work
  /// that ignores reduced concurrency ([10] as used in Section 5).
  bool require_deadlock_free = true;
  PartitionedBound bound = PartitionedBound::kSplitPerSegment;
  /// Analyze as if every WCET were multiplied by this factor (> 0) without
  /// materializing a scaled task set: per-core workloads and blocking
  /// vectors are scaled on the fly from the cached unit-scale vectors.
  /// 1.0 is bit-identical to the unscaled analysis (sensitivity fast path).
  double wcet_scale = 1.0;
};

struct PartitionedTaskRta {
  util::Time response_time = util::kTimeInfinity;
  bool schedulable = false;
  bool deadlock_free = false;  ///< Lemma 3 verdict for this task's partition.
};

struct PartitionedRtaResult {
  bool schedulable = false;
  std::vector<PartitionedTaskRta> per_task;
};

class RtaContext;

/// Per-node FIFO work-queue blocking vector B_v for one task under a
/// node-to-thread assignment: B_v = Σ C_u over same-core nodes u that are
/// precedence-unordered with v (each can sit in the FIFO queue ahead of v
/// at most once per job); BJ nodes take B_v = 0 (a join resumes the
/// suspended function directly, it never passes through the queue).
///
/// Computed word-parallel from `Reachability::unordered_mask`: O(|V|²/64)
/// per (task, assignment) instead of the former O(|V|²) pointer-chasing
/// double loop per analyze call. The summation visits qualifying nodes in
/// ascending id order, so the result is bit-identical to the naive double
/// loop (property-tested in tests/test_rta_context.cpp).
std::vector<util::Time> fifo_blocking_vector(const model::DagTask& task,
                                             const NodeAssignment& assignment);

/// Per-core WCET footprint W_{i,p} of one task under an assignment
/// (length = `cores`). Thread ids must be < cores (throws ModelError).
std::vector<util::Time> per_core_workload_vector(const model::DagTask& task,
                                                 const NodeAssignment& assignment,
                                                 std::size_t cores);

/// Analyze `ts` under the node-to-thread `partition`. Priorities must be
/// distinct. Throws ModelError on malformed inputs (size mismatches,
/// out-of-range thread ids).
///
/// `ctx` (optional) must have been built for `ts`; it caches the blocking
/// vectors, per-core workloads and Lemma-3 verdicts per (task, partition)
/// binding and carries warm-start state across scaled re-runs (see
/// rta_context.h). Results are identical with or without a context.
///
/// `certificate` (optional): when non-null, filled with a machine-checkable
/// proof of the result (see cert.h) — the partition echo with core loads,
/// per-segment blocking/response operands, deadline-miss iterates, and the
/// Lemma-3 witnesses. Warm-started runs whose fixed point diverges are
/// rerun cold, so warm certificates are bit-identical to cold ones.
PartitionedRtaResult analyze_partitioned(const model::TaskSet& ts,
                                         const TaskSetPartition& partition,
                                         const PartitionedRtaOptions& options = {},
                                         RtaContext* ctx = nullptr,
                                         cert::PartitionedCert* certificate = nullptr);

}  // namespace rtpool::analysis
