// Refined lower bound on the available concurrency (the paper's future
// work: "explicitly considering the variability of the available
// concurrency during task execution").
//
// Key observation: two BF nodes can be *simultaneously suspended* only if
// they are precedence-unordered. A BF inside another's blocking region is
// forbidden by the model, and a BF that transitively precedes another has
// completed its whole region (barrier included) before the second one
// starts. Hence the set of simultaneously suspended forks at any instant
// forms an antichain of the precedence partial order restricted to BF
// nodes, and
//
//     l(t, τ)  >=  m − maxAntichain(BF(τ))      for all t.
//
// By Dilworth's theorem the maximum antichain equals the minimum chain
// cover, computed here as |BF| minus a maximum bipartite matching on the
// transitive comparability relation (Fulkerson's reduction).
//
// Since every member of X(v) (Section 3.1) is a BF concurrent with v but
// members of X(v) need not be mutually concurrent, the paper's bound
// b̄(τ) = max_v |X(v)| can strictly exceed the antichain size; the refined
// bound l̄'(τ) = m − maxAntichain is therefore never worse and sometimes
// strictly better (see tests/test_antichain.cpp for such a graph).
//
// The refinement is sound both for the deadlock conditions of Section 3
// (Lemma 1 needs l(t) > 0) and as the interference divisor of Lemma 4
// (whose proof only uses a time-independent lower bound on l(t)).
#pragma once

#include <cstddef>

#include "model/dag_task.h"

namespace rtpool::analysis {

/// Size of the largest set of BF nodes that can be suspended at once
/// (maximum antichain of the precedence order restricted to BF nodes).
/// 0 for tasks without blocking forks.
std::size_t max_simultaneous_suspensions(const model::DagTask& task);

/// The members of one maximum antichain of BF nodes, ascending by id:
/// a concrete set of pairwise-concurrent forks that can all be suspended
/// simultaneously. Size equals max_simultaneous_suspensions(). Extracted
/// from the minimum vertex cover of the comparability graph (König's
/// theorem applied to the Fulkerson reduction); used by the deadlock
/// wait-for-cycle witness (lint rule RTP-L2).
std::vector<model::NodeId> max_simultaneous_suspension_set(const model::DagTask& task);

/// Refined lower bound l̄'(τ) = m − maxAntichain(BF(τ)); always >= the
/// Section 3.1 bound available_concurrency_lower_bound().
long available_concurrency_lower_bound_antichain(const model::DagTask& task,
                                                 std::size_t pool_size);

}  // namespace rtpool::analysis
