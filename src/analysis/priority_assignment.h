// Priority assignment for the limited-concurrency global test.
//
// The paper (like [14]) assumes fixed task priorities but does not pick
// them; the benches default to deadline-monotonic. DM is not optimal for
// DAG response-time tests, so this module adds Audsley's Optimal Priority
// Assignment (OPA).
//
// OPA requires the test for a task at priority level k to be independent
// of the relative order of the higher-priority tasks. The Section 4.1 test
// violates this: the inter-task bound uses the *computed* response times
// R_j of higher-priority tasks as release jitter. `JitterModel::kDeadline`
// substitutes D_j for R_j — a valid upper bound whenever the final
// assignment is schedulable (then R_j <= D_j), which makes the test
// OPA-compatible at the price of extra pessimism. The standard argument
// applies: if OPA with the D-jitter test declares the set schedulable, the
// assignment is schedulable under the original test too (re-check it!).
//
// `assign_priorities_audsley` returns a task set with new priorities, or
// nullopt when no assignment passes the OPA-compatible test.
#pragma once

#include <optional>

#include "analysis/global_rta.h"
#include "model/task_set.h"

namespace rtpool::analysis {

/// Jitter source for the inter-task interference bound I_{j,i}.
enum class JitterModel {
  kResponseTime,  ///< R_j (the paper / [14]); priority-order dependent.
  kDeadline,      ///< D_j; OPA-compatible upper bound (more pessimistic).
};

/// Options for the OPA search; `base` selects baseline/limited, the
/// interference flavor etc. (its jitter handling is overridden).
struct AudsleyOptions {
  GlobalRtaOptions base;
};

/// Audsley's algorithm over the OPA-compatible (deadline-jitter) global
/// test. Returns the reprioritized task set iff every priority level could
/// be filled. Ties are resolved in task order (deterministic).
std::optional<model::TaskSet> assign_priorities_audsley(
    const model::TaskSet& ts, const AudsleyOptions& options = {});

/// The OPA-compatible single-task check used by the search: is `task_index`
/// schedulable at the LOWEST priority among `ts` (all other tasks treated
/// as higher priority, jitter = their deadlines)?
bool schedulable_at_lowest_priority(const model::TaskSet& ts,
                                    std::size_t task_index,
                                    const GlobalRtaOptions& options);

}  // namespace rtpool::analysis
