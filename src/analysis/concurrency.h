// Concurrency analysis of Section 3.1.
//
// For each node v the paper defines:
//   C(v)  (Eq. 2): the BF nodes that may execute concurrently with v, i.e.
//                  BF nodes not ordered with v by (transitive) precedence;
//   F(v):          for a BC node, the BF whose barrier waits for v;
//   X(v):          the BF nodes whose suspension can affect v's execution:
//                  X(v) = C(v), plus F(v) when v is of type BC.
//
// From these, b̄(τ) = max_v |X(v)| bounds the number of simultaneously
// suspended threads that can affect any single node, and
// l̄(τ) = m − b̄(τ) lower-bounds the available concurrency l(t, τ) at all
// times (Section 3.1).
#pragma once

#include <vector>

#include "model/dag_task.h"
#include "util/bitset.h"

namespace rtpool::analysis {

using model::DagTask;
using model::NodeId;

/// C(v): bitset (over node ids) of BF nodes concurrent with v. The node
/// itself is excluded (a node never executes concurrently with itself).
util::DynamicBitset concurrent_blocking_forks(const DagTask& task, NodeId v);

/// X(v): C(v) plus, for BC nodes, the delimiting fork F(v).
util::DynamicBitset affecting_blocking_forks(const DagTask& task, NodeId v);

/// b̄(τ) = max_v |X(v)|; 0 for tasks without BF nodes.
std::size_t max_affecting_forks(const DagTask& task);

/// l̄(τ) = m − b̄(τ). May be zero or negative, in which case the lower
/// bound cannot exclude a deadlock (see deadlock.h).
long available_concurrency_lower_bound(const DagTask& task, std::size_t pool_size);

/// All per-node X(v) sets at once (index = node id); used by hot loops in
/// the partitioning algorithm and the experiment harness.
std::vector<util::DynamicBitset> all_affecting_forks(const DagTask& task);

/// Allocation-reusing variant: fills `out` (resized to node_count()),
/// recycling the bitset storage across calls.
void all_affecting_forks(const DagTask& task,
                         std::vector<util::DynamicBitset>& out);

}  // namespace rtpool::analysis
