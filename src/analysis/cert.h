// Machine-checkable analysis certificates (translation validation for the
// analysis spine).
//
// Every optimized kernel (global_rta, partitioned_rta, federated) can emit,
// behind AnalyzerOptions::diagnostics, a small proof of its verdict: the
// final response-time iterates with their interference/blocking/self-term
// breakdown, the b̄ witness (pivot node + fork set, or the antichain), the
// Lemma-3 / Eq. (3) witnesses, the partition echo with its core loads, and
// — for unschedulable verdicts — the violated inequality with its operands
// (the iterate that crossed the deadline, the failing allocation, the
// diverged higher-priority blocker).
//
// The structures here are plain data: no behaviour, defaulted equality
// (used by the warm-equals-cold golden tests), no pointers into kernel
// state. An INDEPENDENT checker (cert_check.h) re-validates every claim
// from the task set alone; it shares no kernel code with the emitters.
// Emission helpers living in cert.cpp (witness extraction) are kernel-side
// and may use analysis/ internals — the checker never calls them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "model/task_set.h"
#include "util/time.h"

namespace rtpool::analysis::cert {

/// Which kernel family produced the certificate.
enum class Family : unsigned char { kGlobal, kPartitioned, kFederated };

/// Per-task outcome claim. Each kind fixes which witness fields are
/// meaningful and which re-validation the checker performs.
enum class TaskClaim : unsigned char {
  kConverged,        ///< R is a fixed point of the task's recurrence.
  kDeadlineMiss,     ///< The monotone iteration crossed the deadline.
  kIterationBudget,  ///< max_iterations exhausted before convergence.
  kConcurrencyZero,  ///< Lemma 1: l̄ <= 0 (witness: the b̄ fork set).
  kEq3Violation,     ///< Lemma 3: Eq. (3) violated (witness: BC/BF/thread).
  kHpDiverged,       ///< A higher-priority task diverged (witness: blocker).
  kPartitionFailure, ///< The partitioner failed; no analysis ran.
  kDedicated,        ///< Federated: task got a dedicated-core allocation.
  kAllocationFailure,///< Federated: dedicated demand cannot be met.
  kSharedCoreFailure,///< Federated: a peer on the same core failed its RTA.
  kNoSharedCores,    ///< Federated: no cores left for the shared tasks.
};

const char* to_string(Family family);
const char* to_string(TaskClaim claim);

/// Sentinel for "no task/node/core referenced".
inline constexpr std::size_t kNoIndex = static_cast<std::size_t>(-1);

/// Witness for a claimed b̄(τ): the fork set achieving it. Two forms:
///  * affecting-forks (Section 3.1): `forks` = X(pivot), b̄ = |X(pivot)|;
///  * antichain (refinement): `forks` is a maximum antichain of the BF
///    poset (pairwise precedence-unordered), `pivot` unused (kNoIndex).
struct ConcurrencyWitness {
  std::size_t bbar = 0;               ///< Claimed b̄(τ) = |forks|.
  bool antichain = false;             ///< Which form (see above).
  std::size_t pivot = kNoIndex;       ///< Node v* with X(v*) = forks.
  std::vector<model::NodeId> forks;   ///< Ascending node ids.

  friend bool operator==(const ConcurrencyWitness&,
                         const ConcurrencyWitness&) = default;
};

// ---- global family ----

struct GlobalTaskCert {
  TaskClaim claim = TaskClaim::kConverged;
  bool schedulable = false;
  /// Final iterate of the recurrence (kernel's TaskRta::response_time):
  /// the fixed point for kConverged, the first iterate past the deadline
  /// for kDeadlineMiss, the last iterate for kIterationBudget, infinity
  /// for the skipped claims.
  util::Time response = util::kTimeInfinity;
  /// Interference divisor: m (baseline) or l̄(τ) (limited concurrency).
  double denominator = 0.0;
  util::Time critical_path = 0.0;      ///< len(λ*) at the analyzed scale.
  util::Time self_interference = 0.0;  ///< vol(τ) − len(λ*) at scale.
  /// kConverged only: I_{j,i}(R) per higher-priority task, aligned with
  /// ts.higher_priority_of(i) (the hp index list is not echoed — the
  /// checker re-derives it from the task set's priorities).
  std::vector<util::Time> hp_interference;
  /// Present whenever the limited-concurrency bound fed the denominator.
  std::optional<ConcurrencyWitness> concurrency;
  /// kHpDiverged: the diverged higher-priority task index.
  std::size_t blocker = kNoIndex;

  friend bool operator==(const GlobalTaskCert&, const GlobalTaskCert&) = default;
};

struct GlobalCert {
  bool limited = false;         ///< Limited-concurrency denominator l̄.
  bool antichain_bound = false; ///< b̄ via max antichain (else X(v) form).
  bool carry_in = false;        ///< Melani carry-in interference bound.
  int max_iterations = 0;
  std::vector<GlobalTaskCert> per_task;  ///< Indexed like TaskSet::tasks().

  friend bool operator==(const GlobalCert&, const GlobalCert&) = default;
};

// ---- partitioned family ----

/// One SPLIT segment: FIFO blocking operand (unit scale) and the converged
/// per-segment response at the analyzed scale.
struct SegmentCert {
  util::Time blocking = 0.0;
  util::Time response = 0.0;

  friend bool operator==(const SegmentCert&, const SegmentCert&) = default;
};

/// Eq. (3) violation witness: BC node co-located with a dangerous BF.
struct Eq3WitnessCert {
  model::NodeId bc_node = 0;
  model::NodeId fork = 0;
  std::uint32_t thread = 0;

  friend bool operator==(const Eq3WitnessCert&, const Eq3WitnessCert&) = default;
};

struct PartitionedTaskCert {
  TaskClaim claim = TaskClaim::kConverged;
  bool schedulable = false;
  bool deadlock_free = false;  ///< Lemma-3 verdict under the echoed partition.
  /// Kernel's PartitionedTaskRta::response_time (infinite when diverged).
  util::Time response = util::kTimeInfinity;
  /// SPLIT bound: per-node segments, up to and including the first
  /// diverging node (later entries keep their zero defaults).
  std::vector<SegmentCert> segments;
  /// Holistic bound: longest path over scale·(C_v + B_v).
  util::Time holistic_base = 0.0;
  /// kDeadlineMiss / kIterationBudget: the failing iterate, and (SPLIT
  /// only) the segment node it occurred at.
  std::size_t miss_node = kNoIndex;
  util::Time miss_value = util::kTimeInfinity;
  /// kConcurrencyZero witness (b̄ ≥ m).
  std::optional<ConcurrencyWitness> concurrency;
  /// kEq3Violation witness.
  std::optional<Eq3WitnessCert> eq3;
  /// kHpDiverged: the diverged higher-priority task index.
  std::size_t blocker = kNoIndex;

  friend bool operator==(const PartitionedTaskCert&,
                         const PartitionedTaskCert&) = default;
};

struct PartitionedCert {
  bool split = true;                  ///< SPLIT (per-segment) vs holistic.
  bool require_deadlock_free = true;
  int max_iterations = 0;
  /// The analyzed node-to-thread partition, echoed per task. The checker
  /// validates it structurally (sizes, thread ids < m) and re-derives all
  /// per-core operands from it; whether it is the partition the analyzer's
  /// partitioner WOULD produce is outside the certificate's scope (that
  /// would require re-running kernel code — see DESIGN.md).
  std::vector<std::vector<std::uint32_t>> thread_of;
  /// Per-core utilization induced by the partition (unit scale).
  std::vector<double> core_load;
  /// Non-empty = the partitioner failed before any analysis ran; every
  /// task then claims kPartitionFailure.
  std::string partition_failure;
  std::vector<PartitionedTaskCert> per_task;

  friend bool operator==(const PartitionedCert&, const PartitionedCert&) = default;
};

// ---- federated family ----

struct FederatedTaskCert {
  TaskClaim claim = TaskClaim::kConverged;
  bool schedulable = false;
  bool dedicated = false;
  std::size_t cores = 0;        ///< Dedicated-core allocation (0 if shared).
  std::size_t bbar = 0;         ///< b̄(τ) charged as extra threads (limited).
  /// Witness for bbar when the limited adaptation charged it (bbar > 0).
  std::optional<ConcurrencyWitness> concurrency;
  std::size_t core = kNoIndex;  ///< Shared-core index the task was placed on.
  /// Shared tasks: final uniprocessor-RTA iterate (the fixed point for
  /// passing tasks, the failing iterate for kDeadlineMiss; infinite when
  /// the core's RTA never reached the task).
  util::Time response = util::kTimeInfinity;
  /// kSharedCoreFailure: the peer task index whose RTA failed the core.
  std::size_t blocker = kNoIndex;

  friend bool operator==(const FederatedTaskCert&, const FederatedTaskCert&) = default;
};

struct FederatedCert {
  bool limited = false;
  std::size_t dedicated_cores = 0;  ///< Total dedicated allocation (≤ m).
  /// Task indices per shared core, in the deadline-monotonic order the
  /// per-core RTA analyzed (outer index = shared core id).
  std::vector<std::vector<std::size_t>> shared_order;
  std::vector<FederatedTaskCert> per_task;

  friend bool operator==(const FederatedCert&, const FederatedCert&) = default;
};

// ---- envelope ----

/// The certificate attached to analysis::Report. Exactly one family
/// payload is engaged (matching `family`).
struct Certificate {
  Family family = Family::kGlobal;
  std::string analyzer;      ///< Registry name that produced it.
  double wcet_scale = 1.0;
  bool schedulable = false;  ///< Set-level verdict (AND of per-task claims).
  std::optional<GlobalCert> global;
  std::optional<PartitionedCert> partitioned;
  std::optional<FederatedCert> federated;

  friend bool operator==(const Certificate&, const Certificate&) = default;
};

// ---- kernel-side emission helpers (cert.cpp; NOT used by the checker) ----

/// Extract the b̄ witness for a task: the argmax X(v) fork set (affecting
/// form) or a maximum BF antichain (`antichain` = true).
ConcurrencyWitness make_concurrency_witness(const model::DagTask& task,
                                            bool antichain);

}  // namespace rtpool::analysis::cert
