#include "analysis/concurrency.h"

#include <algorithm>

namespace rtpool::analysis {

namespace {

/// Bitset of all BF nodes of the task.
util::DynamicBitset blocking_fork_mask(const DagTask& task) {
  util::DynamicBitset mask(task.node_count());
  for (const model::BlockingRegion& r : task.blocking_regions()) mask.set(r.fork);
  return mask;
}

}  // namespace

util::DynamicBitset concurrent_blocking_forks(const DagTask& task, NodeId v) {
  // C(v) = BF \ (pred(v) ∪ succ(v) ∪ {v}), with pred/succ transitive.
  util::DynamicBitset c = blocking_fork_mask(task);
  const graph::Reachability& reach = task.reachability();
  c.and_not_assign(reach.ancestors(v));
  c.and_not_assign(reach.descendants(v));
  if (c.test(v)) c.reset(v);
  return c;
}

util::DynamicBitset affecting_blocking_forks(const DagTask& task, NodeId v) {
  util::DynamicBitset x = concurrent_blocking_forks(task, v);
  if (task.type(v) == model::NodeType::BC) x.set(task.blocking_fork_of(v));
  return x;
}

std::size_t max_affecting_forks(const DagTask& task) {
  // The maximum over v of |X(v)| is structural and cached by DagTask at
  // construction; the per-node accessors above stay available for witness
  // extraction and diagnostics.
  return task.max_affecting_forks();
}

long available_concurrency_lower_bound(const DagTask& task, std::size_t pool_size) {
  return static_cast<long>(pool_size) - static_cast<long>(max_affecting_forks(task));
}

std::vector<util::DynamicBitset> all_affecting_forks(const DagTask& task) {
  std::vector<util::DynamicBitset> out;
  all_affecting_forks(task, out);
  return out;
}

void all_affecting_forks(const DagTask& task,
                         std::vector<util::DynamicBitset>& out) {
  // Copy-assigning into recycled slots reuses each bitset's word storage
  // when the caller sweeps many same-sized tasks (the experiment engine's
  // partitioning hot loop).
  out.resize(task.node_count());
  const util::DynamicBitset bf_mask = blocking_fork_mask(task);
  const graph::Reachability& reach = task.reachability();
  for (NodeId v = 0; v < task.node_count(); ++v) {
    util::DynamicBitset& x = out[v];
    x = bf_mask;
    x.and_not_assign(reach.ancestors(v));
    x.and_not_assign(reach.descendants(v));
    if (x.test(v)) x.reset(v);
    if (task.type(v) == model::NodeType::BC) x.set(task.blocking_fork_of(v));
  }
}

}  // namespace rtpool::analysis
