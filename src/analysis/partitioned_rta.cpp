#include "analysis/partitioned_rta.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <span>

#include "analysis/cert.h"
#include "analysis/concurrency.h"
#include "analysis/deadlock.h"
#include "analysis/rta_context.h"
#include "graph/algorithms.h"
#include "util/bitset.h"

namespace rtpool::analysis {

namespace {

using util::Time;

/// One up-front pass over the whole partition: sizes and thread-id ranges.
/// Everything after this indexes raw vectors without bounds checks.
void validate_partition(const model::TaskSet& ts, const TaskSetPartition& partition) {
  if (partition.per_task.size() != ts.size())
    throw model::ModelError("analyze_partitioned: partition size mismatch");
  const std::size_t m = ts.core_count();
  for (std::size_t i = 0; i < ts.size(); ++i) {
    const model::DagTask& task = ts.task(i);
    const auto& thread_of = partition.per_task[i].thread_of;
    if (thread_of.size() != task.node_count())
      throw model::ModelError("analyze_partitioned: assignment size mismatch for " +
                              task.name());
    for (ThreadId t : thread_of)
      if (t >= m)
        throw model::ModelError("analyze_partitioned: thread id out of range for " +
                                task.name());
  }
}

}  // namespace

std::vector<Time> per_core_workload_vector(const model::DagTask& task,
                                           const NodeAssignment& assignment,
                                           std::size_t cores) {
  const std::size_t n = task.node_count();
  const auto& thread_of = assignment.thread_of;
  if (thread_of.size() != n)
    throw model::ModelError("per_core_workload_vector: assignment size mismatch");
  for (ThreadId t : thread_of)
    if (t >= cores)
      throw model::ModelError("per_core_workload_vector: thread id out of range");
  std::vector<Time> w(cores, 0.0);
  for (model::NodeId v = 0; v < n; ++v) w[thread_of[v]] += task.wcet(v);
  return w;
}

std::vector<Time> fifo_blocking_vector(const model::DagTask& task,
                                       const NodeAssignment& assignment) {
  const std::size_t n = task.node_count();
  const auto& thread_of = assignment.thread_of;
  if (thread_of.size() != n)
    throw model::ModelError("fifo_blocking_vector: assignment size mismatch");

  // Group the nodes by core once (self-sizing: co-location is all that
  // matters here, the platform core count is irrelevant).
  ThreadId max_core = 0;
  for (model::NodeId v = 0; v < n; ++v) max_core = std::max(max_core, thread_of[v]);
  std::vector<util::DynamicBitset> on_core(static_cast<std::size_t>(max_core) + 1,
                                           util::DynamicBitset(n));
  for (model::NodeId v = 0; v < n; ++v) on_core[thread_of[v]].set(v);

  const graph::Reachability& reach = task.reachability();
  std::vector<Time> blocking(n, 0.0);
  util::DynamicBitset mask(n);
  for (model::NodeId v = 0; v < n; ++v) {
    if (task.type(v) == model::NodeType::BJ) continue;  // joins bypass the queue
    reach.unordered_mask(v, mask);
    mask.and_assign(on_core[thread_of[v]]);
    // Ascending-id accumulation: bit-identical to the naive double loop.
    Time b = 0.0;
    mask.for_each([&](std::size_t u) { b += task.wcet(u); });
    blocking[v] = b;
  }
  return blocking;
}

PartitionedRtaResult analyze_partitioned(const model::TaskSet& ts,
                                         const TaskSetPartition& partition,
                                         const PartitionedRtaOptions& options,
                                         RtaContext* ctx,
                                         cert::PartitionedCert* certificate) {
  if (!ts.priorities_distinct())
    throw model::ModelError("analyze_partitioned: task priorities must be distinct");
  if (!(options.wcet_scale > 0.0))
    throw model::ModelError("analyze_partitioned: wcet_scale must be > 0");
  validate_partition(ts, partition);

  // All per-(task, assignment) state — workloads W_{i,p}, blocking vectors
  // B_v, Lemma-3 verdicts, topological orders, DP scratch — lives in an
  // RtaContext. A caller-provided context amortizes it across calls
  // (sensitivity probes, the experiment engine's per-trial analyses); a
  // local one reproduces the former per-call work, minus the old O(|V|²)
  // per-call blocking lambda.
  std::optional<RtaContext> local_ctx;
  if (ctx == nullptr) {
    local_ctx.emplace(ts);
    ctx = &*local_ctx;
  } else if (&ctx->task_set() != &ts) {
    throw model::ModelError("analyze_partitioned: context bound to another task set");
  }
  ctx->bind_partition(partition);

  const std::size_t m = ts.core_count();
  const double scale = options.wcet_scale;
  if (certificate != nullptr) {
    certificate->split = options.bound == PartitionedBound::kSplitPerSegment;
    certificate->require_deadlock_free = options.require_deadlock_free;
    certificate->max_iterations = options.max_iterations;
    certificate->thread_of.clear();
    certificate->thread_of.reserve(ts.size());
    for (const NodeAssignment& a : partition.per_task)
      certificate->thread_of.push_back(a.thread_of);
    certificate->core_load = partition.core_utilization(ts);
    certificate->partition_failure.clear();
    certificate->per_task.assign(ts.size(), cert::PartitionedTaskCert{});
  }
  PartitionedRtaResult result;
  result.per_task.resize(ts.size());
  result.schedulable = true;

  // Warm-start state: applicable when recorded for this exact analysis and
  // partition at a scale <= ours (responses are monotone in the scale, so
  // the recorded fixed points sit below ours and the monotone iteration
  // lands on bit-identical results).
  RtaContext::WarmPartitioned& warm = ctx->warm_partitioned();
  const bool use_warm = ctx->warm_start_enabled() && warm.valid &&
                        warm.binding == ctx->binding_generation() &&
                        same_analysis(warm.options, options) && warm.scale <= scale;
  const bool split = options.bound == PartitionedBound::kSplitPerSegment;
  std::vector<std::vector<Time>> segments_out;  // recorded on schedulable runs
  if (ctx->warm_start_enabled() && split) segments_out.resize(ts.size());

  // Incremental re-analysis: verdicts of the structural prefix are copied
  // from the prior run when the whole analysis fingerprint matches and the
  // task keeps its node-to-thread row (the RTA of a prefix task is a pure
  // function of inputs the prefix guard proves unchanged).
  const RtaContext::PartitionedSnapshot* prior_snap = nullptr;
  std::size_t inc_limit = 0;
  if (ctx->incremental_active()) {
    const RtaContext::PartitionedSnapshot& s = ctx->incremental_prior_partitioned();
    if (s.valid && s.cores == m && s.scale == scale &&
        same_analysis(s.options, options) &&
        (certificate == nullptr || s.cert.has_value())) {
      prior_snap = &s;
      inc_limit = ctx->incremental_prefix();
    }
  }
  std::size_t copied = 0;

  std::vector<Time> response(ts.size(), util::kTimeInfinity);

  const std::vector<std::size_t>& order = ctx->priority_order();
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    const std::size_t idx = order[pos];
    const model::DagTask& task = ts.task(idx);
    const std::size_t n = task.node_count();
    PartitionedTaskRta& rta = result.per_task[idx];
    cert::PartitionedTaskCert* tcert =
        certificate != nullptr ? &certificate->per_task[idx] : nullptr;

    if (pos < inc_limit) {
      const std::size_t j = ctx->incremental_prior_index()[idx];
      if (prior_snap->thread_of[j] == partition.per_task[idx].thread_of) {
        rta = prior_snap->per_task[j];
        response[idx] = prior_snap->committed[j];
        if (!rta.schedulable) result.schedulable = false;
        if (tcert != nullptr) *tcert = prior_snap->cert->per_task[j];
        ctx->note_incremental_hit();
        ++copied;
        continue;
      }
      // A changed partition row changes this task's inputs, hence possibly
      // its response — everything at lower priority must run live too.
      inc_limit = pos;
    }

    rta.deadlock_free = ctx->deadlock_free(idx);
    if (tcert != nullptr) tcert->deadlock_free = rta.deadlock_free;
    if (options.require_deadlock_free && !rta.deadlock_free) {
      rta.schedulable = false;
      result.schedulable = false;
      if (tcert != nullptr) {
        // Which half of Lemma 3 failed: b̄ ≥ m (blocking chain) or Eq. (3)
        // (a BC node co-located with a dangerous fork).
        if (max_affecting_forks(task) >= m) {
          tcert->claim = cert::TaskClaim::kConcurrencyZero;
          tcert->concurrency =
              cert::make_concurrency_witness(task, /*antichain=*/false);
        } else {
          tcert->claim = cert::TaskClaim::kEq3Violation;
          const auto violation =
              find_eq3_violation(task, partition.per_task[idx]);
          if (violation.has_value())
            tcert->eq3 = cert::Eq3WitnessCert{violation->bc_node,
                                              violation->fork, violation->thread};
        }
      }
      continue;
    }

    const auto& hp = ctx->higher_priority(idx);
    const bool hp_diverged = std::any_of(hp.begin(), hp.end(), [&](std::size_t j) {
      return !std::isfinite(response[j]);
    });
    if (hp_diverged) {
      rta.schedulable = false;
      result.schedulable = false;
      if (tcert != nullptr) {
        tcert->claim = cert::TaskClaim::kHpDiverged;
        for (std::size_t j : hp) {
          if (!std::isfinite(response[j])) {
            tcert->blocker = j;
            break;
          }
        }
      }
      continue;
    }

    const auto& thread_of = partition.per_task[idx].thread_of;
    const std::span<const Time> blocking = ctx->fifo_blocking(idx);
    const std::span<const Time> my_workload = ctx->core_workload(idx);
    const Time deadline = task.deadline();

    if (!split) {
      // Holistic composition: longest path over s·(C_v + B_v), plus each hp
      // task's per-core workload charged once over the whole window.
      std::vector<Time>& weights = ctx->weights_scratch();
      weights.resize(n);
      for (model::NodeId v = 0; v < n; ++v)
        weights[v] = scale * (task.wcet(v) + blocking[v]);
      const Time base = graph::longest_path_length(task.dag(), ctx->topo_order(idx),
                                                   weights, ctx->dp_scratch());

      // Hoist the interference terms out of the fixed point: every hp
      // response is final here, so (wjp, jitter, period) per surviving
      // (j, p) pair is loop-invariant. The table preserves the j-outer /
      // p-inner accumulation order and both skip conditions, so the demand
      // sum is bit-identical to the nested-loop form.
      std::vector<RtaContext::InterferenceTerm>& terms = ctx->interference_scratch();
      terms.clear();
      for (std::size_t j : hp) {
        const std::span<const Time> wj = ctx->core_workload(j);
        const Time period_j = ts.task(j).period();
        for (std::size_t p = 0; p < m; ++p) {
          if (my_workload[p] <= 0.0) continue;  // τ_i never runs there
          const Time wjp = scale * wj[p];
          if (wjp <= 0.0) continue;
          terms.push_back({wjp, std::max(response[j] - wjp, 0.0), period_j});
        }
      }

      const auto iterate = [&](Time start, Time& r_out) {
        Time r = start;
        bool converged = false;
        for (int iter = 0; iter < options.max_iterations; ++iter) {
          Time demand = base;
          for (const RtaContext::InterferenceTerm& t : terms)
            demand += util::ceil_div(r + t.jitter, t.period) * t.wjp;
          if (util::time_le(demand, r)) {
            converged = true;
            break;
          }
          r = demand;
          if (util::time_lt(deadline, r)) break;
        }
        r_out = r;
        return converged;
      };

      Time start = base;
      const bool warm_used = use_warm && warm.response[idx] > start;
      if (warm_used) start = warm.response[idx];
      Time r;
      bool converged = iterate(start, r);
      if (warm_used && !(converged && util::time_le(r, deadline))) {
        // A diverging iteration stops at a start-dependent partial value;
        // rerun cold so the bookkeeping (and any emitted certificate)
        // matches a cold run bit-for-bit, exactly as analyze_global does.
        converged = iterate(base, r);
      } else if (warm_used) {
        ctx->note_warm_hit();
      }
      rta.response_time = converged ? r : util::kTimeInfinity;
      rta.schedulable = converged && util::time_le(r, deadline);
      response[idx] = rta.response_time;
      if (!rta.schedulable) {
        result.schedulable = false;
        response[idx] = util::kTimeInfinity;
      }
      if (tcert != nullptr) {
        tcert->schedulable = rta.schedulable;
        tcert->response = rta.response_time;
        tcert->holistic_base = base;
        if (converged) {
          tcert->claim = cert::TaskClaim::kConverged;
        } else {
          tcert->claim = util::time_lt(deadline, r)
                             ? cert::TaskClaim::kDeadlineMiss
                             : cert::TaskClaim::kIterationBudget;
          tcert->miss_value = r;
        }
      }
      continue;
    }

    // SPLIT: per-segment response times, composed along the longest path.
    if (tcert != nullptr) {
      tcert->segments.assign(n, cert::SegmentCert{});
      for (model::NodeId v = 0; v < n; ++v)
        tcert->segments[v].blocking = blocking[v];
    }
    bool task_diverged = false;
    std::vector<Time>& segment = ctx->weights_scratch();
    segment.assign(n, 0.0);

    // Hoist the per-core interference tables out of the per-node fixed
    // points: all hp responses are final here, so the surviving (j, core)
    // terms are invariant across this task's nodes. Core-major layout;
    // node v streams terms[offs[core] .. offs[core+1]) in the original
    // j order, so each demand sum is bit-identical to the nested form.
    std::vector<RtaContext::InterferenceTerm>& terms = ctx->interference_scratch();
    std::vector<std::size_t>& offs = ctx->interference_offset_scratch();
    terms.clear();
    offs.assign(m + 1, 0);
    for (std::size_t p = 0; p < m; ++p) {
      offs[p] = terms.size();
      for (std::size_t j : hp) {
        const Time wjp = scale * ctx->core_workload(j)[p];
        if (wjp <= 0.0) continue;
        terms.push_back(
            {wjp, std::max(response[j] - wjp, 0.0), ts.task(j).period()});
      }
    }
    offs[m] = terms.size();

    for (model::NodeId v = 0; v < n && !task_diverged; ++v) {
      const ThreadId core = thread_of[v];
      const Time base = scale * (task.wcet(v) + blocking[v]);
      const std::size_t t_begin = offs[core];
      const std::size_t t_end = offs[core + 1];
      const auto iterate = [&](Time start, Time& x_out) {
        Time x = start;
        bool converged = false;
        for (int iter = 0; iter < options.max_iterations; ++iter) {
          Time demand = base;
          for (std::size_t t = t_begin; t < t_end; ++t)
            demand += util::ceil_div(x + terms[t].jitter, terms[t].period) *
                      terms[t].wjp;
          if (util::time_le(demand, x)) {
            converged = true;
            break;
          }
          x = demand;
          if (util::time_lt(deadline, x)) break;  // segment alone misses D
        }
        x_out = x;
        return converged;
      };
      const auto diverges = [&](bool converged, Time x) {
        return (!converged && util::time_le(x, deadline)) ||
               util::time_lt(deadline, x);
      };

      Time start = base;
      const bool warm_used = use_warm && warm.segments[idx][v] > start;
      if (warm_used) start = warm.segments[idx][v];
      Time x;
      bool converged = iterate(start, x);
      if (warm_used && diverges(converged, x)) {
        // Divergence stops at a start-dependent iterate; rerun cold so the
        // bookkeeping (and any emitted certificate) matches a cold run
        // bit-for-bit, exactly as analyze_global does.
        converged = iterate(base, x);
      } else if (warm_used) {
        ctx->note_warm_hit();
      }
      segment[v] = x;
      if (tcert != nullptr) tcert->segments[v].response = x;
      if (diverges(converged, x)) {
        task_diverged = true;
        if (tcert != nullptr) {
          tcert->claim = util::time_lt(deadline, x)
                             ? cert::TaskClaim::kDeadlineMiss
                             : cert::TaskClaim::kIterationBudget;
          tcert->miss_node = v;
          tcert->miss_value = x;
        }
      }
    }

    if (task_diverged) {
      rta.response_time = util::kTimeInfinity;
      rta.schedulable = false;
      result.schedulable = false;
      continue;
    }

    // SPLIT composition: longest DAG path over segment response times.
    rta.response_time = graph::longest_path_length(task.dag(), ctx->topo_order(idx),
                                                   segment, ctx->dp_scratch());
    rta.schedulable = util::time_le(rta.response_time, deadline);
    response[idx] = rta.response_time;
    if (!rta.schedulable) {
      result.schedulable = false;
      response[idx] = util::kTimeInfinity;
    }
    if (rta.schedulable && !segments_out.empty()) segments_out[idx] = segment;
    if (tcert != nullptr) {
      tcert->claim = cert::TaskClaim::kConverged;
      tcert->schedulable = rta.schedulable;
      tcert->response = rta.response_time;
    }
  }

  // Record warm state only from fully schedulable runs: every fixed point
  // converged and is finite, and any later run at scale' >= scale is
  // guaranteed to sit at or above these values. A SPLIT run that copied
  // incremental verdicts never ran those tasks' per-segment fixed points,
  // so it has no segment values to record — skip (the response vector
  // alone would leave warm.segments rows empty and unusable).
  if (ctx->warm_start_enabled() && result.schedulable &&
      (!split || copied == 0)) {
    warm.valid = true;
    warm.scale = scale;
    warm.binding = ctx->binding_generation();
    warm.options = options;
    warm.response = response;
    if (split) warm.segments = std::move(segments_out);
  }

  if (ctx->snapshots_enabled()) {
    RtaContext::PartitionedSnapshot& snap = ctx->partitioned_snapshot();
    snap.valid = true;
    snap.scale = scale;
    snap.cores = m;
    snap.options = options;
    snap.per_task = result.per_task;
    snap.committed = response;
    snap.thread_of.clear();
    snap.thread_of.reserve(ts.size());
    for (const NodeAssignment& a : partition.per_task)
      snap.thread_of.push_back(a.thread_of);
    if (certificate != nullptr)
      snap.cert = *certificate;
    else
      snap.cert.reset();
  }
  return result;
}

}  // namespace rtpool::analysis
