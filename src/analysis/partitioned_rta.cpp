#include "analysis/partitioned_rta.h"

#include <algorithm>
#include <cmath>

#include "analysis/deadlock.h"
#include "graph/algorithms.h"

namespace rtpool::analysis {

namespace {

using util::Time;

/// Per-core WCET footprint W_{j,p} of one task under a partition.
std::vector<Time> per_core_workload(const model::DagTask& task,
                                    const NodeAssignment& assignment,
                                    std::size_t cores) {
  std::vector<Time> w(cores, 0.0);
  for (model::NodeId v = 0; v < task.node_count(); ++v)
    w.at(assignment.thread_of.at(v)) += task.wcet(v);
  return w;
}

}  // namespace

PartitionedRtaResult analyze_partitioned(const model::TaskSet& ts,
                                         const TaskSetPartition& partition,
                                         const PartitionedRtaOptions& options) {
  if (!ts.priorities_distinct())
    throw model::ModelError("analyze_partitioned: task priorities must be distinct");
  if (partition.per_task.size() != ts.size())
    throw model::ModelError("analyze_partitioned: partition size mismatch");

  const std::size_t m = ts.core_count();
  PartitionedRtaResult result;
  result.per_task.resize(ts.size());
  result.schedulable = true;

  // Validate assignments before any use, then cache per-task per-core
  // workloads (response times are filled in priority order below).
  for (std::size_t i = 0; i < ts.size(); ++i) {
    if (partition.per_task[i].thread_of.size() != ts.task(i).node_count())
      throw model::ModelError("analyze_partitioned: assignment size mismatch for " +
                              ts.task(i).name());
  }
  std::vector<std::vector<Time>> workload(ts.size());
  for (std::size_t i = 0; i < ts.size(); ++i)
    workload[i] = per_core_workload(ts.task(i), partition.per_task[i], m);

  std::vector<Time> response(ts.size(), util::kTimeInfinity);

  for (std::size_t idx : ts.priority_order()) {
    const model::DagTask& task = ts.task(idx);
    const NodeAssignment& assignment = partition.per_task[idx];
    if (assignment.thread_of.size() != task.node_count())
      throw model::ModelError("analyze_partitioned: assignment size mismatch for " +
                              task.name());
    PartitionedTaskRta& rta = result.per_task[idx];

    rta.deadlock_free =
        check_deadlock_free_partitioned(task, m, assignment).deadlock_free;
    if (options.require_deadlock_free && !rta.deadlock_free) {
      rta.schedulable = false;
      result.schedulable = false;
      continue;
    }

    const auto hp = ts.higher_priority_of(idx);
    const bool hp_diverged = std::any_of(hp.begin(), hp.end(), [&](std::size_t j) {
      return !std::isfinite(response[j]);
    });
    if (hp_diverged) {
      rta.schedulable = false;
      result.schedulable = false;
      continue;
    }

    // FIFO work-queue blocking B_v: same-task, same-core, precedence-
    // unordered nodes (each may be queued ahead of v once per job).
    const graph::Reachability& reach = task.reachability();
    auto fifo_blocking = [&](model::NodeId v) {
      if (task.type(v) == model::NodeType::BJ) return Time{0.0};
      const ThreadId core = assignment.thread_of[v];
      Time b = 0.0;
      for (model::NodeId u = 0; u < task.node_count(); ++u) {
        if (u == v || assignment.thread_of[u] != core) continue;
        if (reach.reaches(u, v) || reach.reaches(v, u)) continue;
        b += task.wcet(u);
      }
      return b;
    };

    if (options.bound == PartitionedBound::kHolisticPath) {
      // Holistic composition: longest path over C_v + B_v, plus each hp
      // task's per-core workload charged once over the whole window.
      std::vector<Time> weights(task.node_count());
      for (model::NodeId v = 0; v < task.node_count(); ++v)
        weights[v] = task.wcet(v) + fifo_blocking(v);
      const Time base = graph::longest_path(task.dag(), weights).length;

      Time r = base;
      bool converged = false;
      for (int iter = 0; iter < options.max_iterations; ++iter) {
        Time demand = base;
        for (std::size_t j : hp) {
          for (std::size_t p = 0; p < m; ++p) {
            if (workload[idx][p] <= 0.0) continue;  // τ_i never runs there
            const Time wjp = workload[j][p];
            if (wjp <= 0.0) continue;
            const Time jitter = std::max(response[j] - wjp, 0.0);
            demand += util::ceil_div(r + jitter, ts.task(j).period()) * wjp;
          }
        }
        if (util::time_le(demand, r)) {
          converged = true;
          break;
        }
        r = demand;
        if (util::time_lt(task.deadline(), r)) break;
      }
      rta.response_time = converged ? r : util::kTimeInfinity;
      rta.schedulable = converged && util::time_le(r, task.deadline());
      response[idx] = rta.response_time;
      if (!rta.schedulable) {
        result.schedulable = false;
        response[idx] = util::kTimeInfinity;
      }
      continue;
    }

    // Segment response time of node v on its core.
    bool task_diverged = false;
    std::vector<Time> segment(task.node_count(), 0.0);
    for (model::NodeId v = 0; v < task.node_count() && !task_diverged; ++v) {
      const ThreadId core = assignment.thread_of[v];
      const Time base = task.wcet(v) + fifo_blocking(v);
      Time x = base;
      bool converged = false;
      for (int iter = 0; iter < options.max_iterations; ++iter) {
        Time demand = base;
        for (std::size_t j : hp) {
          const Time wjp = workload[j][core];
          if (wjp <= 0.0) continue;
          const Time jitter = std::max(response[j] - wjp, 0.0);
          demand += util::ceil_div(x + jitter, ts.task(j).period()) * wjp;
        }
        if (util::time_le(demand, x)) {
          converged = true;
          break;
        }
        x = demand;
        if (util::time_lt(task.deadline(), x)) break;  // segment alone misses D
      }
      segment[v] = x;
      if (!converged && util::time_le(x, task.deadline())) task_diverged = true;
      if (util::time_lt(task.deadline(), x)) task_diverged = true;
    }

    if (task_diverged) {
      rta.response_time = util::kTimeInfinity;
      rta.schedulable = false;
      result.schedulable = false;
      continue;
    }

    // SPLIT composition: longest DAG path over segment response times.
    rta.response_time = graph::longest_path(task.dag(), segment).length;
    rta.schedulable = util::time_le(rta.response_time, task.deadline());
    response[idx] = rta.response_time;
    if (!rta.schedulable) {
      result.schedulable = false;
      response[idx] = util::kTimeInfinity;
    }
  }
  return result;
}

}  // namespace rtpool::analysis
