#include "analysis/partitioned_rta.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "analysis/rta_context.h"
#include "graph/algorithms.h"
#include "util/bitset.h"

namespace rtpool::analysis {

namespace {

using util::Time;

/// One up-front pass over the whole partition: sizes and thread-id ranges.
/// Everything after this indexes raw vectors without bounds checks.
void validate_partition(const model::TaskSet& ts, const TaskSetPartition& partition) {
  if (partition.per_task.size() != ts.size())
    throw model::ModelError("analyze_partitioned: partition size mismatch");
  const std::size_t m = ts.core_count();
  for (std::size_t i = 0; i < ts.size(); ++i) {
    const model::DagTask& task = ts.task(i);
    const auto& thread_of = partition.per_task[i].thread_of;
    if (thread_of.size() != task.node_count())
      throw model::ModelError("analyze_partitioned: assignment size mismatch for " +
                              task.name());
    for (ThreadId t : thread_of)
      if (t >= m)
        throw model::ModelError("analyze_partitioned: thread id out of range for " +
                                task.name());
  }
}

}  // namespace

std::vector<Time> per_core_workload_vector(const model::DagTask& task,
                                           const NodeAssignment& assignment,
                                           std::size_t cores) {
  const std::size_t n = task.node_count();
  const auto& thread_of = assignment.thread_of;
  if (thread_of.size() != n)
    throw model::ModelError("per_core_workload_vector: assignment size mismatch");
  for (ThreadId t : thread_of)
    if (t >= cores)
      throw model::ModelError("per_core_workload_vector: thread id out of range");
  std::vector<Time> w(cores, 0.0);
  for (model::NodeId v = 0; v < n; ++v) w[thread_of[v]] += task.wcet(v);
  return w;
}

std::vector<Time> fifo_blocking_vector(const model::DagTask& task,
                                       const NodeAssignment& assignment) {
  const std::size_t n = task.node_count();
  const auto& thread_of = assignment.thread_of;
  if (thread_of.size() != n)
    throw model::ModelError("fifo_blocking_vector: assignment size mismatch");

  // Group the nodes by core once (self-sizing: co-location is all that
  // matters here, the platform core count is irrelevant).
  ThreadId max_core = 0;
  for (model::NodeId v = 0; v < n; ++v) max_core = std::max(max_core, thread_of[v]);
  std::vector<util::DynamicBitset> on_core(static_cast<std::size_t>(max_core) + 1,
                                           util::DynamicBitset(n));
  for (model::NodeId v = 0; v < n; ++v) on_core[thread_of[v]].set(v);

  const graph::Reachability& reach = task.reachability();
  std::vector<Time> blocking(n, 0.0);
  util::DynamicBitset mask(n);
  for (model::NodeId v = 0; v < n; ++v) {
    if (task.type(v) == model::NodeType::BJ) continue;  // joins bypass the queue
    reach.unordered_mask(v, mask);
    mask.and_assign(on_core[thread_of[v]]);
    // Ascending-id accumulation: bit-identical to the naive double loop.
    Time b = 0.0;
    mask.for_each([&](std::size_t u) { b += task.wcet(u); });
    blocking[v] = b;
  }
  return blocking;
}

PartitionedRtaResult analyze_partitioned(const model::TaskSet& ts,
                                         const TaskSetPartition& partition,
                                         const PartitionedRtaOptions& options,
                                         RtaContext* ctx) {
  if (!ts.priorities_distinct())
    throw model::ModelError("analyze_partitioned: task priorities must be distinct");
  if (!(options.wcet_scale > 0.0))
    throw model::ModelError("analyze_partitioned: wcet_scale must be > 0");
  validate_partition(ts, partition);

  // All per-(task, assignment) state — workloads W_{i,p}, blocking vectors
  // B_v, Lemma-3 verdicts, topological orders, DP scratch — lives in an
  // RtaContext. A caller-provided context amortizes it across calls
  // (sensitivity probes, the experiment engine's per-trial analyses); a
  // local one reproduces the former per-call work, minus the old O(|V|²)
  // per-call blocking lambda.
  std::optional<RtaContext> local_ctx;
  if (ctx == nullptr) {
    local_ctx.emplace(ts);
    ctx = &*local_ctx;
  } else if (&ctx->task_set() != &ts) {
    throw model::ModelError("analyze_partitioned: context bound to another task set");
  }
  ctx->bind_partition(partition);

  const std::size_t m = ts.core_count();
  const double scale = options.wcet_scale;
  PartitionedRtaResult result;
  result.per_task.resize(ts.size());
  result.schedulable = true;

  // Warm-start state: applicable when recorded for this exact analysis and
  // partition at a scale <= ours (responses are monotone in the scale, so
  // the recorded fixed points sit below ours and the monotone iteration
  // lands on bit-identical results).
  RtaContext::WarmPartitioned& warm = ctx->warm_partitioned();
  const bool use_warm = ctx->warm_start_enabled() && warm.valid &&
                        warm.binding == ctx->binding_generation() &&
                        same_analysis(warm.options, options) && warm.scale <= scale;
  const bool split = options.bound == PartitionedBound::kSplitPerSegment;
  std::vector<std::vector<Time>> segments_out;  // recorded on schedulable runs
  if (ctx->warm_start_enabled() && split) segments_out.resize(ts.size());

  std::vector<Time> response(ts.size(), util::kTimeInfinity);

  for (std::size_t idx : ctx->priority_order()) {
    const model::DagTask& task = ts.task(idx);
    const std::size_t n = task.node_count();
    PartitionedTaskRta& rta = result.per_task[idx];

    rta.deadlock_free = ctx->deadlock_free(idx);
    if (options.require_deadlock_free && !rta.deadlock_free) {
      rta.schedulable = false;
      result.schedulable = false;
      continue;
    }

    const auto& hp = ctx->higher_priority(idx);
    const bool hp_diverged = std::any_of(hp.begin(), hp.end(), [&](std::size_t j) {
      return !std::isfinite(response[j]);
    });
    if (hp_diverged) {
      rta.schedulable = false;
      result.schedulable = false;
      continue;
    }

    const auto& thread_of = partition.per_task[idx].thread_of;
    const std::vector<Time>& blocking = ctx->fifo_blocking(idx);
    const std::vector<Time>& my_workload = ctx->core_workload(idx);
    const Time deadline = task.deadline();

    if (!split) {
      // Holistic composition: longest path over s·(C_v + B_v), plus each hp
      // task's per-core workload charged once over the whole window.
      std::vector<Time>& weights = ctx->weights_scratch();
      weights.resize(n);
      for (model::NodeId v = 0; v < n; ++v)
        weights[v] = scale * (task.wcet(v) + blocking[v]);
      const Time base = graph::longest_path_length(task.dag(), ctx->topo_order(idx),
                                                   weights, ctx->dp_scratch());

      Time r = base;
      if (use_warm && warm.response[idx] > r) {
        r = warm.response[idx];
        ctx->note_warm_hit();
      }
      bool converged = false;
      for (int iter = 0; iter < options.max_iterations; ++iter) {
        Time demand = base;
        for (std::size_t j : hp) {
          const std::vector<Time>& wj = ctx->core_workload(j);
          const Time period_j = ts.task(j).period();
          for (std::size_t p = 0; p < m; ++p) {
            if (my_workload[p] <= 0.0) continue;  // τ_i never runs there
            const Time wjp = scale * wj[p];
            if (wjp <= 0.0) continue;
            const Time jitter = std::max(response[j] - wjp, 0.0);
            demand += util::ceil_div(r + jitter, period_j) * wjp;
          }
        }
        if (util::time_le(demand, r)) {
          converged = true;
          break;
        }
        r = demand;
        if (util::time_lt(deadline, r)) break;
      }
      rta.response_time = converged ? r : util::kTimeInfinity;
      rta.schedulable = converged && util::time_le(r, deadline);
      response[idx] = rta.response_time;
      if (!rta.schedulable) {
        result.schedulable = false;
        response[idx] = util::kTimeInfinity;
      }
      continue;
    }

    // SPLIT: per-segment response times, composed along the longest path.
    bool task_diverged = false;
    std::vector<Time>& segment = ctx->weights_scratch();
    segment.assign(n, 0.0);
    for (model::NodeId v = 0; v < n && !task_diverged; ++v) {
      const ThreadId core = thread_of[v];
      const Time base = scale * (task.wcet(v) + blocking[v]);
      Time x = base;
      if (use_warm && warm.segments[idx][v] > x) {
        x = warm.segments[idx][v];
        ctx->note_warm_hit();
      }
      bool converged = false;
      for (int iter = 0; iter < options.max_iterations; ++iter) {
        Time demand = base;
        for (std::size_t j : hp) {
          const Time wjp = scale * ctx->core_workload(j)[core];
          if (wjp <= 0.0) continue;
          const Time jitter = std::max(response[j] - wjp, 0.0);
          demand += util::ceil_div(x + jitter, ts.task(j).period()) * wjp;
        }
        if (util::time_le(demand, x)) {
          converged = true;
          break;
        }
        x = demand;
        if (util::time_lt(deadline, x)) break;  // segment alone misses D
      }
      segment[v] = x;
      if (!converged && util::time_le(x, deadline)) task_diverged = true;
      if (util::time_lt(deadline, x)) task_diverged = true;
    }

    if (task_diverged) {
      rta.response_time = util::kTimeInfinity;
      rta.schedulable = false;
      result.schedulable = false;
      continue;
    }

    // SPLIT composition: longest DAG path over segment response times.
    rta.response_time = graph::longest_path_length(task.dag(), ctx->topo_order(idx),
                                                   segment, ctx->dp_scratch());
    rta.schedulable = util::time_le(rta.response_time, deadline);
    response[idx] = rta.response_time;
    if (!rta.schedulable) {
      result.schedulable = false;
      response[idx] = util::kTimeInfinity;
    }
    if (rta.schedulable && !segments_out.empty()) segments_out[idx] = segment;
  }

  // Record warm state only from fully schedulable runs: every fixed point
  // converged and is finite, and any later run at scale' >= scale is
  // guaranteed to sit at or above these values.
  if (ctx->warm_start_enabled() && result.schedulable) {
    warm.valid = true;
    warm.scale = scale;
    warm.binding = ctx->binding_generation();
    warm.options = options;
    warm.response = response;
    if (split) warm.segments = std::move(segments_out);
  }
  return result;
}

}  // namespace rtpool::analysis
