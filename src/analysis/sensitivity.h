// Sensitivity analysis: critical WCET scaling.
//
// For a schedulability test T, the *critical scaling factor* of a task set
// is the largest s such that the set with every WCET multiplied by s still
// passes T (periods and deadlines unchanged). s > 1 quantifies headroom,
// s < 1 the overload; comparing s across tests measures their pessimism on
// one concrete instance (e.g. paper's b̄ bound vs the antichain bound).
//
// Found by binary search, valid because all tests in this library are
// sustainable in the WCETs (scaling all C's down never turns a schedulable
// verdict unschedulable; see tests/test_global_rta.cpp).
//
// Two entry points:
//  * `critical_scaling_factor` over a predicate — generic reference path,
//    takes an arbitrary test and materializes a scaled TaskSet copy per
//    probe (full revalidation, reachability closure, cache rebuild). Any
//    test expressible as a predicate works.
//  * `critical_scaling_factor` over a registered `Analyzer` — the fast
//    path, one driver for every analysis behind the spine (analyzer.h).
//    One RtaContext carries the structural caches and warm-start state
//    across probes, partition-based analyzers partition once for the whole
//    search, each probe runs the analysis with `wcet_scale = s` on the
//    *original* set (no copies), and probes where some task's scaled
//    critical path alone already exceeds its deadline are cut off without
//    running the analysis at all (verdict-safe: every analysis
//    lower-bounds a task's response by s·len, so such probes always
//    fail). The probe *sequence* is identical to the generic path.
//
// The former per-family fast paths
// `critical_scaling_factor_{global,partitioned,federated}` survive as thin
// wrappers that resolve their options struct to the registered analyzer
// (`analyzer_for`) and delegate — bit-identical to both their pre-spine
// implementations and the analyzer-generic driver.
#pragma once

#include <functional>

#include "analysis/analyzer.h"
#include "analysis/federated.h"
#include "analysis/global_rta.h"
#include "analysis/partition.h"
#include "analysis/partitioned_rta.h"
#include "model/task_set.h"

namespace rtpool::analysis {

struct SensitivityOptions {
  double lo = 0.0;        ///< Search bracket lower bound (assumed feasible
                          ///< direction; s = 0 degenerates, never returned).
  double hi = 8.0;        ///< Upper bracket; results are clamped below it.
  double tolerance = 1e-3;///< Absolute tolerance on s.
  int max_iterations = 64;
  /// Fast paths only: reuse converged fixed points from earlier passing
  /// probes as iteration starts (bit-identical results; see rta_context.h).
  /// Exposed so tests can assert warm ≡ cold.
  bool warm_start = true;
  /// Fast paths only: fail probes whose scaled critical path already
  /// exceeds some deadline without running the analysis (verdict-safe).
  bool critical_path_cutoff = true;
};

/// Telemetry-carrying result of the fast sensitivity paths.
struct SensitivityResult {
  double factor = 0.0;        ///< The critical scaling factor (0.0 = infeasible).
  int probes = 0;             ///< Schedulability probes issued (incl. cutoffs).
  int cutoff_probes = 0;      ///< Probes decided by the critical-path cutoff.
  std::size_t warm_hits = 0;  ///< Fixed points started from warm state.
};

/// A schedulability test as a predicate over task sets.
using SchedulabilityTest = std::function<bool(const model::TaskSet&)>;

/// Scale every WCET of every task by `factor` (> 0); periods, deadlines and
/// priorities are unchanged. Throws std::invalid_argument on factor <= 0.
model::TaskSet scale_wcets(const model::TaskSet& ts, double factor);

/// Largest s in (options.lo, options.hi] with test(scale_wcets(ts, s))
/// true, up to the tolerance; returns 0.0 if even the smallest probed
/// scale fails (the bracket's low end is rejected). Generic reference
/// path: one scaled TaskSet copy per probe.
double critical_scaling_factor(const model::TaskSet& ts,
                               const SchedulabilityTest& test,
                               const SensitivityOptions& options = {});

/// Fast path, analyzer-generic: critical scaling factor of
/// `analyzer.analyze(ts, ctx, base)` with `base.wcet_scale` overwritten per
/// probe. One RtaContext (warm starts per `options.warm_start`, honoured
/// only by analyzers with supports_warm_start) serves the whole search.
/// Partition-based analyzers partition once: `base.partition` if supplied,
/// otherwise `analyzer.make_partition(ts)` — whose failure makes every
/// probe fail, i.e. factor 0.0, without throwing. Same probe sequence as
/// the predicate path; factors agree up to float association (s·ΣC vs
/// Σ s·C), i.e. within a few ULP-scaled epsilons of each other.
SensitivityResult critical_scaling_factor(const model::TaskSet& ts,
                                          const Analyzer& analyzer,
                                          const AnalyzerOptions& base = {},
                                          const SensitivityOptions& options = {});

/// Fast path: critical scaling factor of `analyze_global(ts, rta)` (the
/// `rta.wcet_scale` field is overwritten per probe). Thin wrapper over the
/// analyzer-generic driver via `analyzer_for(rta)`.
SensitivityResult critical_scaling_factor_global(
    const model::TaskSet& ts, const GlobalRtaOptions& rta,
    const SensitivityOptions& options = {});

/// Fast path: critical scaling factor of
/// `analyze_partitioned(ts, partition, rta)`. The partition is bound once
/// into the probe context; blocking vectors and per-core workloads are
/// computed once for the whole search. Thin wrapper over the
/// analyzer-generic driver via `analyzer_for(rta)`.
SensitivityResult critical_scaling_factor_partitioned(
    const model::TaskSet& ts, const TaskSetPartition& partition,
    const PartitionedRtaOptions& rta, const SensitivityOptions& options = {});

/// Fast path: critical scaling factor of `analyze_federated(ts, fed)`.
/// Thin wrapper over the analyzer-generic driver via `analyzer_for(fed)`.
SensitivityResult critical_scaling_factor_federated(
    const model::TaskSet& ts, const FederatedOptions& fed,
    const SensitivityOptions& options = {});

}  // namespace rtpool::analysis
