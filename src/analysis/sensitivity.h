// Sensitivity analysis: critical WCET scaling.
//
// For a schedulability test T, the *critical scaling factor* of a task set
// is the largest s such that the set with every WCET multiplied by s still
// passes T (periods and deadlines unchanged). s > 1 quantifies headroom,
// s < 1 the overload; comparing s across tests measures their pessimism on
// one concrete instance (e.g. paper's b̄ bound vs the antichain bound).
//
// Found by binary search, valid because all tests in this library are
// sustainable in the WCETs (scaling all C's down never turns a schedulable
// verdict unschedulable; see tests/test_global_rta.cpp).
#pragma once

#include <functional>

#include "model/task_set.h"

namespace rtpool::analysis {

struct SensitivityOptions {
  double lo = 0.0;        ///< Search bracket lower bound (assumed feasible
                          ///< direction; s = 0 degenerates, never returned).
  double hi = 8.0;        ///< Upper bracket; results are clamped below it.
  double tolerance = 1e-3;///< Absolute tolerance on s.
  int max_iterations = 64;
};

/// A schedulability test as a predicate over task sets.
using SchedulabilityTest = std::function<bool(const model::TaskSet&)>;

/// Scale every WCET of every task by `factor` (> 0); periods, deadlines and
/// priorities are unchanged. Throws std::invalid_argument on factor <= 0.
model::TaskSet scale_wcets(const model::TaskSet& ts, double factor);

/// Largest s in (options.lo, options.hi] with test(scale_wcets(ts, s))
/// true, up to the tolerance; returns 0.0 if even the smallest probed
/// scale fails (the bracket's low end is rejected).
double critical_scaling_factor(const model::TaskSet& ts,
                               const SchedulabilityTest& test,
                               const SensitivityOptions& options = {});

}  // namespace rtpool::analysis
