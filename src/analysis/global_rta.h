// Global fixed-priority response-time analysis (Section 4.1).
//
// Baseline: the DAG-task analysis of Melani et al. [14] as restated by the
// paper. For each task τ_i (in decreasing priority order) the response time
// is the least fixed point of
//
//   R_i = len(λ_i*) + (1/D) · [ vol(τ_i) − len(λ_i*) + Σ_{j ∈ hp(i)} I_{j,i}(R_i) ]
//
// with denominator D = m (baseline, [14]) or D = l̄(τ_i) (the paper's
// limited-concurrency adaptation, Lemma 4 / Eq. 4). The inter-task
// interference bound is
//
//   I_{j,i}(L) = ceil((L + R_j − vol(τ_j)/m) / T_j) · vol(τ_j)       (paper)
//
// or the refined carry-in form of [14] (ablation):
//
//   I_{j,i}(L) = floor(A/T_j)·vol(τ_j) + min(vol(τ_j), m·(A mod T_j)),
//   A = L + R_j − vol(τ_j)/m.
//
// Under the limited-concurrency test, a task with l̄(τ_i) <= 0 is deemed
// unschedulable outright: the deadlock-freedom guarantee of Section 3 is
// lost (Lemma 1).
#pragma once

#include <string>
#include <vector>

#include "model/task_set.h"
#include "util/time.h"

namespace rtpool::analysis {

namespace cert {
struct GlobalCert;
}  // namespace cert

/// Inter-task interference bound flavor.
enum class InterferenceBound {
  kPaperCeil,      ///< ceil-based bound as printed in the DAC'19 paper.
  kMelaniCarryIn,  ///< refined carry-in bound of Melani et al. [14].
};

/// Which lower bound on the available concurrency feeds Eq. (4).
enum class ConcurrencyBound {
  kMaxAffectingForks,  ///< l̄ = m − b̄ (Section 3.1, the paper's bound).
  kMaxAntichain,       ///< l̄' = m − maxAntichain(BF) (refinement, see
                       ///< antichain.h — the paper's future-work direction).
};

struct GlobalRtaOptions {
  /// false = baseline [14] (denominator m); true = Section 4.1 (denominator
  /// l̄(τ_i), plus the l̄ > 0 deadlock-freedom requirement).
  bool limited_concurrency = false;
  InterferenceBound bound = InterferenceBound::kPaperCeil;
  ConcurrencyBound concurrency = ConcurrencyBound::kMaxAffectingForks;
  /// Safety valve for the fixed-point iteration.
  int max_iterations = 100000;
  /// Analyze the task set as if every WCET were multiplied by this factor
  /// (must be > 0), without materializing a scaled copy: all WCET-derived
  /// quantities (volumes, critical-path lengths) are scaled on the fly from
  /// the cached unit-scale values. 1.0 is bit-identical to the unscaled
  /// analysis. Used by the sensitivity fast path (see sensitivity.h).
  double wcet_scale = 1.0;
};

/// Per-task analysis outcome.
struct TaskRta {
  util::Time response_time = util::kTimeInfinity;
  bool schedulable = false;
  long concurrency_bound = 0;  ///< l̄(τ) (only meaningful if limited_concurrency).
};

struct GlobalRtaResult {
  bool schedulable = false;          ///< All tasks meet their deadlines.
  std::vector<TaskRta> per_task;     ///< Indexed like TaskSet::tasks().
};

class RtaContext;

/// Run the analysis over the whole task set. Priorities must be pairwise
/// distinct (throws ModelError otherwise); tasks are processed from highest
/// to lowest priority so that hp response times are available.
///
/// `ctx` (optional) must have been built for `ts`; it caches the priority
/// orders and hoisted per-task constants across calls and carries the
/// warm-start state for repeated scaled runs (see rta_context.h). Without a
/// context the call derives the same state locally — results are identical
/// either way.
///
/// `certificate` (optional): when non-null, filled with a machine-checkable
/// proof of the result (see cert.h) — per-task claims, the final iterates
/// with their interference breakdown, and the b̄ witnesses. Certificates
/// are identical for warm-started and cold runs: converged fixed points are
/// bit-identical by the warm-start invariant, diverging warm runs are rerun
/// cold, and the breakdown is recorded by re-evaluating the recurrence at
/// the final iterate.
GlobalRtaResult analyze_global(const model::TaskSet& ts,
                               const GlobalRtaOptions& options = {},
                               RtaContext* ctx = nullptr,
                               cert::GlobalCert* certificate = nullptr);

}  // namespace rtpool::analysis
