#include "analysis/rta_context.h"

#include "analysis/deadlock.h"
#include "graph/algorithms.h"

namespace rtpool::analysis {

bool same_analysis(const GlobalRtaOptions& a, const GlobalRtaOptions& b) {
  return a.limited_concurrency == b.limited_concurrency && a.bound == b.bound &&
         a.concurrency == b.concurrency && a.max_iterations == b.max_iterations;
}

bool same_analysis(const PartitionedRtaOptions& a, const PartitionedRtaOptions& b) {
  return a.max_iterations == b.max_iterations &&
         a.require_deadlock_free == b.require_deadlock_free && a.bound == b.bound;
}

RtaContext::RtaContext(const model::TaskSet& ts) : ts_(&ts) {
  const std::size_t n = ts.size();
  higher_priority_.resize(n);
  higher_priority_built_.assign(n, 0);
  topo_.resize(n);
  topo_built_.assign(n, 0);
}

const std::vector<std::size_t>& RtaContext::priority_order() {
  if (!priority_order_built_) {
    priority_order_ = ts_->priority_order();
    priority_order_built_ = true;
  }
  return priority_order_;
}

const std::vector<std::size_t>& RtaContext::higher_priority(std::size_t i) {
  if (!higher_priority_built_.at(i)) {
    higher_priority_[i] = ts_->higher_priority_of(i);
    higher_priority_built_[i] = 1;
  }
  return higher_priority_[i];
}

const std::vector<graph::NodeId>& RtaContext::topo_order(std::size_t i) {
  if (!topo_built_.at(i)) {
    topo_[i] = graph::topological_order(ts_->task(i).dag());
    topo_built_[i] = 1;
  }
  return topo_[i];
}

bool RtaContext::seed_warm_from(
    const RtaContext& prior,
    const std::vector<std::optional<std::size_t>>& task_map) {
  if (task_map.size() != ts_->size())
    throw model::ModelError("RtaContext::seed_warm_from: task_map size mismatch");
  const WarmGlobal& src = prior.warm_global_;
  if (!src.valid) return false;
  WarmGlobal& dst = warm_global_;
  dst.valid = true;
  dst.scale = src.scale;
  dst.options = src.options;
  // Unmapped (new) tasks get 0: below any base value, so the fixed point
  // effectively cold-starts for them while surviving tasks resume from
  // their prior converged response.
  dst.response.assign(ts_->size(), 0.0);
  for (std::size_t i = 0; i < task_map.size(); ++i) {
    if (!task_map[i].has_value()) continue;
    if (*task_map[i] >= src.response.size())
      throw model::ModelError("RtaContext::seed_warm_from: task_map out of range");
    dst.response[i] = src.response[*task_map[i]];
  }
  return true;
}

void RtaContext::bind_partition(const TaskSetPartition& partition) {
  if (partition.per_task.size() != ts_->size())
    throw model::ModelError("RtaContext::bind_partition: partition size mismatch");
  if (binding_ != 0 && bound_.per_task == partition.per_task) return;  // no-op

  const std::size_t m = ts_->core_count();
  const std::size_t n = ts_->size();
  core_workload_.resize(n);
  fifo_blocking_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    // per_core_workload_vector validates sizes and thread-id ranges.
    core_workload_[i] =
        per_core_workload_vector(ts_->task(i), partition.per_task[i], m);
    fifo_blocking_[i] = fifo_blocking_vector(ts_->task(i), partition.per_task[i]);
  }
  bound_ = partition;
  deadlock_free_.assign(n, -1);
  ++binding_;
}

bool RtaContext::deadlock_free(std::size_t i) {
  if (binding_ == 0)
    throw model::ModelError("RtaContext::deadlock_free: no partition bound");
  if (deadlock_free_.at(i) < 0) {
    deadlock_free_[i] =
        check_deadlock_free_partitioned(ts_->task(i), ts_->core_count(),
                                        bound_.per_task[i])
                .deadlock_free
            ? 1
            : 0;
  }
  return deadlock_free_[i] == 1;
}

}  // namespace rtpool::analysis
