#include "analysis/rta_context.h"

#include <algorithm>

#include "analysis/deadlock.h"
#include "graph/algorithms.h"
#include "graph/reachability.h"

namespace rtpool::analysis {

bool same_analysis(const GlobalRtaOptions& a, const GlobalRtaOptions& b) {
  return a.limited_concurrency == b.limited_concurrency && a.bound == b.bound &&
         a.concurrency == b.concurrency && a.max_iterations == b.max_iterations;
}

bool same_analysis(const PartitionedRtaOptions& a, const PartitionedRtaOptions& b) {
  return a.max_iterations == b.max_iterations &&
         a.require_deadlock_free == b.require_deadlock_free && a.bound == b.bound;
}

RtaContext::RtaContext(const model::TaskSet& ts) : ts_(&ts) { reset(ts); }

void RtaContext::reset(const model::TaskSet& ts) {
  ts_ = &ts;
  const std::size_t n = ts.size();

  view_built_ = false;
  view_arena_.reset();  // buffer capacity survives in arena_buffer_

  priority_order_built_ = false;
  if (higher_priority_.size() < n) higher_priority_.resize(n);
  higher_priority_built_.assign(n, 0);

  binding_ = 0;
  bound_.per_task.clear();
  bound_cores_ = 0;
  deadlock_free_.clear();

  warm_enabled_ = false;
  warm_hits_ = 0;
  warm_global_.valid = false;
  warm_partitioned_.valid = false;

  snapshots_enabled_ = false;
  global_snapshot_.valid = false;
  partitioned_snapshot_.valid = false;

  incremental_.active = false;
  incremental_.prefix = 0;
  incremental_hits_ = 0;
}

void RtaContext::rebuild_view() {
  const std::size_t bytes = model::TaskSetView::bytes_required(*ts_);
  if (arena_buffer_.size() < bytes) arena_buffer_.resize(bytes);
  view_arena_.emplace(arena_buffer_.data(), arena_buffer_.size(),
                      std::pmr::new_delete_resource());
  view_.rebuild(*ts_, *view_arena_);
  view_built_ = true;
}

const model::TaskSetView& RtaContext::view() {
  if (!view_built_) rebuild_view();
  return view_;
}

const std::vector<std::size_t>& RtaContext::priority_order() {
  if (!priority_order_built_) {
    priority_order_ = ts_->priority_order();
    priority_order_built_ = true;
  }
  return priority_order_;
}

const std::vector<std::size_t>& RtaContext::higher_priority(std::size_t i) {
  if (!higher_priority_built_.at(i)) {
    higher_priority_[i] = ts_->higher_priority_of(i);
    higher_priority_built_[i] = 1;
  }
  return higher_priority_[i];
}

const std::vector<graph::NodeId>& RtaContext::topo_order(std::size_t i) {
  // DagTask caches its one topological order at construction; serving it
  // directly keeps the context free of per-task order copies.
  return ts_->task(i).topo_order();
}

bool RtaContext::seed_warm_from(
    const RtaContext& prior,
    const std::vector<std::optional<std::size_t>>& task_map) {
  if (task_map.size() != ts_->size())
    throw model::ModelError("RtaContext::seed_warm_from: task_map size mismatch");
  const WarmGlobal& src = prior.warm_global_;
  if (!src.valid) return false;
  WarmGlobal& dst = warm_global_;
  dst.valid = true;
  dst.scale = src.scale;
  dst.options = src.options;
  // Unmapped (new) tasks get 0: below any base value, so the fixed point
  // effectively cold-starts for them while surviving tasks resume from
  // their prior converged response.
  dst.response.assign(ts_->size(), 0.0);
  for (std::size_t i = 0; i < task_map.size(); ++i) {
    if (!task_map[i].has_value()) continue;
    if (*task_map[i] >= src.response.size())
      throw model::ModelError("RtaContext::seed_warm_from: task_map out of range");
    dst.response[i] = src.response[*task_map[i]];
  }
  return true;
}

void RtaContext::compute_fifo_blocking_row(
    std::size_t i, const std::vector<ThreadId>& thread_of) {
  const model::DagTask& task = ts_->task(i);
  const std::size_t n = task.node_count();
  const std::size_t off = view_.node_offset(i);
  const std::span<const util::Time> wcets = view_.task_wcets(i);
  util::Time* blocking = fifo_blocking_flat_.data() + off;

  // Group the nodes by core once (self-sizing: co-location is all that
  // matters here, the platform core count is irrelevant).
  ThreadId max_core = 0;
  for (model::NodeId v = 0; v < n; ++v) max_core = std::max(max_core, thread_of[v]);
  const std::size_t groups = static_cast<std::size_t>(max_core) + 1;
  if (on_core_scratch_.size() < groups) on_core_scratch_.resize(groups);
  for (std::size_t c = 0; c < groups; ++c) on_core_scratch_[c].resize_clear(n);
  for (model::NodeId v = 0; v < n; ++v) on_core_scratch_[thread_of[v]].set(v);

  const graph::Reachability& reach = task.reachability();
  for (model::NodeId v = 0; v < n; ++v) {
    if (task.type(v) == model::NodeType::BJ) {
      blocking[v] = 0.0;  // joins bypass the queue
      continue;
    }
    // Fused word sweep over on_core(core) ∧ ¬(anc(v) ∨ desc(v)) \ {v}: one
    // pass instead of unordered_mask (set_all + two and_nots) followed by
    // an and_assign. Ascending-id accumulation, so the sum is bit-identical
    // to the naive double loop (and to fifo_blocking_vector).
    const std::span<const std::uint64_t> aw = reach.ancestors(v).words();
    const std::span<const std::uint64_t> dw = reach.descendants(v).words();
    const std::span<const std::uint64_t> cw =
        on_core_scratch_[thread_of[v]].words();
    const std::size_t self_word = v / 64;
    util::Time b = 0.0;
    for (std::size_t w = 0; w < cw.size(); ++w) {
      std::uint64_t bits = cw[w] & ~(aw[w] | dw[w]);
      if (w == self_word) bits &= ~(std::uint64_t{1} << (v % 64));
      while (bits != 0) {
        const int t = __builtin_ctzll(bits);
        b += wcets[w * 64 + static_cast<std::size_t>(t)];
        bits &= bits - 1;
      }
    }
    blocking[v] = b;
  }
}

void RtaContext::bind_partition(const TaskSetPartition& partition) {
  const std::size_t n = ts_->size();
  if (partition.per_task.size() != n)
    throw model::ModelError("RtaContext::bind_partition: partition size mismatch");
  if (binding_ != 0 && bound_.per_task == partition.per_task) return;  // no-op

  const std::size_t m = ts_->core_count();
  for (std::size_t i = 0; i < n; ++i) {
    const auto& thread_of = partition.per_task[i].thread_of;
    if (thread_of.size() != ts_->task(i).node_count())
      throw model::ModelError(
          "RtaContext::bind_partition: assignment size mismatch");
    for (ThreadId t : thread_of)
      if (t >= m)
        throw model::ModelError(
            "RtaContext::bind_partition: thread id out of range");
  }

  view();  // flat rows are indexed through the view's node offsets
  bound_cores_ = m;
  core_workload_flat_.assign(n * m, 0.0);
  fifo_blocking_flat_.assign(view_.total_nodes(), 0.0);
  deadlock_free_.assign(n, -1);

  // When incremental state is armed, a clean task that keeps its
  // node-to-thread row reuses the prior W_{i,p} row, B_v row and Lemma-3
  // verdict: all three are pure functions of (task content, assignment
  // row, core count), independent of the other tasks.
  const bool reuse = incremental_.active && incremental_.prior_cores == m &&
                     !incremental_.prior_thread_of.empty();

  for (std::size_t i = 0; i < n; ++i) {
    const auto& thread_of = partition.per_task[i].thread_of;
    if (reuse && incremental_.clean[i]) {
      const std::size_t j = incremental_.prior_index[i];
      if (incremental_.prior_thread_of[j] == thread_of) {
        std::copy_n(incremental_.prior_core_workload_flat.data() + j * m, m,
                    core_workload_flat_.data() + i * m);
        std::copy_n(incremental_.prior_fifo_blocking_flat.data() +
                        incremental_.prior_node_offset[j],
                    view_.node_count(i),
                    fifo_blocking_flat_.data() + view_.node_offset(i));
        deadlock_free_[i] = incremental_.prior_deadlock_free[j];
        continue;
      }
    }
    util::Time* w = core_workload_flat_.data() + i * m;
    const std::span<const util::Time> wcets = view_.task_wcets(i);
    for (std::size_t v = 0; v < thread_of.size(); ++v) w[thread_of[v]] += wcets[v];
    compute_fifo_blocking_row(i, thread_of);
  }
  bound_ = partition;
  ++binding_;
}

bool RtaContext::deadlock_free(std::size_t i) {
  if (binding_ == 0)
    throw model::ModelError("RtaContext::deadlock_free: no partition bound");
  if (deadlock_free_.at(i) < 0) {
    deadlock_free_[i] = is_deadlock_free_partitioned(
                            ts_->task(i), ts_->core_count(), bound_.per_task[i])
                            ? 1
                            : 0;
  }
  return deadlock_free_[i] == 1;
}

std::size_t RtaContext::begin_incremental(
    const RtaContext& prior,
    const std::vector<std::optional<std::size_t>>& task_map,
    const std::vector<char>& dirty) {
  const std::size_t n = ts_->size();
  const std::size_t n_prior = prior.ts_->size();
  if (task_map.size() != n)
    throw model::ModelError("RtaContext::begin_incremental: task_map size mismatch");

  Incremental& inc = incremental_;
  inc.prior_index.assign(n, kNoPrior);
  inc.clean.assign(n, 0);
  std::vector<char> used(n_prior, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (!task_map[i].has_value()) continue;
    const std::size_t j = *task_map[i];
    if (j >= n_prior)
      throw model::ModelError(
          "RtaContext::begin_incremental: task_map out of range");
    if (used[j])
      throw model::ModelError(
          "RtaContext::begin_incremental: task_map not injective");
    used[j] = 1;
    inc.prior_index[i] = j;
    inc.clean[i] = (i < dirty.size() && dirty[i]) ? 0 : 1;
  }

  inc.prior_global = prior.global_snapshot_;
  inc.prior_partitioned = prior.partitioned_snapshot_;
  inc.prior_core_workload_flat = prior.core_workload_flat_;
  inc.prior_fifo_blocking_flat = prior.fifo_blocking_flat_;
  inc.prior_deadlock_free = prior.deadlock_free_;
  inc.prior_cores = prior.bound_cores_;
  inc.prior_thread_of.clear();
  inc.prior_node_offset.clear();
  if (prior.binding_ != 0) {
    inc.prior_thread_of.reserve(n_prior);
    for (const NodeAssignment& a : prior.bound_.per_task)
      inc.prior_thread_of.push_back(a.thread_of);
    inc.prior_node_offset.resize(n_prior + 1);
    for (std::size_t j = 0; j <= n_prior; ++j)
      inc.prior_node_offset[j] = prior.view_.node_offset(j);
  }

  // Structural prefix: position k of this set's priority order is copyable
  // iff its task is clean AND its prior incarnation j saw EXACTLY the
  // prior incarnations of positions 0..k-1 as its higher-priority set.
  // The count check (|hp_old(j)| == k) plus the membership check over the
  // (injective) mapped prefix establishes set equality; membership uses
  // the same priority/index tie-break as TaskSet::higher_priority_of, so
  // the ordered interference inputs of j's fixed point are unchanged.
  const model::TaskSet& old_ts = *prior.ts_;
  const auto hp_old = [&](std::size_t h, std::size_t j) {
    const int ph = old_ts.task(h).priority();
    const int pj = old_ts.task(j).priority();
    return ph < pj || (ph == pj && h < j);
  };
  const std::vector<std::size_t>& order = priority_order();
  std::size_t prefix = 0;
  for (std::size_t k = 0; k < order.size(); ++k) {
    const std::size_t idx = order[k];
    if (!inc.clean[idx]) break;
    const std::size_t j = inc.prior_index[idx];
    std::size_t hp_count = 0;
    for (std::size_t h = 0; h < n_prior; ++h)
      if (hp_old(h, j)) ++hp_count;
    if (hp_count != k) break;
    bool all_hp = true;
    for (std::size_t e = 0; e < k && all_hp; ++e)
      all_hp = hp_old(inc.prior_index[order[e]], j);
    if (!all_hp) break;
    prefix = k + 1;
  }
  inc.prefix = prefix;
  inc.active = true;
  incremental_hits_ = 0;
  return prefix;
}

}  // namespace rtpool::analysis
