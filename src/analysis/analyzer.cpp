#include "analysis/analyzer.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "analysis/rta_context.h"
#include "util/thread_annotations.h"

namespace rtpool::analysis {

namespace {

using util::Time;

/// Fill Report::limiting_task / limiting_ratio from the per-task verdicts:
/// the lowest-index failing task when unschedulable, otherwise the task
/// with the largest R/D ratio among finite responses.
void finalize_limits(Report& rep, const model::TaskSet& ts) {
  rep.limiting_task.reset();
  rep.limiting_ratio = 0.0;
  if (rep.per_task.empty()) return;
  if (!rep.schedulable) {
    for (std::size_t i = 0; i < rep.per_task.size(); ++i) {
      if (!rep.per_task[i].schedulable) {
        rep.limiting_task = i;
        rep.limiting_ratio = rep.per_task[i].response_time / ts.task(i).deadline();
        return;
      }
    }
    return;
  }
  double best = -1.0;
  for (std::size_t i = 0; i < rep.per_task.size(); ++i) {
    const Time r = rep.per_task[i].response_time;
    if (!std::isfinite(r)) continue;
    const double ratio = r / ts.task(i).deadline();
    if (ratio > best) {
      best = ratio;
      rep.limiting_task = i;
      rep.limiting_ratio = ratio;
    }
  }
}

std::string miss_message(const model::TaskSet& ts, std::size_t i, Time response) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "response time %.6g exceeds deadline %.6g",
                response, ts.task(i).deadline());
  return buf;
}

/// Wrap a family payload into the Report's certificate envelope.
template <typename FamilyCert>
std::shared_ptr<const cert::Certificate> seal_certificate(
    cert::Family family, const std::string& analyzer, double wcet_scale,
    bool schedulable, FamilyCert&& payload) {
  auto c = std::make_shared<cert::Certificate>();
  c->family = family;
  c->analyzer = analyzer;
  c->wcet_scale = wcet_scale;
  c->schedulable = schedulable;
  if constexpr (std::is_same_v<std::decay_t<FamilyCert>, cert::GlobalCert>)
    c->global = std::forward<FamilyCert>(payload);
  else if constexpr (std::is_same_v<std::decay_t<FamilyCert>, cert::PartitionedCert>)
    c->partitioned = std::forward<FamilyCert>(payload);
  else
    c->federated = std::forward<FamilyCert>(payload);
  return c;
}

// ---- global family ----

class GlobalAnalyzer final : public Analyzer {
 public:
  GlobalAnalyzer(std::string name, std::string description,
                 const GlobalRtaOptions& base)
      : name_(std::move(name)), description_(std::move(description)), base_(base) {}

  std::string_view name() const override { return name_; }
  std::string_view description() const override { return description_; }
  AnalyzerCapabilities capabilities() const override {
    return {.uses_partition = false,
            .reports_response_times = true,
            .supports_warm_start = true};
  }

  Report analyze(const model::TaskSet& ts, RtaContext& ctx,
                 const AnalyzerOptions& options) const override {
    GlobalRtaOptions opts = base_;
    opts.wcet_scale = options.wcet_scale;
    opts.max_iterations = options.max_iterations;
    cert::GlobalCert gcert;
    const GlobalRtaResult r =
        analyze_global(ts, opts, &ctx, options.diagnostics ? &gcert : nullptr);

    Report rep;
    rep.analyzer = name_;
    rep.schedulable = r.schedulable;
    rep.per_task.resize(ts.size());
    for (std::size_t i = 0; i < ts.size(); ++i) {
      TaskVerdict& tv = rep.per_task[i];
      tv.response_time = r.per_task[i].response_time;
      tv.schedulable = r.per_task[i].schedulable;
      tv.concurrency_bound = r.per_task[i].concurrency_bound;
    }
    finalize_limits(rep, ts);
    if (options.diagnostics) {
      for (std::size_t i = 0; i < ts.size(); ++i) {
        const TaskVerdict& tv = rep.per_task[i];
        if (tv.schedulable) continue;
        if (base_.limited_concurrency && tv.concurrency_bound <= 0) {
          rep.notes.push_back(
              {"lbar-zero", ts.task(i).name(),
               "Lemma 1: available concurrency bound l̄ <= 0 — the pool "
               "can lose every thread to suspended forks (deadlock risk)"});
        } else {
          rep.notes.push_back({"deadline-miss", ts.task(i).name(),
                               miss_message(ts, i, tv.response_time)});
        }
      }
      rep.certificate =
          seal_certificate(cert::Family::kGlobal, name_, options.wcet_scale,
                           rep.schedulable, std::move(gcert));
    }
    return rep;
  }

 private:
  std::string name_;
  std::string description_;
  GlobalRtaOptions base_;
};

// ---- partitioned family ----

class PartitionedAnalyzer final : public Analyzer {
 public:
  PartitionedAnalyzer(std::string name, std::string description,
                      bool algorithm1, const PartitionedRtaOptions& base)
      : name_(std::move(name)),
        description_(std::move(description)),
        algorithm1_(algorithm1),
        base_(base) {}

  std::string_view name() const override { return name_; }
  std::string_view description() const override { return description_; }
  AnalyzerCapabilities capabilities() const override {
    return {.uses_partition = true,
            .reports_response_times = true,
            .supports_warm_start = true};
  }

  PartitionResult make_partition(const model::TaskSet& ts) const override {
    return algorithm1_ ? partition_algorithm1(ts) : partition_worst_fit(ts);
  }

  Report analyze(const model::TaskSet& ts, RtaContext& ctx,
                 const AnalyzerOptions& options) const override {
    Report rep;
    rep.analyzer = name_;

    const TaskSetPartition* part = options.partition;
    PartitionResult computed;
    if (part == nullptr) {
      computed = make_partition(ts);
      if (!computed.success()) {
        // Set-level failure: no partition to analyze under. Every task is
        // reported unschedulable; the note carries the partitioner witness.
        rep.schedulable = false;
        rep.per_task.assign(ts.size(), TaskVerdict{});
        if (options.diagnostics) {
          rep.notes.push_back({"partition-failure", "", computed.failure});
          cert::PartitionedCert pcert;
          pcert.split = base_.bound == PartitionedBound::kSplitPerSegment;
          pcert.require_deadlock_free = base_.require_deadlock_free;
          pcert.max_iterations = options.max_iterations;
          pcert.partition_failure =
              computed.failure.empty() ? "partitioner failed" : computed.failure;
          cert::PartitionedTaskCert failed;
          failed.claim = cert::TaskClaim::kPartitionFailure;
          pcert.per_task.assign(ts.size(), failed);
          rep.certificate =
              seal_certificate(cert::Family::kPartitioned, name_,
                               options.wcet_scale, false, std::move(pcert));
        }
        return rep;
      }
      part = &*computed.partition;
    }

    PartitionedRtaOptions opts = base_;
    opts.wcet_scale = options.wcet_scale;
    opts.max_iterations = options.max_iterations;
    cert::PartitionedCert pcert;
    const PartitionedRtaResult r = analyze_partitioned(
        ts, *part, opts, &ctx, options.diagnostics ? &pcert : nullptr);

    rep.schedulable = r.schedulable;
    rep.per_task.resize(ts.size());
    for (std::size_t i = 0; i < ts.size(); ++i) {
      TaskVerdict& tv = rep.per_task[i];
      tv.response_time = r.per_task[i].response_time;
      tv.schedulable = r.per_task[i].schedulable;
      tv.deadlock_free = r.per_task[i].deadlock_free;
    }
    finalize_limits(rep, ts);
    if (options.diagnostics) {
      for (std::size_t i = 0; i < ts.size(); ++i) {
        const TaskVerdict& tv = rep.per_task[i];
        if (!tv.deadlock_free) {
          rep.notes.push_back(
              {"eq3-violation", ts.task(i).name(),
               "Lemma 3 / Eq. (3): partition admits a reduced-concurrency "
               "delay (node queued behind a suspended thread)"});
        }
        if (!tv.schedulable && tv.deadlock_free) {
          rep.notes.push_back({"deadline-miss", ts.task(i).name(),
                               miss_message(ts, i, tv.response_time)});
        }
      }
      rep.certificate =
          seal_certificate(cert::Family::kPartitioned, name_,
                           options.wcet_scale, rep.schedulable, std::move(pcert));
    }
    return rep;
  }

 private:
  std::string name_;
  std::string description_;
  bool algorithm1_;
  PartitionedRtaOptions base_;
};

// ---- federated family ----

class FederatedAnalyzer final : public Analyzer {
 public:
  FederatedAnalyzer(std::string name, std::string description,
                    const FederatedOptions& base)
      : name_(std::move(name)), description_(std::move(description)), base_(base) {}

  std::string_view name() const override { return name_; }
  std::string_view description() const override { return description_; }
  AnalyzerCapabilities capabilities() const override {
    return {.uses_partition = false,
            .reports_response_times = false,
            .supports_warm_start = false};
  }

  Report analyze(const model::TaskSet& ts, RtaContext& ctx,
                 const AnalyzerOptions& options) const override {
    FederatedOptions opts = base_;
    opts.wcet_scale = options.wcet_scale;
    cert::FederatedCert fcert;
    const FederatedResult r =
        analyze_federated(ts, opts, &ctx, options.diagnostics ? &fcert : nullptr);

    Report rep;
    rep.analyzer = name_;
    rep.schedulable = r.schedulable;
    rep.dedicated_cores = r.dedicated_cores;
    rep.per_task.resize(ts.size());
    for (std::size_t i = 0; i < ts.size(); ++i) {
      TaskVerdict& tv = rep.per_task[i];
      tv.schedulable = r.per_task[i].schedulable;
      tv.dedicated = r.per_task[i].dedicated;
      tv.dedicated_cores = r.per_task[i].cores;
    }
    finalize_limits(rep, ts);
    if (options.diagnostics) {
      for (std::size_t i = 0; i < ts.size(); ++i) {
        const TaskVerdict& tv = rep.per_task[i];
        if (tv.schedulable) continue;
        rep.notes.push_back(
            {tv.dedicated ? "federated-allocation" : "uniprocessor-rta",
             ts.task(i).name(),
             tv.dedicated
                 ? "dedicated-core demand cannot be met (critical path "
                   "exceeds the deadline or too few cores remain)"
                 : "serialized task fails the uniprocessor RTA on its core"});
      }
      rep.certificate =
          seal_certificate(cert::Family::kFederated, name_, options.wcet_scale,
                           rep.schedulable, std::move(fcert));
    }
    return rep;
  }

 private:
  std::string name_;
  std::string description_;
  FederatedOptions base_;
};

// ---- registry ----

struct Registry {
  util::Mutex mutex;
  std::vector<std::unique_ptr<Analyzer>> analyzers
      RTPOOL_GUARDED_BY(mutex);
};

GlobalRtaOptions global_options(bool limited, ConcurrencyBound concurrency,
                                InterferenceBound bound) {
  GlobalRtaOptions o;
  o.limited_concurrency = limited;
  o.concurrency = concurrency;
  o.bound = bound;
  return o;
}

PartitionedRtaOptions partitioned_options(bool require_deadlock_free,
                                          PartitionedBound bound) {
  PartitionedRtaOptions o;
  o.require_deadlock_free = require_deadlock_free;
  o.bound = bound;
  return o;
}

FederatedOptions federated_options(bool limited) {
  FederatedOptions o;
  o.limited_concurrency = limited;
  return o;
}

void register_builtins(std::vector<std::unique_ptr<Analyzer>>& out) {
  using CB = ConcurrencyBound;
  using IB = InterferenceBound;
  using PB = PartitionedBound;

  out.push_back(std::make_unique<GlobalAnalyzer>(
      "global-baseline",
      "global RTA, Melani et al. [14] baseline (ceil interference bound)",
      global_options(false, CB::kMaxAffectingForks, IB::kPaperCeil)));
  out.push_back(std::make_unique<GlobalAnalyzer>(
      "global-baseline-carryin",
      "global RTA baseline with the refined Melani carry-in bound",
      global_options(false, CB::kMaxAffectingForks, IB::kMelaniCarryIn)));
  out.push_back(std::make_unique<GlobalAnalyzer>(
      "global-limited",
      "global RTA with the paper's limited-concurrency bound l̄ = m - b̄ (Sec. 4.1)",
      global_options(true, CB::kMaxAffectingForks, IB::kPaperCeil)));
  out.push_back(std::make_unique<GlobalAnalyzer>(
      "global-limited-carryin",
      "limited-concurrency global RTA with the Melani carry-in bound",
      global_options(true, CB::kMaxAffectingForks, IB::kMelaniCarryIn)));
  out.push_back(std::make_unique<GlobalAnalyzer>(
      "global-limited-antichain",
      "limited-concurrency global RTA with the antichain refinement of b̄",
      global_options(true, CB::kMaxAntichain, IB::kPaperCeil)));
  out.push_back(std::make_unique<GlobalAnalyzer>(
      "global-limited-antichain-carryin",
      "antichain-refined limited-concurrency RTA with the carry-in bound",
      global_options(true, CB::kMaxAntichain, IB::kMelaniCarryIn)));

  out.push_back(std::make_unique<PartitionedAnalyzer>(
      "partitioned-baseline",
      "worst-fit partitioning + [10]-style segment RTA, blocking-oblivious",
      /*algorithm1=*/false, partitioned_options(false, PB::kSplitPerSegment)));
  out.push_back(std::make_unique<PartitionedAnalyzer>(
      "partitioned-baseline-holistic",
      "blocking-oblivious worst-fit partitioning with holistic interference",
      /*algorithm1=*/false, partitioned_options(false, PB::kHolisticPath)));
  out.push_back(std::make_unique<PartitionedAnalyzer>(
      "partitioned-proposed",
      "Algorithm 1 partitioning + segment RTA + Lemma 3 deadlock freedom",
      /*algorithm1=*/true, partitioned_options(true, PB::kSplitPerSegment)));
  out.push_back(std::make_unique<PartitionedAnalyzer>(
      "partitioned-proposed-holistic",
      "Algorithm 1 + Lemma 3 with holistic interference charging",
      /*algorithm1=*/true, partitioned_options(true, PB::kHolisticPath)));

  out.push_back(std::make_unique<FederatedAnalyzer>(
      "federated", "classic federated scheduling of Li et al. [13]",
      federated_options(false)));
  out.push_back(std::make_unique<FederatedAnalyzer>(
      "federated-limited",
      "federated scheduling with b̄ extra dedicated threads per pool",
      federated_options(true)));
}

Registry& registry() {
  // Leaked singleton: analyzers stay valid for the whole process (consumers
  // hold raw pointers across experiment runs), and no shutdown-order issues.
  static Registry* r = [] {
    auto* reg = new Registry;
    register_builtins(reg->analyzers);
    return reg;
  }();
  return *r;
}

}  // namespace

PartitionResult Analyzer::make_partition(const model::TaskSet&) const {
  PartitionResult result;
  result.failure = std::string(name()) + ": not a partition-based analyzer";
  return result;
}

Report Analyzer::analyze(const model::TaskSet& ts,
                         const AnalyzerOptions& options) const {
  RtaContext ctx(ts);
  return analyze(ts, ctx, options);
}

const Analyzer* find_analyzer(std::string_view name) {
  Registry& reg = registry();
  util::MutexLock lock(reg.mutex);
  for (const auto& a : reg.analyzers)
    if (a->name() == name) return a.get();
  return nullptr;
}

const Analyzer& get_analyzer(std::string_view name) {
  if (const Analyzer* a = find_analyzer(name)) return *a;
  std::string message = "unknown analyzer '" + std::string(name) +
                        "'; registered analyzers:";
  for (const Analyzer* a : registered_analyzers())
    message += " " + std::string(a->name());
  throw std::invalid_argument(message);
}

std::vector<const Analyzer*> registered_analyzers() {
  Registry& reg = registry();
  std::vector<const Analyzer*> out;
  {
    util::MutexLock lock(reg.mutex);
    out.reserve(reg.analyzers.size());
    for (const auto& a : reg.analyzers) out.push_back(a.get());
  }
  std::sort(out.begin(), out.end(), [](const Analyzer* a, const Analyzer* b) {
    return a->name() < b->name();
  });
  return out;
}

void register_analyzer(std::unique_ptr<Analyzer> analyzer) {
  if (analyzer == nullptr || analyzer->name().empty())
    throw std::invalid_argument("register_analyzer: empty analyzer/name");
  Registry& reg = registry();
  util::MutexLock lock(reg.mutex);
  for (const auto& a : reg.analyzers)
    if (a->name() == analyzer->name())
      throw std::invalid_argument("register_analyzer: duplicate name '" +
                                  std::string(analyzer->name()) + "'");
  reg.analyzers.push_back(std::move(analyzer));
}

const Analyzer& analyzer_for(const GlobalRtaOptions& options) {
  std::string name = "global-";
  if (!options.limited_concurrency) {
    name += "baseline";
  } else {
    name += "limited";
    if (options.concurrency == ConcurrencyBound::kMaxAntichain)
      name += "-antichain";
  }
  if (options.bound == InterferenceBound::kMelaniCarryIn) name += "-carryin";
  return get_analyzer(name);
}

const Analyzer& analyzer_for(const PartitionedRtaOptions& options) {
  std::string name =
      options.require_deadlock_free ? "partitioned-proposed" : "partitioned-baseline";
  if (options.bound == PartitionedBound::kHolisticPath) name += "-holistic";
  return get_analyzer(name);
}

const Analyzer& analyzer_for(const FederatedOptions& options) {
  return get_analyzer(options.limited_concurrency ? "federated-limited"
                                                  : "federated");
}

}  // namespace rtpool::analysis
