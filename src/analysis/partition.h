// Node-to-thread partitioning (Section 4.2).
//
// Under partitioned scheduling, thread φ_{i,j} of every pool Φ_i is pinned
// to core j, so assigning a node to a thread also assigns it to a core.
// Two partitioners are provided:
//
//  * `partition_algorithm1` — Algorithm 1 of the paper: segregates every BF
//    node away from the threads that serve nodes it could delay, so that no
//    node can ever wait in the work-queue of a suspended thread
//    (reduced-concurrency delay) — and, with Lemma 3, no deadlock can occur.
//    The algorithm may FAIL; failure is a normal result.
//
//  * `partition_worst_fit` — the baseline of Section 5: plain worst-fit on
//    per-core utilization, oblivious to blocking. May produce partitions
//    with reduced-concurrency delays or even deadlocks.
//
// Both force each BJ onto its BF's thread: the pair models two halves of
// the same function (Listing 1) and necessarily runs on one thread.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "model/task_set.h"
#include "util/rng.h"

namespace rtpool::analysis {

using model::TaskSet;

/// Thread index inside a pool; equals the core index the thread is pinned to.
using ThreadId = std::uint32_t;

/// Node-to-thread map for one task: `thread_of[v]` is T(v).
struct NodeAssignment {
  std::vector<ThreadId> thread_of;

  friend bool operator==(const NodeAssignment&, const NodeAssignment&) = default;
};

/// Partitioning of a whole task set.
struct TaskSetPartition {
  std::vector<NodeAssignment> per_task;  ///< Indexed like TaskSet::tasks().

  /// Core utilization induced by this partition (length = core count).
  std::vector<double> core_utilization(const TaskSet& ts) const;
};

/// Outcome of a partitioner. `failure` explains an unsuccessful run.
struct PartitionResult {
  std::optional<TaskSetPartition> partition;
  std::string failure;

  bool success() const { return partition.has_value(); }
};

/// Tie-break rule used when Algorithm 1 allows several threads.
enum class TieBreak {
  kWorstFit,  ///< Least-utilized eligible core (the paper's choice).
  kFirstFit,  ///< Lowest-index eligible core (ablation).
};

/// Algorithm 1 of the paper. Fails (line 7/9/17) when reduced-concurrency
/// delay cannot be avoided. `capacity_check` additionally fails when a
/// chosen core would exceed utilization 1 (off by default: the paper's
/// algorithm has no capacity test; the subsequent RTA rejects overloads).
PartitionResult partition_algorithm1(const TaskSet& ts,
                                     TieBreak tie_break = TieBreak::kWorstFit,
                                     bool capacity_check = false);

/// Baseline: worst-fit decreasing on node utilization, BF+BJ fused.
/// Fails when every core would exceed utilization 1 for some node.
PartitionResult partition_worst_fit(const TaskSet& ts);

/// Tie-break rule used when Algorithm 1 allows several threads (extended
/// set including the randomized variant below).
enum class RandomizedObjective {
  kSchedulable,   ///< Stop at the first partition the RTA accepts.
  kMinResponse,   ///< Keep the partition minimizing the max normalized
                  ///< response time R_i/D_i across tasks.
};

/// The paper's future-work direction "designing improved partitioning
/// algorithms", in its simplest effective form: run Algorithm 1 up to
/// `restarts` times with a *randomized* choice among the eligible threads,
/// evaluate each outcome with the partitioned RTA, and keep the best. Falls
/// back to the deterministic worst-fit result when no restart beats it.
/// Never returns a partition violating Eq. (3) (all candidates come from
/// Algorithm 1).
PartitionResult partition_algorithm1_randomized(
    const TaskSet& ts, util::Rng& rng, int restarts = 16,
    RandomizedObjective objective = RandomizedObjective::kSchedulable);

}  // namespace rtpool::analysis
