#include "analysis/antichain.h"

#include <vector>

namespace rtpool::analysis {

namespace {

/// Hopcroft-Karp is overkill at these sizes; simple Kuhn augmenting paths
/// give O(V·E) on the comparability graph of the BF nodes.
class BipartiteMatcher {
 public:
  explicit BipartiteMatcher(std::size_t left_size, std::size_t right_size)
      : adj_(left_size), match_right_(right_size, kFree) {}

  void add_edge(std::size_t left, std::size_t right) { adj_[left].push_back(right); }

  std::size_t max_matching() {
    std::size_t matched = 0;
    for (std::size_t u = 0; u < adj_.size(); ++u) {
      visited_.assign(match_right_.size(), false);
      if (augment(u)) ++matched;
    }
    return matched;
  }

 private:
  static constexpr std::size_t kFree = static_cast<std::size_t>(-1);

  bool augment(std::size_t u) {
    for (std::size_t v : adj_[u]) {
      if (visited_[v]) continue;
      visited_[v] = true;
      if (match_right_[v] == kFree || augment(match_right_[v])) {
        match_right_[v] = u;
        return true;
      }
    }
    return false;
  }

  std::vector<std::vector<std::size_t>> adj_;
  std::vector<std::size_t> match_right_;
  std::vector<bool> visited_;
};

}  // namespace

std::size_t max_simultaneous_suspensions(const model::DagTask& task) {
  std::vector<model::NodeId> forks;
  for (const model::BlockingRegion& r : task.blocking_regions())
    forks.push_back(r.fork);
  const std::size_t k = forks.size();
  if (k <= 1) return k;

  // Dilworth via Fulkerson: min chain cover of the BF poset = k − maximum
  // matching in the bipartite graph with an edge (i -> j) per comparable
  // ordered pair fork_i ≺ fork_j; max antichain = min chain cover.
  const graph::Reachability& reach = task.reachability();
  BipartiteMatcher matcher(k, k);
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      if (i != j && reach.reaches(forks[i], forks[j])) matcher.add_edge(i, j);
    }
  }
  return k - matcher.max_matching();
}

long available_concurrency_lower_bound_antichain(const model::DagTask& task,
                                                 std::size_t pool_size) {
  return static_cast<long>(pool_size) -
         static_cast<long>(max_simultaneous_suspensions(task));
}

}  // namespace rtpool::analysis
