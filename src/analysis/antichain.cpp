#include "analysis/antichain.h"

#include <vector>

#include "graph/matching.h"

namespace rtpool::analysis {

namespace {

std::vector<model::NodeId> blocking_forks(const model::DagTask& task) {
  std::vector<model::NodeId> forks;
  for (const model::BlockingRegion& r : task.blocking_regions())
    forks.push_back(r.fork);
  return forks;
}

/// Dilworth via Fulkerson: one bipartite vertex pair per fork, an edge
/// (i -> j) per comparable ordered pair fork_i ≺ fork_j; min chain cover of
/// the BF poset = k − maximum matching = max antichain. Comparability edges
/// come from word-parallel intersections of the descendant closures with
/// the fork mask instead of per-pair reachability probes.
graph::BipartiteMatcher comparability_matcher(
    const model::DagTask& task, const std::vector<model::NodeId>& forks) {
  const std::size_t k = forks.size();
  const graph::Reachability& reach = task.reachability();
  util::DynamicBitset fork_mask(task.node_count());
  std::vector<std::size_t> fork_index(task.node_count(), 0);
  for (std::size_t i = 0; i < k; ++i) {
    fork_mask.set(forks[i]);
    fork_index[forks[i]] = i;
  }
  graph::BipartiteMatcher matcher(k, k);
  util::DynamicBitset reachable(task.node_count());
  for (std::size_t i = 0; i < k; ++i) {
    reachable = reach.descendants(forks[i]);
    reachable.and_assign(fork_mask);
    reachable.for_each(
        [&](std::size_t f) { matcher.add_edge(i, fork_index[f]); });
  }
  return matcher;
}

}  // namespace

std::size_t max_simultaneous_suspensions(const model::DagTask& task) {
  // Cached by DagTask at construction (the matching itself lives in
  // graph::BipartiteMatcher); kept as the analysis-facing name.
  return task.max_suspension_antichain();
}

std::vector<model::NodeId> max_simultaneous_suspension_set(const model::DagTask& task) {
  const auto forks = blocking_forks(task);
  if (forks.size() <= 1) return forks;
  graph::BipartiteMatcher matcher = comparability_matcher(task, forks);
  matcher.max_matching();
  const auto cover = matcher.min_vertex_cover();

  // Fulkerson's correspondence: fork i belongs to the maximum antichain iff
  // neither of its two bipartite copies is in the minimum vertex cover (any
  // comparable pair would otherwise leave an edge uncovered).
  std::vector<model::NodeId> antichain;
  for (std::size_t i = 0; i < forks.size(); ++i)
    if (!cover.left[i] && !cover.right[i]) antichain.push_back(forks[i]);
  return antichain;
}

long available_concurrency_lower_bound_antichain(const model::DagTask& task,
                                                 std::size_t pool_size) {
  return static_cast<long>(pool_size) -
         static_cast<long>(task.max_suspension_antichain());
}

}  // namespace rtpool::analysis
