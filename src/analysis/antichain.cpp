#include "analysis/antichain.h"

#include <vector>

namespace rtpool::analysis {

namespace {

/// Hopcroft-Karp is overkill at these sizes; simple Kuhn augmenting paths
/// give O(V·E) on the comparability graph of the BF nodes.
class BipartiteMatcher {
 public:
  explicit BipartiteMatcher(std::size_t left_size, std::size_t right_size)
      : adj_(left_size), match_right_(right_size, kFree) {}

  void add_edge(std::size_t left, std::size_t right) { adj_[left].push_back(right); }

  std::size_t max_matching() {
    std::size_t matched = 0;
    for (std::size_t u = 0; u < adj_.size(); ++u) {
      visited_.assign(match_right_.size(), false);
      if (augment(u)) ++matched;
    }
    return matched;
  }

  /// König's theorem: the minimum vertex cover of the bipartite graph,
  /// derived from a maximum matching (call max_matching() first) via the
  /// alternating-path reachable set Z: cover = (L \ Z_L) ∪ (R ∩ Z_R).
  /// Returns per-side membership flags.
  struct VertexCover {
    std::vector<bool> left;
    std::vector<bool> right;
  };
  VertexCover min_vertex_cover() const {
    const std::size_t nl = adj_.size();
    const std::size_t nr = match_right_.size();
    std::vector<bool> matched_left(nl, false);
    for (std::size_t v = 0; v < nr; ++v)
      if (match_right_[v] != kFree) matched_left[match_right_[v]] = true;

    // BFS over alternating paths: left → right along non-matching edges,
    // right → left along matching edges, seeded at unmatched left vertices.
    std::vector<bool> z_left(nl, false);
    std::vector<bool> z_right(nr, false);
    std::vector<std::size_t> frontier;
    for (std::size_t u = 0; u < nl; ++u)
      if (!matched_left[u]) {
        z_left[u] = true;
        frontier.push_back(u);
      }
    while (!frontier.empty()) {
      const std::size_t u = frontier.back();
      frontier.pop_back();
      for (std::size_t v : adj_[u]) {
        if (z_right[v] || match_right_[v] == u) continue;
        z_right[v] = true;
        const std::size_t w = match_right_[v];
        if (w != kFree && !z_left[w]) {
          z_left[w] = true;
          frontier.push_back(w);
        }
      }
    }

    VertexCover cover{std::vector<bool>(nl, false), std::vector<bool>(nr, false)};
    for (std::size_t u = 0; u < nl; ++u) cover.left[u] = !z_left[u];
    for (std::size_t v = 0; v < nr; ++v) cover.right[v] = z_right[v];
    return cover;
  }

 private:
  static constexpr std::size_t kFree = static_cast<std::size_t>(-1);

  bool augment(std::size_t u) {
    for (std::size_t v : adj_[u]) {
      if (visited_[v]) continue;
      visited_[v] = true;
      if (match_right_[v] == kFree || augment(match_right_[v])) {
        match_right_[v] = u;
        return true;
      }
    }
    return false;
  }

  std::vector<std::vector<std::size_t>> adj_;
  std::vector<std::size_t> match_right_;
  std::vector<bool> visited_;
};

std::vector<model::NodeId> blocking_forks(const model::DagTask& task) {
  std::vector<model::NodeId> forks;
  for (const model::BlockingRegion& r : task.blocking_regions())
    forks.push_back(r.fork);
  return forks;
}

/// Dilworth via Fulkerson: one bipartite vertex pair per fork, an edge
/// (i -> j) per comparable ordered pair fork_i ≺ fork_j; min chain cover of
/// the BF poset = k − maximum matching = max antichain.
BipartiteMatcher comparability_matcher(const model::DagTask& task,
                                       const std::vector<model::NodeId>& forks) {
  const std::size_t k = forks.size();
  const graph::Reachability& reach = task.reachability();
  BipartiteMatcher matcher(k, k);
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      if (i != j && reach.reaches(forks[i], forks[j])) matcher.add_edge(i, j);
    }
  }
  return matcher;
}

}  // namespace

std::size_t max_simultaneous_suspensions(const model::DagTask& task) {
  const auto forks = blocking_forks(task);
  if (forks.size() <= 1) return forks.size();
  BipartiteMatcher matcher = comparability_matcher(task, forks);
  return forks.size() - matcher.max_matching();
}

std::vector<model::NodeId> max_simultaneous_suspension_set(const model::DagTask& task) {
  const auto forks = blocking_forks(task);
  if (forks.size() <= 1) return forks;
  BipartiteMatcher matcher = comparability_matcher(task, forks);
  matcher.max_matching();
  const auto cover = matcher.min_vertex_cover();

  // Fulkerson's correspondence: fork i belongs to the maximum antichain iff
  // neither of its two bipartite copies is in the minimum vertex cover (any
  // comparable pair would otherwise leave an edge uncovered).
  std::vector<model::NodeId> antichain;
  for (std::size_t i = 0; i < forks.size(); ++i)
    if (!cover.left[i] && !cover.right[i]) antichain.push_back(forks[i]);
  return antichain;
}

long available_concurrency_lower_bound_antichain(const model::DagTask& task,
                                                 std::size_t pool_size) {
  return static_cast<long>(pool_size) -
         static_cast<long>(max_simultaneous_suspensions(task));
}

}  // namespace rtpool::analysis
