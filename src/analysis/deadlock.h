// Deadlock-freedom conditions of Section 3.
//
// Lemma 1: if the available concurrency l(t, τ) ever reaches 0, τ deadlocks.
// Lemma 2: under global work-conserving intra-pool scheduling the condition
//          is also necessary, so l(t, τ) > 0 for all t is exact.
// Lemma 3: under partitioned intra-pool scheduling, a node may additionally
//          starve behind a suspended thread; Eq. (3) — no BC node shares a
//          thread with a BF in C(v) ∪ {F(v)} — together with l(t, τ) > 0
//          rules deadlocks out.
//
// The universally quantified l(t, τ) > 0 is checked through the
// time-independent lower bound l̄(τ) of Section 3.1 (see concurrency.h),
// which makes all checks sufficient-only (conservative), exactly as the
// paper applies them.
//
// Each lemma is exposed twice: a *witness-returning* form that explains the
// hazard (consumed by the lint rules of src/lint/ and by diagnostics), and
// the original boolean form, now a thin wrapper over the witness form.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "analysis/partition.h"
#include "model/dag_task.h"

namespace rtpool::analysis {

/// Lemma 1 witness: a pivot node v* and the fork set X(v*) with
/// |X(v*)| = b̄(τ) ≥ m. While v* is pending, every fork in `forks` may be
/// simultaneously suspended, exhausting all `pool_size` threads — v* then
/// never obtains a thread and the barriers never open (a blocking chain).
struct BlockingChainWitness {
  model::NodeId pivot;                ///< Node v* achieving b̄(τ).
  std::vector<model::NodeId> forks;   ///< X(v*); |forks| = b̄(τ).
  std::size_t pool_size;              ///< The pool size m the chain exhausts.
};

/// Returns the witness when the Lemma 1 sufficient condition FAILS through
/// the Section 3.1 bound (b̄(τ) ≥ m), nullopt when l̄(τ) > 0 guarantees
/// deadlock freedom.
std::optional<BlockingChainWitness> find_lemma1_witness(const model::DagTask& task,
                                                        std::size_t pool_size);

/// One-line human rendering of the blocking chain ("v* ← {f1, f2} ...").
std::string describe(const BlockingChainWitness& witness, const std::string& task_name);

/// Lemma 2 witness: a wait-for cycle on the global wait-for-concurrency
/// (WC) graph, whose vertices are the BF nodes and whose edges connect
/// precedence-unordered (concurrent) forks. `forks` holds m pairwise
/// concurrent forks: each can be suspended while waiting for a thread held
/// by the next (cyclically) — under global work-conserving scheduling this
/// suspension pattern is reachable, so the deadlock can actually manifest
/// (the necessary direction of Lemma 2).
struct WaitForCycle {
  std::vector<model::NodeId> forks;   ///< m pairwise-concurrent BF nodes.
  std::size_t pool_size;
};

/// Returns a wait-for cycle when a set of ≥ m pairwise-concurrent forks
/// exists (maximum antichain of the BF poset reaches m), nullopt otherwise.
/// Never fires when find_lemma1_witness() does not (antichain ≤ b̄).
std::optional<WaitForCycle> find_wait_for_cycle(const model::DagTask& task,
                                                std::size_t pool_size);

/// "f1 → f2 → ... → f1" rendering of the cycle.
std::string describe(const WaitForCycle& cycle, const std::string& task_name);

/// Violation of Eq. (3), if any: a BC node co-located with a dangerous BF.
struct Eq3Violation {
  model::NodeId bc_node;
  model::NodeId fork;
  ThreadId thread;
};

/// Check Eq. (3) of Lemma 3 for one task under a node-to-thread assignment.
/// Returns the first violation found, or nullopt if Eq. (3) holds.
std::optional<Eq3Violation> find_eq3_violation(const model::DagTask& task,
                                               const NodeAssignment& assignment);

/// All Eq. (3) violations (one per offending BC node, ascending by id);
/// empty iff Eq. (3) holds. Used by the lint pass to report every
/// misplacement at once instead of the first.
std::vector<Eq3Violation> find_eq3_violations(const model::DagTask& task,
                                              const NodeAssignment& assignment);

/// "BC node v shares thread t with dangerous BF f" rendering.
std::string describe(const Eq3Violation& violation, const std::string& task_name);

/// Verdict of a deadlock-freedom check.
struct DeadlockCheck {
  bool deadlock_free;        ///< True if the sufficient condition holds.
  long concurrency_bound;    ///< l̄(τ) = m − b̄(τ).
  std::size_t max_forks;     ///< b̄(τ).
  std::string witness;       ///< Human-readable reason when not guaranteed.
};

/// Global scheduling: deadlock-free iff l̄(τ) > 0 (Lemmas 1+2 through the
/// Section 3.1 lower bound).
DeadlockCheck check_deadlock_free_global(const model::DagTask& task,
                                         std::size_t pool_size);

/// Partitioned scheduling: Lemma 3 = (l̄(τ) > 0) ∧ Eq. (3).
DeadlockCheck check_deadlock_free_partitioned(const model::DagTask& task,
                                              std::size_t pool_size,
                                              const NodeAssignment& assignment);

/// Boolean-only fast path of `check_deadlock_free_partitioned`: identical
/// verdict, no witness structures or description strings. The verdict
/// reduces to the cached b̄(τ) (Lemma 1's witness exists iff
/// b̄(τ) >= pool size) plus an early-exit Eq. (3) scan over
/// (BC node, region) pairs — the per-attempt deadlock gate of the
/// partitioned analysis reads only the boolean, thousands of times per
/// experiment point.
bool is_deadlock_free_partitioned(const model::DagTask& task,
                                  std::size_t pool_size,
                                  const NodeAssignment& assignment);

/// Whole task set, global scheduling: the per-task checks applied ∀τ ∈ Γ.
bool task_set_deadlock_free_global(const model::TaskSet& ts);

/// Whole task set, partitioned scheduling.
bool task_set_deadlock_free_partitioned(const model::TaskSet& ts,
                                        const TaskSetPartition& partition);

}  // namespace rtpool::analysis
