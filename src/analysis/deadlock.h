// Deadlock-freedom conditions of Section 3.
//
// Lemma 1: if the available concurrency l(t, τ) ever reaches 0, τ deadlocks.
// Lemma 2: under global work-conserving intra-pool scheduling the condition
//          is also necessary, so l(t, τ) > 0 for all t is exact.
// Lemma 3: under partitioned intra-pool scheduling, a node may additionally
//          starve behind a suspended thread; Eq. (3) — no BC node shares a
//          thread with a BF in C(v) ∪ {F(v)} — together with l(t, τ) > 0
//          rules deadlocks out.
//
// The universally quantified l(t, τ) > 0 is checked through the
// time-independent lower bound l̄(τ) of Section 3.1 (see concurrency.h),
// which makes all checks sufficient-only (conservative), exactly as the
// paper applies them.
#pragma once

#include <optional>
#include <string>

#include "analysis/partition.h"
#include "model/dag_task.h"

namespace rtpool::analysis {

/// Verdict of a deadlock-freedom check.
struct DeadlockCheck {
  bool deadlock_free;        ///< True if the sufficient condition holds.
  long concurrency_bound;    ///< l̄(τ) = m − b̄(τ).
  std::size_t max_forks;     ///< b̄(τ).
  std::string witness;       ///< Human-readable reason when not guaranteed.
};

/// Global scheduling: deadlock-free iff l̄(τ) > 0 (Lemmas 1+2 through the
/// Section 3.1 lower bound).
DeadlockCheck check_deadlock_free_global(const model::DagTask& task,
                                         std::size_t pool_size);

/// Violation of Eq. (3), if any: a BC node co-located with a dangerous BF.
struct Eq3Violation {
  model::NodeId bc_node;
  model::NodeId fork;
  ThreadId thread;
};

/// Check Eq. (3) of Lemma 3 for one task under a node-to-thread assignment.
/// Returns the first violation found, or nullopt if Eq. (3) holds.
std::optional<Eq3Violation> find_eq3_violation(const model::DagTask& task,
                                               const NodeAssignment& assignment);

/// Partitioned scheduling: Lemma 3 = (l̄(τ) > 0) ∧ Eq. (3).
DeadlockCheck check_deadlock_free_partitioned(const model::DagTask& task,
                                              std::size_t pool_size,
                                              const NodeAssignment& assignment);

/// Whole task set, global scheduling: the per-task checks applied ∀τ ∈ Γ.
bool task_set_deadlock_free_global(const model::TaskSet& ts);

/// Whole task set, partitioned scheduling.
bool task_set_deadlock_free_partitioned(const model::TaskSet& ts,
                                        const TaskSetPartition& partition);

}  // namespace rtpool::analysis
