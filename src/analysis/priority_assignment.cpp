#include "analysis/priority_assignment.h"

#include <cmath>
#include <vector>

#include "analysis/antichain.h"
#include "analysis/concurrency.h"

namespace rtpool::analysis {

namespace {

using util::Time;

/// Deadline-jitter variant of the inter-task interference bound: the only
/// property of τ_j it uses besides static parameters is D_j, so the value
/// is independent of the higher-priority ordering (OPA-compatible).
Time deadline_jitter_interference(const model::DagTask& tj, Time window,
                                  std::size_t m, InterferenceBound bound) {
  const Time vol = tj.volume();
  const Time shifted = window + tj.deadline() - vol / static_cast<double>(m);
  if (shifted <= 0.0) return 0.0;
  switch (bound) {
    case InterferenceBound::kPaperCeil:
      return util::ceil_div(shifted, tj.period()) * vol;
    case InterferenceBound::kMelaniCarryIn: {
      const double jobs = std::floor(shifted / tj.period() * (1.0 + util::kTimeEps));
      const Time remainder = shifted - jobs * tj.period();
      return jobs * vol +
             std::min(vol, static_cast<double>(m) * std::max(remainder, 0.0));
    }
  }
  throw std::invalid_argument("deadline_jitter_interference: bad bound");
}

}  // namespace

bool schedulable_at_lowest_priority(const model::TaskSet& ts,
                                    std::size_t task_index,
                                    const GlobalRtaOptions& options) {
  const model::DagTask& task = ts.task(task_index);
  const std::size_t m = ts.core_count();

  double denominator = static_cast<double>(m);
  if (options.limited_concurrency) {
    const long lbar =
        options.concurrency == ConcurrencyBound::kMaxAntichain
            ? available_concurrency_lower_bound_antichain(task, m)
            : available_concurrency_lower_bound(task, m);
    if (lbar <= 0) return false;
    denominator = static_cast<double>(lbar);
  }

  const Time len = task.critical_path_length();
  const Time self_interference = task.volume() - len;

  Time r = len;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    Time interference = self_interference;
    for (std::size_t j = 0; j < ts.size(); ++j) {
      if (j == task_index) continue;
      interference +=
          deadline_jitter_interference(ts.task(j), r, m, options.bound);
    }
    const Time next = len + interference / denominator;
    if (util::time_le(next, r)) return util::time_le(r, task.deadline());
    r = next;
    if (util::time_lt(task.deadline(), r)) return false;
  }
  return false;
}

std::optional<model::TaskSet> assign_priorities_audsley(
    const model::TaskSet& ts, const AudsleyOptions& options) {
  const std::size_t n = ts.size();
  std::vector<bool> placed(n, false);
  std::vector<int> priority(n, 0);

  // Fill priority levels from the lowest (n-1) upward. At each level, the
  // candidate is tested against ALL not-yet-placed tasks as higher-priority
  // interference (tasks already placed below it never interfere).
  for (int level = static_cast<int>(n) - 1; level >= 0; --level) {
    bool found = false;
    for (std::size_t i = 0; i < n && !found; ++i) {
      if (placed[i]) continue;
      // Build the candidate view: the unplaced tasks form the set; `i` is
      // tested at the bottom of it.
      model::TaskSet view(ts.core_count());
      std::size_t candidate_index = 0;
      std::size_t k = 0;
      for (std::size_t j = 0; j < n; ++j) {
        if (placed[j]) continue;
        if (j == i) candidate_index = k;
        view.add(ts.task(j));
        ++k;
      }
      if (schedulable_at_lowest_priority(view, candidate_index, options.base)) {
        placed[i] = true;
        priority[i] = level;
        found = true;
      }
    }
    if (!found) return std::nullopt;  // OPA failure: set unschedulable
  }

  model::TaskSet out(ts.core_count());
  for (std::size_t i = 0; i < n; ++i)
    out.add(ts.task(i).with_priority(priority[i]));
  return out;
}

}  // namespace rtpool::analysis
