#include "analysis/cert_check.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <vector>

#include "graph/dag.h"
#include "graph/reachability.h"
#include "model/dag_task.h"
#include "util/time.h"

namespace rtpool::analysis::cert {

const char* to_string(CheckFailureKind kind) {
  switch (kind) {
    case CheckFailureKind::kMalformed: return "malformed";
    case CheckFailureKind::kOperandMismatch: return "operand-mismatch";
    case CheckFailureKind::kFixedPointInconsistent: return "fixed-point-inconsistent";
    case CheckFailureKind::kDeadlineCheckFailed: return "deadline-check-failed";
    case CheckFailureKind::kReplayMismatch: return "replay-mismatch";
    case CheckFailureKind::kWitnessInvalid: return "witness-invalid";
    case CheckFailureKind::kConcurrencyMismatch: return "concurrency-mismatch";
    case CheckFailureKind::kDeadlockClaimWrong: return "deadlock-claim-wrong";
    case CheckFailureKind::kPartitionInvalid: return "partition-invalid";
    case CheckFailureKind::kAllocationInvalid: return "allocation-invalid";
  }
  return "?";
}

namespace {

using model::DagTask;
using model::NodeId;
using model::NodeType;
using model::TaskSet;
using util::Time;

/// Internal control flow: the per-claim helpers throw, check_certificate
/// catches and converts to CheckResult::failure.
struct CheckError {
  CheckFailure failure;
};

[[noreturn]] void fail(CheckFailureKind kind, std::size_t task, std::string detail) {
  throw CheckError{CheckFailure{kind, task, std::move(detail)}};
}

std::string num(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

// ---------------------------------------------------------------------------
// Independent primitives. These are deliberate textual mirrors of the
// paper's formulas as the kernels implement them (same summation orders, so
// converged kernel values reproduce bit-for-bit); they call only the model
// accessors and the Reachability closure, never kernel code.
// ---------------------------------------------------------------------------

/// f ∈ X(v): the fork's suspension can affect node v (Section 3.1).
/// X(v) = C(v) ∪ {F(v)}: BF nodes precedence-unordered with v, plus the
/// delimiting fork of a BC node.
bool in_affecting_set(const DagTask& task, NodeId v, NodeId f) {
  if (f == v) return false;
  if (task.type(v) == NodeType::BC && task.blocking_fork_of(v) == f) return true;
  if (task.type(f) != NodeType::BF) return false;
  const graph::Reachability& reach = task.reachability();
  return !reach.reaches(f, v) && !reach.reaches(v, f);
}

std::size_t own_affecting_count(const DagTask& task, NodeId v) {
  std::size_t count = 0;
  for (NodeId f = 0; f < task.node_count(); ++f)
    if (in_affecting_set(task, v, f)) ++count;
  return count;
}

/// b̄(τ) = max_v |X(v)|.
std::size_t own_max_affecting(const DagTask& task) {
  std::size_t best = 0;
  for (NodeId v = 0; v < task.node_count(); ++v)
    best = std::max(best, own_affecting_count(task, v));
  return best;
}

/// Kuhn augmenting-path matching over the BF comparability relation:
/// max antichain = |BF| − max matching (Dilworth via Fulkerson's reduction).
struct Kuhn {
  const std::vector<std::vector<std::size_t>>& adj;
  std::vector<std::size_t>& match_of;  // right vertex -> matched left vertex
  std::vector<char>& visited;

  bool augment(std::size_t i) {
    for (std::size_t j : adj[i]) {
      if (visited[j]) continue;
      visited[j] = 1;
      if (match_of[j] == kNoIndex || augment(match_of[j])) {
        match_of[j] = i;
        return true;
      }
    }
    return false;
  }
};

std::size_t own_max_antichain(const DagTask& task) {
  std::vector<NodeId> bf;
  for (NodeId v = 0; v < task.node_count(); ++v)
    if (task.type(v) == NodeType::BF) bf.push_back(v);
  const std::size_t k = bf.size();
  if (k <= 1) return k;
  const graph::Reachability& reach = task.reachability();
  std::vector<std::vector<std::size_t>> adj(k);
  for (std::size_t i = 0; i < k; ++i)
    for (std::size_t j = 0; j < k; ++j)
      if (i != j && reach.reaches(bf[i], bf[j])) adj[i].push_back(j);
  std::vector<std::size_t> match_of(k, kNoIndex);
  std::vector<char> visited(k, 0);
  std::size_t matching = 0;
  for (std::size_t i = 0; i < k; ++i) {
    std::fill(visited.begin(), visited.end(), 0);
    if (Kuhn{adj, match_of, visited}.augment(i)) ++matching;
  }
  return k - matching;
}

/// Kahn topological order (the DagTask constructor already guarantees
/// acyclicity, so the order always covers every node).
std::vector<NodeId> own_topo_order(const graph::Dag& dag) {
  std::vector<std::size_t> indeg(dag.size());
  std::vector<NodeId> order;
  order.reserve(dag.size());
  for (NodeId v = 0; v < dag.size(); ++v) {
    indeg[v] = dag.in_degree(v);
    if (indeg[v] == 0) order.push_back(v);
  }
  for (std::size_t head = 0; head < order.size(); ++head)
    for (NodeId w : dag.successors(order[head]))
      if (--indeg[w] == 0) order.push_back(w);
  return order;
}

/// Longest node-weighted path: dp[v] = w[v] + max(0, max_pred dp[u]). The
/// per-node expression matches graph::longest_path_length, so the value is
/// bit-identical for any valid topological order.
Time own_longest_path(const DagTask& task, const std::vector<Time>& weights) {
  const graph::Dag& dag = task.dag();
  std::vector<Time> dp(dag.size(), 0.0);
  for (NodeId v : own_topo_order(dag)) {
    dp[v] = weights[v];
    for (NodeId u : dag.predecessors(v))
      if (dp[u] + weights[v] > dp[v]) dp[v] = dp[u] + weights[v];
  }
  Time best = dp[0];
  for (NodeId v = 1; v < dag.size(); ++v)
    if (dp[v] > best) best = dp[v];
  return best;
}

/// vol(τ): ascending-id sum, mirroring graph::total_weight.
Time own_volume(const DagTask& task) {
  Time vol = 0.0;
  for (NodeId v = 0; v < task.node_count(); ++v) vol += task.wcet(v);
  return vol;
}

/// FIFO work-queue blocking B_v (unit scale): WCETs of same-core nodes
/// precedence-unordered with v, ascending by id; 0 for BJ nodes.
Time own_fifo_blocking(const DagTask& task,
                       const std::vector<std::uint32_t>& thread_of, NodeId v) {
  if (task.type(v) == NodeType::BJ) return 0.0;
  const graph::Reachability& reach = task.reachability();
  Time b = 0.0;
  for (NodeId u = 0; u < task.node_count(); ++u) {
    if (u == v || thread_of[u] != thread_of[v]) continue;
    if (reach.reaches(u, v) || reach.reaches(v, u)) continue;
    b += task.wcet(u);
  }
  return b;
}

/// Per-core WCET footprint W_{i,p} (unit scale), ascending-node order.
std::vector<Time> own_workload(const DagTask& task,
                               const std::vector<std::uint32_t>& thread_of,
                               std::size_t cores) {
  std::vector<Time> w(cores, 0.0);
  for (NodeId v = 0; v < task.node_count(); ++v) w[thread_of[v]] += task.wcet(v);
  return w;
}

/// Does Eq. (3) fail: some BC node co-located with a fork in X(v)?
bool own_eq3_violation_exists(const DagTask& task,
                              const std::vector<std::uint32_t>& thread_of) {
  for (NodeId v = 0; v < task.node_count(); ++v) {
    if (task.type(v) != NodeType::BC) continue;
    for (NodeId f = 0; f < task.node_count(); ++f)
      if (task.type(f) == NodeType::BF && thread_of[f] == thread_of[v] &&
          in_affecting_set(task, v, f))
        return true;
  }
  return false;
}

/// Global inter-task interference I_{j,i}(L) — mirror of the kernel's
/// closed form (both bounds).
Time own_interference(Time svol, Time svolm, Time period, Time rj, Time window,
                      std::size_t m, bool carry_in) {
  const Time shifted = window + rj - svolm;
  if (shifted <= 0.0) return 0.0;
  if (!carry_in) return util::ceil_div(shifted, period) * svol;
  const double jobs = std::floor(shifted / period * (1.0 + util::kTimeEps));
  const Time remainder = shifted - jobs * period;
  const Time carry =
      std::min(svol, static_cast<double>(m) * std::max(remainder, 0.0));
  return jobs * svol + carry;
}

/// Uniprocessor fixed-priority RTA replay for the federated shared cores.
/// The iteration budget is the kernel's fixed constant (100000, independent
/// of AnalyzerOptions::max_iterations — see federated.cpp).
struct UniReplay {
  std::vector<Time> response;
  std::size_t first_fail = kNoIndex;
};

UniReplay own_uniprocessor_rta(const std::vector<std::array<Time, 3>>& tasks) {
  UniReplay out;
  out.response.assign(tasks.size(), util::kTimeInfinity);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const Time c = tasks[i][0];
    const Time d = tasks[i][2];
    Time r = c;
    bool missed = false;
    for (int iter = 0; iter < 100000; ++iter) {
      Time demand = c;
      for (std::size_t j = 0; j < i; ++j)
        demand += util::ceil_div(r, tasks[j][1]) * tasks[j][0];
      if (util::time_le(demand, r)) break;
      r = demand;
      if (util::time_lt(d, r)) {
        missed = true;
        break;
      }
    }
    if (util::time_lt(d, r)) missed = true;
    out.response[i] = r;
    if (missed) {
      out.first_fail = i;
      return out;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// The checker proper.
// ---------------------------------------------------------------------------

class Checker {
 public:
  Checker(const TaskSet& ts, const Certificate& c) : ts_(ts), c_(c) {}

  std::size_t claims() const { return claims_; }

  void run() {
    const int engaged = static_cast<int>(c_.global.has_value()) +
                        static_cast<int>(c_.partitioned.has_value()) +
                        static_cast<int>(c_.federated.has_value());
    if (engaged != 1)
      fail(CheckFailureKind::kMalformed, kNoIndex,
           "exactly one family payload must be engaged");
    if (!(c_.wcet_scale > 0.0) || !std::isfinite(c_.wcet_scale))
      fail(CheckFailureKind::kMalformed, kNoIndex,
           "wcet_scale must be positive and finite");
    switch (c_.family) {
      case Family::kGlobal:
        if (!c_.global.has_value())
          fail(CheckFailureKind::kMalformed, kNoIndex, "family/payload mismatch");
        check_global();
        return;
      case Family::kPartitioned:
        if (!c_.partitioned.has_value())
          fail(CheckFailureKind::kMalformed, kNoIndex, "family/payload mismatch");
        check_partitioned();
        return;
      case Family::kFederated:
        if (!c_.federated.has_value())
          fail(CheckFailureKind::kMalformed, kNoIndex, "family/payload mismatch");
        check_federated();
        return;
    }
    fail(CheckFailureKind::kMalformed, kNoIndex, "unknown family");
  }

 private:
  const TaskSet& ts_;
  const Certificate& c_;
  std::size_t claims_ = 0;

  void note() { ++claims_; }

  /// Validate a b̄ witness: the fork set proves the claimed bound AND the
  /// bound matches the checker's own evaluation of the same definition.
  void verify_witness(std::size_t idx, const DagTask& task,
                      const ConcurrencyWitness& w, bool antichain_form) {
    if (w.antichain != antichain_form)
      fail(CheckFailureKind::kMalformed, idx,
           "witness form does not match the analyzer options");
    const std::size_t n = task.node_count();
    std::vector<char> seen(n, 0);
    for (NodeId f : w.forks) {
      if (f >= n)
        fail(CheckFailureKind::kWitnessInvalid, idx, "witness fork out of range");
      if (seen[f])
        fail(CheckFailureKind::kWitnessInvalid, idx, "duplicate witness fork");
      seen[f] = 1;
    }
    if (w.forks.size() != w.bbar)
      fail(CheckFailureKind::kWitnessInvalid, idx,
           "witness fork set size != claimed b-bar");
    if (antichain_form) {
      const graph::Reachability& reach = task.reachability();
      for (NodeId f : w.forks)
        if (task.type(f) != NodeType::BF)
          fail(CheckFailureKind::kWitnessInvalid, idx,
               "antichain member is not a blocking fork");
      for (std::size_t a = 0; a < w.forks.size(); ++a)
        for (std::size_t b = a + 1; b < w.forks.size(); ++b)
          if (reach.reaches(w.forks[a], w.forks[b]) ||
              reach.reaches(w.forks[b], w.forks[a]))
            fail(CheckFailureKind::kWitnessInvalid, idx,
                 "antichain members " + std::to_string(w.forks[a]) + " and " +
                     std::to_string(w.forks[b]) + " are precedence-ordered");
      if (own_max_antichain(task) != w.bbar)
        fail(CheckFailureKind::kConcurrencyMismatch, idx,
             "claimed antichain bound " + std::to_string(w.bbar) +
                 " != recomputed " + std::to_string(own_max_antichain(task)));
    } else {
      if (w.bbar > 0) {
        if (w.pivot >= n)
          fail(CheckFailureKind::kWitnessInvalid, idx, "witness pivot out of range");
        for (NodeId f : w.forks)
          if (!in_affecting_set(task, static_cast<NodeId>(w.pivot), f))
            fail(CheckFailureKind::kWitnessInvalid, idx,
                 "fork " + std::to_string(f) + " cannot affect pivot node " +
                     std::to_string(w.pivot));
      }
      if (own_max_affecting(task) != w.bbar)
        fail(CheckFailureKind::kConcurrencyMismatch, idx,
             "claimed b-bar " + std::to_string(w.bbar) + " != recomputed " +
                 std::to_string(own_max_affecting(task)));
    }
    note();
  }

  void require_unschedulable(std::size_t idx, bool schedulable) {
    if (schedulable)
      fail(CheckFailureKind::kDeadlineCheckFailed, idx,
           "failing claim marked schedulable");
  }

  void check_set_verdict(bool per_task_and) {
    if (per_task_and != c_.schedulable)
      fail(CheckFailureKind::kMalformed, kNoIndex,
           "set-level verdict does not match the per-task claims");
    note();
  }

  // ---- global family ----

  void check_global() {
    const GlobalCert& g = *c_.global;
    if (!ts_.priorities_distinct())
      fail(CheckFailureKind::kMalformed, kNoIndex,
           "task priorities are not distinct");
    if (g.per_task.size() != ts_.size())
      fail(CheckFailureKind::kMalformed, kNoIndex,
           "per-task certificate count mismatch");
    const std::size_t m = ts_.core_count();
    const double scale = c_.wcet_scale;

    // Hoisted per-task constants, mirroring the kernel's precomputation.
    std::vector<Time> svol(ts_.size()), svolm(ts_.size()), period(ts_.size());
    for (std::size_t i = 0; i < ts_.size(); ++i) {
      svol[i] = scale * own_volume(ts_.task(i));
      svolm[i] = svol[i] / static_cast<double>(m);
      period[i] = ts_.task(i).period();
    }

    // used[j]: the response a lower-priority task's recurrence reads for
    // τ_j. The global kernel keeps converged responses finite even past the
    // deadline and only infs true divergence.
    std::vector<Time> used(ts_.size(), util::kTimeInfinity);

    for (std::size_t idx : ts_.priority_order()) {
      const DagTask& task = ts_.task(idx);
      const GlobalTaskCert& tc = g.per_task[idx];
      const std::vector<std::size_t> hp = ts_.higher_priority_of(idx);

      std::size_t bbar = 0;
      if (g.limited) {
        if (!tc.concurrency.has_value())
          fail(CheckFailureKind::kMalformed, idx,
               "limited-concurrency analysis without a witness");
        verify_witness(idx, task, *tc.concurrency, g.antichain_bound);
        bbar = tc.concurrency->bbar;
      } else if (tc.concurrency.has_value()) {
        fail(CheckFailureKind::kMalformed, idx, "unexpected concurrency witness");
      }

      switch (tc.claim) {
        case TaskClaim::kConcurrencyZero: {
          if (!g.limited)
            fail(CheckFailureKind::kMalformed, idx,
                 "concurrency-zero claim without limited concurrency");
          if (bbar < m)
            fail(CheckFailureKind::kConcurrencyMismatch, idx,
                 "claimed stall but l-bar = " +
                     std::to_string(static_cast<long>(m) -
                                    static_cast<long>(bbar)) +
                     " > 0");
          require_unschedulable(idx, tc.schedulable);
          if (std::isfinite(tc.response))
            fail(CheckFailureKind::kMalformed, idx,
                 "stalled task with finite response");
          note();
          break;
        }
        case TaskClaim::kHpDiverged:
          check_hp_diverged(idx, tc.blocker, tc.schedulable, hp, used);
          break;
        case TaskClaim::kConverged:
        case TaskClaim::kDeadlineMiss:
        case TaskClaim::kIterationBudget:
          check_global_rta(idx, task, tc, g, hp, svol, svolm, period, used, bbar);
          break;
        default:
          fail(CheckFailureKind::kMalformed, idx,
               std::string("claim '") + to_string(tc.claim) +
                   "' is not a global-analysis outcome");
      }
    }

    bool all = true;
    for (const GlobalTaskCert& tc : g.per_task) all = all && tc.schedulable;
    check_set_verdict(all);
  }

  void check_hp_diverged(std::size_t idx, std::size_t blocker, bool schedulable,
                         const std::vector<std::size_t>& hp,
                         const std::vector<Time>& used) {
    if (blocker == kNoIndex ||
        std::find(hp.begin(), hp.end(), blocker) == hp.end())
      fail(CheckFailureKind::kMalformed, idx,
           "hp-diverged blocker is not a higher-priority task");
    if (std::isfinite(used[blocker]))
      fail(CheckFailureKind::kReplayMismatch, idx,
           "named blocker (task " + std::to_string(blocker) +
               ") has a finite response");
    require_unschedulable(idx, schedulable);
    note();
  }

  void check_global_rta(std::size_t idx, const DagTask& task,
                        const GlobalTaskCert& tc, const GlobalCert& g,
                        const std::vector<std::size_t>& hp,
                        const std::vector<Time>& svol,
                        const std::vector<Time>& svolm,
                        const std::vector<Time>& period, std::vector<Time>& used,
                        std::size_t bbar) {
    const std::size_t m = ts_.core_count();
    const double scale = c_.wcet_scale;
    for (std::size_t j : hp)
      if (!std::isfinite(used[j]))
        fail(CheckFailureKind::kMalformed, idx,
             "higher-priority task " + std::to_string(j) +
                 " diverged but claim is not hp-diverged");

    const Time len = scale * own_longest_path(task, task.wcets());
    if (!util::time_eq(tc.critical_path, len))
      fail(CheckFailureKind::kOperandMismatch, idx,
           "critical path: recorded " + num(tc.critical_path) +
               ", recomputed " + num(len));
    const Time self = svol[idx] - len;
    if (!util::time_eq(tc.self_interference, self))
      fail(CheckFailureKind::kOperandMismatch, idx,
           "self-interference: recorded " + num(tc.self_interference) +
               ", recomputed " + num(self));
    const double expected_den =
        g.limited ? static_cast<double>(m) - static_cast<double>(bbar)
                  : static_cast<double>(m);
    if (tc.denominator != expected_den)
      fail(CheckFailureKind::kOperandMismatch, idx,
           "interference denominator: recorded " + num(tc.denominator) +
               ", expected " + num(expected_den));
    if (!(expected_den > 0.0))
      fail(CheckFailureKind::kMalformed, idx,
           "non-positive denominator for an RTA claim");
    if (!std::isfinite(tc.response))
      fail(CheckFailureKind::kMalformed, idx, "RTA claim with infinite response");

    const Time deadline = task.deadline();
    if (tc.claim == TaskClaim::kConverged) {
      if (tc.hp_interference.size() != hp.size())
        fail(CheckFailureKind::kMalformed, idx,
             "hp interference breakdown size mismatch");
      Time interference = self;
      for (std::size_t k = 0; k < hp.size(); ++k) {
        const std::size_t j = hp[k];
        const Time term = own_interference(svol[j], svolm[j], period[j], used[j],
                                           tc.response, m, g.carry_in);
        if (!util::time_eq(term, tc.hp_interference[k]))
          fail(CheckFailureKind::kOperandMismatch, idx,
               "interference of hp task " + std::to_string(j) + ": recorded " +
                   num(tc.hp_interference[k]) + ", recomputed " + num(term));
        interference += term;
        note();
      }
      const Time next = len + interference / tc.denominator;
      if (!util::time_eq(next, tc.response))
        fail(CheckFailureKind::kFixedPointInconsistent, idx,
             "F(R) = " + num(next) + " but R = " + num(tc.response));
      if (util::time_le(tc.response, deadline) != tc.schedulable)
        fail(CheckFailureKind::kDeadlineCheckFailed, idx,
             "schedulable flag contradicts R = " + num(tc.response) +
                 " vs D = " + num(deadline));
      used[idx] = tc.response;
      note();
    } else {
      require_unschedulable(idx, tc.schedulable);
      // Cold replay of the diverging iteration, mirroring the kernel loop.
      Time r = len;
      bool converged = false;
      for (int iter = 0; iter < g.max_iterations; ++iter) {
        Time interference = self;
        for (std::size_t j : hp)
          interference += own_interference(svol[j], svolm[j], period[j], used[j],
                                           r, m, g.carry_in);
        const Time next = len + interference / tc.denominator;
        if (util::time_le(next, r)) {
          converged = true;
          break;
        }
        r = next;
        if (util::time_lt(deadline, r)) break;
      }
      if (converged)
        fail(CheckFailureKind::kReplayMismatch, idx,
             "replayed iteration converges at " + num(r));
      const TaskClaim kind = util::time_lt(deadline, r)
                                 ? TaskClaim::kDeadlineMiss
                                 : TaskClaim::kIterationBudget;
      if (kind != tc.claim)
        fail(CheckFailureKind::kReplayMismatch, idx,
             std::string("divergence kind: replay says ") + to_string(kind));
      if (!util::time_eq(r, tc.response))
        fail(CheckFailureKind::kReplayMismatch, idx,
             "replayed final iterate " + num(r) + " != recorded " +
                 num(tc.response));
      note();
    }
  }

  // ---- partitioned family ----

  void check_partitioned() {
    const PartitionedCert& pc = *c_.partitioned;
    if (!ts_.priorities_distinct())
      fail(CheckFailureKind::kMalformed, kNoIndex,
           "task priorities are not distinct");
    if (pc.per_task.size() != ts_.size())
      fail(CheckFailureKind::kMalformed, kNoIndex,
           "per-task certificate count mismatch");

    if (!pc.partition_failure.empty()) {
      for (std::size_t i = 0; i < ts_.size(); ++i) {
        const PartitionedTaskCert& tc = pc.per_task[i];
        if (tc.claim != TaskClaim::kPartitionFailure || tc.schedulable ||
            std::isfinite(tc.response))
          fail(CheckFailureKind::kMalformed, i,
               "partitioner failed but task carries an analysis claim");
        note();
      }
      if (c_.schedulable)
        fail(CheckFailureKind::kMalformed, kNoIndex,
             "partitioner failed but the set is claimed schedulable");
      note();
      return;
    }

    const std::size_t m = ts_.core_count();
    const double scale = c_.wcet_scale;
    if (pc.thread_of.size() != ts_.size())
      fail(CheckFailureKind::kPartitionInvalid, kNoIndex,
           "partition echo size mismatch");
    for (std::size_t i = 0; i < ts_.size(); ++i) {
      if (pc.thread_of[i].size() != ts_.task(i).node_count())
        fail(CheckFailureKind::kPartitionInvalid, i,
             "node assignment size mismatch");
      for (std::uint32_t t : pc.thread_of[i])
        if (t >= m)
          fail(CheckFailureKind::kPartitionInvalid, i, "thread id out of range");
    }
    // Core loads: ascending tasks, ascending nodes (the partitioner's own
    // accumulation order). Note: the checker does NOT assert load <= 1 —
    // overloads are legal inputs that the RTA itself rejects.
    if (pc.core_load.size() != m)
      fail(CheckFailureKind::kPartitionInvalid, kNoIndex,
           "core load vector size mismatch");
    std::vector<double> load(m, 0.0);
    for (std::size_t i = 0; i < ts_.size(); ++i) {
      const DagTask& task = ts_.task(i);
      for (NodeId v = 0; v < task.node_count(); ++v)
        load[pc.thread_of[i][v]] += task.wcet(v) / task.period();
    }
    for (std::size_t p = 0; p < m; ++p)
      if (!util::time_eq(load[p], pc.core_load[p]))
        fail(CheckFailureKind::kPartitionInvalid, kNoIndex,
             "core " + std::to_string(p) + " load: recorded " +
                 num(pc.core_load[p]) + ", recomputed " + num(load[p]));
    note();

    // Per-core unit-scale workloads of every task, used by the recurrences.
    std::vector<std::vector<Time>> W(ts_.size());
    for (std::size_t i = 0; i < ts_.size(); ++i)
      W[i] = own_workload(ts_.task(i), pc.thread_of[i], m);

    std::vector<Time> used(ts_.size(), util::kTimeInfinity);
    for (std::size_t idx : ts_.priority_order()) {
      const DagTask& task = ts_.task(idx);
      const PartitionedTaskCert& tc = pc.per_task[idx];
      const std::vector<std::uint32_t>& thread_of = pc.thread_of[idx];
      const std::vector<std::size_t> hp = ts_.higher_priority_of(idx);

      const std::size_t bbar = own_max_affecting(task);
      const bool own_df = bbar < m && !own_eq3_violation_exists(task, thread_of);
      if (own_df != tc.deadlock_free)
        fail(CheckFailureKind::kDeadlockClaimWrong, idx,
             tc.deadlock_free ? "partition is not deadlock-free as claimed"
                              : "partition is deadlock-free, claim says not");
      note();

      switch (tc.claim) {
        case TaskClaim::kConcurrencyZero: {
          if (!pc.require_deadlock_free)
            fail(CheckFailureKind::kMalformed, idx,
                 "deadlock claim with the deadlock gate disabled");
          if (bbar < m)
            fail(CheckFailureKind::kConcurrencyMismatch, idx,
                 "claimed blocking chain but b-bar = " + std::to_string(bbar) +
                     " < m = " + std::to_string(m));
          if (!tc.concurrency.has_value())
            fail(CheckFailureKind::kMalformed, idx,
                 "missing blocking-chain witness");
          verify_witness(idx, task, *tc.concurrency, /*antichain_form=*/false);
          require_unschedulable(idx, tc.schedulable);
          note();
          break;
        }
        case TaskClaim::kEq3Violation: {
          if (!pc.require_deadlock_free)
            fail(CheckFailureKind::kMalformed, idx,
                 "deadlock claim with the deadlock gate disabled");
          if (bbar >= m)
            fail(CheckFailureKind::kDeadlockClaimWrong, idx,
                 "b-bar >= m: the claim should be a blocking chain");
          if (!tc.eq3.has_value())
            fail(CheckFailureKind::kMalformed, idx, "missing Eq. (3) witness");
          const Eq3WitnessCert& wz = *tc.eq3;
          const std::size_t n = task.node_count();
          if (wz.bc_node >= n || wz.fork >= n)
            fail(CheckFailureKind::kWitnessInvalid, idx,
                 "witness node out of range");
          if (task.type(wz.bc_node) != NodeType::BC ||
              task.type(wz.fork) != NodeType::BF)
            fail(CheckFailureKind::kWitnessInvalid, idx,
                 "witness node types are not BC/BF");
          if (!in_affecting_set(task, wz.bc_node, wz.fork))
            fail(CheckFailureKind::kWitnessInvalid, idx,
                 "fork " + std::to_string(wz.fork) + " cannot affect BC node " +
                     std::to_string(wz.bc_node));
          if (thread_of[wz.bc_node] != wz.thread || thread_of[wz.fork] != wz.thread)
            fail(CheckFailureKind::kWitnessInvalid, idx,
                 "witness nodes are not co-located on thread " +
                     std::to_string(wz.thread));
          require_unschedulable(idx, tc.schedulable);
          note();
          break;
        }
        case TaskClaim::kHpDiverged:
          check_hp_diverged(idx, tc.blocker, tc.schedulable, hp, used);
          break;
        case TaskClaim::kConverged:
        case TaskClaim::kDeadlineMiss:
        case TaskClaim::kIterationBudget: {
          if (pc.require_deadlock_free && !tc.deadlock_free)
            fail(CheckFailureKind::kDeadlockClaimWrong, idx,
                 "RTA claim on a task gated by deadlock-freedom");
          for (std::size_t j : hp)
            if (!std::isfinite(used[j]))
              fail(CheckFailureKind::kMalformed, idx,
                   "higher-priority task " + std::to_string(j) +
                       " failed but claim is not hp-diverged");
          if (pc.split)
            check_split(idx, task, tc, pc, hp, W, used, scale);
          else
            check_holistic(idx, task, tc, pc, hp, W, used, scale);
          break;
        }
        default:
          fail(CheckFailureKind::kMalformed, idx,
               std::string("claim '") + to_string(tc.claim) +
                   "' is not a partitioned-analysis outcome");
      }
    }

    bool all = true;
    for (const PartitionedTaskCert& tc : pc.per_task) all = all && tc.schedulable;
    check_set_verdict(all);
  }

  void check_holistic(std::size_t idx, const DagTask& task,
                      const PartitionedTaskCert& tc, const PartitionedCert& pc,
                      const std::vector<std::size_t>& hp,
                      const std::vector<std::vector<Time>>& W,
                      std::vector<Time>& used, double scale) {
    const std::size_t m = ts_.core_count();
    const std::size_t n = task.node_count();
    const std::vector<std::uint32_t>& thread_of = pc.thread_of[idx];
    std::vector<Time> weights(n);
    for (NodeId v = 0; v < n; ++v)
      weights[v] = scale * (task.wcet(v) + own_fifo_blocking(task, thread_of, v));
    const Time base = own_longest_path(task, weights);
    if (!util::time_eq(base, tc.holistic_base))
      fail(CheckFailureKind::kOperandMismatch, idx,
           "holistic base: recorded " + num(tc.holistic_base) +
               ", recomputed " + num(base));

    const Time deadline = task.deadline();
    const auto demand_at = [&](Time r) {
      Time demand = base;
      for (std::size_t j : hp) {
        const Time period_j = ts_.task(j).period();
        for (std::size_t p = 0; p < m; ++p) {
          if (W[idx][p] <= 0.0) continue;
          const Time wjp = scale * W[j][p];
          if (wjp <= 0.0) continue;
          const Time jitter = std::max(used[j] - wjp, 0.0);
          demand += util::ceil_div(r + jitter, period_j) * wjp;
        }
      }
      return demand;
    };

    if (tc.claim == TaskClaim::kConverged) {
      if (!std::isfinite(tc.response))
        fail(CheckFailureKind::kMalformed, idx,
             "converged claim with infinite response");
      const Time fr = demand_at(tc.response);
      if (!util::time_eq(fr, tc.response))
        fail(CheckFailureKind::kFixedPointInconsistent, idx,
             "F(R) = " + num(fr) + " but R = " + num(tc.response));
      if (util::time_le(tc.response, deadline) != tc.schedulable)
        fail(CheckFailureKind::kDeadlineCheckFailed, idx,
             "schedulable flag contradicts R = " + num(tc.response) +
                 " vs D = " + num(deadline));
      used[idx] = tc.schedulable ? tc.response : util::kTimeInfinity;
      note();
    } else {
      require_unschedulable(idx, tc.schedulable);
      if (std::isfinite(tc.response))
        fail(CheckFailureKind::kMalformed, idx,
             "diverged task with finite response");
      Time r = base;
      bool converged = false;
      for (int iter = 0; iter < pc.max_iterations; ++iter) {
        const Time d = demand_at(r);
        if (util::time_le(d, r)) {
          converged = true;
          break;
        }
        r = d;
        if (util::time_lt(deadline, r)) break;
      }
      if (converged)
        fail(CheckFailureKind::kReplayMismatch, idx,
             "replayed iteration converges at " + num(r));
      const TaskClaim kind = util::time_lt(deadline, r)
                                 ? TaskClaim::kDeadlineMiss
                                 : TaskClaim::kIterationBudget;
      if (kind != tc.claim)
        fail(CheckFailureKind::kReplayMismatch, idx,
             std::string("divergence kind: replay says ") + to_string(kind));
      if (!util::time_eq(r, tc.miss_value))
        fail(CheckFailureKind::kReplayMismatch, idx,
             "replayed final iterate " + num(r) + " != recorded " +
                 num(tc.miss_value));
      note();
    }
  }

  void check_split(std::size_t idx, const DagTask& task,
                   const PartitionedTaskCert& tc, const PartitionedCert& pc,
                   const std::vector<std::size_t>& hp,
                   const std::vector<std::vector<Time>>& W,
                   std::vector<Time>& used, double scale) {
    const std::size_t n = task.node_count();
    const std::vector<std::uint32_t>& thread_of = pc.thread_of[idx];
    if (tc.segments.size() != n)
      fail(CheckFailureKind::kMalformed, idx, "segment count mismatch");
    std::vector<Time> bl(n);
    for (NodeId v = 0; v < n; ++v) {
      bl[v] = own_fifo_blocking(task, thread_of, v);
      if (!util::time_eq(bl[v], tc.segments[v].blocking))
        fail(CheckFailureKind::kOperandMismatch, idx,
             "FIFO blocking of node " + std::to_string(v) + ": recorded " +
                 num(tc.segments[v].blocking) + ", recomputed " + num(bl[v]));
    }
    note();

    const Time deadline = task.deadline();
    const auto demand_at = [&](NodeId v, Time x) {
      Time demand = scale * (task.wcet(v) + bl[v]);
      const std::uint32_t core = thread_of[v];
      for (std::size_t j : hp) {
        const Time wjp = scale * W[j][core];
        if (wjp <= 0.0) continue;
        const Time jitter = std::max(used[j] - wjp, 0.0);
        demand += util::ceil_div(x + jitter, ts_.task(j).period()) * wjp;
      }
      return demand;
    };

    if (tc.claim == TaskClaim::kConverged) {
      for (NodeId v = 0; v < n; ++v) {
        const Time x = tc.segments[v].response;
        if (!std::isfinite(x))
          fail(CheckFailureKind::kMalformed, idx,
               "segment " + std::to_string(v) + " has an infinite response");
        const Time fx = demand_at(v, x);
        if (!util::time_eq(fx, x))
          fail(CheckFailureKind::kFixedPointInconsistent, idx,
               "segment " + std::to_string(v) + ": F(x) = " + num(fx) +
                   " but x = " + num(x));
        if (util::time_lt(deadline, x))
          fail(CheckFailureKind::kDeadlineCheckFailed, idx,
               "segment " + std::to_string(v) +
                   " exceeds the deadline yet the task claims convergence");
        note();
      }
      std::vector<Time> seg(n);
      for (NodeId v = 0; v < n; ++v) seg[v] = tc.segments[v].response;
      const Time r = own_longest_path(task, seg);
      if (!util::time_eq(r, tc.response))
        fail(CheckFailureKind::kOperandMismatch, idx,
             "composed response: recorded " + num(tc.response) +
                 ", recomputed " + num(r));
      if (util::time_le(tc.response, deadline) != tc.schedulable)
        fail(CheckFailureKind::kDeadlineCheckFailed, idx,
             "schedulable flag contradicts R = " + num(tc.response) +
                 " vs D = " + num(deadline));
      used[idx] = tc.schedulable ? tc.response : util::kTimeInfinity;
      note();
    } else {
      require_unschedulable(idx, tc.schedulable);
      if (std::isfinite(tc.response))
        fail(CheckFailureKind::kMalformed, idx,
             "diverged task with finite response");
      if (tc.miss_node == kNoIndex || tc.miss_node >= n)
        fail(CheckFailureKind::kMalformed, idx, "missing or bad miss node");
      const NodeId miss = static_cast<NodeId>(tc.miss_node);
      // Segments before the miss node converged within the deadline.
      for (NodeId v = 0; v < miss; ++v) {
        const Time x = tc.segments[v].response;
        const Time fx = demand_at(v, x);
        if (!util::time_eq(fx, x))
          fail(CheckFailureKind::kFixedPointInconsistent, idx,
               "segment " + std::to_string(v) + ": F(x) = " + num(fx) +
                   " but x = " + num(x));
        if (util::time_lt(deadline, x))
          fail(CheckFailureKind::kReplayMismatch, idx,
               "segment " + std::to_string(v) +
                   " already diverges before the claimed miss node");
        note();
      }
      // Cold replay of the diverging segment.
      Time x = scale * (task.wcet(miss) + bl[miss]);
      bool converged = false;
      for (int iter = 0; iter < pc.max_iterations; ++iter) {
        const Time d = demand_at(miss, x);
        if (util::time_le(d, x)) {
          converged = true;
          break;
        }
        x = d;
        if (util::time_lt(deadline, x)) break;
      }
      const bool diverges = (!converged && util::time_le(x, deadline)) ||
                            util::time_lt(deadline, x);
      if (!diverges)
        fail(CheckFailureKind::kReplayMismatch, idx,
             "replayed segment converges within the deadline at " + num(x));
      const TaskClaim kind = util::time_lt(deadline, x)
                                 ? TaskClaim::kDeadlineMiss
                                 : TaskClaim::kIterationBudget;
      if (kind != tc.claim)
        fail(CheckFailureKind::kReplayMismatch, idx,
             std::string("divergence kind: replay says ") + to_string(kind));
      if (!util::time_eq(x, tc.miss_value) ||
          !util::time_eq(x, tc.segments[miss].response))
        fail(CheckFailureKind::kReplayMismatch, idx,
             "replayed failing iterate " + num(x) + " != recorded " +
                 num(tc.miss_value));
      for (NodeId v = miss + 1; v < n; ++v)
        if (tc.segments[v].response != 0.0)
          fail(CheckFailureKind::kMalformed, idx,
               "segment after the miss node is populated");
      note();
    }
  }

  // ---- federated family ----

  void check_federated() {
    const FederatedCert& f = *c_.federated;
    if (f.per_task.size() != ts_.size())
      fail(CheckFailureKind::kMalformed, kNoIndex,
           "per-task certificate count mismatch");
    const std::size_t m = ts_.core_count();
    const double scale = c_.wcet_scale;

    std::vector<Time> sutil(ts_.size());
    for (std::size_t i = 0; i < ts_.size(); ++i)
      sutil[i] = scale * (own_volume(ts_.task(i)) / ts_.task(i).period());

    // Replay of the dedicated-allocation pass.
    std::size_t cores_left = m;
    std::size_t dedicated_total = 0;
    std::vector<std::size_t> shared;
    for (std::size_t i = 0; i < ts_.size(); ++i) {
      const DagTask& task = ts_.task(i);
      const FederatedTaskCert& tc = f.per_task[i];
      const std::size_t bbar = f.limited ? own_max_affecting(task) : 0;
      if (tc.bbar != bbar)
        fail(CheckFailureKind::kConcurrencyMismatch, i,
             "recorded b-bar " + std::to_string(tc.bbar) + " != recomputed " +
                 std::to_string(bbar));
      const bool heavy = sutil[i] > 1.0;
      const bool promoted = f.limited && bbar > 0;
      if ((heavy || promoted) != tc.dedicated)
        fail(CheckFailureKind::kMalformed, i,
             tc.dedicated ? "task does not qualify for a dedicated allocation"
                          : "heavy/promoted task recorded as shared");
      if (!tc.dedicated) {
        if (tc.cores != 0 || tc.concurrency.has_value())
          fail(CheckFailureKind::kMalformed, i,
               "shared task with dedicated-allocation fields");
        shared.push_back(i);
        continue;
      }
      if (promoted) {
        if (!tc.concurrency.has_value())
          fail(CheckFailureKind::kMalformed, i,
               "promoted task without a b-bar witness");
        verify_witness(i, task, *tc.concurrency, /*antichain_form=*/false);
      } else if (tc.concurrency.has_value()) {
        fail(CheckFailureKind::kMalformed, i, "unexpected concurrency witness");
      }
      if (std::isfinite(tc.response))
        fail(CheckFailureKind::kMalformed, i,
             "dedicated task with a shared-core response");

      const Time len = scale * own_longest_path(task, task.wcets());
      const Time vol = scale * own_volume(task);
      const Time d = task.deadline();
      const std::size_t base =
          (d > len) ? static_cast<std::size_t>(
                          std::max(1.0, util::ceil_div(vol - len, d - len)))
                    : 0;
      if (base == 0) {
        if (tc.claim != TaskClaim::kAllocationFailure || tc.schedulable ||
            tc.cores != 0)
          fail(CheckFailureKind::kAllocationInvalid, i,
               "critical path misses the deadline; allocation is impossible");
        note();
        continue;
      }
      const std::size_t cores = base + bbar;
      if (tc.cores != cores)
        fail(CheckFailureKind::kAllocationInvalid, i,
             "recorded allocation " + std::to_string(tc.cores) +
                 " cores != recomputed " + std::to_string(cores));
      if (cores > cores_left) {
        if (tc.claim != TaskClaim::kAllocationFailure || tc.schedulable)
          fail(CheckFailureKind::kAllocationInvalid, i,
               "allocation exceeds the remaining cores yet is not a failure");
        note();
        continue;
      }
      cores_left -= cores;
      dedicated_total += cores;
      if (tc.claim != TaskClaim::kDedicated || !tc.schedulable)
        fail(CheckFailureKind::kAllocationInvalid, i,
             "satisfiable dedicated allocation not claimed as such");
      note();
    }
    if (f.dedicated_cores != dedicated_total)
      fail(CheckFailureKind::kAllocationInvalid, kNoIndex,
           "total dedicated cores: recorded " +
               std::to_string(f.dedicated_cores) + ", recomputed " +
               std::to_string(dedicated_total));

    // Replay of the shared-core worst-fit placement.
    std::stable_sort(shared.begin(), shared.end(),
                     [&](std::size_t a, std::size_t b) {
                       return sutil[a] > sutil[b];
                     });
    std::vector<std::vector<std::size_t>> per_core(cores_left);
    std::vector<double> load(cores_left, 0.0);
    for (std::size_t i : shared) {
      const FederatedTaskCert& tc = f.per_task[i];
      if (cores_left == 0) {
        if (tc.claim != TaskClaim::kNoSharedCores || tc.schedulable ||
            tc.core != kNoIndex)
          fail(CheckFailureKind::kMalformed, i,
               "no shared cores remain yet the task claims placement");
        note();
        continue;
      }
      const auto core = static_cast<std::size_t>(
          std::min_element(load.begin(), load.end()) - load.begin());
      if (tc.core != core)
        fail(CheckFailureKind::kReplayMismatch, i,
             "worst-fit places the task on core " + std::to_string(core) +
                 ", certificate says " + std::to_string(tc.core));
      per_core[core].push_back(i);
      load[core] += sutil[i];
    }

    // Per-core deadline-monotonic order and uniprocessor RTA replay.
    if (f.shared_order.size() != per_core.size())
      fail(CheckFailureKind::kReplayMismatch, kNoIndex,
           "shared-core order count mismatch");
    for (std::size_t core = 0; core < per_core.size(); ++core) {
      std::vector<std::size_t>& tasks = per_core[core];
      std::stable_sort(tasks.begin(), tasks.end(),
                       [&](std::size_t a, std::size_t b) {
                         return ts_.task(a).deadline() < ts_.task(b).deadline();
                       });
      if (f.shared_order[core] != tasks)
        fail(CheckFailureKind::kReplayMismatch, kNoIndex,
             "deadline-monotonic order on shared core " + std::to_string(core) +
                 " does not replay");
      std::vector<std::array<Time, 3>> triples;
      triples.reserve(tasks.size());
      for (std::size_t i : tasks)
        triples.push_back({scale * own_volume(ts_.task(i)),
                           ts_.task(i).period(), ts_.task(i).deadline()});
      const UniReplay uni = own_uniprocessor_rta(triples);
      const bool core_ok = uni.first_fail == kNoIndex;
      for (std::size_t k = 0; k < tasks.size(); ++k) {
        const FederatedTaskCert& tc = f.per_task[tasks[k]];
        if (tc.schedulable != core_ok)
          fail(CheckFailureKind::kDeadlineCheckFailed, tasks[k],
               "schedulable flag contradicts the core's RTA outcome");
        if (!util::time_eq(tc.response, uni.response[k]) &&
            tc.response != uni.response[k])  // both may be infinite
          fail(CheckFailureKind::kReplayMismatch, tasks[k],
               "uniprocessor iterate " + num(uni.response[k]) +
                   " != recorded " + num(tc.response));
        TaskClaim kind = TaskClaim::kConverged;
        if (!core_ok)
          kind = (k == uni.first_fail) ? TaskClaim::kDeadlineMiss
                                       : TaskClaim::kSharedCoreFailure;
        if (tc.claim != kind)
          fail(CheckFailureKind::kReplayMismatch, tasks[k],
               std::string("shared-core claim: replay says ") + to_string(kind));
        if (kind == TaskClaim::kSharedCoreFailure &&
            tc.blocker != tasks[uni.first_fail])
          fail(CheckFailureKind::kReplayMismatch, tasks[k],
               "blamed peer is not the task that failed the core's RTA");
        note();
      }
    }

    bool all = true;
    for (const FederatedTaskCert& tc : f.per_task) all = all && tc.schedulable;
    check_set_verdict(all);
  }
};

}  // namespace

CheckResult check_certificate(const TaskSet& ts, const Certificate& certificate) {
  CheckResult result;
  Checker checker(ts, certificate);
  try {
    checker.run();
  } catch (const CheckError& e) {
    result.failure = e.failure;
  }
  result.claims_checked = checker.claims();
  return result;
}

}  // namespace rtpool::analysis::cert
