#include "analysis/federated.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>
#include <optional>

#include "analysis/cert.h"
#include "analysis/concurrency.h"
#include "analysis/rta_context.h"
#include "util/time.h"

namespace rtpool::analysis {

namespace {

using util::Time;

/// Dedicated-core demand of a DAG task so that len + (vol−len)/n <= D,
/// with every WCET pre-scaled by `scale`. Returns 0 if impossible (len > D
/// — the caller rejects), 1 if the task fits sequentially.
std::size_t dedicated_core_demand(const model::DagTask& task, double scale) {
  const Time len = scale * task.critical_path_length();
  const Time vol = scale * task.volume();
  const Time d = task.deadline();
  if (!(d > len)) return 0;  // critical path alone misses the deadline
  return static_cast<std::size_t>(std::max(1.0, util::ceil_div(vol - len, d - len)));
}

/// Per-task bookkeeping of one core's RTA, recorded for certificates:
/// final iterates and the index of the first failing task (if any).
struct UniRta {
  std::vector<Time> response;
  std::size_t first_fail = cert::kNoIndex;
};

/// Uniprocessor fixed-priority RTA for serialized light tasks on one core.
/// `tasks` are (C, T, D) triples sorted by priority (DM order). The
/// iteration budget is a fixed constant (not options.max_iterations); the
/// certificate checker mirrors the same constant.
bool uniprocessor_schedulable(const std::vector<std::array<Time, 3>>& tasks,
                              UniRta* out = nullptr) {
  if (out != nullptr) {
    out->response.assign(tasks.size(), util::kTimeInfinity);
    out->first_fail = cert::kNoIndex;
  }
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const Time c = tasks[i][0];
    const Time d = tasks[i][2];
    Time r = c;
    bool missed = false;
    for (int iter = 0; iter < 100000; ++iter) {
      Time demand = c;
      for (std::size_t j = 0; j < i; ++j)
        demand += util::ceil_div(r, tasks[j][1]) * tasks[j][0];
      if (util::time_le(demand, r)) break;
      r = demand;
      if (util::time_lt(d, r)) {
        missed = true;
        break;
      }
    }
    if (util::time_lt(d, r)) missed = true;
    if (out != nullptr) out->response[i] = r;
    if (missed) {
      if (out != nullptr) out->first_fail = i;
      return false;
    }
  }
  return true;
}

}  // namespace

FederatedResult analyze_federated(const model::TaskSet& ts,
                                  const FederatedOptions& options, RtaContext* ctx,
                                  cert::FederatedCert* certificate) {
  if (!(options.wcet_scale > 0.0))
    throw model::ModelError("analyze_federated: wcet_scale must be > 0");
  std::optional<RtaContext> local_ctx;
  if (ctx == nullptr) {
    local_ctx.emplace(ts);
    ctx = &*local_ctx;
  } else if (&ctx->task_set() != &ts) {
    throw model::ModelError("analyze_federated: context bound to another task set");
  }

  FederatedResult result;
  result.per_task.resize(ts.size());
  result.schedulable = true;
  if (certificate != nullptr) {
    certificate->limited = options.limited_concurrency;
    certificate->dedicated_cores = 0;
    certificate->shared_order.clear();
    certificate->per_task.assign(ts.size(), cert::FederatedTaskCert{});
  }

  const std::size_t m = ts.core_count();
  const double scale = options.wcet_scale;
  std::size_t cores_left = m;
  std::vector<std::size_t>& shared = ctx->index_scratch();  // light tasks
  shared.clear();

  // Hoisted scaled utilizations (scale · vol / T); 1.0 · u == u exactly, so
  // the unscaled path is untouched.
  std::vector<Time>& sutil = ctx->time_scratch();
  sutil.resize(ts.size());
  for (std::size_t i = 0; i < ts.size(); ++i)
    sutil[i] = scale * ts.task(i).utilization();

  for (std::size_t i = 0; i < ts.size(); ++i) {
    const model::DagTask& task = ts.task(i);
    FederatedTaskResult& tr = result.per_task[i];
    cert::FederatedTaskCert* tcert =
        certificate != nullptr ? &certificate->per_task[i] : nullptr;

    const std::size_t bbar =
        options.limited_concurrency ? max_affecting_forks(task) : 0;
    const bool heavy = sutil[i] > 1.0;
    const bool promoted = options.limited_concurrency && bbar > 0;
    if (tcert != nullptr) tcert->bbar = bbar;

    if (heavy || promoted) {
      if (tcert != nullptr) {
        tcert->dedicated = true;
        if (options.limited_concurrency && bbar > 0)
          tcert->concurrency =
              cert::make_concurrency_witness(task, /*antichain=*/false);
      }
      const std::size_t base = dedicated_core_demand(task, scale);
      if (base == 0) {
        tr.dedicated = true;
        tr.schedulable = false;
        result.schedulable = false;
        if (tcert != nullptr) tcert->claim = cert::TaskClaim::kAllocationFailure;
        continue;
      }
      tr.dedicated = true;
      tr.cores = base + bbar;  // b̄ extra threads absorb the suspensions
      if (tcert != nullptr) tcert->cores = tr.cores;
      if (tr.cores > cores_left) {
        tr.schedulable = false;
        result.schedulable = false;
        if (tcert != nullptr) tcert->claim = cert::TaskClaim::kAllocationFailure;
        continue;
      }
      cores_left -= tr.cores;
      result.dedicated_cores += tr.cores;
      tr.schedulable = true;
      if (tcert != nullptr) {
        tcert->claim = cert::TaskClaim::kDedicated;
        tcert->schedulable = true;
      }
    } else {
      shared.push_back(i);
    }
  }

  // Serialize the light tasks and worst-fit them onto the leftover cores,
  // deadline-monotonic per core.
  std::stable_sort(shared.begin(), shared.end(), [&](std::size_t a, std::size_t b) {
    return sutil[a] > sutil[b];
  });
  std::vector<std::vector<std::size_t>> per_core(cores_left);
  std::vector<double> load(cores_left, 0.0);
  for (std::size_t i : shared) {
    FederatedTaskResult& tr = result.per_task[i];
    if (cores_left == 0) {
      tr.schedulable = false;
      result.schedulable = false;
      if (certificate != nullptr)
        certificate->per_task[i].claim = cert::TaskClaim::kNoSharedCores;
      continue;
    }
    const auto core = static_cast<std::size_t>(
        std::min_element(load.begin(), load.end()) - load.begin());
    per_core[core].push_back(i);
    load[core] += sutil[i];
    tr.schedulable = true;  // provisional; the per-core RTA below decides
    if (certificate != nullptr) certificate->per_task[i].core = core;
  }

  for (std::size_t core = 0; core < per_core.size(); ++core) {
    auto& tasks = per_core[core];
    std::stable_sort(tasks.begin(), tasks.end(), [&](std::size_t a, std::size_t b) {
      return ts.task(a).deadline() < ts.task(b).deadline();
    });
    std::vector<std::array<Time, 3>> triples;
    triples.reserve(tasks.size());
    for (std::size_t i : tasks)
      triples.push_back({scale * ts.task(i).volume(), ts.task(i).period(),
                         ts.task(i).deadline()});
    UniRta uni;
    const bool core_ok =
        uniprocessor_schedulable(triples, certificate != nullptr ? &uni : nullptr);
    if (!core_ok) {
      for (std::size_t i : tasks) result.per_task[i].schedulable = false;
      result.schedulable = false;
    }
    if (certificate != nullptr) {
      certificate->shared_order.push_back(tasks);
      for (std::size_t k = 0; k < tasks.size(); ++k) {
        cert::FederatedTaskCert& tc = certificate->per_task[tasks[k]];
        tc.schedulable = core_ok;
        tc.response = uni.response[k];
        if (core_ok) {
          tc.claim = cert::TaskClaim::kConverged;
        } else if (k == uni.first_fail) {
          tc.claim = cert::TaskClaim::kDeadlineMiss;
        } else {
          tc.claim = cert::TaskClaim::kSharedCoreFailure;
          tc.blocker = tasks[uni.first_fail];
        }
      }
    }
  }
  if (certificate != nullptr)
    certificate->dedicated_cores = result.dedicated_cores;
  return result;
}

}  // namespace rtpool::analysis
