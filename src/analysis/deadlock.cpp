#include "analysis/deadlock.h"

#include "analysis/concurrency.h"

namespace rtpool::analysis {

DeadlockCheck check_deadlock_free_global(const model::DagTask& task,
                                         std::size_t pool_size) {
  DeadlockCheck check;
  check.max_forks = max_affecting_forks(task);
  check.concurrency_bound =
      static_cast<long>(pool_size) - static_cast<long>(check.max_forks);
  check.deadlock_free = check.concurrency_bound > 0;
  if (!check.deadlock_free) {
    check.witness = task.name() + ": up to " + std::to_string(check.max_forks) +
                    " concurrently suspended BF nodes can exhaust a pool of " +
                    std::to_string(pool_size) + " threads";
  }
  return check;
}

std::optional<Eq3Violation> find_eq3_violation(const model::DagTask& task,
                                               const NodeAssignment& assignment) {
  if (assignment.thread_of.size() != task.node_count())
    throw std::invalid_argument("find_eq3_violation: assignment size mismatch");

  for (model::NodeId v = 0; v < task.node_count(); ++v) {
    if (task.type(v) != model::NodeType::BC) continue;
    const ThreadId own = assignment.thread_of[v];
    // P(v): threads hosting a node of C(v) ∪ {F(v)}.
    const util::DynamicBitset dangerous = affecting_blocking_forks(task, v);
    std::optional<Eq3Violation> hit;
    dangerous.for_each([&](std::size_t f) {
      if (!hit.has_value() && assignment.thread_of[f] == own)
        hit = Eq3Violation{v, static_cast<model::NodeId>(f), own};
    });
    if (hit.has_value()) return hit;
  }
  return std::nullopt;
}

DeadlockCheck check_deadlock_free_partitioned(const model::DagTask& task,
                                              std::size_t pool_size,
                                              const NodeAssignment& assignment) {
  DeadlockCheck check = check_deadlock_free_global(task, pool_size);
  if (!check.deadlock_free) return check;

  if (const auto violation = find_eq3_violation(task, assignment)) {
    check.deadlock_free = false;
    check.witness = task.name() + ": BC node " + std::to_string(violation->bc_node) +
                    " shares thread " + std::to_string(violation->thread) +
                    " with dangerous BF " + std::to_string(violation->fork) +
                    " (Eq. (3) violated)";
  }
  return check;
}

bool task_set_deadlock_free_global(const model::TaskSet& ts) {
  for (const model::DagTask& task : ts.tasks())
    if (!check_deadlock_free_global(task, ts.core_count()).deadlock_free) return false;
  return true;
}

bool task_set_deadlock_free_partitioned(const model::TaskSet& ts,
                                        const TaskSetPartition& partition) {
  if (partition.per_task.size() != ts.size())
    throw std::invalid_argument("task_set_deadlock_free_partitioned: size mismatch");
  for (std::size_t i = 0; i < ts.size(); ++i) {
    if (!check_deadlock_free_partitioned(ts.task(i), ts.core_count(),
                                         partition.per_task[i])
             .deadlock_free)
      return false;
  }
  return true;
}

}  // namespace rtpool::analysis
