#include "analysis/deadlock.h"

#include <sstream>

#include "analysis/antichain.h"
#include "analysis/concurrency.h"

namespace rtpool::analysis {

namespace {

std::string join_node_list(const std::vector<model::NodeId>& nodes,
                           const char* separator) {
  std::ostringstream os;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (i != 0) os << separator;
    os << nodes[i];
  }
  return os.str();
}

}  // namespace

std::optional<BlockingChainWitness> find_lemma1_witness(const model::DagTask& task,
                                                        std::size_t pool_size) {
  // b̄(τ) = max_v |X(v)| is cached by DagTask at construction; when it is
  // below the pool size no witness exists and the per-node sweep below —
  // which would only rediscover the same maximum — is skipped entirely.
  // This is the common case on every deadlock-free task set, and the sweep
  // allocates three bitsets per node, so the early return matters on the
  // experiment hot path.
  if (task.max_affecting_forks() < pool_size) return std::nullopt;

  // Pivot = the node v* achieving b̄(τ) = max_v |X(v)|; the chain is X(v*).
  BlockingChainWitness witness{0, {}, pool_size};
  std::size_t best = 0;
  for (model::NodeId v = 0; v < task.node_count(); ++v) {
    const util::DynamicBitset x = affecting_blocking_forks(task, v);
    const std::size_t count = x.count();
    if (count > best) {
      best = count;
      witness.pivot = v;
      witness.forks.clear();
      x.for_each([&](std::size_t f) {
        witness.forks.push_back(static_cast<model::NodeId>(f));
      });
    }
  }
  if (best < pool_size) return std::nullopt;
  return witness;
}

std::string describe(const BlockingChainWitness& witness, const std::string& task_name) {
  std::ostringstream os;
  os << task_name << ": node " << witness.pivot << " can wait behind "
     << witness.forks.size() << " simultaneously suspended BF node"
     << (witness.forks.size() == 1 ? "" : "s") << " {"
     << join_node_list(witness.forks, ", ") << "} exhausting a pool of "
     << witness.pool_size << " thread" << (witness.pool_size == 1 ? "" : "s");
  return os.str();
}

std::optional<WaitForCycle> find_wait_for_cycle(const model::DagTask& task,
                                                std::size_t pool_size) {
  std::vector<model::NodeId> antichain = max_simultaneous_suspension_set(task);
  if (antichain.size() < pool_size || pool_size == 0) return std::nullopt;
  antichain.resize(pool_size);  // m forks suffice to close the cycle
  return WaitForCycle{std::move(antichain), pool_size};
}

std::string describe(const WaitForCycle& cycle, const std::string& task_name) {
  std::ostringstream os;
  os << task_name << ": wait-for cycle on the WC graph: BF "
     << join_node_list(cycle.forks, " -> BF ") << " -> BF " << cycle.forks.front()
     << " (" << cycle.forks.size() << " pairwise-concurrent forks hold all "
     << cycle.pool_size << " threads while each waits for the next)";
  return os.str();
}

std::vector<Eq3Violation> find_eq3_violations(const model::DagTask& task,
                                              const NodeAssignment& assignment) {
  if (assignment.thread_of.size() != task.node_count())
    throw std::invalid_argument("find_eq3_violations: assignment size mismatch");

  std::vector<Eq3Violation> violations;
  if (task.blocking_regions().empty()) return violations;  // no BC nodes

  // Same X(v) as affecting_blocking_forks, with the BF mask hoisted out of
  // the loop and one reused bitset instead of three allocations per node.
  util::DynamicBitset bf_mask(task.node_count());
  for (const model::BlockingRegion& r : task.blocking_regions())
    bf_mask.set(r.fork);
  const graph::Reachability& reach = task.reachability();
  util::DynamicBitset dangerous(task.node_count());
  for (model::NodeId v = 0; v < task.node_count(); ++v) {
    if (task.type(v) != model::NodeType::BC) continue;
    const ThreadId own = assignment.thread_of[v];
    // P(v): threads hosting a node of C(v) ∪ {F(v)}.
    dangerous = bf_mask;
    dangerous.and_not_assign(reach.ancestors(v));
    dangerous.and_not_assign(reach.descendants(v));
    if (dangerous.test(v)) dangerous.reset(v);
    dangerous.set(task.blocking_fork_of(v));
    bool hit = false;
    dangerous.for_each([&](std::size_t f) {
      if (!hit && assignment.thread_of[f] == own) {
        hit = true;
        violations.push_back(Eq3Violation{v, static_cast<model::NodeId>(f), own});
      }
    });
  }
  return violations;
}

std::optional<Eq3Violation> find_eq3_violation(const model::DagTask& task,
                                               const NodeAssignment& assignment) {
  const std::vector<Eq3Violation> all = find_eq3_violations(task, assignment);
  if (all.empty()) return std::nullopt;
  return all.front();
}

std::string describe(const Eq3Violation& violation, const std::string& task_name) {
  return task_name + ": BC node " + std::to_string(violation.bc_node) +
         " shares thread " + std::to_string(violation.thread) +
         " with dangerous BF " + std::to_string(violation.fork) +
         " (Eq. (3) violated)";
}

DeadlockCheck check_deadlock_free_global(const model::DagTask& task,
                                         std::size_t pool_size) {
  DeadlockCheck check;
  check.max_forks = max_affecting_forks(task);
  check.concurrency_bound =
      static_cast<long>(pool_size) - static_cast<long>(check.max_forks);
  const auto witness = find_lemma1_witness(task, pool_size);
  check.deadlock_free = !witness.has_value();
  if (witness.has_value()) check.witness = describe(*witness, task.name());
  return check;
}

DeadlockCheck check_deadlock_free_partitioned(const model::DagTask& task,
                                              std::size_t pool_size,
                                              const NodeAssignment& assignment) {
  DeadlockCheck check = check_deadlock_free_global(task, pool_size);
  if (!check.deadlock_free) return check;

  if (const auto violation = find_eq3_violation(task, assignment)) {
    check.deadlock_free = false;
    check.witness = describe(*violation, task.name());
  }
  return check;
}

bool is_deadlock_free_partitioned(const model::DagTask& task,
                                  std::size_t pool_size,
                                  const NodeAssignment& assignment) {
  if (assignment.thread_of.size() != task.node_count())
    throw std::invalid_argument(
        "is_deadlock_free_partitioned: assignment size mismatch");
  // Lemma 1: the witness search maximizes |X(v)|, which is exactly the
  // cached b̄(τ) — a witness exists iff b̄(τ) >= pool size.
  if (task.max_affecting_forks() >= pool_size) return false;
  const std::vector<model::BlockingRegion>& regions = task.blocking_regions();
  if (regions.empty()) return true;

  // Eq. (3): a BC node v may not share its thread with any BF of X(v) =
  // (BF \ (pred(v) ∪ succ(v))) ∪ {F(v)}. Regions are few, so per-fork bit
  // probes beat materializing the X(v) mask.
  const graph::Reachability& reach = task.reachability();
  for (model::NodeId v = 0; v < task.node_count(); ++v) {
    if (task.type(v) != model::NodeType::BC) continue;
    const ThreadId own = assignment.thread_of[v];
    const model::NodeId fv = task.blocking_fork_of(v);
    for (const model::BlockingRegion& r : regions) {
      const model::NodeId f = r.fork;
      if (assignment.thread_of[f] != own) continue;
      if (f == fv) return false;
      if (!reach.ancestors(v).test(f) && !reach.descendants(v).test(f))
        return false;
    }
  }
  return true;
}

bool task_set_deadlock_free_global(const model::TaskSet& ts) {
  for (const model::DagTask& task : ts.tasks())
    if (!check_deadlock_free_global(task, ts.core_count()).deadlock_free) return false;
  return true;
}

bool task_set_deadlock_free_partitioned(const model::TaskSet& ts,
                                        const TaskSetPartition& partition) {
  if (partition.per_task.size() != ts.size())
    throw std::invalid_argument("task_set_deadlock_free_partitioned: size mismatch");
  for (std::size_t i = 0; i < ts.size(); ++i) {
    if (!check_deadlock_free_partitioned(ts.task(i), ts.core_count(),
                                         partition.per_task[i])
             .deadlock_free)
      return false;
  }
  return true;
}

}  // namespace rtpool::analysis
