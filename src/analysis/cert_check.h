// Independent certificate checker (the validation half of the translation
// validation loop — see cert.h for the emission half).
//
// `check_certificate` re-validates every claim of a Certificate against the
// task set alone. INDEPENDENCE RULE: this module depends only on the model
// layer (task structure, WCETs, deadlines, priorities), the cached
// graph::Reachability closure, and util/time.h. It shares NO code with the
// analysis kernels: no RtaContext, no concurrency.h/antichain.h/deadlock.h,
// no partitioners. Where a formula of the paper must be re-evaluated (the
// interference bound, the FIFO blocking sum, b̄, the longest path), the
// checker carries its own deliberate textual mirror, so a kernel bug cannot
// silently certify itself.
//
// The checker runs one pass over the certificate in priority order and
// stops at the FIRST violated claim, reporting it as a structured
// CheckFailure. Verification is exact where the kernel is exact (integral
// core counts, allocation arithmetic) and tolerance-based (util::time_eq)
// where the kernel iterates over doubles.
#pragma once

#include <cstddef>
#include <optional>
#include <string>

#include "analysis/cert.h"
#include "model/task_set.h"

namespace rtpool::analysis::cert {

/// Which class of claim was violated. Ordered roughly from "the certificate
/// is not even well-formed" to "a specific analytical claim is false".
enum class CheckFailureKind : unsigned char {
  kMalformed,              ///< Structure/claim inconsistent with the options.
  kOperandMismatch,        ///< A recorded operand disagrees with the model.
  kFixedPointInconsistent, ///< F(R) != R for a claimed fixed point.
  kDeadlineCheckFailed,    ///< schedulable flag contradicts R vs D.
  kReplayMismatch,         ///< A divergence/allocation replay disagrees.
  kWitnessInvalid,         ///< A witness set does not prove what it claims.
  kConcurrencyMismatch,    ///< Claimed b̄ / antichain bound is wrong.
  kDeadlockClaimWrong,     ///< Lemma-3 verdict contradicts the partition.
  kPartitionInvalid,       ///< Partition echo malformed or loads wrong.
  kAllocationInvalid,      ///< Federated core accounting is wrong.
};

const char* to_string(CheckFailureKind kind);

/// First violated claim. `task` is the task index the claim belongs to, or
/// cert::kNoIndex for set-level claims (envelope, partition echo, verdict).
struct CheckFailure {
  CheckFailureKind kind = CheckFailureKind::kMalformed;
  std::size_t task = kNoIndex;
  std::string detail;
};

struct CheckResult {
  std::optional<CheckFailure> failure;
  /// Number of individual claims validated before success/failure (reported
  /// by `rtpool_cli --certify` so a pass is visibly non-vacuous).
  std::size_t claims_checked = 0;

  bool ok() const { return !failure.has_value(); }
};

/// Validate `certificate` against `ts`. Never throws on a bad certificate —
/// all violations come back as CheckResult::failure; ModelError from a
/// malformed task set still propagates (the certificate cannot be checked
/// against a set the model layer rejects).
CheckResult check_certificate(const model::TaskSet& ts,
                              const Certificate& certificate);

}  // namespace rtpool::analysis::cert
