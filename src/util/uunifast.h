// UUniFast utilization generation (Bini & Buttazzo, 2005), used by the
// task-set generator of Section 5 of the paper.
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace rtpool::util {

/// Generate `n` task utilizations that sum exactly to `total_utilization`,
/// uniformly distributed over the simplex (UUniFast).
///
/// Throws std::invalid_argument if n == 0 or total_utilization <= 0.
std::vector<double> uunifast(std::size_t n, double total_utilization, Rng& rng);

/// UUniFast variant that rejects vectors containing a task utilization
/// above `max_per_task` (e.g. 1.0 would reject tasks that cannot fit on a
/// single processor-equivalent). Retries up to `max_attempts` times and
/// throws std::runtime_error on exhaustion.
std::vector<double> uunifast_capped(std::size_t n, double total_utilization,
                                    double max_per_task, Rng& rng,
                                    int max_attempts = 1000);

}  // namespace rtpool::util
