#include "util/json.h"

#include <cmath>
#include <stdexcept>

namespace rtpool::util {

void JsonWriter::before_value() {
  if (stack_.empty()) {
    if (wrote_root_) throw std::logic_error("JsonWriter: multiple root values");
    return;
  }
  if (stack_.back() == Scope::kObject && !key_pending_)
    throw std::logic_error("JsonWriter: value inside object requires key()");
  if (stack_.back() == Scope::kArray) {
    if (!first_.back()) out_ << ',';
    first_.back() = false;
  }
  key_pending_ = false;
}

void JsonWriter::write_string(const std::string& s) {
  out_ << '"';
  for (char c : s) {
    switch (c) {
      case '"': out_ << "\\\""; break;
      case '\\': out_ << "\\\\"; break;
      case '\n': out_ << "\\n"; break;
      case '\r': out_ << "\\r"; break;
      case '\t': out_ << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out_ << buf;
        } else {
          out_ << c;
        }
    }
  }
  out_ << '"';
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ << '{';
  stack_.push_back(Scope::kObject);
  first_.push_back(true);
  wrote_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || stack_.back() != Scope::kObject)
    throw std::logic_error("JsonWriter: end_object without begin_object");
  if (key_pending_) throw std::logic_error("JsonWriter: dangling key");
  out_ << '}';
  stack_.pop_back();
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ << '[';
  stack_.push_back(Scope::kArray);
  first_.push_back(true);
  wrote_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != Scope::kArray)
    throw std::logic_error("JsonWriter: end_array without begin_array");
  out_ << ']';
  stack_.pop_back();
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  if (stack_.empty() || stack_.back() != Scope::kObject)
    throw std::logic_error("JsonWriter: key() outside object");
  if (key_pending_) throw std::logic_error("JsonWriter: key() after key()");
  if (!first_.back()) out_ << ',';
  first_.back() = false;
  write_string(name);
  out_ << ':';
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  before_value();
  write_string(v);
  wrote_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::value(double v) {
  before_value();
  if (std::isnan(v)) {
    write_string("nan");
  } else if (std::isinf(v)) {
    write_string(v > 0 ? "inf" : "-inf");
  } else {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    out_ << buf;
  }
  wrote_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  out_ << v;
  wrote_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  out_ << v;
  wrote_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ << (v ? "true" : "false");
  wrote_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ << "null";
  wrote_root_ = true;
  return *this;
}

}  // namespace rtpool::util
