#include "util/json.h"

#include <cctype>
#include <cmath>
#include <stdexcept>

namespace rtpool::util {

void JsonWriter::before_value() {
  if (stack_.empty()) {
    if (wrote_root_) throw std::logic_error("JsonWriter: multiple root values");
    return;
  }
  if (stack_.back() == Scope::kObject && !key_pending_)
    throw std::logic_error("JsonWriter: value inside object requires key()");
  if (stack_.back() == Scope::kArray) {
    if (!first_.back()) out_ << ',';
    first_.back() = false;
  }
  key_pending_ = false;
}

void JsonWriter::write_string(const std::string& s) {
  // RFC 8259 strings must be valid UTF-8. ASCII control characters are
  // escaped; multi-byte sequences are validated against RFC 3629 (length,
  // continuation bytes, overlongs, surrogate range, <= U+10FFFF) and passed
  // through verbatim when well-formed. Each ill-formed byte is replaced by
  // one U+FFFD so the output is always parseable JSON.
  static const char kReplacement[] = "\xEF\xBF\xBD";  // U+FFFD in UTF-8.
  const auto* bytes = reinterpret_cast<const unsigned char*>(s.data());
  const std::size_t n = s.size();
  out_ << '"';
  std::size_t i = 0;
  while (i < n) {
    const unsigned char c = bytes[i];
    if (c < 0x80) {
      switch (c) {
        case '"': out_ << "\\\""; break;
        case '\\': out_ << "\\\\"; break;
        case '\n': out_ << "\\n"; break;
        case '\r': out_ << "\\r"; break;
        case '\t': out_ << "\\t"; break;
        default:
          if (c < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out_ << buf;
          } else {
            out_ << static_cast<char>(c);
          }
      }
      ++i;
      continue;
    }
    std::size_t length = 0;
    unsigned code = 0;
    unsigned min_code = 0;
    if ((c & 0xE0) == 0xC0) {
      length = 2; code = c & 0x1Fu; min_code = 0x80;
    } else if ((c & 0xF0) == 0xE0) {
      length = 3; code = c & 0x0Fu; min_code = 0x800;
    } else if ((c & 0xF8) == 0xF0) {
      length = 4; code = c & 0x07u; min_code = 0x10000;
    } else {
      // Stray continuation byte or 0xF8–0xFF lead byte.
      out_ << kReplacement;
      ++i;
      continue;
    }
    bool valid = i + length <= n;
    for (std::size_t k = 1; valid && k < length; ++k) {
      if ((bytes[i + k] & 0xC0) != 0x80) {
        valid = false;
      } else {
        code = (code << 6) | (bytes[i + k] & 0x3Fu);
      }
    }
    valid = valid && code >= min_code && code <= 0x10FFFF &&
            (code < 0xD800 || code > 0xDFFF);
    if (!valid) {
      out_ << kReplacement;
      ++i;  // Resynchronize on the next byte, one U+FFFD per bad byte.
      continue;
    }
    out_.write(s.data() + static_cast<std::ptrdiff_t>(i),
               static_cast<std::streamsize>(length));
    i += length;
  }
  out_ << '"';
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ << '{';
  stack_.push_back(Scope::kObject);
  first_.push_back(true);
  wrote_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || stack_.back() != Scope::kObject)
    throw std::logic_error("JsonWriter: end_object without begin_object");
  if (key_pending_) throw std::logic_error("JsonWriter: dangling key");
  out_ << '}';
  stack_.pop_back();
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ << '[';
  stack_.push_back(Scope::kArray);
  first_.push_back(true);
  wrote_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != Scope::kArray)
    throw std::logic_error("JsonWriter: end_array without begin_array");
  out_ << ']';
  stack_.pop_back();
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  if (stack_.empty() || stack_.back() != Scope::kObject)
    throw std::logic_error("JsonWriter: key() outside object");
  if (key_pending_) throw std::logic_error("JsonWriter: key() after key()");
  if (!first_.back()) out_ << ',';
  first_.back() = false;
  write_string(name);
  out_ << ':';
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  before_value();
  write_string(v);
  wrote_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::value(double v) {
  before_value();
  if (std::isnan(v)) {
    write_string("nan");
  } else if (std::isinf(v)) {
    write_string(v > 0 ? "inf" : "-inf");
  } else {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    out_ << buf;
  }
  wrote_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  out_ << v;
  wrote_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  out_ << v;
  wrote_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ << (v ? "true" : "false");
  wrote_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ << "null";
  wrote_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::raw_value(const std::string& json) {
  before_value();
  out_ << json;
  wrote_root_ = true;
  return *this;
}

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) throw std::logic_error("JsonValue: not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  if (kind_ != Kind::kNumber) throw std::logic_error("JsonValue: not a number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) throw std::logic_error("JsonValue: not a string");
  return string_;
}

const JsonValue::Array& JsonValue::as_array() const {
  if (kind_ != Kind::kArray) throw std::logic_error("JsonValue: not an array");
  return array_;
}

const JsonValue::Object& JsonValue::as_object() const {
  if (kind_ != Kind::kObject) throw std::logic_error("JsonValue: not an object");
  return object_;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const Object& obj = as_object();
  const auto it = obj.find(key);
  if (it == obj.end()) throw std::out_of_range("JsonValue: missing key '" + key + "'");
  return it->second;
}

bool JsonValue::contains(const std::string& key) const {
  return kind_ == Kind::kObject && object_.count(key) != 0;
}

namespace {

/// Recursive-descent parser over an in-memory buffer.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw JsonParseError("JSON parse error at offset " + std::to_string(pos_) +
                         ": " + why);
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue parse_value() {
    skip_whitespace();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return JsonValue(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return JsonValue(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue();
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue::Object obj;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(obj));
    }
    for (;;) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      obj.insert_or_assign(std::move(key), parse_value());
      skip_whitespace();
      const char c = peek();
      ++pos_;
      if (c == '}') return JsonValue(std::move(obj));
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue::Array arr;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(arr));
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_whitespace();
      const char c = peek();
      ++pos_;
      if (c == ']') return JsonValue(std::move(arr));
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_unicode_escape(out); break;
        default: fail("unknown escape sequence");
      }
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text_[pos_++];
      code <<= 4;
      if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
      else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
      else fail("bad hex digit in \\u escape");
    }
    return code;
  }

  void append_unicode_escape(std::string& out) {
    unsigned code = parse_hex4();
    if (code >= 0xD800 && code <= 0xDBFF) {
      // High surrogate: combine with an immediately following \uDC00–\uDFFF
      // into one supplementary-plane code point (RFC 8259 §7). An unpaired
      // high surrogate decodes to U+FFFD and the next escape is re-parsed
      // on its own.
      if (pos_ + 2 <= text_.size() && text_[pos_] == '\\' &&
          text_[pos_ + 1] == 'u') {
        const std::size_t saved = pos_;
        pos_ += 2;
        const unsigned low = parse_hex4();
        if (low >= 0xDC00 && low <= 0xDFFF) {
          code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
        } else {
          pos_ = saved;
          code = 0xFFFD;
        }
      } else {
        code = 0xFFFD;
      }
    } else if (code >= 0xDC00 && code <= 0xDFFF) {
      code = 0xFFFD;  // Lone low surrogate.
    }
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    const std::string token = text_.substr(start, pos_ - start);
    try {
      std::size_t used = 0;
      const double v = std::stod(token, &used);
      if (used != token.size() || token.empty()) throw std::invalid_argument(token);
      return JsonValue(v);
    } catch (const std::exception&) {
      pos_ = start;
      fail("bad number '" + token + "'");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(const std::string& text) {
  return JsonParser(text).parse_document();
}

namespace {

bool is_json_ws(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

/// Bytes a scalar token (number/true/false/null) may contain; anything else
/// terminates it. Deliberately loose — the strict parser validates later.
bool is_scalar_byte(char c) {
  return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') ||
         (c >= 'A' && c <= 'Z') || c == '+' || c == '-' || c == '.';
}

}  // namespace

void JsonStreamParser::feed(const char* data, std::size_t size) {
  buffer_.append(data, size);
}

bool JsonStreamParser::idle() const {
  for (std::size_t i = started_ ? doc_start_ : consumed_; i < buffer_.size();
       ++i)
    if (!is_json_ws(buffer_[i])) return false;
  return !started_;
}

std::optional<std::size_t> JsonStreamParser::find_boundary() {
  const std::size_t n = buffer_.size();
  // Locate the document's first byte (skipping inter-document whitespace).
  while (!started_ && scan_ < n) {
    const char c = buffer_[scan_];
    if (is_json_ws(c)) {
      ++scan_;
      continue;
    }
    started_ = true;
    doc_start_ = scan_;
    if (c == '{' || c == '[') {
      depth_ = 0;  // the container loop below counts the opener itself
    } else if (c == '"') {
      string_root_ = true;
      in_string_ = true;
      ++scan_;
    } else if (c == '-' || (c >= '0' && c <= '9') || c == 't' || c == 'f' ||
               c == 'n') {
      scalar_root_ = true;
    } else {
      const std::size_t at = scan_;
      // Discard the byte and fully reset so the next call scans fresh from
      // the byte after it: started_ must come back down (it was set above)
      // and scan_ must advance past the consumed prefix, or compact() would
      // rebase scan_ below zero and the scanner would never find another
      // boundary.
      started_ = false;
      consumed_ = scan_ + 1;
      scan_ = consumed_;
      compact();
      throw JsonParseError("JSON stream error at offset " +
                           std::to_string(at) + ": invalid document start '" +
                           std::string(1, c) + "'");
    }
  }
  if (!started_) return std::nullopt;

  if (scalar_root_) {
    while (scan_ < n && is_scalar_byte(buffer_[scan_])) ++scan_;
    if (scan_ < n || finished_) return scan_ > doc_start_ ? std::optional(scan_)
                                                          : std::nullopt;
    return std::nullopt;  // a trailing "12" could continue as "123"
  }

  if (string_root_) {
    while (scan_ < n) {
      const char c = buffer_[scan_++];
      if (escape_) escape_ = false;
      else if (c == '\\') escape_ = true;
      else if (c == '"') return scan_;
    }
    return std::nullopt;
  }

  // Container root: track nesting depth with full string/escape awareness.
  while (scan_ < n) {
    const char c = buffer_[scan_++];
    if (in_string_) {
      if (escape_) escape_ = false;
      else if (c == '\\') escape_ = true;
      else if (c == '"') in_string_ = false;
      continue;
    }
    switch (c) {
      case '"': in_string_ = true; break;
      case '{':
      case '[': ++depth_; break;
      case '}':
      case ']':
        if (--depth_ == 0) return scan_;
        break;
      default: break;
    }
  }
  return std::nullopt;
}

void JsonStreamParser::compact() {
  // Drop the consumed prefix once it dominates the buffer, so a long-lived
  // connection does not grow its buffer with every submission.
  if (consumed_ > 4096 && consumed_ * 2 > buffer_.size()) {
    buffer_.erase(0, consumed_);
    // scan_/doc_start_ always sit at or past the consumed prefix; clamp
    // anyway so a bookkeeping slip degrades to a rescan, not to a SIZE_MAX
    // wraparound that silently kills the stream.
    scan_ = scan_ > consumed_ ? scan_ - consumed_ : 0;
    if (started_) doc_start_ = doc_start_ > consumed_ ? doc_start_ - consumed_ : 0;
    consumed_ = 0;
  }
}

std::optional<JsonValue> JsonStreamParser::next() {
  const std::optional<std::size_t> end = find_boundary();
  if (!end.has_value()) {
    if (finished_ && started_) {
      // End of input with a half-open container/string root: report it with
      // the strict parser's diagnostics, then discard the fragment.
      const std::string doc = buffer_.substr(doc_start_);
      consumed_ = buffer_.size();
      started_ = false;
      scalar_root_ = string_root_ = in_string_ = escape_ = false;
      depth_ = 0;
      compact();
      return parse_json(doc);  // throws JsonParseError (incomplete document)
    }
    return std::nullopt;
  }
  const std::string doc = buffer_.substr(doc_start_, *end - doc_start_);
  consumed_ = *end;
  scan_ = *end;
  started_ = false;
  scalar_root_ = string_root_ = in_string_ = escape_ = false;
  depth_ = 0;
  compact();
  return parse_json(doc);  // strict validation; throws on malformed input
}

}  // namespace rtpool::util
