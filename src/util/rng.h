// Seeded random number generation used by the task generator and experiments.
//
// All randomized components take an explicit `Rng&` so that every experiment
// is reproducible from a single 64-bit seed; nothing in the library touches
// global random state.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace rtpool::util {

/// Deterministic random source (mt19937_64 behind a convenience API).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Uniformly chosen index in [0, size); `size` must be > 0.
  std::size_t index(std::size_t size);

  /// Fisher-Yates shuffle of `items`.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = index(i);
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Derive an independent child RNG (for parallel experiment trials).
  Rng fork();

  /// Derive a child RNG keyed by `salt` WITHOUT advancing this engine:
  /// the stream for a given (seed, salt) pair is stable no matter how many
  /// other draws happen in between. Used by the fault injector so the fault
  /// hitting node v depends only on (plan seed, v), never on iteration
  /// order — every failure replays from its seed.
  Rng fork_with(std::uint64_t salt) const;

  /// Access the underlying engine (for std distributions).
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;  ///< Construction seed, kept for fork_with().
};

}  // namespace rtpool::util
