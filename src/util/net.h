// Minimal TCP socket wrappers and frame codec for the admission service.
//
// rtpool-serve speaks two transports: newline/whitespace-delimited JSON on
// stdin (framed by the JSON grammar itself, via util::JsonStreamParser) and
// length-prefixed frames over TCP. This header owns the TCP half: RAII
// sockets, a loopback listener whose accept() can be unblocked for a clean
// daemon shutdown, and the frame codec — a 4-byte big-endian payload length
// followed by the payload bytes. The explicit length lets a reader size its
// buffer up front and reject oversized submissions before allocating.
//
// POSIX sockets only (the project's CI and container targets are Linux);
// everything throws util::NetError with the errno message on failure.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace rtpool::util {

/// Thrown on any socket/framing failure; the message names the operation
/// and the errno text.
class NetError : public std::runtime_error {
 public:
  explicit NetError(const std::string& what) : std::runtime_error(what) {}
};

/// RAII file-descriptor wrapper for a connected TCP socket (move-only).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();

  /// Send every byte (loops over short writes). Throws NetError.
  void send_all(const void* data, std::size_t size);

  /// Receive up to `size` bytes; 0 means the peer closed the connection.
  std::size_t recv_some(void* data, std::size_t size);

 private:
  int fd_ = -1;
};

/// Listening TCP socket. Binds immediately; port 0 picks an ephemeral port
/// (read it back with port() — the bench and tests bind 127.0.0.1:0).
class TcpListener {
 public:
  TcpListener(const std::string& host, std::uint16_t port);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// The actually bound port (resolves port 0).
  std::uint16_t port() const { return port_; }

  /// Block for the next connection. Returns an invalid Socket after
  /// shutdown() (the daemon's stop signal), throws NetError otherwise.
  Socket accept();

  /// Unblock any accept() in progress; subsequent accepts return invalid.
  void shutdown();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Blocking loopback/remote connect. Throws NetError.
Socket tcp_connect(const std::string& host, std::uint16_t port);

/// Upper bound a frame reader accepts before declaring the stream corrupt.
inline constexpr std::size_t kMaxFramePayload = std::size_t{64} << 20;

/// Write one length-prefixed frame (4-byte big-endian length + payload).
void write_frame(Socket& socket, std::string_view payload);

/// Read one frame. std::nullopt on a clean EOF at a frame boundary;
/// NetError on a truncated frame or a length above kMaxFramePayload.
std::optional<std::string> read_frame(Socket& socket);

}  // namespace rtpool::util
