#include "util/bitset.h"

namespace rtpool::util {

std::vector<std::size_t> DynamicBitset::to_indices() const {
  std::vector<std::size_t> out;
  out.reserve(count());
  for_each([&](std::size_t i) { out.push_back(i); });
  return out;
}

}  // namespace rtpool::util
