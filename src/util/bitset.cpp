#include "util/bitset.h"

#include <bit>
#include <stdexcept>

namespace rtpool::util {

DynamicBitset::DynamicBitset(std::size_t size)
    : size_(size), words_((size + 63) / 64, 0) {}

void DynamicBitset::check_compatible(const DynamicBitset& other) const {
  if (size_ != other.size_)
    throw std::invalid_argument("DynamicBitset: size mismatch");
}

bool DynamicBitset::test(std::size_t i) const {
  if (i >= size_) throw std::out_of_range("DynamicBitset::test");
  return (words_[i / 64] >> (i % 64)) & 1u;
}

void DynamicBitset::set(std::size_t i) {
  if (i >= size_) throw std::out_of_range("DynamicBitset::set");
  words_[i / 64] |= (std::uint64_t{1} << (i % 64));
}

void DynamicBitset::reset(std::size_t i) {
  if (i >= size_) throw std::out_of_range("DynamicBitset::reset");
  words_[i / 64] &= ~(std::uint64_t{1} << (i % 64));
}

void DynamicBitset::clear() {
  for (auto& w : words_) w = 0;
}

void DynamicBitset::set_all() {
  for (auto& w : words_) w = ~std::uint64_t{0};
  const std::size_t tail = size_ % 64;
  if (tail != 0 && !words_.empty())
    words_.back() &= (std::uint64_t{1} << tail) - 1;
}

std::size_t DynamicBitset::count() const {
  std::size_t c = 0;
  for (auto w : words_) c += static_cast<std::size_t>(std::popcount(w));
  return c;
}

bool DynamicBitset::none() const {
  for (auto w : words_)
    if (w != 0) return false;
  return true;
}

bool DynamicBitset::intersects(const DynamicBitset& other) const {
  check_compatible(other);
  for (std::size_t i = 0; i < words_.size(); ++i)
    if ((words_[i] & other.words_[i]) != 0) return true;
  return false;
}

bool DynamicBitset::or_assign(const DynamicBitset& other) {
  check_compatible(other);
  bool changed = false;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    const std::uint64_t merged = words_[i] | other.words_[i];
    changed = changed || (merged != words_[i]);
    words_[i] = merged;
  }
  return changed;
}

void DynamicBitset::and_assign(const DynamicBitset& other) {
  check_compatible(other);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
}

void DynamicBitset::and_not_assign(const DynamicBitset& other) {
  check_compatible(other);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
}

std::vector<std::size_t> DynamicBitset::to_indices() const {
  std::vector<std::size_t> out;
  out.reserve(count());
  for_each([&](std::size_t i) { out.push_back(i); });
  return out;
}

}  // namespace rtpool::util
