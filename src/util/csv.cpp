#include "util/csv.h"

#include <stdexcept>

namespace rtpool::util {

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& header)
    : path_(path), out_(path), columns_(header.size()) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  if (header.empty()) throw std::invalid_argument("CsvWriter: empty header");
  row(header);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  if (cells.size() != columns_)
    throw std::invalid_argument("CsvWriter: cell count mismatch");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
  out_.flush();
}

std::string CsvWriter::escape(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string quoted = "\"";
  for (char c : cell) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace rtpool::util
