#include "util/rng.h"

#include <stdexcept>

namespace rtpool::util {

double Rng::uniform(double lo, double hi) {
  if (!(lo <= hi)) throw std::invalid_argument("Rng::uniform: lo > hi");
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
  std::uniform_int_distribution<std::int64_t> dist(lo, hi);
  return dist(engine_);
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

std::size_t Rng::index(std::size_t size) {
  if (size == 0) throw std::invalid_argument("Rng::index: empty range");
  std::uniform_int_distribution<std::size_t> dist(0, size - 1);
  return dist(engine_);
}

Rng Rng::fork() {
  // Draw two words so child streams do not trivially overlap the parent's.
  const std::uint64_t a = engine_();
  const std::uint64_t b = engine_();
  return Rng(a ^ (b << 1) ^ 0x9e3779b97f4a7c15ULL);
}

namespace {
/// splitmix64 finalizer: full-avalanche mix for seed derivation.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace

Rng Rng::fork_with(std::uint64_t salt) const {
  return Rng(mix64(seed_ ^ mix64(salt)));
}

}  // namespace rtpool::util
