// Small statistics helpers for the experiment harness.
#pragma once

#include <cstddef>
#include <vector>

namespace rtpool::util {

/// Streaming accumulator for mean/min/max/stddev (Welford).
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const;
  double variance() const;   ///< Sample variance (n-1); 0 if n < 2.
  double stddev() const;
  double min() const;        ///< NaN if empty.
  double max() const;        ///< NaN if empty.

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Counter of boolean outcomes; `ratio()` is the success fraction.
class RatioCounter {
 public:
  void add(bool success) {
    ++total_;
    if (success) ++hits_;
  }
  std::size_t total() const { return total_; }
  std::size_t hits() const { return hits_; }
  double ratio() const { return total_ == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(total_); }

 private:
  std::size_t total_ = 0;
  std::size_t hits_ = 0;
};

/// p-th percentile (0..100) by linear interpolation; input need not be sorted.
double percentile(std::vector<double> values, double p);

}  // namespace rtpool::util
