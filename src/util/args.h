// Tiny command-line argument parser for bench/example binaries.
//
// Supports `--key=value`, `--key value` and boolean flags `--key`. Unknown
// keys are rejected so typos in experiment parameters fail loudly instead of
// silently running the default configuration.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace rtpool::util {

/// Parsed command line with typed accessors and default values.
class Args {
 public:
  /// Parse argv. `known_keys` lists every accepted `--key`; an unknown key or
  /// a positional argument throws std::invalid_argument (message includes
  /// the offending token).
  Args(int argc, const char* const argv[], const std::vector<std::string>& known_keys);

  bool has(const std::string& key) const;

  std::string get_string(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  /// Unsigned 64-bit value (seeds, counters). Rejects negative input, which
  /// a get_int → uint64 cast would silently wrap into a huge value.
  std::uint64_t get_uint64(const std::string& key, std::uint64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// Comma-separated list of integers, e.g. `--m=2,4,8`.
  std::vector<std::int64_t> get_int_list(const std::string& key,
                                         const std::vector<std::int64_t>& fallback) const;

 private:
  std::optional<std::string> raw(const std::string& key) const;

  std::map<std::string, std::string> values_;
};

}  // namespace rtpool::util
