// Minimal streaming JSON writer (no external dependencies).
//
// Supports the subset needed by the trace/report exporters: nested objects
// and arrays, string escaping, finite numbers (non-finite doubles are
// emitted as strings "inf"/"-inf"/"nan" to stay valid JSON), booleans and
// null. Usage errors (value without a pending key inside an object,
// mismatched end_*) throw std::logic_error.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace rtpool::util {

class JsonWriter {
 public:
  /// Writes to `out`; the stream must outlive the writer.
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Inside an object: set the key for the next value.
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// Shorthand: key(name).value(v).
  template <typename T>
  JsonWriter& kv(const std::string& name, const T& v) {
    key(name);
    return value(v);
  }

  /// True once every container has been closed and a root value written.
  bool complete() const { return stack_.empty() && wrote_root_; }

 private:
  enum class Scope : unsigned char { kObject, kArray };

  void before_value();
  void write_string(const std::string& s);

  std::ostream& out_;
  std::vector<Scope> stack_;
  std::vector<bool> first_;   ///< Parallel to stack_: no element written yet.
  bool key_pending_ = false;
  bool wrote_root_ = false;
};

}  // namespace rtpool::util
