// Minimal streaming JSON writer and recursive-descent parser (no external
// dependencies).
//
// The writer supports the subset needed by the trace/report exporters:
// nested objects and arrays, string escaping, finite numbers (non-finite
// doubles are emitted as strings "inf"/"-inf"/"nan" to stay valid JSON),
// booleans and null. Strings are treated as UTF-8: control characters are
// \u-escaped, well-formed multi-byte sequences pass through verbatim, and
// each ill-formed byte (stray continuation, overlong, surrogate half,
// > U+10FFFF, truncated sequence) is replaced by U+FFFD so the output is
// always valid JSON. Usage errors (value without a pending key inside an
// object, mismatched end_*) throw std::logic_error.
//
// The parser (`parse_json`) accepts everything the writer can emit — used
// by tests to round-trip exported reports/diagnostics — plus standard JSON
// it never produces (\uXXXX escapes incl. surrogate pairs, exponents,
// whitespace). Unpaired surrogate escapes decode to U+FFFD; malformed
// input throws JsonParseError with the offending byte offset.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

namespace rtpool::util {

class JsonWriter {
 public:
  /// Writes to `out`; the stream must outlive the writer.
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Inside an object: set the key for the next value.
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// Shorthand: key(name).value(v).
  template <typename T>
  JsonWriter& kv(const std::string& name, const T& v) {
    key(name);
    return value(v);
  }

  /// True once every container has been closed and a root value written.
  bool complete() const { return stack_.empty() && wrote_root_; }

 private:
  enum class Scope : unsigned char { kObject, kArray };

  void before_value();
  void write_string(const std::string& s);

  std::ostream& out_;
  std::vector<Scope> stack_;
  std::vector<bool> first_;   ///< Parallel to stack_: no element written yet.
  bool key_pending_ = false;
  bool wrote_root_ = false;
};

/// Thrown by parse_json on malformed input; the message includes the
/// 0-based byte offset of the error.
class JsonParseError : public std::runtime_error {
 public:
  explicit JsonParseError(const std::string& what) : std::runtime_error(what) {}
};

/// Parsed JSON document node (immutable after parsing).
///
/// Object member order is not preserved (std::map keeps keys sorted) —
/// sufficient for the round-trip checks this parser exists for.
class JsonValue {
 public:
  enum class Kind : unsigned char { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue>;

  JsonValue() : kind_(Kind::kNull) {}
  explicit JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}
  explicit JsonValue(double d) : kind_(Kind::kNumber), number_(d) {}
  explicit JsonValue(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}
  explicit JsonValue(Array a) : kind_(Kind::kArray), array_(std::move(a)) {}
  explicit JsonValue(Object o) : kind_(Kind::kObject), object_(std::move(o)) {}

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; throw std::logic_error on a kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Object member lookup; throws std::logic_error if not an object and
  /// std::out_of_range if the key is absent.
  const JsonValue& at(const std::string& key) const;

  /// True if this is an object containing `key`.
  bool contains(const std::string& key) const;

 private:
  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Parse a complete JSON document. Trailing non-whitespace input and any
/// syntax error throw JsonParseError.
JsonValue parse_json(const std::string& text);

}  // namespace rtpool::util
