// Minimal streaming JSON writer and recursive-descent parser (no external
// dependencies).
//
// The writer supports the subset needed by the trace/report exporters:
// nested objects and arrays, string escaping, finite numbers (non-finite
// doubles are emitted as strings "inf"/"-inf"/"nan" to stay valid JSON),
// booleans and null. Strings are treated as UTF-8: control characters are
// \u-escaped, well-formed multi-byte sequences pass through verbatim, and
// each ill-formed byte (stray continuation, overlong, surrogate half,
// > U+10FFFF, truncated sequence) is replaced by U+FFFD so the output is
// always valid JSON. Usage errors (value without a pending key inside an
// object, mismatched end_*) throw std::logic_error.
//
// The parser (`parse_json`) accepts everything the writer can emit — used
// by tests to round-trip exported reports/diagnostics — plus standard JSON
// it never produces (\uXXXX escapes incl. surrogate pairs, exponents,
// whitespace). Unpaired surrogate escapes decode to U+FFFD; malformed
// input throws JsonParseError with the offending byte offset.
//
// For network streams there is an incremental front end (`JsonStreamParser`):
// feed() accepts arbitrary partial buffers and next() yields each complete
// top-level document as soon as its final byte has arrived — a reader can
// resume on more data instead of blocking on a half-received submission.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

namespace rtpool::util {

class JsonWriter {
 public:
  /// Writes to `out`; the stream must outlive the writer.
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Inside an object: set the key for the next value.
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// Splice a PRE-RENDERED JSON value verbatim (object/array/scalar). The
  /// caller guarantees `json` is one complete, valid JSON value — e.g. the
  /// output of another renderer. Commas/keys around it are still managed by
  /// this writer, so envelopes can embed sub-documents without re-parsing.
  JsonWriter& raw_value(const std::string& json);

  /// Shorthand: key(name).value(v).
  template <typename T>
  JsonWriter& kv(const std::string& name, const T& v) {
    key(name);
    return value(v);
  }

  /// True once every container has been closed and a root value written.
  bool complete() const { return stack_.empty() && wrote_root_; }

 private:
  enum class Scope : unsigned char { kObject, kArray };

  void before_value();
  void write_string(const std::string& s);

  std::ostream& out_;
  std::vector<Scope> stack_;
  std::vector<bool> first_;   ///< Parallel to stack_: no element written yet.
  bool key_pending_ = false;
  bool wrote_root_ = false;
};

/// Thrown by parse_json on malformed input; the message includes the
/// 0-based byte offset of the error.
class JsonParseError : public std::runtime_error {
 public:
  explicit JsonParseError(const std::string& what) : std::runtime_error(what) {}
};

/// Parsed JSON document node (immutable after parsing).
///
/// Object member order is not preserved (std::map keeps keys sorted) —
/// sufficient for the round-trip checks this parser exists for.
class JsonValue {
 public:
  enum class Kind : unsigned char { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue>;

  JsonValue() : kind_(Kind::kNull) {}
  explicit JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}
  explicit JsonValue(double d) : kind_(Kind::kNumber), number_(d) {}
  explicit JsonValue(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}
  explicit JsonValue(Array a) : kind_(Kind::kArray), array_(std::move(a)) {}
  explicit JsonValue(Object o) : kind_(Kind::kObject), object_(std::move(o)) {}

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; throw std::logic_error on a kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Object member lookup; throws std::logic_error if not an object and
  /// std::out_of_range if the key is absent.
  const JsonValue& at(const std::string& key) const;

  /// True if this is an object containing `key`.
  bool contains(const std::string& key) const;

 private:
  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Parse a complete JSON document. Trailing non-whitespace input and any
/// syntax error throw JsonParseError.
JsonValue parse_json(const std::string& text);

/// Incremental (streaming) front end over parse_json: feed partial buffers
/// as they arrive, pop complete top-level documents as soon as their final
/// byte is in. The boundary scanner tracks container nesting and string/
/// escape state byte-by-byte, so a document split at ANY offset — mid-key,
/// mid-escape, mid-number — reassembles to exactly what parse_json returns
/// on the whole text (regression-tested at every split offset of a golden
/// submission). Multiple documents per buffer and documents separated only
/// by whitespace both work; each completed document is still validated by
/// the strict recursive-descent parser.
///
/// Scalar roots (numbers, true/false/null) are unterminated by nature — a
/// trailing "12" could continue as "123" — so they complete only when a
/// delimiter byte follows or finish() declares end of input. Container and
/// string roots (the only shapes the serve protocol uses) complete exactly
/// at their final byte.
///
/// Errors: an invalid first byte or a malformed completed document throws
/// JsonParseError. The offending bytes are discarded first, so a long-lived
/// stream (one connection, many submissions) can keep feeding after
/// catching the error.
class JsonStreamParser {
 public:
  /// Append bytes to the stream (any split is fine, including empty).
  void feed(const char* data, std::size_t size);
  void feed(const std::string& bytes) { feed(bytes.data(), bytes.size()); }

  /// Extract the next complete document; std::nullopt when more input is
  /// needed. Call repeatedly to drain back-to-back documents.
  std::optional<JsonValue> next();

  /// Declare end of input: a pending scalar root completes, a half-open
  /// container/string root becomes a JsonParseError on the next next().
  void finish() { finished_ = true; }

  /// Bytes buffered but not yet part of a completed document.
  std::size_t pending_bytes() const { return buffer_.size() - consumed_; }

  /// True when no partial document is buffered (between submissions).
  bool idle() const;

 private:
  /// Scan for the end of the document starting at doc_start_; returns the
  /// offset one past its final byte, or nullopt if incomplete.
  std::optional<std::size_t> find_boundary();
  void compact();

  std::string buffer_;
  std::size_t consumed_ = 0;   ///< Prefix of buffer_ already handed out.
  std::size_t scan_ = 0;       ///< Resume point of the boundary scanner.
  std::size_t doc_start_ = 0;  ///< First non-whitespace byte of the document.
  bool started_ = false;       ///< A document's first byte has been seen.
  int depth_ = 0;              ///< Open containers at scan_.
  bool in_string_ = false;
  bool escape_ = false;
  bool scalar_root_ = false;   ///< Root is a number/true/false/null.
  bool string_root_ = false;   ///< Root is a bare string.
  bool finished_ = false;
};

}  // namespace rtpool::util
