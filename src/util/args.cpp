#include "util/args.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace rtpool::util {

namespace {

bool is_known(const std::vector<std::string>& keys, const std::string& key) {
  return std::find(keys.begin(), keys.end(), key) != keys.end();
}

}  // namespace

Args::Args(int argc, const char* const argv[], const std::vector<std::string>& known_keys) {
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0)
      throw std::invalid_argument("Args: unexpected positional argument '" + token + "'");
    token.erase(0, 2);

    std::string key;
    std::string value;
    const auto eq = token.find('=');
    if (eq != std::string::npos) {
      key = token.substr(0, eq);
      value = token.substr(eq + 1);
    } else {
      key = token;
      // `--key value` form: consume the next token unless it is another flag.
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";  // bare boolean flag
      }
    }
    if (!is_known(known_keys, key))
      throw std::invalid_argument("Args: unknown option '--" + key + "'");
    values_[key] = value;
  }
}

bool Args::has(const std::string& key) const { return values_.count(key) != 0; }

std::optional<std::string> Args::raw(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Args::get_string(const std::string& key, const std::string& fallback) const {
  return raw(key).value_or(fallback);
}

std::int64_t Args::get_int(const std::string& key, std::int64_t fallback) const {
  const auto v = raw(key);
  if (!v) return fallback;
  try {
    return std::stoll(*v);
  } catch (const std::exception&) {
    throw std::invalid_argument("Args: --" + key + " expects an integer, got '" + *v + "'");
  }
}

std::uint64_t Args::get_uint64(const std::string& key, std::uint64_t fallback) const {
  const auto v = raw(key);
  if (!v) return fallback;
  const auto first = v->find_first_not_of(" \t");
  if (first != std::string::npos && (*v)[first] == '-')
    throw std::invalid_argument("Args: --" + key +
                                " expects a non-negative integer, got '" + *v + "'");
  try {
    std::size_t consumed = 0;
    const std::uint64_t value = std::stoull(*v, &consumed);
    if (consumed != v->size()) throw std::invalid_argument(*v);
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument("Args: --" + key +
                                " expects a non-negative integer, got '" + *v + "'");
  }
}

double Args::get_double(const std::string& key, double fallback) const {
  const auto v = raw(key);
  if (!v) return fallback;
  try {
    return std::stod(*v);
  } catch (const std::exception&) {
    throw std::invalid_argument("Args: --" + key + " expects a number, got '" + *v + "'");
  }
}

bool Args::get_bool(const std::string& key, bool fallback) const {
  const auto v = raw(key);
  if (!v) return fallback;
  if (*v == "true" || *v == "1" || *v == "yes") return true;
  if (*v == "false" || *v == "0" || *v == "no") return false;
  throw std::invalid_argument("Args: --" + key + " expects a boolean, got '" + *v + "'");
}

std::vector<std::int64_t> Args::get_int_list(
    const std::string& key, const std::vector<std::int64_t>& fallback) const {
  const auto v = raw(key);
  if (!v) return fallback;
  std::vector<std::int64_t> out;
  std::stringstream ss(*v);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    try {
      out.push_back(std::stoll(item));
    } catch (const std::exception&) {
      throw std::invalid_argument("Args: --" + key + " expects integers, got '" + item + "'");
    }
  }
  if (out.empty())
    throw std::invalid_argument("Args: --" + key + " expects a non-empty list");
  return out;
}

}  // namespace rtpool::util
