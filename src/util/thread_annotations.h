// Clang thread-safety annotations plus an annotated mutex/condvar wrapper.
//
// With Clang and -Wthread-safety, the annotations turn lock-discipline
// violations (touching guarded state without the mutex, forgetting a lock
// in one code path) into compile errors. Under other compilers (the CI
// default toolchain is GCC) every macro expands to nothing and util::Mutex
// behaves exactly like std::mutex.
//
// std::mutex itself cannot be annotated (libstdc++'s type has no capability
// attribute), hence the wrappers:
//
//   util::Mutex      — annotated capability; drop-in std::mutex.
//   util::MutexLock  — scoped capability; drop-in std::lock_guard.
//   util::CondVar    — condition variable bound to util::Mutex. Waits
//                      REQUIRE the mutex. No predicate overloads: lambdas
//                      escape the analysis context, so call sites use
//                      explicit while-loops (which TSA can check).
#pragma once

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define RTPOOL_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef RTPOOL_THREAD_ANNOTATION
#define RTPOOL_THREAD_ANNOTATION(x)  // not Clang: no-op
#endif

#define RTPOOL_CAPABILITY(x) RTPOOL_THREAD_ANNOTATION(capability(x))
#define RTPOOL_SCOPED_CAPABILITY RTPOOL_THREAD_ANNOTATION(scoped_lockable)
#define RTPOOL_GUARDED_BY(x) RTPOOL_THREAD_ANNOTATION(guarded_by(x))
#define RTPOOL_PT_GUARDED_BY(x) RTPOOL_THREAD_ANNOTATION(pt_guarded_by(x))
#define RTPOOL_ACQUIRE(...) RTPOOL_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define RTPOOL_RELEASE(...) RTPOOL_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RTPOOL_TRY_ACQUIRE(...) \
  RTPOOL_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define RTPOOL_REQUIRES(...) RTPOOL_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define RTPOOL_EXCLUDES(...) RTPOOL_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define RTPOOL_RETURN_CAPABILITY(x) RTPOOL_THREAD_ANNOTATION(lock_returned(x))
#define RTPOOL_NO_THREAD_SAFETY_ANALYSIS \
  RTPOOL_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace rtpool::util {

/// std::mutex with a capability annotation.
class RTPOOL_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() RTPOOL_ACQUIRE() { m_.lock(); }
  void unlock() RTPOOL_RELEASE() { m_.unlock(); }
  bool try_lock() RTPOOL_TRY_ACQUIRE(true) { return m_.try_lock(); }

  /// The wrapped mutex, for CondVar's std::condition_variable bridge only.
  std::mutex& native() { return m_; }

 private:
  std::mutex m_;
};

/// std::lock_guard over util::Mutex, visible to the analysis.
class RTPOOL_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) RTPOOL_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RTPOOL_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable over util::Mutex. Implemented on the plain
/// std::condition_variable (not condition_variable_any) by adopting and
/// releasing the already-held native mutex around each wait — no extra
/// internal lock, identical performance to the unannotated original.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) RTPOOL_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.native(), std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller still logically holds mu
  }

  template <class Clock, class Duration>
  std::cv_status wait_until(Mutex& mu,
                            const std::chrono::time_point<Clock, Duration>& deadline)
      RTPOOL_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.native(), std::adopt_lock);
    const std::cv_status status = cv_.wait_until(lock, deadline);
    lock.release();
    return status;
  }

  template <class Rep, class Period>
  std::cv_status wait_for(Mutex& mu,
                          const std::chrono::duration<Rep, Period>& timeout)
      RTPOOL_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.native(), std::adopt_lock);
    const std::cv_status status = cv_.wait_for(lock, timeout);
    lock.release();
    return status;
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace rtpool::util
