#include "util/uunifast.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rtpool::util {

std::vector<double> uunifast(std::size_t n, double total_utilization, Rng& rng) {
  if (n == 0) throw std::invalid_argument("uunifast: n must be > 0");
  if (!(total_utilization > 0.0))
    throw std::invalid_argument("uunifast: total utilization must be > 0");

  std::vector<double> u(n);
  double sum = total_utilization;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const double exponent = 1.0 / static_cast<double>(n - 1 - i);
    const double next = sum * std::pow(rng.uniform(0.0, 1.0), exponent);
    u[i] = sum - next;
    sum = next;
  }
  u[n - 1] = sum;
  return u;
}

std::vector<double> uunifast_capped(std::size_t n, double total_utilization,
                                    double max_per_task, Rng& rng,
                                    int max_attempts) {
  if (max_per_task * static_cast<double>(n) < total_utilization)
    throw std::invalid_argument("uunifast_capped: infeasible cap");
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    auto u = uunifast(n, total_utilization, rng);
    const bool ok =
        std::all_of(u.begin(), u.end(), [&](double x) { return x <= max_per_task; });
    if (ok) return u;
  }
  throw std::runtime_error("uunifast_capped: attempts exhausted");
}

}  // namespace rtpool::util
