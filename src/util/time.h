// Time representation and numerically robust helpers shared by all analyses.
//
// The model layer uses a continuous time domain (`Time = double`): the paper
// derives periods as T_i = C_i / U_i with UUniFast-generated utilizations, so
// periods are in general not integral. All fixed-point iterations in the
// response-time analyses use the epsilon-robust ceiling below so that values
// that are integral up to floating rounding are not bumped to the next step.
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>

namespace rtpool::util {

/// Continuous time value (same unit as node WCETs).
using Time = double;

/// Positive infinity, used for "no bound" / divergent fixpoints.
inline constexpr Time kTimeInfinity = std::numeric_limits<Time>::infinity();

/// Relative tolerance used when comparing analysis times.
inline constexpr double kTimeEps = 1e-9;

/// True if `a` and `b` are equal up to the analysis tolerance.
inline bool time_eq(Time a, Time b) {
  const Time scale = std::max({std::fabs(a), std::fabs(b), 1.0});
  return std::fabs(a - b) <= kTimeEps * scale;
}

/// True if `a` is strictly less than `b` beyond the tolerance.
inline bool time_lt(Time a, Time b) { return a < b && !time_eq(a, b); }

/// True if `a <= b` up to the tolerance.
inline bool time_le(Time a, Time b) { return a < b || time_eq(a, b); }

/// Epsilon-robust ceil(x): values within tolerance of an integer are not
/// rounded up to the next one (e.g. ceil(3.0000000001) == 3).
inline double ceil_robust(double x) {
  const double r = std::nearbyint(x);
  const double scale = std::max(std::fabs(x), 1.0);
  if (std::fabs(x - r) <= kTimeEps * scale) return r;
  return std::ceil(x);
}

/// Epsilon-robust ceil(num / den), the workhorse of request-bound functions.
inline double ceil_div(double num, double den) { return ceil_robust(num / den); }

}  // namespace rtpool::util
