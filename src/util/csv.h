// Minimal CSV writer used by the experiment harness to dump figure data.
#pragma once

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace rtpool::util {

/// Writes rows to a CSV file; values are escaped per RFC 4180 when needed.
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  /// Throws std::runtime_error if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Append one row; the number of cells must match the header.
  void row(const std::vector<std::string>& cells);

  /// Convenience: build a row from heterogeneous values via operator<<.
  template <typename... Ts>
  void row_values(const Ts&... values) {
    std::vector<std::string> cells;
    cells.reserve(sizeof...(values));
    (cells.push_back(to_cell(values)), ...);
    row(cells);
  }

  const std::string& path() const { return path_; }

 private:
  template <typename T>
  static std::string to_cell(const T& v) {
    std::ostringstream os;
    os << v;
    return os.str();
  }

  static std::string escape(const std::string& cell);

  std::string path_;
  std::ofstream out_;
  std::size_t columns_;
};

}  // namespace rtpool::util
