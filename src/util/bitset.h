// Fixed-capacity dynamic bitset used for reachability closures.
//
// std::vector<bool> lacks word-level operations; this class stores 64-bit
// words and supports the bulk OR/AND/ANDNOT and popcount operations the
// graph closure and the concurrency analysis (set C(v), Section 3.1 of the
// paper) are built on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rtpool::util {

/// Dynamic bitset with word-parallel set algebra.
class DynamicBitset {
 public:
  DynamicBitset() = default;
  explicit DynamicBitset(std::size_t size);

  std::size_t size() const { return size_; }

  bool test(std::size_t i) const;
  void set(std::size_t i);
  void reset(std::size_t i);
  void clear();        ///< Reset all bits to 0.
  void set_all();      ///< Set all bits (only the first `size()` bits).

  /// Number of set bits.
  std::size_t count() const;

  /// True if no bit is set.
  bool none() const;

  /// True if any bit is set in both this and `other` (sizes must match).
  bool intersects(const DynamicBitset& other) const;

  /// this |= other (sizes must match). Returns true if any bit changed.
  bool or_assign(const DynamicBitset& other);

  /// this &= other (sizes must match).
  void and_assign(const DynamicBitset& other);

  /// this &= ~other (sizes must match).
  void and_not_assign(const DynamicBitset& other);

  /// Indices of all set bits, ascending.
  std::vector<std::size_t> to_indices() const;

  /// Visit all set bits in ascending order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t bits = words_[w];
      while (bits != 0) {
        const int b = __builtin_ctzll(bits);
        fn(w * 64 + static_cast<std::size_t>(b));
        bits &= bits - 1;
      }
    }
  }

  bool operator==(const DynamicBitset& other) const = default;

 private:
  void check_compatible(const DynamicBitset& other) const;

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace rtpool::util
