// Fixed-capacity dynamic bitset used for reachability closures.
//
// std::vector<bool> lacks word-level operations; this class stores 64-bit
// words and supports the bulk OR/AND/ANDNOT and popcount operations the
// graph closure and the concurrency analysis (set C(v), Section 3.1 of the
// paper) are built on.
//
// All single-bit and word-sweep operations are defined inline: profiling
// the experiment hot path shows tens of millions of test/set calls per
// bench run, and the out-of-line call overhead dominated the single-word
// bit twiddle they perform. Range checks are preserved (they are
// well-predicted branches).
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace rtpool::util {

/// Read-only view over bitset words stored elsewhere (little-endian bit
/// order, bits past `size()` zero — the DynamicBitset invariants). Lets
/// flat row-major containers (graph::Reachability) hand out rows without
/// materializing one heap-backed bitset per row.
class BitsetView {
 public:
  BitsetView(const std::uint64_t* words, std::size_t size)
      : words_(words), size_(size) {}

  std::size_t size() const { return size_; }
  std::size_t word_count() const { return (size_ + 63) / 64; }

  bool test(std::size_t i) const {
    if (i >= size_) throw std::out_of_range("BitsetView::test");
    return (words_[i / 64] >> (i % 64)) & 1u;
  }

  std::span<const std::uint64_t> words() const { return {words_, word_count()}; }

  std::size_t count() const {
    std::size_t c = 0;
    for (std::size_t w = 0; w < word_count(); ++w)
      c += static_cast<std::size_t>(std::popcount(words_[w]));
    return c;
  }

  /// Visit all set bits in ascending order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t w = 0; w < word_count(); ++w) {
      std::uint64_t bits = words_[w];
      while (bits != 0) {
        const int b = __builtin_ctzll(bits);
        fn(w * 64 + static_cast<std::size_t>(b));
        bits &= bits - 1;
      }
    }
  }

 private:
  const std::uint64_t* words_;
  std::size_t size_;
};

/// Dynamic bitset with word-parallel set algebra.
class DynamicBitset {
 public:
  DynamicBitset() = default;
  explicit DynamicBitset(std::size_t size)
      : size_(size), words_((size + 63) / 64, 0) {}

  /// Copy the viewed bits (implicit: lets `DynamicBitset b = view;` work at
  /// the call sites that materialize one closure row for mutation).
  DynamicBitset(BitsetView view)
      : size_(view.size()),
        words_(view.words().begin(), view.words().end()) {}

  DynamicBitset& operator=(BitsetView view) {
    size_ = view.size();
    const std::span<const std::uint64_t> w = view.words();
    words_.assign(w.begin(), w.end());
    return *this;
  }

  std::size_t size() const { return size_; }

  bool test(std::size_t i) const {
    if (i >= size_) throw std::out_of_range("DynamicBitset::test");
    return (words_[i / 64] >> (i % 64)) & 1u;
  }

  void set(std::size_t i) {
    if (i >= size_) throw std::out_of_range("DynamicBitset::set");
    words_[i / 64] |= (std::uint64_t{1} << (i % 64));
  }

  void reset(std::size_t i) {
    if (i >= size_) throw std::out_of_range("DynamicBitset::reset");
    words_[i / 64] &= ~(std::uint64_t{1} << (i % 64));
  }

  /// Reset all bits to 0.
  void clear() {
    for (auto& w : words_) w = 0;
  }

  /// Resize to `size` bits, all zero. Reuses the word storage when it
  /// suffices (no allocation on shrink or equal size) — the scratch-bitset
  /// idiom of the analysis kernels.
  void resize_clear(std::size_t size) {
    size_ = size;
    words_.assign((size + 63) / 64, 0);
  }

  /// Set all bits (only the first `size()` bits).
  void set_all() {
    for (auto& w : words_) w = ~std::uint64_t{0};
    const std::size_t tail = size_ % 64;
    if (tail != 0 && !words_.empty())
      words_.back() &= (std::uint64_t{1} << tail) - 1;
  }

  /// Number of set bits.
  std::size_t count() const {
    std::size_t c = 0;
    for (auto w : words_) c += static_cast<std::size_t>(std::popcount(w));
    return c;
  }

  /// True if no bit is set.
  bool none() const {
    for (auto w : words_)
      if (w != 0) return false;
    return true;
  }

  /// True if any bit is set in both this and `other` (sizes must match).
  bool intersects(const DynamicBitset& other) const {
    check_compatible(other);
    for (std::size_t i = 0; i < words_.size(); ++i)
      if ((words_[i] & other.words_[i]) != 0) return true;
    return false;
  }

  /// this |= other (sizes must match). Returns true if any bit changed.
  bool or_assign(const DynamicBitset& other) {
    check_compatible(other);
    bool changed = false;
    for (std::size_t i = 0; i < words_.size(); ++i) {
      const std::uint64_t merged = words_[i] | other.words_[i];
      changed = changed || (merged != words_[i]);
      words_[i] = merged;
    }
    return changed;
  }

  /// this &= other (sizes must match).
  void and_assign(const DynamicBitset& other) {
    check_compatible(other);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  }

  /// this &= ~other (sizes must match).
  void and_not_assign(const DynamicBitset& other) {
    check_compatible(other);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
  }

  // View overloads of the set algebra (sizes must match).
  void and_assign(BitsetView other) {
    check_compatible(other);
    const std::uint64_t* w = other.words().data();
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= w[i];
  }
  void and_not_assign(BitsetView other) {
    check_compatible(other);
    const std::uint64_t* w = other.words().data();
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~w[i];
  }
  bool or_assign(BitsetView other) {
    check_compatible(other);
    const std::uint64_t* w = other.words().data();
    bool changed = false;
    for (std::size_t i = 0; i < words_.size(); ++i) {
      const std::uint64_t merged = words_[i] | w[i];
      changed = changed || (merged != words_[i]);
      words_[i] = merged;
    }
    return changed;
  }

  /// Raw 64-bit words, little-endian bit order; bits past `size()` are 0.
  /// For callers that fuse several set operations into one word sweep
  /// (the analysis blocking kernel) instead of materializing temporaries.
  std::span<const std::uint64_t> words() const { return words_; }

  /// Indices of all set bits, ascending.
  std::vector<std::size_t> to_indices() const;

  /// Visit all set bits in ascending order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t bits = words_[w];
      while (bits != 0) {
        const int b = __builtin_ctzll(bits);
        fn(w * 64 + static_cast<std::size_t>(b));
        bits &= bits - 1;
      }
    }
  }

  bool operator==(const DynamicBitset& other) const = default;

 private:
  void check_compatible(const DynamicBitset& other) const {
    if (size_ != other.size_)
      throw std::invalid_argument("DynamicBitset: size mismatch");
  }
  void check_compatible(BitsetView other) const {
    if (size_ != other.size())
      throw std::invalid_argument("DynamicBitset: size mismatch");
  }

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace rtpool::util
