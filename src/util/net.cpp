#include "util/net.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace rtpool::util {

namespace {

[[noreturn]] void fail(const std::string& op) {
  throw NetError(op + ": " + std::strerror(errno));
}

/// Resolve host into a sockaddr_in (IPv4 is all the service needs; the
/// daemon binds loopback or a numeric address from the command line).
sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (host.empty() || host == "*") {
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
    return addr;
  }
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1) return addr;
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const int rc = getaddrinfo(host.c_str(), nullptr, &hints, &res);
  if (rc != 0 || res == nullptr)
    throw NetError("resolve '" + host + "': " + gai_strerror(rc));
  addr.sin_addr = reinterpret_cast<sockaddr_in*>(res->ai_addr)->sin_addr;
  freeaddrinfo(res);
  return addr;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::send_all(const void* data, std::size_t size) {
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    const ssize_t n = ::send(fd_, p, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("send");
    }
    p += n;
    size -= static_cast<std::size_t>(n);
  }
}

std::size_t Socket::recv_some(void* data, std::size_t size) {
  for (;;) {
    const ssize_t n = ::recv(fd_, data, size, 0);
    if (n >= 0) return static_cast<std::size_t>(n);
    if (errno != EINTR) fail("recv");
  }
}

TcpListener::TcpListener(const std::string& host, std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) fail("socket");
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr = make_addr(host, port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    fail("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd_, 64) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    fail("listen");
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    fail("getsockname");
  port_ = ntohs(addr.sin_port);
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) ::close(fd_);
}

Socket TcpListener::accept() {
  for (;;) {
    const int conn = ::accept(fd_, nullptr, nullptr);
    if (conn >= 0) {
      // Frames are request/response units: never let Nagle hold a response
      // back waiting for the peer's delayed ACK (a 40ms stall per frame).
      const int one = 1;
      ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      return Socket(conn);
    }
    if (errno == EINTR) continue;
    // shutdown() surfaces as EINVAL (or ECONNABORTED/EBADF under races):
    // the daemon's orderly stop, not an error.
    if (errno == EINVAL || errno == ECONNABORTED || errno == EBADF)
      return Socket();
    fail("accept");
  }
}

void TcpListener::shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Socket tcp_connect(const std::string& host, std::uint16_t port) {
  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  if (!s.valid()) fail("socket");
  sockaddr_in addr = make_addr(host, port);
  for (;;) {
    if (::connect(s.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0)
      break;
    if (errno == EINTR) continue;
    fail("connect " + host + ":" + std::to_string(port));
  }
  const int one = 1;
  ::setsockopt(s.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return s;
}

void write_frame(Socket& socket, std::string_view payload) {
  if (payload.size() > kMaxFramePayload)
    throw NetError("write_frame: payload of " + std::to_string(payload.size()) +
                   " bytes exceeds the frame limit");
  const std::uint32_t n = static_cast<std::uint32_t>(payload.size());
  // One send() per frame: a separate header write would let the kernel put
  // the 4 header bytes on the wire alone and (without TCP_NODELAY) sit on
  // the payload until the peer ACKs — the classic 40ms Nagle stall.
  std::string frame;
  frame.reserve(sizeof n + payload.size());
  frame.push_back(static_cast<char>(n >> 24));
  frame.push_back(static_cast<char>(n >> 16));
  frame.push_back(static_cast<char>(n >> 8));
  frame.push_back(static_cast<char>(n));
  frame.append(payload);
  socket.send_all(frame.data(), frame.size());
}

namespace {

/// Read exactly `size` bytes. False on EOF before the first byte (when
/// `eof_ok`); NetError on EOF mid-read.
bool recv_exact(Socket& socket, void* data, std::size_t size, bool eof_ok) {
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < size) {
    const std::size_t n = socket.recv_some(p + got, size - got);
    if (n == 0) {
      if (got == 0 && eof_ok) return false;
      throw NetError("read_frame: connection closed mid-frame (" +
                     std::to_string(got) + "/" + std::to_string(size) +
                     " bytes)");
    }
    got += n;
  }
  return true;
}

}  // namespace

std::optional<std::string> read_frame(Socket& socket) {
  unsigned char header[4];
  if (!recv_exact(socket, header, sizeof header, /*eof_ok=*/true))
    return std::nullopt;
  const std::uint32_t n = (std::uint32_t{header[0]} << 24) |
                          (std::uint32_t{header[1]} << 16) |
                          (std::uint32_t{header[2]} << 8) |
                          std::uint32_t{header[3]};
  if (n > kMaxFramePayload)
    throw NetError("read_frame: frame length " + std::to_string(n) +
                   " exceeds the frame limit");
  std::string payload(n, '\0');
  if (n > 0) recv_exact(socket, payload.data(), n, /*eof_ok=*/false);
  return payload;
}

}  // namespace rtpool::util
