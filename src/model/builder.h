// Fluent construction of DagTasks.
//
// The builder accumulates nodes/edges, offers convenience helpers for the
// (blocking) fork-join idiom of Listing 1, and normalizes multi-source /
// multi-sink graphs with zero-WCET dummy NB nodes before validation — the
// transformation the paper describes in Section 2.
#pragma once

#include <string>
#include <vector>

#include "model/dag_task.h"

namespace rtpool::model {

class DagTaskBuilder {
 public:
  explicit DagTaskBuilder(std::string name) : name_(std::move(name)) {}

  /// Add a node; returns its id.
  NodeId add_node(util::Time wcet, NodeType type = NodeType::NB);

  /// Add a precedence edge.
  DagTaskBuilder& add_edge(NodeId from, NodeId to);

  /// Ids created by a fork-join helper.
  struct ForkJoin {
    NodeId fork;
    NodeId join;
    std::vector<NodeId> children;
  };

  /// Create a *blocking* fork-join region (BF -> BC... -> BJ) as in
  /// Listing 1: the fork executes `fork_wcet`, spawns one BC child per entry
  /// of `child_wcets`, suspends, and the join executes `join_wcet`.
  /// The caller wires the region into the task via edges to `fork` and from
  /// `join`. Throws ModelError if `child_wcets` is empty.
  ForkJoin add_blocking_fork_join(util::Time fork_wcet, util::Time join_wcet,
                                  const std::vector<util::Time>& child_wcets);

  /// Same shape with non-blocking semantics (all nodes NB), Listing 2.
  ForkJoin add_fork_join(util::Time fork_wcet, util::Time join_wcet,
                         const std::vector<util::Time>& child_wcets);

  DagTaskBuilder& period(util::Time value);
  DagTaskBuilder& deadline(util::Time value);
  DagTaskBuilder& priority(int value);

  /// When enabled (default), a graph with multiple sources/sinks gets a
  /// zero-WCET dummy NB source/sink so that the single-source/sink model
  /// restriction holds.
  DagTaskBuilder& normalize_source_sink(bool enabled);

  /// Number of nodes added so far.
  std::size_t node_count() const { return nodes_.size(); }

  /// Validate and produce the immutable task. If no deadline was given, the
  /// deadline defaults to the period (implicit deadlines).
  DagTask build() const;

 private:
  std::string name_;
  graph::Dag dag_;
  std::vector<Node> nodes_;
  util::Time period_ = 0.0;
  util::Time deadline_ = -1.0;  // -1 = "use period"
  int priority_ = 0;
  bool normalize_ = true;
};

/// Convenience: the Figure 1(a) task — fork node, `parallel` children,
/// join node — with blocking (BF/BC/BJ) or non-blocking (all NB) typing.
DagTask make_fork_join_task(const std::string& name, std::size_t parallel,
                            util::Time node_wcet, util::Time period,
                            bool blocking);

}  // namespace rtpool::model
