// Flat structure-of-arrays mirror of a TaskSet.
//
// The analysis hot paths (Algorithm 1's placement loop, the global and
// partitioned RTA fixed points, the FIFO blocking kernel) repeatedly read
// small per-task scalars — periods, volumes, deadlines — and per-node WCET
// arrays. Reading them through DagTask/Node objects chases two pointers
// and a bounds-checked vector per access; this view lays the same data out
// as contiguous task-major arrays so the inner loops stream flat memory.
//
// Every array lives in a caller-owned std::pmr arena (RtaContext keeps a
// monotonic buffer and resets it between trials), so a rebuild performs no
// frees and a handful of bump-pointer allocations. All element types are
// trivially destructible — releasing the arena IS the destructor. The view
// borrows nothing from the TaskSet after rebuild() returns (all data is
// copied into the arena), but it is only meaningful for the set it was
// built from.
#pragma once

#include <cstddef>
#include <memory_resource>
#include <span>

#include "model/task_set.h"
#include "util/time.h"

namespace rtpool::model {

class TaskSetView {
 public:
  TaskSetView() = default;

  /// Arena bytes rebuild() consumes for `ts`, including alignment slack —
  /// size a fixed buffer with this to keep the arena from spilling to its
  /// upstream resource.
  static std::size_t bytes_required(const TaskSet& ts);

  /// (Re)build from `ts`, placing every array in `arena`. Previous contents
  /// are abandoned (the owner releases the arena between rebuilds).
  void rebuild(const TaskSet& ts, std::pmr::memory_resource& arena);

  bool valid() const { return built_; }
  std::size_t task_count() const { return task_count_; }
  std::size_t total_nodes() const {
    return node_offset_.empty() ? 0 : node_offset_[task_count_];
  }

  /// Per-node WCETs of all tasks, task-major; task i owns
  /// [node_offset(i), node_offset(i+1)).
  std::span<const util::Time> wcets() const { return wcets_; }
  std::span<const util::Time> task_wcets(std::size_t i) const {
    return wcets_.subspan(node_offset_[i], node_offset_[i + 1] - node_offset_[i]);
  }
  std::size_t node_offset(std::size_t i) const { return node_offset_[i]; }
  std::size_t node_count(std::size_t i) const {
    return node_offset_[i + 1] - node_offset_[i];
  }

  std::span<const util::Time> periods() const { return periods_; }
  std::span<const util::Time> deadlines() const { return deadlines_; }
  std::span<const util::Time> volumes() const { return volumes_; }
  std::span<const int> priorities() const { return priorities_; }

 private:
  bool built_ = false;
  std::size_t task_count_ = 0;
  std::span<util::Time> wcets_;
  std::span<util::Time> periods_;
  std::span<util::Time> deadlines_;
  std::span<util::Time> volumes_;
  std::span<std::size_t> node_offset_;  ///< task_count_ + 1 entries.
  std::span<int> priorities_;
};

}  // namespace rtpool::model
