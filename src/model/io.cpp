#include "model/io.h"

#include <fstream>
#include <iomanip>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

namespace rtpool::model {

namespace {

/// Parse "key=value" tokens from the remainder of a line.
std::map<std::string, std::string> parse_kv(std::istringstream& line, int lineno) {
  std::map<std::string, std::string> kv;
  std::string token;
  while (line >> token) {
    const auto eq = token.find('=');
    if (eq == std::string::npos)
      throw ParseError("line " + std::to_string(lineno) +
                       ": expected key=value, got '" + token + "'");
    kv[token.substr(0, eq)] = token.substr(eq + 1);
  }
  return kv;
}

const std::string& require(const std::map<std::string, std::string>& kv,
                           const std::string& key, int lineno) {
  const auto it = kv.find(key);
  if (it == kv.end())
    throw ParseError("line " + std::to_string(lineno) + ": missing '" + key + "='");
  return it->second;
}

double to_double(const std::string& s, int lineno) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(s, &pos);
    if (pos != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw ParseError("line " + std::to_string(lineno) + ": bad number '" + s + "'");
  }
}

long to_long(const std::string& s, int lineno) {
  try {
    std::size_t pos = 0;
    const long v = std::stol(s, &pos);
    if (pos != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw ParseError("line " + std::to_string(lineno) + ": bad integer '" + s + "'");
  }
}

}  // namespace

void write_task_set(std::ostream& os, const TaskSet& ts) {
  os << "# rtpool task set\n";
  os << "taskset cores=" << ts.core_count() << "\n";
  os << std::setprecision(17);
  for (const DagTask& t : ts.tasks()) {
    os << "task name=" << t.name() << " period=" << t.period()
       << " deadline=" << t.deadline() << " priority=" << t.priority()
       << " nodes=" << t.node_count() << "\n";
    for (NodeId v = 0; v < t.node_count(); ++v) {
      os << "node " << v << " wcet=" << t.wcet(v) << " type=" << to_string(t.type(v))
         << "\n";
    }
    for (const graph::Edge& e : t.dag().edges())
      os << "edge " << e.from << " " << e.to << "\n";
    os << "endtask\n";
  }
}

void save_task_set(const std::string& path, const TaskSet& ts) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_task_set: cannot open " + path);
  write_task_set(out, ts);
}

TaskSet read_task_set(std::istream& is) {
  std::optional<TaskSet> ts;

  // Per-task accumulation state.
  bool in_task = false;
  std::string task_name;
  double period = 0.0;
  double deadline = 0.0;
  int priority = 0;
  std::size_t declared_nodes = 0;
  graph::Dag dag;
  std::vector<Node> nodes;

  std::string raw;
  int lineno = 0;
  while (std::getline(is, raw)) {
    ++lineno;
    std::istringstream line(raw);
    std::string keyword;
    if (!(line >> keyword)) continue;     // blank line
    if (keyword[0] == '#') continue;      // comment

    if (keyword == "taskset") {
      if (ts.has_value())
        throw ParseError("line " + std::to_string(lineno) + ": duplicate 'taskset'");
      const auto kv = parse_kv(line, lineno);
      const long cores = to_long(require(kv, "cores", lineno), lineno);
      if (cores <= 0)
        throw ParseError("line " + std::to_string(lineno) + ": cores must be > 0");
      ts.emplace(static_cast<std::size_t>(cores));
    } else if (keyword == "task") {
      if (!ts.has_value())
        throw ParseError("line " + std::to_string(lineno) + ": 'task' before 'taskset'");
      if (in_task)
        throw ParseError("line " + std::to_string(lineno) + ": nested 'task'");
      const auto kv = parse_kv(line, lineno);
      task_name = require(kv, "name", lineno);
      period = to_double(require(kv, "period", lineno), lineno);
      deadline = to_double(require(kv, "deadline", lineno), lineno);
      priority = static_cast<int>(to_long(require(kv, "priority", lineno), lineno));
      declared_nodes = static_cast<std::size_t>(to_long(require(kv, "nodes", lineno), lineno));
      dag = graph::Dag();
      nodes.clear();
      in_task = true;
    } else if (keyword == "node") {
      if (!in_task)
        throw ParseError("line " + std::to_string(lineno) + ": 'node' outside task");
      long id = 0;
      if (!(line >> id))
        throw ParseError("line " + std::to_string(lineno) + ": missing node id");
      if (id != static_cast<long>(nodes.size()))
        throw ParseError("line " + std::to_string(lineno) +
                         ": node ids must be dense and in order");
      const auto kv = parse_kv(line, lineno);
      Node n;
      n.wcet = to_double(require(kv, "wcet", lineno), lineno);
      try {
        n.type = node_type_from_string(require(kv, "type", lineno));
      } catch (const std::invalid_argument& e) {
        throw ParseError("line " + std::to_string(lineno) + ": " + e.what());
      }
      dag.add_node();
      nodes.push_back(n);
    } else if (keyword == "edge") {
      if (!in_task)
        throw ParseError("line " + std::to_string(lineno) + ": 'edge' outside task");
      long from = 0;
      long to = 0;
      if (!(line >> from >> to))
        throw ParseError("line " + std::to_string(lineno) + ": edge needs two node ids");
      if (from < 0 || to < 0 || static_cast<std::size_t>(from) >= nodes.size() ||
          static_cast<std::size_t>(to) >= nodes.size())
        throw ParseError("line " + std::to_string(lineno) + ": edge id out of range");
      try {
        dag.add_edge(static_cast<graph::NodeId>(from), static_cast<graph::NodeId>(to));
      } catch (const std::invalid_argument& e) {
        // Self-loops / duplicate edges are structural input errors.
        throw ParseError("line " + std::to_string(lineno) + ": " + e.what());
      }
    } else if (keyword == "endtask") {
      if (!in_task)
        throw ParseError("line " + std::to_string(lineno) + ": stray 'endtask'");
      if (nodes.size() != declared_nodes)
        throw ParseError("line " + std::to_string(lineno) + ": task '" + task_name +
                         "' declared " + std::to_string(declared_nodes) +
                         " nodes but has " + std::to_string(nodes.size()));
      ts->add(DagTask(task_name, std::move(dag), std::move(nodes), period, deadline,
                      priority));
      in_task = false;
    } else {
      throw ParseError("line " + std::to_string(lineno) + ": unknown keyword '" +
                       keyword + "'");
    }
  }
  if (in_task) throw ParseError("unexpected end of input inside task '" + task_name + "'");
  if (!ts.has_value()) throw ParseError("input contains no 'taskset' header");
  return *std::move(ts);
}

TaskSet load_task_set(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_task_set: cannot open " + path);
  return read_task_set(in);
}

}  // namespace rtpool::model
