#include "model/builder.h"

namespace rtpool::model {

NodeId DagTaskBuilder::add_node(util::Time wcet, NodeType type) {
  const NodeId id = dag_.add_node();
  nodes_.push_back(Node{wcet, type});
  return id;
}

DagTaskBuilder& DagTaskBuilder::add_edge(NodeId from, NodeId to) {
  dag_.add_edge(from, to);
  return *this;
}

DagTaskBuilder::ForkJoin DagTaskBuilder::add_blocking_fork_join(
    util::Time fork_wcet, util::Time join_wcet,
    const std::vector<util::Time>& child_wcets) {
  if (child_wcets.empty())
    throw ModelError(name_ + ": blocking fork-join requires at least one child");
  ForkJoin fj;
  fj.fork = add_node(fork_wcet, NodeType::BF);
  fj.join = add_node(join_wcet, NodeType::BJ);
  for (util::Time c : child_wcets) {
    const NodeId child = add_node(c, NodeType::BC);
    add_edge(fj.fork, child);
    add_edge(child, fj.join);
    fj.children.push_back(child);
  }
  return fj;
}

DagTaskBuilder::ForkJoin DagTaskBuilder::add_fork_join(
    util::Time fork_wcet, util::Time join_wcet,
    const std::vector<util::Time>& child_wcets) {
  if (child_wcets.empty())
    throw ModelError(name_ + ": fork-join requires at least one child");
  ForkJoin fj;
  fj.fork = add_node(fork_wcet, NodeType::NB);
  fj.join = add_node(join_wcet, NodeType::NB);
  for (util::Time c : child_wcets) {
    const NodeId child = add_node(c, NodeType::NB);
    add_edge(fj.fork, child);
    add_edge(child, fj.join);
    fj.children.push_back(child);
  }
  return fj;
}

DagTaskBuilder& DagTaskBuilder::period(util::Time value) {
  period_ = value;
  return *this;
}

DagTaskBuilder& DagTaskBuilder::deadline(util::Time value) {
  deadline_ = value;
  return *this;
}

DagTaskBuilder& DagTaskBuilder::priority(int value) {
  priority_ = value;
  return *this;
}

DagTaskBuilder& DagTaskBuilder::normalize_source_sink(bool enabled) {
  normalize_ = enabled;
  return *this;
}

DagTask DagTaskBuilder::build() const {
  graph::Dag dag = dag_;
  std::vector<Node> nodes = nodes_;

  if (normalize_) {
    const auto sources = dag.sources();
    if (sources.size() > 1) {
      const NodeId dummy = dag.add_node();
      nodes.push_back(Node{0.0, NodeType::NB});
      for (NodeId s : sources) dag.add_edge(dummy, s);
    }
    const auto sinks = dag.sinks();
    // Note: the dummy source (out-edges only) can never appear in sinks.
    if (sinks.size() > 1) {
      const NodeId dummy = dag.add_node();
      nodes.push_back(Node{0.0, NodeType::NB});
      for (NodeId s : sinks) dag.add_edge(s, dummy);
    }
  }

  const util::Time deadline = deadline_ < 0.0 ? period_ : deadline_;
  return DagTask(name_, std::move(dag), std::move(nodes), period_, deadline,
                 priority_);
}

DagTask make_fork_join_task(const std::string& name, std::size_t parallel,
                            util::Time node_wcet, util::Time period,
                            bool blocking) {
  DagTaskBuilder b(name);
  const std::vector<util::Time> children(parallel, node_wcet);
  if (blocking) {
    b.add_blocking_fork_join(node_wcet, node_wcet, children);
  } else {
    b.add_fork_join(node_wcet, node_wcet, children);
  }
  b.period(period);
  return b.build();
}

}  // namespace rtpool::model
