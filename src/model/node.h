// Node types of the parallel task model (Section 2 of the paper).
#pragma once

#include <string>

#include "util/time.h"

namespace rtpool::model {

/// Type x ∈ X = {BF, BJ, BC, NB} associated with each node.
///
/// - `BF` (blocking fork): executes, spawns children, then *suspends its
///   thread* on a synchronization barrier until the children complete.
/// - `BJ` (blocking join): the continuation of a BF node after the barrier;
///   always paired with a BF and executed on the same thread.
/// - `BC` (child of blocking nodes): a node inside the sub-graph delimited
///   by a (BF, BJ) pair.
/// - `NB` (non-blocking): everything else.
enum class NodeType : unsigned char { NB = 0, BF = 1, BJ = 2, BC = 3 };

/// "NB" / "BF" / "BJ" / "BC".
std::string to_string(NodeType type);

/// Inverse of to_string; throws std::invalid_argument for unknown names.
NodeType node_type_from_string(const std::string& name);

/// Per-node attributes: worst-case execution time and type.
struct Node {
  util::Time wcet = 0.0;
  NodeType type = NodeType::NB;
  bool operator==(const Node&) const = default;
};

}  // namespace rtpool::model
