// The parallel real-time task τ_i = {G_i, D_i, T_i, Φ_i, π_i} of Section 2.
//
// A DagTask is immutable after construction: the constructor validates the
// full set of structural restrictions from the paper and caches derived
// data (transitive reachability, critical path, volume, blocking regions).
// Analyses therefore never re-derive structure and can treat tasks as pure
// values.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "graph/algorithms.h"
#include "graph/dag.h"
#include "graph/reachability.h"
#include "model/node.h"
#include "util/bitset.h"
#include "util/time.h"

namespace rtpool::model {

using graph::NodeId;

/// Thrown when a task violates the structural model of Section 2.
class ModelError : public std::invalid_argument {
 public:
  explicit ModelError(const std::string& what) : std::invalid_argument(what) {}
};

/// One blocking region: the sub-graph delimited by a (BF, BJ) pair.
///
/// `members` holds the *inner* nodes (type BC), excluding the delimiters.
struct BlockingRegion {
  NodeId fork;                 ///< The BF node.
  NodeId join;                 ///< The matching BJ node.
  util::DynamicBitset members; ///< Inner BC nodes of the region.
};

/// Immutable DAG task.
///
/// Validated invariants (throwing ModelError otherwise):
///  * the graph is a non-empty, weakly connected DAG with exactly one
///    source and one sink;
///  * 0 < D <= T, all WCETs >= 0, at least one WCET > 0;
///  * every BF has exactly one matching BJ reachable through BC-only nodes,
///    every BJ/BC belongs to exactly one region;
///  * restrictions (i)-(iii): inner region nodes have no edges crossing the
///    region boundary, all edges leaving the BF stay in the region, all
///    edges entering the BJ come from the region;
///  * regions are not nested (implied by the typing rules, still checked).
class DagTask {
 public:
  /// `nodes[v]` describes graph node v. See class comment for invariants.
  DagTask(std::string name, graph::Dag dag, std::vector<Node> nodes,
          util::Time period, util::Time deadline, int priority = 0);

  /// Same, adopting a precomputed transitive closure of `dag` instead of
  /// rebuilding it. The generator threads one Reachability through span
  /// selection, blocking typing, and construction (the closure depends only
  /// on the edge set, which none of those steps mutate). Throws ModelError
  /// when `reach` was built for a graph of a different size.
  DagTask(std::string name, graph::Dag dag, std::vector<Node> nodes,
          util::Time period, util::Time deadline, int priority,
          graph::Reachability reach);

  /// Same, additionally adopting a precomputed topological order of `dag`
  /// (its existence is the acyclicity proof; the generator's single Kahn
  /// pass serves the closure, the validation, and the critical path).
  /// Throws ModelError when `topo` was built for a different graph size.
  DagTask(std::string name, graph::Dag dag, std::vector<Node> nodes,
          util::Time period, util::Time deadline, int priority,
          graph::Reachability reach, std::vector<NodeId> topo);

  const std::string& name() const { return name_; }
  const graph::Dag& dag() const { return dag_; }
  std::size_t node_count() const { return nodes_.size(); }

  const Node& node(NodeId v) const { return nodes_.at(v); }
  util::Time wcet(NodeId v) const { return nodes_.at(v).wcet; }
  NodeType type(NodeId v) const { return nodes_.at(v).type; }

  util::Time period() const { return period_; }
  util::Time deadline() const { return deadline_; }

  /// Fixed priority π_i of every thread of this task's pool
  /// (lower value = higher priority).
  int priority() const { return priority_; }

  /// Task utilization vol(τ)/T.
  double utilization() const { return volume_ / period_; }

  /// vol(τ): sum of all node WCETs.
  util::Time volume() const { return volume_; }

  /// len(λ*): length of the critical path.
  util::Time critical_path_length() const { return critical_path_.length; }

  /// The critical path itself (node sequence source..sink).
  const std::vector<NodeId>& critical_path() const { return critical_path_.path; }

  NodeId source() const { return source_; }
  NodeId sink() const { return sink_; }

  /// Cached transitive closure (the paper's transitive pred/succ sets).
  const graph::Reachability& reachability() const { return reach_; }

  /// All blocking regions, in topological order of their BF nodes.
  const std::vector<BlockingRegion>& blocking_regions() const { return regions_; }

  /// Region that node v participates in:
  ///  * for a BF/BJ delimiter: its own region;
  ///  * for a BC node: the region containing it;
  ///  * for an NB node: nullopt.
  std::optional<std::size_t> region_of(NodeId v) const;

  /// For a BC node, the paper's F(v): the BF node whose barrier waits for
  /// v's completion. Throws ModelError if v is not BC.
  NodeId blocking_fork_of(NodeId v) const;

  /// For a BF node, the matching BJ (the paper's J(v)); and vice versa.
  /// Throws ModelError if v is not BF (resp. BJ).
  NodeId join_of(NodeId fork) const;
  NodeId fork_of(NodeId join) const;

  /// All nodes of a given type, ascending by id.
  std::vector<NodeId> nodes_of_type(NodeType t) const;

  /// Number of BF nodes in the task.
  std::size_t blocking_fork_count() const { return regions_.size(); }

  /// b̄(τ) = max_v |X(v)| (Section 3.1): the largest number of blocking
  /// forks whose suspension can affect a single node. Cached at
  /// construction so the analyses (which evaluate it once per
  /// analyze_global/partition call) read it in O(1); see
  /// analysis/concurrency.h for the definition of X(v).
  std::size_t max_affecting_forks() const { return max_affecting_forks_; }

  /// Maximum antichain of the BF nodes under (transitive) precedence: the
  /// largest set of forks that can be suspended simultaneously. Cached at
  /// construction (Dilworth via bipartite matching on the comparability
  /// relation); see analysis/antichain.h for why this refines b̄(τ).
  std::size_t max_suspension_antichain() const { return max_suspension_antichain_; }

  /// Per-node WCET vector (weights for graph algorithms).
  const std::vector<util::Time>& wcets() const { return wcets_; }

  /// A topological order of the graph, computed once at construction (it
  /// doubles as the acyclicity proof). Every downstream consumer — the
  /// closure build, the critical path, the RTA fixed-point sweeps — reads
  /// this instead of re-running Kahn.
  const std::vector<NodeId>& topo_order() const { return topo_; }

  /// Replace the priority (used by priority-assignment policies); all other
  /// state is immutable. The rvalue overload moves instead of copying the
  /// task's caches (closure bitsets, regions) — priority-assignment passes
  /// over freshly generated tasks pay zero copies.
  DagTask with_priority(int priority) const&;
  DagTask with_priority(int priority) &&;

 private:
  struct AdoptReach {};  ///< Delegation tag for the shared ctor body.
  DagTask(AdoptReach, std::string name, graph::Dag dag, std::vector<Node> nodes,
          util::Time period, util::Time deadline, int priority,
          std::optional<graph::Reachability> reach,
          std::optional<std::vector<NodeId>> topo);

  void validate_shape() const;
  void validate_params() const;
  void build_regions();
  void validate_regions() const;
  void compute_concurrency_caches();

  std::string name_;
  graph::Dag dag_;
  std::vector<Node> nodes_;
  util::Time period_;
  util::Time deadline_;
  int priority_;

  // Derived caches.
  std::vector<util::Time> wcets_;
  std::vector<NodeId> topo_;
  graph::Reachability reach_;
  graph::LongestPathResult critical_path_;
  util::Time volume_ = 0.0;
  NodeId source_ = 0;
  NodeId sink_ = 0;
  std::vector<BlockingRegion> regions_;
  std::vector<std::optional<std::size_t>> region_index_;  ///< per node
  std::size_t max_affecting_forks_ = 0;
  std::size_t max_suspension_antichain_ = 0;
};

}  // namespace rtpool::model
