#include "model/task_set.h"

#include <algorithm>
#include <numeric>

namespace rtpool::model {

TaskSet::TaskSet(std::size_t core_count) : core_count_(core_count) {
  if (core_count_ == 0) throw ModelError("TaskSet: core count must be > 0");
}

void TaskSet::add(DagTask task) {
  for (const DagTask& existing : tasks_) {
    if (existing.name() == task.name())
      throw ModelError("TaskSet: duplicate task name '" + task.name() + "'");
  }
  tasks_.push_back(std::move(task));
}

double TaskSet::total_utilization() const {
  double u = 0.0;
  for (const DagTask& t : tasks_) u += t.utilization();
  return u;
}

std::vector<std::size_t> TaskSet::higher_priority_of(std::size_t i) const {
  const DagTask& ti = tasks_.at(i);
  std::vector<std::size_t> out;
  for (std::size_t j = 0; j < tasks_.size(); ++j) {
    if (j == i) continue;
    const DagTask& tj = tasks_[j];
    if (tj.priority() < ti.priority() ||
        (tj.priority() == ti.priority() && j < i))
      out.push_back(j);
  }
  return out;
}

std::vector<std::size_t> TaskSet::priority_order() const {
  std::vector<std::size_t> order(tasks_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return tasks_[a].priority() < tasks_[b].priority();
  });
  return order;
}

bool TaskSet::priorities_distinct() const {
  std::vector<int> prios;
  prios.reserve(tasks_.size());
  for (const DagTask& t : tasks_) prios.push_back(t.priority());
  std::sort(prios.begin(), prios.end());
  return std::adjacent_find(prios.begin(), prios.end()) == prios.end();
}

TaskSet assign_deadline_monotonic(const TaskSet& ts) {
  std::vector<std::size_t> order(ts.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return ts.task(a).deadline() < ts.task(b).deadline();
  });
  std::vector<int> prio(ts.size());
  for (std::size_t rank = 0; rank < order.size(); ++rank)
    prio[order[rank]] = static_cast<int>(rank);

  TaskSet out(ts.core_count());
  for (std::size_t i = 0; i < ts.size(); ++i)
    out.add(ts.task(i).with_priority(prio[i]));
  return out;
}

TaskSet assign_deadline_monotonic(TaskSet&& ts) {
  std::vector<std::size_t> order(ts.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return ts.task(a).deadline() < ts.task(b).deadline();
  });
  std::vector<int> prio(ts.size());
  for (std::size_t rank = 0; rank < order.size(); ++rank)
    prio[order[rank]] = static_cast<int>(rank);

  TaskSet out(ts.core_count());
  std::vector<DagTask> tasks = std::move(ts).release_tasks();
  for (std::size_t i = 0; i < tasks.size(); ++i)
    out.add(std::move(tasks[i]).with_priority(prio[i]));
  return out;
}

}  // namespace rtpool::model
