// Task set Γ = {τ_1..τ_n} on a platform of m identical processors.
//
// Each task is served by its own pool of m threads (one per core under
// partitioned scheduling), all at the task's priority, matching Section 2.
#pragma once

#include <string>
#include <vector>

#include "model/dag_task.h"

namespace rtpool::model {

/// Immutable-ish container of DagTasks plus the platform core count.
class TaskSet {
 public:
  /// Throws ModelError if core_count == 0.
  explicit TaskSet(std::size_t core_count);

  /// Add a task. Throws ModelError if another task already has the same name.
  void add(DagTask task);

  std::size_t size() const { return tasks_.size(); }
  bool empty() const { return tasks_.empty(); }

  /// Number of processors m (= threads per pool).
  std::size_t core_count() const { return core_count_; }

  const DagTask& task(std::size_t i) const { return tasks_.at(i); }
  const std::vector<DagTask>& tasks() const { return tasks_; }

  /// Sum of task utilizations U = Σ vol(τ_i)/T_i.
  double total_utilization() const;

  /// Indices of tasks with strictly higher priority than tasks_[i]
  /// (lower priority value). Ties are broken by index to keep the priority
  /// order total, matching `priority_order()`.
  std::vector<std::size_t> higher_priority_of(std::size_t i) const;

  /// Task indices sorted from highest to lowest priority.
  std::vector<std::size_t> priority_order() const;

  /// True if all task priorities are pairwise distinct.
  bool priorities_distinct() const;

  /// Move out the task storage, leaving this set empty (rvalue-only; used
  /// by the priority-assignment move path).
  std::vector<DagTask> release_tasks() && { return std::move(tasks_); }

 private:
  std::size_t core_count_;
  std::vector<DagTask> tasks_;
};

/// Reassign priorities deadline-monotonically (shorter deadline = higher
/// priority, ties broken by task order); returns a new task set. The rvalue
/// overload moves every task (and its closure caches) instead of deep
/// copying — the generator always passes a freshly built set.
TaskSet assign_deadline_monotonic(const TaskSet& ts);
TaskSet assign_deadline_monotonic(TaskSet&& ts);

}  // namespace rtpool::model
