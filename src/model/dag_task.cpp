#include "model/dag_task.h"

#include <algorithm>
#include <sstream>

#include "graph/matching.h"

namespace rtpool::model {

namespace {

std::vector<util::Time> extract_wcets(const std::vector<Node>& nodes) {
  std::vector<util::Time> w;
  w.reserve(nodes.size());
  for (const Node& n : nodes) w.push_back(n.wcet);
  return w;
}

/// Adopt a caller-supplied closure (size-checked) or build one from `dag`,
/// sweeping the already-computed topological order.
graph::Reachability take_reach(std::optional<graph::Reachability> reach,
                               const graph::Dag& dag,
                               const std::vector<graph::NodeId>& order,
                               const std::string& name) {
  if (!reach.has_value()) return graph::Reachability(dag, order);
  if (reach->size() != dag.size())
    throw ModelError(name + ": precomputed reachability size mismatch");
  return std::move(*reach);
}

/// One Kahn pass serving three masters: acyclicity proof, closure sweep
/// order, critical-path DP order. A caller-supplied order is adopted after
/// a size check (its existence already proves acyclicity).
std::vector<graph::NodeId> take_topo(std::optional<std::vector<graph::NodeId>> topo,
                                     const graph::Dag& dag,
                                     const std::string& name) {
  if (topo.has_value()) {
    if (topo->size() != dag.size())
      throw ModelError(name + ": precomputed topological order size mismatch");
    return std::move(*topo);
  }
  try {
    return graph::topological_order(dag);
  } catch (const graph::CycleError&) {
    throw ModelError(name + ": graph has a cycle");
  }
}

}  // namespace

DagTask::DagTask(std::string name, graph::Dag dag, std::vector<Node> nodes,
                 util::Time period, util::Time deadline, int priority)
    : DagTask(AdoptReach{}, std::move(name), std::move(dag), std::move(nodes),
              period, deadline, priority, std::nullopt, std::nullopt) {}

DagTask::DagTask(std::string name, graph::Dag dag, std::vector<Node> nodes,
                 util::Time period, util::Time deadline, int priority,
                 graph::Reachability reach)
    : DagTask(AdoptReach{}, std::move(name), std::move(dag), std::move(nodes),
              period, deadline, priority, std::move(reach), std::nullopt) {}

DagTask::DagTask(std::string name, graph::Dag dag, std::vector<Node> nodes,
                 util::Time period, util::Time deadline, int priority,
                 graph::Reachability reach, std::vector<NodeId> topo)
    : DagTask(AdoptReach{}, std::move(name), std::move(dag), std::move(nodes),
              period, deadline, priority, std::move(reach), std::move(topo)) {}

DagTask::DagTask(AdoptReach, std::string name, graph::Dag dag,
                 std::vector<Node> nodes, util::Time period,
                 util::Time deadline, int priority,
                 std::optional<graph::Reachability> reach,
                 std::optional<std::vector<NodeId>> topo)
    : name_(std::move(name)),
      dag_(std::move(dag)),
      nodes_(std::move(nodes)),
      period_(period),
      deadline_(deadline),
      priority_(priority),
      wcets_(extract_wcets(nodes_)),
      // Shape first (empty / size mismatch / cycle), then the parameter
      // checks, then the derived caches — error precedence matches the
      // documented invariant order.
      topo_((validate_shape(), take_topo(std::move(topo), dag_, name_))),
      reach_((validate_params(), take_reach(std::move(reach), dag_, topo_, name_))),
      critical_path_(graph::longest_path(dag_, topo_, wcets_)),
      volume_(graph::total_weight(wcets_)),
      region_index_(nodes_.size()) {
  // validate_params() established uniqueness; find them without the
  // temporary vectors dag_.sources()/sinks() would allocate.
  for (NodeId v = 0; v < dag_.size(); ++v) {
    if (dag_.in_degree(v) == 0) source_ = v;
    if (dag_.out_degree(v) == 0) sink_ = v;
  }
  build_regions();
  validate_regions();
  compute_concurrency_caches();
}

void DagTask::validate_shape() const {
  if (nodes_.empty()) throw ModelError(name_ + ": task has no nodes");
  if (nodes_.size() != dag_.size())
    throw ModelError(name_ + ": node attribute count does not match graph size");
}

void DagTask::validate_params() const {
  if (!graph::is_weakly_connected(dag_))
    throw ModelError(name_ + ": graph is not weakly connected");
  std::size_t sources = 0, sinks = 0;
  for (graph::NodeId v = 0; v < dag_.size(); ++v) {
    if (dag_.in_degree(v) == 0) ++sources;
    if (dag_.out_degree(v) == 0) ++sinks;
  }
  if (sources != 1)
    throw ModelError(name_ + ": expected exactly one source node");
  if (sinks != 1)
    throw ModelError(name_ + ": expected exactly one sink node");
  if (!(period_ > 0.0)) throw ModelError(name_ + ": period must be > 0");
  if (!(deadline_ > 0.0)) throw ModelError(name_ + ": deadline must be > 0");
  if (deadline_ > period_ * (1.0 + util::kTimeEps))
    throw ModelError(name_ + ": constrained deadlines required (D <= T)");
  bool any_positive = false;
  for (std::size_t v = 0; v < nodes_.size(); ++v) {
    if (nodes_[v].wcet < 0.0)
      throw ModelError(name_ + ": negative WCET on node " + std::to_string(v));
    any_positive = any_positive || nodes_[v].wcet > 0.0;
  }
  if (!any_positive) throw ModelError(name_ + ": all WCETs are zero");
}

void DagTask::build_regions() {
  // For each BF node, flood forward through BC nodes; the unique non-BC node
  // reached must be the matching BJ. This reconstructs the paper's regions
  // from the typing and simultaneously checks their well-formedness.
  // Traversal scratch is shared across regions (reset per BF).
  std::vector<NodeId> frontier;
  util::DynamicBitset visited;
  for (NodeId f = 0; f < nodes_.size(); ++f) {
    if (nodes_[f].type != NodeType::BF) continue;

    BlockingRegion region{f, 0, util::DynamicBitset(nodes_.size())};
    std::optional<NodeId> join;
    // FIFO queue as a vector with a moving head: same visit order as a
    // deque, no per-region chunk allocations.
    frontier.assign(dag_.successors(f).begin(), dag_.successors(f).end());
    visited.resize_clear(nodes_.size());

    if (frontier.empty())
      throw ModelError(name_ + ": BF node " + std::to_string(f) + " spawns no children");

    for (std::size_t head = 0; head < frontier.size(); ++head) {
      const NodeId v = frontier[head];
      if (visited.test(v)) continue;
      visited.set(v);

      switch (nodes_[v].type) {
        case NodeType::BC:
          region.members.set(v);
          for (NodeId w : dag_.successors(v)) frontier.push_back(w);
          break;
        case NodeType::BJ:
          if (join.has_value() && *join != v)
            throw ModelError(name_ + ": BF node " + std::to_string(f) +
                             " reaches two BJ nodes (" + std::to_string(*join) +
                             ", " + std::to_string(v) + ")");
          join = v;
          break;  // do not traverse past the join
        case NodeType::BF:
          throw ModelError(name_ + ": nested blocking regions are not allowed (BF " +
                           std::to_string(v) + " inside region of BF " +
                           std::to_string(f) + ")");
        case NodeType::NB:
          throw ModelError(name_ + ": node " + std::to_string(v) +
                           " inside region of BF " + std::to_string(f) +
                           " must have type BC, found NB");
      }
    }
    if (!join.has_value())
      throw ModelError(name_ + ": BF node " + std::to_string(f) + " has no matching BJ");
    region.join = *join;

    // Record region membership for the delimiters and the inner nodes.
    const std::size_t idx = regions_.size();
    auto assign = [&](NodeId v) {
      if (region_index_[v].has_value())
        throw ModelError(name_ + ": node " + std::to_string(v) +
                         " belongs to two blocking regions");
      region_index_[v] = idx;
    };
    assign(f);
    assign(*join);
    region.members.for_each([&](std::size_t v) { assign(static_cast<NodeId>(v)); });
    regions_.push_back(std::move(region));
  }

  // Every BC / BJ node must have been claimed by some region.
  for (NodeId v = 0; v < nodes_.size(); ++v) {
    if ((nodes_[v].type == NodeType::BC || nodes_[v].type == NodeType::BJ) &&
        !region_index_[v].has_value())
      throw ModelError(name_ + ": " + to_string(nodes_[v].type) + " node " +
                       std::to_string(v) + " is not part of any blocking region");
  }
}

void DagTask::validate_regions() const {
  for (const BlockingRegion& r : regions_) {
    // Restriction (ii): every edge leaving the BF stays in the region.
    for (NodeId w : dag_.successors(r.fork)) {
      if (w != r.join && !r.members.test(w))
        throw ModelError(name_ + ": edge from BF " + std::to_string(r.fork) +
                         " leaves its blocking region");
    }
    // Restriction (iii): every edge entering the BJ comes from the region.
    for (NodeId u : dag_.predecessors(r.join)) {
      if (u != r.fork && !r.members.test(u))
        throw ModelError(name_ + ": edge into BJ " + std::to_string(r.join) +
                         " enters from outside its blocking region");
    }
    // Restriction (i): inner nodes have no edges crossing the boundary.
    r.members.for_each([&](std::size_t vi) {
      const auto v = static_cast<NodeId>(vi);
      for (NodeId u : dag_.predecessors(v)) {
        if (u != r.fork && !r.members.test(u))
          throw ModelError(name_ + ": inner node " + std::to_string(v) +
                           " has an incoming edge from outside its region");
      }
      for (NodeId w : dag_.successors(v)) {
        if (w != r.join && !r.members.test(w))
          throw ModelError(name_ + ": inner node " + std::to_string(v) +
                           " has an outgoing edge to outside its region");
      }
    });
  }
}

void DagTask::compute_concurrency_caches() {
  util::DynamicBitset bf_mask(nodes_.size());
  for (const BlockingRegion& r : regions_) bf_mask.set(r.fork);

  // b̄ = max_v |X(v)| with X(v) = BF \ (pred(v) ∪ succ(v) ∪ {v}), plus the
  // delimiting fork F(v) when v is of type BC (Section 3.1).
  util::DynamicBitset x(nodes_.size());
  for (NodeId v = 0; v < nodes_.size(); ++v) {
    x = bf_mask;
    x.and_not_assign(reach_.ancestors(v));
    x.and_not_assign(reach_.descendants(v));
    if (x.test(v)) x.reset(v);
    if (nodes_[v].type == NodeType::BC) x.set(regions_[*region_index_[v]].fork);
    max_affecting_forks_ = std::max(max_affecting_forks_, x.count());
  }

  // Maximum antichain of the BF poset: Dilworth via Fulkerson — one
  // bipartite vertex pair per fork, an edge (i → j) per comparable ordered
  // pair fork_i ≺ fork_j, max antichain = k − maximum matching. The
  // comparability edges come from word-parallel intersections of the
  // descendant closures with the BF mask, not per-pair probes.
  const std::size_t k = regions_.size();
  if (k <= 1) {
    max_suspension_antichain_ = k;
    return;
  }
  std::vector<std::size_t> fork_index(nodes_.size(), 0);
  for (std::size_t i = 0; i < k; ++i) fork_index[regions_[i].fork] = i;
  graph::BipartiteMatcher matcher(k, k);
  util::DynamicBitset reachable(nodes_.size());
  for (std::size_t i = 0; i < k; ++i) {
    reachable = reach_.descendants(regions_[i].fork);
    reachable.and_assign(bf_mask);
    reachable.for_each(
        [&](std::size_t f) { matcher.add_edge(i, fork_index[f]); });
  }
  max_suspension_antichain_ = k - matcher.max_matching();
}

std::optional<std::size_t> DagTask::region_of(NodeId v) const {
  return region_index_.at(v);
}

NodeId DagTask::blocking_fork_of(NodeId v) const {
  if (type(v) != NodeType::BC)
    throw ModelError(name_ + ": blocking_fork_of requires a BC node");
  return regions_[*region_index_.at(v)].fork;
}

NodeId DagTask::join_of(NodeId fork) const {
  if (type(fork) != NodeType::BF)
    throw ModelError(name_ + ": join_of requires a BF node");
  return regions_[*region_index_.at(fork)].join;
}

NodeId DagTask::fork_of(NodeId join) const {
  if (type(join) != NodeType::BJ)
    throw ModelError(name_ + ": fork_of requires a BJ node");
  return regions_[*region_index_.at(join)].fork;
}

std::vector<NodeId> DagTask::nodes_of_type(NodeType t) const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < nodes_.size(); ++v)
    if (nodes_[v].type == t) out.push_back(v);
  return out;
}

DagTask DagTask::with_priority(int priority) const& {
  DagTask copy = *this;
  copy.priority_ = priority;
  return copy;
}

DagTask DagTask::with_priority(int priority) && {
  DagTask moved = std::move(*this);
  moved.priority_ = priority;
  return moved;
}

}  // namespace rtpool::model
