#include "model/task_set_view.h"

#include <algorithm>

namespace rtpool::model {

namespace {

template <typename T>
std::span<T> alloc_span(std::pmr::memory_resource& arena, std::size_t count) {
  if (count == 0) return {};
  void* p = arena.allocate(count * sizeof(T), alignof(T));
  return {static_cast<T*>(p), count};
}

std::size_t total_node_count(const TaskSet& ts) {
  std::size_t nodes = 0;
  for (const DagTask& t : ts.tasks()) nodes += t.node_count();
  return nodes;
}

}  // namespace

std::size_t TaskSetView::bytes_required(const TaskSet& ts) {
  const std::size_t n = ts.size();
  return sizeof(util::Time) * (total_node_count(ts) + 3 * n) +
         sizeof(std::size_t) * (n + 1) + sizeof(int) * n +
         64;  // worst-case alignment padding across the six arrays
}

void TaskSetView::rebuild(const TaskSet& ts, std::pmr::memory_resource& arena) {
  const std::size_t n = ts.size();
  node_offset_ = alloc_span<std::size_t>(arena, n + 1);
  wcets_ = alloc_span<util::Time>(arena, total_node_count(ts));
  periods_ = alloc_span<util::Time>(arena, n);
  deadlines_ = alloc_span<util::Time>(arena, n);
  volumes_ = alloc_span<util::Time>(arena, n);
  priorities_ = alloc_span<int>(arena, n);

  std::size_t off = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const DagTask& t = ts.task(i);
    node_offset_[i] = off;
    const std::vector<util::Time>& w = t.wcets();
    std::copy(w.begin(), w.end(), wcets_.begin() + static_cast<std::ptrdiff_t>(off));
    off += w.size();
    periods_[i] = t.period();
    deadlines_[i] = t.deadline();
    volumes_[i] = t.volume();
    priorities_[i] = t.priority();
  }
  node_offset_[n] = off;
  task_count_ = n;
  built_ = true;
}

}  // namespace rtpool::model
