#include "model/node.h"

#include <stdexcept>

namespace rtpool::model {

std::string to_string(NodeType type) {
  switch (type) {
    case NodeType::NB: return "NB";
    case NodeType::BF: return "BF";
    case NodeType::BJ: return "BJ";
    case NodeType::BC: return "BC";
  }
  throw std::invalid_argument("to_string: invalid NodeType");
}

NodeType node_type_from_string(const std::string& name) {
  if (name == "NB") return NodeType::NB;
  if (name == "BF") return NodeType::BF;
  if (name == "BJ") return NodeType::BJ;
  if (name == "BC") return NodeType::BC;
  throw std::invalid_argument("node_type_from_string: unknown type '" + name + "'");
}

}  // namespace rtpool::model
