// The rtpool-lint rule registry and pipeline.
//
// Every rule enforces a specific condition of the DAC'19 paper (or a basic
// well-formedness requirement the paper's model assumes). Rule ids are
// stable API; tools may filter on them.
//
//   DAG well-formedness (Section 2 model assumptions)
//     RTP-D1  graph has a cycle (self-loops included); the cycle is printed
//     RTP-D2  duplicate edge
//     RTP-D3  not exactly one source node
//     RTP-D4  not exactly one sink node
//     RTP-D5  graph not weakly connected / unreachable nodes
//     RTP-D6  task has no nodes
//
//   Timing / WCET sanity (Section 2 task parameters)
//     RTP-T1  period or deadline non-positive, or D > T (constrained
//             deadlines required)
//     RTP-T2  negative WCET, or all WCETs zero
//
//   Structural restrictions on node types (Section 2, restrictions (i)-(iii))
//     RTP-S1  malformed blocking region: BF without children, BF with no or
//             two matching BJs, BC/BJ outside any region, node in two regions
//     RTP-S2  nested blocking regions (BF inside another region)
//     RTP-S3  region boundary violated: an edge crosses the region boundary
//             (restrictions (i)-(iii)), or an NB node sits inside a region
//
//   Deadlock conditions (Section 3)
//     RTP-L1  Lemma 1: b̄(τ) ≥ m — a blocking chain can exhaust the pool;
//             the chain (pivot node + fork set X(v*)) is printed
//     RTP-L2  Lemma 2: wait-for cycle on the global WC graph — m pairwise
//             concurrent forks exist, so the deadlock actually manifests
//             under global work-conserving scheduling; the cycle is printed
//     RTP-L3  Lemma 3 / Eq. (3): a BC node shares its pool thread with a
//             BF in C(v) ∪ {F(v)} under the given/computed partition
//
//   Pool sizing (Sections 3.1, 4.1)
//     RTP-P1  l̄(τ) = m − b̄(τ) ≤ 0: zero guaranteed concurrency, the
//             limited-concurrency RTA of Section 4.1 degenerates (warning)
//     RTP-P2  pool has more threads than the task has nodes (note)
//     RTP-P3  the requested partitioning algorithm failed (warning)
//
//   Cross-task consistency (Section 2 task-set / pool assignment)
//     RTP-C1  duplicate task names
//     RTP-C2  task priorities not pairwise distinct (warning)
//     RTP-C3  partition shape inconsistent with the task set (missing
//             per-task assignment, wrong length, thread id ≥ m)
//     RTP-C4  total utilization exceeds m (warning: trivially unschedulable)
//
//   Internal
//     RTP-X1  model validation failed for a reason the structural rules did
//             not classify (safety net; please report)
#pragma once

#include <optional>

#include "analysis/partition.h"
#include "lint/diagnostics.h"
#include "lint/raw_model.h"

namespace rtpool::lint {

/// Where the node-to-thread partition for the Lemma 3 rules comes from.
enum class PartitionSource {
  kNone,        ///< Skip RTP-L3/RTP-C3/RTP-P3 (global-scheduling lint only).
  kWorstFit,    ///< Compute the Section 5 worst-fit baseline placement.
  kAlgorithm1,  ///< Compute the paper's Algorithm 1 placement.
  kProvided,    ///< Use LintOptions::partition as-is.
};

struct LintOptions {
  PartitionSource partition_source = PartitionSource::kNone;
  /// Consulted only with PartitionSource::kProvided.
  std::optional<analysis::TaskSetPartition> partition;
};

/// Run every applicable rule over a raw (possibly broken) model. Structural
/// rules (D/T/S families) run on the raw form; tasks that pass them are
/// promoted to validated DagTasks for the semantic rules (L/P/C families).
/// Never throws on model defects — that is the point.
LintReport run_lint(const RawTaskSet& raw, const LintOptions& options = {});

/// Lint an already-validated task set (structural rules pass trivially).
LintReport run_lint(const model::TaskSet& ts, const LintOptions& options = {});

}  // namespace rtpool::lint
