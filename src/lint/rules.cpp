#include "lint/rules.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "analysis/deadlock.h"
#include "graph/algorithms.h"
#include "util/time.h"

namespace rtpool::lint {

namespace {

using model::NodeType;

void emit(LintReport& report, std::string rule_id, Severity severity,
          std::string task, std::optional<std::size_t> node, std::string message,
          std::string fix_hint) {
  report.diagnostics.push_back(Diagnostic{std::move(rule_id), severity,
                                          std::move(task), node, std::move(message),
                                          std::move(fix_hint)});
}

std::string join_ids(const std::vector<std::size_t>& ids, const char* separator) {
  std::ostringstream os;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i != 0) os << separator;
    os << ids[i];
  }
  return os.str();
}

/// Directed adjacency with self-loops and duplicate edges split off, so the
/// graph rules can analyze the clean skeleton while reporting the defects.
struct Adjacency {
  std::vector<std::vector<std::size_t>> succ;
  std::vector<std::vector<std::size_t>> pred;
  std::vector<std::size_t> self_loops;
  std::vector<RawEdge> duplicates;
};

Adjacency build_adjacency(const RawTask& task) {
  Adjacency adj;
  adj.succ.resize(task.nodes.size());
  adj.pred.resize(task.nodes.size());
  std::set<std::pair<std::size_t, std::size_t>> seen;
  for (const RawEdge& e : task.edges) {
    if (e.from == e.to) {
      adj.self_loops.push_back(e.from);
      continue;
    }
    if (!seen.insert({e.from, e.to}).second) {
      adj.duplicates.push_back(e);
      continue;
    }
    adj.succ[e.from].push_back(e.to);
    adj.pred[e.to].push_back(e.from);
  }
  return adj;
}

/// DFS cycle detection returning one directed cycle (node sequence) if any.
std::optional<std::vector<std::size_t>> find_cycle(const Adjacency& adj) {
  const std::size_t n = adj.succ.size();
  enum : unsigned char { kWhite, kGray, kBlack };
  std::vector<unsigned char> color(n, kWhite);
  std::vector<std::size_t> stack;       // current DFS path
  std::vector<std::size_t> next_child(n, 0);

  for (std::size_t root = 0; root < n; ++root) {
    if (color[root] != kWhite) continue;
    stack.push_back(root);
    color[root] = kGray;
    while (!stack.empty()) {
      const std::size_t v = stack.back();
      if (next_child[v] < adj.succ[v].size()) {
        const std::size_t w = adj.succ[v][next_child[v]++];
        if (color[w] == kGray) {
          // Cycle: suffix of the stack from w to v, closed by (v, w).
          std::vector<std::size_t> cycle;
          const auto it = std::find(stack.begin(), stack.end(), w);
          cycle.assign(it, stack.end());
          cycle.push_back(w);
          return cycle;
        }
        if (color[w] == kWhite) {
          color[w] = kGray;
          stack.push_back(w);
        }
      } else {
        color[v] = kBlack;
        stack.pop_back();
      }
    }
  }
  return std::nullopt;
}

/// Structural (D/T families) checks that do not need the region machinery.
/// Returns true when the graph skeleton is sound enough for region checks.
bool check_graph_shape(const RawTask& task, const Adjacency& adj, LintReport& report) {
  const std::string& name = task.name;

  if (task.nodes.empty()) {
    emit(report, "RTP-D6", Severity::kError, name, std::nullopt,
         "task has no nodes", "every task needs at least one node with WCET > 0");
    return false;
  }

  // RTP-T1: timing parameters.
  if (!(task.period > 0.0))
    emit(report, "RTP-T1", Severity::kError, name, std::nullopt,
         "period must be > 0 (got " + std::to_string(task.period) + ")",
         "set period=T with T > 0");
  if (!(task.deadline > 0.0))
    emit(report, "RTP-T1", Severity::kError, name, std::nullopt,
         "deadline must be > 0 (got " + std::to_string(task.deadline) + ")",
         "set deadline=D with 0 < D <= T");
  else if (task.period > 0.0 &&
           task.deadline > task.period * (1.0 + util::kTimeEps))
    emit(report, "RTP-T1", Severity::kError, name, std::nullopt,
         "deadline " + std::to_string(task.deadline) + " exceeds period " +
             std::to_string(task.period) + " (constrained deadlines required)",
         "reduce the deadline to at most the period");

  // RTP-T2: WCETs.
  bool any_positive = false;
  for (std::size_t v = 0; v < task.nodes.size(); ++v) {
    if (task.nodes[v].wcet < 0.0)
      emit(report, "RTP-T2", Severity::kError, name, v,
           "negative WCET " + std::to_string(task.nodes[v].wcet),
           "WCETs must be >= 0");
    any_positive = any_positive || task.nodes[v].wcet > 0.0;
  }
  if (!any_positive)
    emit(report, "RTP-T2", Severity::kError, name, std::nullopt,
         "all WCETs are zero", "give at least one node a positive WCET");

  // RTP-D1: self-loops are one-node cycles.
  for (const std::size_t v : adj.self_loops)
    emit(report, "RTP-D1", Severity::kError, name, v,
         "self-loop on node " + std::to_string(v) + " (cycle: " +
             std::to_string(v) + " -> " + std::to_string(v) + ")",
         "a node cannot precede itself; remove the edge");

  // RTP-D2: duplicate edges.
  for (const RawEdge& e : adj.duplicates)
    emit(report, "RTP-D2", Severity::kError, name, e.from,
         "duplicate edge " + std::to_string(e.from) + " -> " + std::to_string(e.to),
         "remove the repeated edge declaration");

  // RTP-D1: directed cycles on the deduplicated skeleton.
  if (const auto cycle = find_cycle(adj)) {
    emit(report, "RTP-D1", Severity::kError, name, cycle->front(),
         "precedence graph has a cycle: " + join_ids(*cycle, " -> "),
         "precedence constraints must form a DAG; break the cycle");
    return false;  // sources/sinks/regions are meaningless on a cyclic graph
  }

  if (!adj.self_loops.empty()) return false;

  // RTP-D5: weak connectivity (undirected reachability from node 0).
  {
    std::vector<bool> seen(task.nodes.size(), false);
    std::vector<std::size_t> frontier{0};
    seen[0] = true;
    while (!frontier.empty()) {
      const std::size_t v = frontier.back();
      frontier.pop_back();
      for (const auto* half : {&adj.succ[v], &adj.pred[v]}) {
        for (const std::size_t w : *half) {
          if (!seen[w]) {
            seen[w] = true;
            frontier.push_back(w);
          }
        }
      }
    }
    std::vector<std::size_t> unreachable;
    for (std::size_t v = 0; v < task.nodes.size(); ++v)
      if (!seen[v]) unreachable.push_back(v);
    if (!unreachable.empty())
      emit(report, "RTP-D5", Severity::kError, name, unreachable.front(),
           "graph is not weakly connected; nodes {" + join_ids(unreachable, ", ") +
               "} are disconnected from node 0",
           "connect every node to the task graph or delete it");
  }

  // RTP-D3 / RTP-D4: exactly one source and one sink.
  std::vector<std::size_t> sources;
  std::vector<std::size_t> sinks;
  for (std::size_t v = 0; v < task.nodes.size(); ++v) {
    if (adj.pred[v].empty()) sources.push_back(v);
    if (adj.succ[v].empty()) sinks.push_back(v);
  }
  if (sources.size() != 1)
    emit(report, "RTP-D3", Severity::kError, name,
         sources.empty() ? std::nullopt : std::optional<std::size_t>(sources.front()),
         "expected exactly one source node, found " + std::to_string(sources.size()) +
             (sources.empty() ? "" : " {" + join_ids(sources, ", ") + "}"),
         "add a dummy zero-WCET NB source node preceding all current sources");
  if (sinks.size() != 1)
    emit(report, "RTP-D4", Severity::kError, name,
         sinks.empty() ? std::nullopt : std::optional<std::size_t>(sinks.front()),
         "expected exactly one sink node, found " + std::to_string(sinks.size()) +
             (sinks.empty() ? "" : " {" + join_ids(sinks, ", ") + "}"),
         "add a dummy zero-WCET NB sink node succeeding all current sinks");

  return true;
}

/// Structural restrictions (i)-(iii) of Section 2 over the blocking regions
/// (S family), mirroring DagTask::build_regions/validate_regions but
/// reporting every defect instead of throwing on the first.
void check_regions(const RawTask& task, const Adjacency& adj, LintReport& report) {
  const std::string& name = task.name;
  const std::size_t n = task.nodes.size();
  // region_of[v]: index of the region that claimed node v, if any.
  std::vector<std::optional<std::size_t>> region_of(n);
  std::size_t region_count = 0;

  auto claim = [&](std::size_t v, std::size_t region) {
    if (region_of[v].has_value() && *region_of[v] != region) {
      emit(report, "RTP-S1", Severity::kError, name, v,
           "node " + std::to_string(v) + " belongs to two blocking regions",
           "restriction (i): blocking regions must be disjoint");
      return;
    }
    region_of[v] = region;
  };

  for (std::size_t f = 0; f < n; ++f) {
    if (task.nodes[f].type != NodeType::BF) continue;
    const std::size_t region = region_count++;

    if (adj.succ[f].empty()) {
      emit(report, "RTP-S1", Severity::kError, name, f,
           "BF node " + std::to_string(f) + " spawns no children",
           "a blocking fork must have at least one BC child");
      claim(f, region);
      continue;
    }

    // Flood forward through BC nodes; collect members and candidate joins.
    std::vector<std::size_t> members;
    std::vector<std::size_t> joins;
    std::vector<bool> visited(n, false);
    std::vector<std::size_t> frontier(adj.succ[f].begin(), adj.succ[f].end());
    while (!frontier.empty()) {
      const std::size_t v = frontier.back();
      frontier.pop_back();
      if (visited[v]) continue;
      visited[v] = true;
      switch (task.nodes[v].type) {
        case NodeType::BC:
          members.push_back(v);
          for (const std::size_t w : adj.succ[v]) frontier.push_back(w);
          break;
        case NodeType::BJ:
          joins.push_back(v);  // do not traverse past the join
          break;
        case NodeType::BF:
          emit(report, "RTP-S2", Severity::kError, name, v,
               "nested blocking regions: BF " + std::to_string(v) +
                   " inside the region of BF " + std::to_string(f),
               "blocking regions must not nest; restructure as siblings");
          break;
        case NodeType::NB:
          emit(report, "RTP-S3", Severity::kError, name, v,
               "node " + std::to_string(v) + " inside the region of BF " +
                   std::to_string(f) + " must have type BC, found NB",
               "retype the node as BC or move it out of the region");
          break;
      }
    }

    std::sort(joins.begin(), joins.end());
    if (joins.empty()) {
      emit(report, "RTP-S1", Severity::kError, name, f,
           "BF node " + std::to_string(f) + " has no matching BJ",
           "every blocking fork needs exactly one join reachable through BC nodes");
    } else if (joins.size() > 1) {
      emit(report, "RTP-S1", Severity::kError, name, f,
           "BF node " + std::to_string(f) + " reaches " + std::to_string(joins.size()) +
               " BJ nodes {" + join_ids(joins, ", ") + "}",
           "merge the joins: a blocking region has exactly one BJ");
    }

    claim(f, region);
    for (const std::size_t j : joins) claim(j, region);
    for (const std::size_t v : members) claim(v, region);

    // Boundary restrictions only make sense for a well-shaped region.
    if (joins.size() != 1) continue;
    const std::size_t join = joins.front();
    std::vector<bool> in_region(n, false);
    for (const std::size_t v : members) in_region[v] = true;

    // Restriction (ii): every edge leaving the BF stays in the region.
    for (const std::size_t w : adj.succ[f])
      if (w != join && !in_region[w])
        emit(report, "RTP-S3", Severity::kError, name, f,
             "edge from BF " + std::to_string(f) + " to node " + std::to_string(w) +
                 " leaves its blocking region",
             "restriction (ii): successors of a BF must be inside its region");
    // Restriction (iii): every edge entering the BJ comes from the region.
    for (const std::size_t u : adj.pred[join])
      if (u != f && !in_region[u])
        emit(report, "RTP-S3", Severity::kError, name, join,
             "edge into BJ " + std::to_string(join) + " from node " +
                 std::to_string(u) + " enters from outside its region",
             "restriction (iii): predecessors of a BJ must be inside its region");
    // Restriction (i): inner nodes have no edges crossing the boundary.
    for (const std::size_t v : members) {
      for (const std::size_t u : adj.pred[v])
        if (u != f && !in_region[u])
          emit(report, "RTP-S3", Severity::kError, name, v,
               "inner node " + std::to_string(v) + " has an incoming edge from " +
                   std::to_string(u) + " outside its region",
               "restriction (i): region-internal nodes only follow the BF or "
               "other region nodes");
      for (const std::size_t w : adj.succ[v])
        if (w != join && !in_region[w])
          emit(report, "RTP-S3", Severity::kError, name, v,
               "inner node " + std::to_string(v) + " has an outgoing edge to " +
                   std::to_string(w) + " outside its region",
               "restriction (i): region-internal nodes only precede the BJ or "
               "other region nodes");
    }
  }

  // Orphaned BC/BJ nodes never claimed by any region flood.
  for (std::size_t v = 0; v < n; ++v) {
    const NodeType t = task.nodes[v].type;
    if ((t == NodeType::BC || t == NodeType::BJ) && !region_of[v].has_value())
      emit(report, "RTP-S1", Severity::kError, name, v,
           std::string(model::to_string(t)) + " node " + std::to_string(v) +
               " is not part of any blocking region",
           "BC/BJ nodes must be reachable from a BF through BC-only paths; "
           "retype as NB otherwise");
  }
}

/// True if any error-severity diagnostic in `report` names `task`.
bool has_error_for(const LintReport& report, const std::string& task) {
  for (const Diagnostic& d : report.diagnostics)
    if (d.severity == Severity::kError && d.task == task) return true;
  return false;
}

/// Promote a structurally clean raw task to a validated DagTask.
std::optional<model::DagTask> promote(const RawTask& task, LintReport& report) {
  try {
    graph::Dag dag(task.nodes.size());
    std::set<std::pair<std::size_t, std::size_t>> seen;
    for (const RawEdge& e : task.edges) {
      if (e.from == e.to || !seen.insert({e.from, e.to}).second) continue;
      dag.add_edge(static_cast<graph::NodeId>(e.from),
                   static_cast<graph::NodeId>(e.to));
    }
    return model::DagTask(task.name, std::move(dag), task.nodes, task.period,
                          task.deadline, task.priority);
  } catch (const std::exception& e) {
    emit(report, "RTP-X1", Severity::kError, task.name, std::nullopt,
         std::string("model validation failed: ") + e.what(),
         "the structural rules missed this defect; please report it");
    return std::nullopt;
  }
}

/// Semantic per-task rules on a validated task (L/P families, global part).
void check_deadlock_rules(const model::DagTask& task, std::size_t cores,
                          LintReport& report) {
  if (const auto chain = analysis::find_lemma1_witness(task, cores)) {
    emit(report, "RTP-L1", Severity::kError, task.name(), chain->pivot,
         "Lemma 1: " + analysis::describe(*chain, task.name()),
         "increase the pool size m beyond b̄ = " +
             std::to_string(chain->forks.size()) +
             " or restructure the blocking regions to overlap less");
    emit(report, "RTP-P1", Severity::kWarning, task.name(), std::nullopt,
         "zero guaranteed concurrency: l̄ = m - b̄ = " +
             std::to_string(static_cast<long>(cores) -
                            static_cast<long>(chain->forks.size())) +
             " <= 0, so the limited-concurrency RTA of Section 4.1 cannot "
             "bound response times",
         "the schedulability analysis will reject this task regardless of "
         "its utilization");
  }
  if (const auto cycle = analysis::find_wait_for_cycle(task, cores)) {
    emit(report, "RTP-L2", Severity::kError, task.name(), cycle->forks.front(),
         "Lemma 2: " + analysis::describe(*cycle, task.name()) +
             "; under global work-conserving scheduling this deadlock is "
             "reachable, not just possible",
         "at least " + std::to_string(cycle->forks.size() + 1) +
             " pool threads are needed to break the cycle");
  }
  if (cores > task.node_count())
    emit(report, "RTP-P2", Severity::kNote, task.name(), std::nullopt,
         "pool has " + std::to_string(cores) + " threads but the task only has " +
             std::to_string(task.node_count()) + " nodes",
         "threads beyond the graph width can never be used by this task");
}

/// Cross-task rules on the raw set (C family, partition-independent part).
void check_set_consistency(const RawTaskSet& raw, LintReport& report) {
  std::map<std::string, std::size_t> name_count;
  for (const RawTask& t : raw.tasks) ++name_count[t.name];
  for (const auto& [task_name, count] : name_count)
    if (count > 1)
      emit(report, "RTP-C1", Severity::kError, task_name, std::nullopt,
           "task name '" + task_name + "' used by " + std::to_string(count) +
               " tasks",
           "task names identify pools; make them unique");

  std::map<int, std::vector<std::string>> by_priority;
  for (const RawTask& t : raw.tasks) by_priority[t.priority].push_back(t.name);
  for (const auto& [priority, names] : by_priority) {
    if (names.size() <= 1) continue;
    std::string list;
    for (std::size_t i = 0; i < names.size(); ++i)
      list += (i ? ", " : "") + names[i];
    emit(report, "RTP-C2", Severity::kWarning, "", std::nullopt,
         "tasks {" + list + "} share priority " + std::to_string(priority),
         "fixed-priority analyses assume pairwise distinct priorities; ties "
         "are broken by declaration order");
  }

  double total_utilization = 0.0;
  bool utilization_known = true;
  for (const RawTask& t : raw.tasks) {
    if (!(t.period > 0.0)) {
      utilization_known = false;
      continue;
    }
    double volume = 0.0;
    for (const model::Node& nd : t.nodes) volume += nd.wcet;
    total_utilization += volume / t.period;
  }
  if (utilization_known && total_utilization > static_cast<double>(raw.cores))
    emit(report, "RTP-C4", Severity::kWarning, "", std::nullopt,
         "total utilization " + std::to_string(total_utilization) + " exceeds m = " +
             std::to_string(raw.cores),
         "the task set is trivially unschedulable on " + std::to_string(raw.cores) +
             " cores");
}

/// Partition-dependent rules: RTP-C3 (shape), RTP-L3 (Eq. 3), RTP-P3.
void check_partition_rules(const model::TaskSet& ts, const LintOptions& options,
                           LintReport& report) {
  std::optional<analysis::TaskSetPartition> partition;
  switch (options.partition_source) {
    case PartitionSource::kNone:
      return;
    case PartitionSource::kWorstFit: {
      auto result = analysis::partition_worst_fit(ts);
      if (!result.success()) {
        emit(report, "RTP-P3", Severity::kWarning, "", std::nullopt,
             "worst-fit partitioning failed: " + result.failure,
             "reduce per-node utilization or add cores");
        return;
      }
      partition = std::move(*result.partition);
      break;
    }
    case PartitionSource::kAlgorithm1: {
      auto result = analysis::partition_algorithm1(ts);
      if (!result.success()) {
        emit(report, "RTP-P3", Severity::kWarning, "", std::nullopt,
             "Algorithm 1 found no reduced-concurrency-delay-free partition: " +
                 result.failure,
             "add cores or shrink the blocking regions; worst-fit placement "
             "may still work but admits queuing behind suspended threads");
        return;
      }
      partition = std::move(*result.partition);
      break;
    }
    case PartitionSource::kProvided: {
      if (!options.partition.has_value()) {
        emit(report, "RTP-C3", Severity::kError, "", std::nullopt,
             "PartitionSource::kProvided but LintOptions::partition is empty",
             "pass the partition to lint against");
        return;
      }
      partition = options.partition;
      // Shape validation before use.
      bool shape_ok = true;
      if (partition->per_task.size() != ts.size()) {
        emit(report, "RTP-C3", Severity::kError, "", std::nullopt,
             "partition covers " + std::to_string(partition->per_task.size()) +
                 " tasks but the set has " + std::to_string(ts.size()),
             "provide one node-to-thread assignment per task");
        return;
      }
      for (std::size_t i = 0; i < ts.size(); ++i) {
        const auto& assignment = partition->per_task[i];
        const model::DagTask& task = ts.task(i);
        if (assignment.thread_of.size() != task.node_count()) {
          emit(report, "RTP-C3", Severity::kError, task.name(), std::nullopt,
               "assignment has " + std::to_string(assignment.thread_of.size()) +
                   " entries for " + std::to_string(task.node_count()) + " nodes",
               "provide exactly one thread id per node");
          shape_ok = false;
          continue;
        }
        for (std::size_t v = 0; v < assignment.thread_of.size(); ++v) {
          if (assignment.thread_of[v] >= ts.core_count()) {
            emit(report, "RTP-C3", Severity::kError, task.name(), v,
                 "node " + std::to_string(v) + " assigned to thread " +
                     std::to_string(assignment.thread_of[v]) + " but the pool has m = " +
                     std::to_string(ts.core_count()) + " threads",
                 "thread ids must be in [0, m)");
            shape_ok = false;
          }
        }
      }
      if (!shape_ok) return;
      break;
    }
  }

  for (std::size_t i = 0; i < ts.size(); ++i) {
    const model::DagTask& task = ts.task(i);
    for (const analysis::Eq3Violation& violation :
         analysis::find_eq3_violations(task, partition->per_task[i])) {
      emit(report, "RTP-L3", Severity::kError, task.name(), violation.bc_node,
           "Lemma 3 / Eq. (3): " + analysis::describe(violation, task.name()) +
               "; the BC node can starve behind its suspended fork's thread",
           "move BC node " + std::to_string(violation.bc_node) +
               " to a thread hosting no BF of C(v) ∪ {F(v)} "
               "(Algorithm 1 produces such placements)");
    }
  }
}

}  // namespace

LintReport run_lint(const RawTaskSet& raw, const LintOptions& options) {
  LintReport report;

  std::vector<std::optional<model::DagTask>> promoted;
  promoted.reserve(raw.tasks.size());
  for (const RawTask& task : raw.tasks) {
    const Adjacency adj = build_adjacency(task);
    if (check_graph_shape(task, adj, report)) check_regions(task, adj, report);
    if (!has_error_for(report, task.name))
      promoted.push_back(promote(task, report));
    else
      promoted.push_back(std::nullopt);
  }

  check_set_consistency(raw, report);

  for (std::size_t i = 0; i < raw.tasks.size(); ++i)
    if (promoted[i].has_value())
      check_deadlock_rules(*promoted[i], raw.cores, report);

  // Partition rules need the whole validated set (unique names included).
  const bool all_promoted =
      std::all_of(promoted.begin(), promoted.end(),
                  [](const auto& t) { return t.has_value(); });
  if (options.partition_source != PartitionSource::kNone && all_promoted &&
      report.by_rule("RTP-C1").empty()) {
    model::TaskSet ts(raw.cores);
    for (auto& task : promoted) ts.add(std::move(*task));
    check_partition_rules(ts, options, report);
  }

  return report;
}

LintReport run_lint(const model::TaskSet& ts, const LintOptions& options) {
  return run_lint(to_raw(ts), options);
}

}  // namespace rtpool::lint
