// Renderers for lint reports and analysis verdicts: compiler-style text
// and machine-readable JSON.
#pragma once

#include <ostream>
#include <string>

#include "analysis/analyzer.h"
#include "lint/diagnostics.h"
#include "model/task_set.h"

namespace rtpool::lint {

/// Compiler-style text, one finding per line plus an indented fix hint:
///
///   error[RTP-L1] task 'tau_1': Lemma 1: ...
///       hint: increase the pool size ...
///   2 errors, 1 warning, 0 notes
void render_text(const LintReport& report, std::ostream& os);

/// JSON document:
///
///   {"tool": "rtpool-lint", "version": 1,
///    "diagnostics": [{"rule_id": ..., "severity": ..., "task": ...,
///                     "node": <id or null>, "message": ..., "fix_hint": ...}],
///    "counts": {"errors": E, "warnings": W, "notes": N}}
///
/// Parsable back with util::parse_json (round-trip tested).
void render_json(const LintReport& report, std::ostream& os);

/// Convenience wrappers returning the rendered string.
std::string render_text(const LintReport& report);
std::string render_json(const LintReport& report);

/// Text rendering of a unified analysis verdict (analysis/analyzer.h):
///
///   analyzer 'global-limited': schedulable (limiting task 'tau_2', R/D = 0.93)
///     tau_0: OK    R = 12.5, D = 40 (lbar = 2)
///     tau_1: MISS  R = inf, D = 25
///     note[lbar-zero] task 'tau_1': ...
///
/// `ts` must be the task set the report was produced from (task names).
void render_text(const analysis::Report& report, const model::TaskSet& ts,
                 std::ostream& os);

/// JSON document for a unified analysis verdict:
///
///   {"tool": "rtpool-analysis", "version": 1, "analyzer": ...,
///    "schedulable": ..., "limiting_task": <name or null>,
///    "limiting_ratio": ..., "dedicated_cores": ...,
///    "per_task": [{"task": ..., "schedulable": ..., "response_time":
///                  <seconds or null when infinite>, "deadline": ...}, ...],
///    "notes": [{"code": ..., "task": ..., "message": ...}, ...]}
///
/// Parsable back with util::parse_json (round-trip tested).
void render_json(const analysis::Report& report, const model::TaskSet& ts,
                 std::ostream& os);

std::string render_text(const analysis::Report& report, const model::TaskSet& ts);
std::string render_json(const analysis::Report& report, const model::TaskSet& ts);

/// Text rendering of an analysis certificate (analysis/cert.h):
///
///   certificate 'partitioned-proposed' (partitioned family, scale = 1): schedulable
///     bounds: split, require-deadlock-free, max iterations = 100000
///     core loads: 0.45 0.72
///     tau_0: converged  R = 12.5 (deadlock-free)
///     tau_1: eq3-violation  BC node 4 and fork 1 share thread 2
///
/// `ts` must be the task set the certificate was produced from (names,
/// deadlines); out-of-range task/node references render as 'task#<i>'.
void render_text(const analysis::cert::Certificate& certificate,
                 const model::TaskSet& ts, std::ostream& os);

/// JSON document for a certificate — a complete dump of the proof payload:
///
///   {"tool": "rtpool-certificate", "version": 1, "analyzer": ...,
///    "family": "global"|"partitioned"|"federated", "wcet_scale": ...,
///    "schedulable": ...,
///    "<family>": {... per-task claims, iterates, witnesses, partition
///                 echo / allocation, with null for infinite times and
///                 absent indices ...}}
///
/// Parsable back with util::parse_json (round-trip tested).
void render_json(const analysis::cert::Certificate& certificate,
                 const model::TaskSet& ts, std::ostream& os);

std::string render_text(const analysis::cert::Certificate& certificate,
                        const model::TaskSet& ts);
std::string render_json(const analysis::cert::Certificate& certificate,
                        const model::TaskSet& ts);

}  // namespace rtpool::lint
