// Renderers for lint reports: compiler-style text and machine-readable JSON.
#pragma once

#include <ostream>
#include <string>

#include "lint/diagnostics.h"

namespace rtpool::lint {

/// Compiler-style text, one finding per line plus an indented fix hint:
///
///   error[RTP-L1] task 'tau_1': Lemma 1: ...
///       hint: increase the pool size ...
///   2 errors, 1 warning, 0 notes
void render_text(const LintReport& report, std::ostream& os);

/// JSON document:
///
///   {"tool": "rtpool-lint", "version": 1,
///    "diagnostics": [{"rule_id": ..., "severity": ..., "task": ...,
///                     "node": <id or null>, "message": ..., "fix_hint": ...}],
///    "counts": {"errors": E, "warnings": W, "notes": N}}
///
/// Parsable back with util::parse_json (round-trip tested).
void render_json(const LintReport& report, std::ostream& os);

/// Convenience wrappers returning the rendered string.
std::string render_text(const LintReport& report);
std::string render_json(const LintReport& report);

}  // namespace rtpool::lint
