// Structured diagnostics emitted by the rtpool-lint rule pipeline.
//
// Every finding carries a stable rule id (see rules.h for the registry and
// the paper lemma/equation each rule enforces), a severity, the offending
// task/node location, a human-readable message and a fix hint. Reports are
// rendered either as text or JSON (render.h).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "model/node.h"

namespace rtpool::lint {

enum class Severity : unsigned char { kError = 0, kWarning = 1, kNote = 2 };

/// "error" / "warning" / "note".
std::string to_string(Severity severity);

/// One lint finding.
struct Diagnostic {
  std::string rule_id;               ///< Stable id, e.g. "RTP-L1".
  Severity severity = Severity::kError;
  std::string task;                  ///< Task name ("" = task-set level).
  std::optional<std::size_t> node;   ///< Offending node id, when one exists.
  std::string message;               ///< What is wrong (includes witness).
  std::string fix_hint;              ///< How to repair the model.
};

/// Ordered collection of findings for one lint run.
struct LintReport {
  std::vector<Diagnostic> diagnostics;

  std::size_t count(Severity severity) const;
  std::size_t error_count() const { return count(Severity::kError); }
  std::size_t warning_count() const { return count(Severity::kWarning); }
  std::size_t note_count() const { return count(Severity::kNote); }

  /// True when no error-severity diagnostic was emitted (warnings/notes do
  /// not make a model unusable).
  bool clean() const { return error_count() == 0; }

  /// All findings for one rule id (used by tests and tooling).
  std::vector<Diagnostic> by_rule(const std::string& rule_id) const;
};

}  // namespace rtpool::lint
