#include "lint/render.h"

#include <sstream>

#include "util/json.h"

namespace rtpool::lint {

void render_text(const LintReport& report, std::ostream& os) {
  for (const Diagnostic& d : report.diagnostics) {
    os << to_string(d.severity) << "[" << d.rule_id << "]";
    if (!d.task.empty()) {
      os << " task '" << d.task << "'";
      if (d.node.has_value()) os << " node " << *d.node;
    }
    os << ": " << d.message << "\n";
    if (!d.fix_hint.empty()) os << "    hint: " << d.fix_hint << "\n";
  }
  os << report.error_count() << (report.error_count() == 1 ? " error, " : " errors, ")
     << report.warning_count()
     << (report.warning_count() == 1 ? " warning, " : " warnings, ")
     << report.note_count() << (report.note_count() == 1 ? " note" : " notes")
     << "\n";
}

void render_json(const LintReport& report, std::ostream& os) {
  util::JsonWriter w(os);
  w.begin_object();
  w.kv("tool", "rtpool-lint");
  w.kv("version", 1);
  w.key("diagnostics").begin_array();
  for (const Diagnostic& d : report.diagnostics) {
    w.begin_object();
    w.kv("rule_id", d.rule_id);
    w.kv("severity", to_string(d.severity));
    w.kv("task", d.task);
    w.key("node");
    if (d.node.has_value())
      w.value(static_cast<std::uint64_t>(*d.node));
    else
      w.null();
    w.kv("message", d.message);
    w.kv("fix_hint", d.fix_hint);
    w.end_object();
  }
  w.end_array();
  w.key("counts").begin_object();
  w.kv("errors", static_cast<std::uint64_t>(report.error_count()));
  w.kv("warnings", static_cast<std::uint64_t>(report.warning_count()));
  w.kv("notes", static_cast<std::uint64_t>(report.note_count()));
  w.end_object();
  w.end_object();
  os << "\n";
}

std::string render_text(const LintReport& report) {
  std::ostringstream os;
  render_text(report, os);
  return os.str();
}

std::string render_json(const LintReport& report) {
  std::ostringstream os;
  render_json(report, os);
  return os.str();
}

}  // namespace rtpool::lint
