#include "lint/render.h"

#include <cmath>
#include <sstream>

#include "util/json.h"

namespace rtpool::lint {

void render_text(const LintReport& report, std::ostream& os) {
  for (const Diagnostic& d : report.diagnostics) {
    os << to_string(d.severity) << "[" << d.rule_id << "]";
    if (!d.task.empty()) {
      os << " task '" << d.task << "'";
      if (d.node.has_value()) os << " node " << *d.node;
    }
    os << ": " << d.message << "\n";
    if (!d.fix_hint.empty()) os << "    hint: " << d.fix_hint << "\n";
  }
  os << report.error_count() << (report.error_count() == 1 ? " error, " : " errors, ")
     << report.warning_count()
     << (report.warning_count() == 1 ? " warning, " : " warnings, ")
     << report.note_count() << (report.note_count() == 1 ? " note" : " notes")
     << "\n";
}

void render_json(const LintReport& report, std::ostream& os) {
  util::JsonWriter w(os);
  w.begin_object();
  w.kv("tool", "rtpool-lint");
  w.kv("version", 1);
  w.key("diagnostics").begin_array();
  for (const Diagnostic& d : report.diagnostics) {
    w.begin_object();
    w.kv("rule_id", d.rule_id);
    w.kv("severity", to_string(d.severity));
    w.kv("task", d.task);
    w.key("node");
    if (d.node.has_value())
      w.value(static_cast<std::uint64_t>(*d.node));
    else
      w.null();
    w.kv("message", d.message);
    w.kv("fix_hint", d.fix_hint);
    w.end_object();
  }
  w.end_array();
  w.key("counts").begin_object();
  w.kv("errors", static_cast<std::uint64_t>(report.error_count()));
  w.kv("warnings", static_cast<std::uint64_t>(report.warning_count()));
  w.kv("notes", static_cast<std::uint64_t>(report.note_count()));
  w.end_object();
  w.end_object();
  os << "\n";
}

std::string render_text(const LintReport& report) {
  std::ostringstream os;
  render_text(report, os);
  return os.str();
}

std::string render_json(const LintReport& report) {
  std::ostringstream os;
  render_json(report, os);
  return os.str();
}

void render_text(const analysis::Report& report, const model::TaskSet& ts,
                 std::ostream& os) {
  os << "analyzer '" << report.analyzer << "': "
     << (report.schedulable ? "schedulable" : "unschedulable");
  if (report.limiting_task.has_value()) {
    os << " (limiting task '" << ts.task(*report.limiting_task).name()
       << "', R/D = " << report.limiting_ratio << ")";
  }
  if (report.dedicated_cores > 0)
    os << " [" << report.dedicated_cores << " dedicated cores]";
  os << "\n";
  for (std::size_t i = 0; i < report.per_task.size(); ++i) {
    const analysis::TaskVerdict& tv = report.per_task[i];
    os << "  " << ts.task(i).name() << ": " << (tv.schedulable ? "OK  " : "MISS")
       << "  R = " << tv.response_time << ", D = " << ts.task(i).deadline();
    if (tv.concurrency_bound != 0) os << " (lbar = " << tv.concurrency_bound << ")";
    if (!tv.deadlock_free) os << " (deadlock risk: Eq.3 violated)";
    if (tv.dedicated) os << " (dedicated, " << tv.dedicated_cores << " cores)";
    os << "\n";
  }
  for (const analysis::AnalyzerNote& n : report.notes) {
    os << "  note[" << n.code << "]";
    if (!n.task.empty()) os << " task '" << n.task << "'";
    os << ": " << n.message << "\n";
  }
}

void render_json(const analysis::Report& report, const model::TaskSet& ts,
                 std::ostream& os) {
  util::JsonWriter w(os);
  w.begin_object();
  w.kv("tool", "rtpool-analysis");
  w.kv("version", 1);
  w.kv("analyzer", report.analyzer);
  w.kv("schedulable", report.schedulable);
  w.key("limiting_task");
  if (report.limiting_task.has_value())
    w.value(ts.task(*report.limiting_task).name());
  else
    w.null();
  w.kv("limiting_ratio", report.limiting_ratio);
  w.kv("dedicated_cores", static_cast<std::uint64_t>(report.dedicated_cores));
  w.key("per_task").begin_array();
  for (std::size_t i = 0; i < report.per_task.size(); ++i) {
    const analysis::TaskVerdict& tv = report.per_task[i];
    w.begin_object();
    w.kv("task", ts.task(i).name());
    w.kv("schedulable", tv.schedulable);
    w.key("response_time");
    // JSON has no Infinity literal; an unbounded response renders as null.
    if (std::isfinite(tv.response_time))
      w.value(tv.response_time);
    else
      w.null();
    w.kv("deadline", ts.task(i).deadline());
    if (tv.concurrency_bound != 0)
      w.kv("concurrency_bound", static_cast<std::int64_t>(tv.concurrency_bound));
    if (!tv.deadlock_free) w.kv("deadlock_free", false);
    if (tv.dedicated)
      w.kv("dedicated_cores", static_cast<std::uint64_t>(tv.dedicated_cores));
    w.end_object();
  }
  w.end_array();
  w.key("notes").begin_array();
  for (const analysis::AnalyzerNote& n : report.notes) {
    w.begin_object();
    w.kv("code", n.code);
    w.kv("task", n.task);
    w.kv("message", n.message);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << "\n";
}

std::string render_text(const analysis::Report& report, const model::TaskSet& ts) {
  std::ostringstream os;
  render_text(report, ts, os);
  return os.str();
}

std::string render_json(const analysis::Report& report, const model::TaskSet& ts) {
  std::ostringstream os;
  render_json(report, ts, os);
  return os.str();
}

}  // namespace rtpool::lint
