#include "lint/render.h"

#include <cmath>
#include <sstream>

#include "util/json.h"

namespace rtpool::lint {

void render_text(const LintReport& report, std::ostream& os) {
  for (const Diagnostic& d : report.diagnostics) {
    os << to_string(d.severity) << "[" << d.rule_id << "]";
    if (!d.task.empty()) {
      os << " task '" << d.task << "'";
      if (d.node.has_value()) os << " node " << *d.node;
    }
    os << ": " << d.message << "\n";
    if (!d.fix_hint.empty()) os << "    hint: " << d.fix_hint << "\n";
  }
  os << report.error_count() << (report.error_count() == 1 ? " error, " : " errors, ")
     << report.warning_count()
     << (report.warning_count() == 1 ? " warning, " : " warnings, ")
     << report.note_count() << (report.note_count() == 1 ? " note" : " notes")
     << "\n";
}

void render_json(const LintReport& report, std::ostream& os) {
  util::JsonWriter w(os);
  w.begin_object();
  w.kv("tool", "rtpool-lint");
  w.kv("version", 1);
  w.key("diagnostics").begin_array();
  for (const Diagnostic& d : report.diagnostics) {
    w.begin_object();
    w.kv("rule_id", d.rule_id);
    w.kv("severity", to_string(d.severity));
    w.kv("task", d.task);
    w.key("node");
    if (d.node.has_value())
      w.value(static_cast<std::uint64_t>(*d.node));
    else
      w.null();
    w.kv("message", d.message);
    w.kv("fix_hint", d.fix_hint);
    w.end_object();
  }
  w.end_array();
  w.key("counts").begin_object();
  w.kv("errors", static_cast<std::uint64_t>(report.error_count()));
  w.kv("warnings", static_cast<std::uint64_t>(report.warning_count()));
  w.kv("notes", static_cast<std::uint64_t>(report.note_count()));
  w.end_object();
  w.end_object();
  os << "\n";
}

std::string render_text(const LintReport& report) {
  std::ostringstream os;
  render_text(report, os);
  return os.str();
}

std::string render_json(const LintReport& report) {
  std::ostringstream os;
  render_json(report, os);
  return os.str();
}

void render_text(const analysis::Report& report, const model::TaskSet& ts,
                 std::ostream& os) {
  os << "analyzer '" << report.analyzer << "': "
     << (report.schedulable ? "schedulable" : "unschedulable");
  if (report.limiting_task.has_value()) {
    os << " (limiting task '" << ts.task(*report.limiting_task).name()
       << "', R/D = " << report.limiting_ratio << ")";
  }
  if (report.dedicated_cores > 0)
    os << " [" << report.dedicated_cores << " dedicated cores]";
  os << "\n";
  for (std::size_t i = 0; i < report.per_task.size(); ++i) {
    const analysis::TaskVerdict& tv = report.per_task[i];
    os << "  " << ts.task(i).name() << ": " << (tv.schedulable ? "OK  " : "MISS")
       << "  R = " << tv.response_time << ", D = " << ts.task(i).deadline();
    if (tv.concurrency_bound != 0) os << " (lbar = " << tv.concurrency_bound << ")";
    if (!tv.deadlock_free) os << " (deadlock risk: Eq.3 violated)";
    if (tv.dedicated) os << " (dedicated, " << tv.dedicated_cores << " cores)";
    os << "\n";
  }
  for (const analysis::AnalyzerNote& n : report.notes) {
    os << "  note[" << n.code << "]";
    if (!n.task.empty()) os << " task '" << n.task << "'";
    os << ": " << n.message << "\n";
  }
}

void render_json(const analysis::Report& report, const model::TaskSet& ts,
                 std::ostream& os) {
  util::JsonWriter w(os);
  w.begin_object();
  w.kv("tool", "rtpool-analysis");
  w.kv("version", 1);
  w.kv("analyzer", report.analyzer);
  w.kv("schedulable", report.schedulable);
  w.key("limiting_task");
  if (report.limiting_task.has_value())
    w.value(ts.task(*report.limiting_task).name());
  else
    w.null();
  w.kv("limiting_ratio", report.limiting_ratio);
  w.kv("dedicated_cores", static_cast<std::uint64_t>(report.dedicated_cores));
  w.key("per_task").begin_array();
  for (std::size_t i = 0; i < report.per_task.size(); ++i) {
    const analysis::TaskVerdict& tv = report.per_task[i];
    w.begin_object();
    w.kv("task", ts.task(i).name());
    w.kv("schedulable", tv.schedulable);
    w.key("response_time");
    // JSON has no Infinity literal; an unbounded response renders as null.
    if (std::isfinite(tv.response_time))
      w.value(tv.response_time);
    else
      w.null();
    w.kv("deadline", ts.task(i).deadline());
    if (tv.concurrency_bound != 0)
      w.kv("concurrency_bound", static_cast<std::int64_t>(tv.concurrency_bound));
    if (!tv.deadlock_free) w.kv("deadlock_free", false);
    if (tv.dedicated)
      w.kv("dedicated_cores", static_cast<std::uint64_t>(tv.dedicated_cores));
    w.end_object();
  }
  w.end_array();
  w.key("notes").begin_array();
  for (const analysis::AnalyzerNote& n : report.notes) {
    w.begin_object();
    w.kv("code", n.code);
    w.kv("task", n.task);
    w.kv("message", n.message);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << "\n";
}

std::string render_text(const analysis::Report& report, const model::TaskSet& ts) {
  std::ostringstream os;
  render_text(report, ts, os);
  return os.str();
}

std::string render_json(const analysis::Report& report, const model::TaskSet& ts) {
  std::ostringstream os;
  render_json(report, ts, os);
  return os.str();
}

// ---- certificate renderers ----

namespace {

namespace cert = analysis::cert;

std::string task_label(const model::TaskSet& ts, std::size_t index) {
  if (index < ts.size()) return ts.task(index).name();
  return "task#" + std::to_string(index);
}

void write_time_or_null(util::JsonWriter& w, util::Time t) {
  if (std::isfinite(t))
    w.value(t);
  else
    w.null();
}

void write_index_or_null(util::JsonWriter& w, std::size_t index) {
  if (index == cert::kNoIndex)
    w.null();
  else
    w.value(static_cast<std::uint64_t>(index));
}

void write_witness(util::JsonWriter& w, const cert::ConcurrencyWitness& cw) {
  w.begin_object();
  w.kv("bbar", static_cast<std::uint64_t>(cw.bbar));
  w.kv("antichain", cw.antichain);
  w.key("pivot");
  write_index_or_null(w, cw.pivot);
  w.key("forks").begin_array();
  for (model::NodeId fork : cw.forks) w.value(static_cast<std::uint64_t>(fork));
  w.end_array();
  w.end_object();
}

void print_witness(std::ostream& os, const cert::ConcurrencyWitness& cw) {
  os << "b-bar = " << cw.bbar << " via ";
  if (cw.antichain)
    os << "antichain {";
  else
    os << "X(" << cw.pivot << ") = {";
  for (std::size_t i = 0; i < cw.forks.size(); ++i)
    os << (i == 0 ? "" : ", ") << cw.forks[i];
  os << "}";
}

void print_global(const cert::GlobalCert& g, const model::TaskSet& ts,
                  std::ostream& os) {
  os << "  bounds:" << (g.limited ? " limited-concurrency" : " baseline")
     << (g.antichain_bound ? " antichain" : "")
     << (g.carry_in ? " carry-in" : "")
     << ", max iterations = " << g.max_iterations << "\n";
  for (std::size_t i = 0; i < g.per_task.size(); ++i) {
    const cert::GlobalTaskCert& tc = g.per_task[i];
    os << "  " << task_label(ts, i) << ": " << cert::to_string(tc.claim);
    switch (tc.claim) {
      case cert::TaskClaim::kConverged:
        os << "  R = " << tc.response << " (len = " << tc.critical_path
           << ", self = " << tc.self_interference
           << ", denom = " << tc.denominator << ")";
        break;
      case cert::TaskClaim::kDeadlineMiss:
      case cert::TaskClaim::kIterationBudget:
        os << "  final iterate " << tc.response;
        if (i < ts.size()) os << ", D = " << ts.task(i).deadline();
        break;
      case cert::TaskClaim::kHpDiverged:
        os << "  blocker '" << task_label(ts, tc.blocker) << "'";
        break;
      default:
        break;
    }
    if (tc.concurrency.has_value()) {
      os << " [";
      print_witness(os, *tc.concurrency);
      os << "]";
    }
    os << "\n";
  }
}

void print_partitioned(const cert::PartitionedCert& p, const model::TaskSet& ts,
                       std::ostream& os) {
  os << "  bounds: " << (p.split ? "split" : "holistic")
     << (p.require_deadlock_free ? ", require-deadlock-free" : "")
     << ", max iterations = " << p.max_iterations << "\n";
  if (!p.partition_failure.empty())
    os << "  partition failure: " << p.partition_failure << "\n";
  if (!p.core_load.empty()) {
    os << "  core loads:";
    for (double load : p.core_load) os << " " << load;
    os << "\n";
  }
  for (std::size_t i = 0; i < p.per_task.size(); ++i) {
    const cert::PartitionedTaskCert& tc = p.per_task[i];
    os << "  " << task_label(ts, i) << ": " << cert::to_string(tc.claim);
    switch (tc.claim) {
      case cert::TaskClaim::kConverged:
        os << "  R = " << tc.response;
        if (p.split)
          os << " (" << tc.segments.size() << " segments)";
        else
          os << " (base = " << tc.holistic_base << ")";
        break;
      case cert::TaskClaim::kDeadlineMiss:
      case cert::TaskClaim::kIterationBudget:
        os << "  iterate " << tc.miss_value;
        if (tc.miss_node != cert::kNoIndex) os << " at node " << tc.miss_node;
        if (i < ts.size()) os << ", D = " << ts.task(i).deadline();
        break;
      case cert::TaskClaim::kEq3Violation:
        if (tc.eq3.has_value())
          os << "  BC node " << tc.eq3->bc_node << " and fork " << tc.eq3->fork
             << " share thread " << tc.eq3->thread;
        break;
      case cert::TaskClaim::kHpDiverged:
        os << "  blocker '" << task_label(ts, tc.blocker) << "'";
        break;
      default:
        break;
    }
    if (tc.concurrency.has_value()) {
      os << " [";
      print_witness(os, *tc.concurrency);
      os << "]";
    }
    if (tc.deadlock_free && tc.claim != cert::TaskClaim::kPartitionFailure)
      os << " (deadlock-free)";
    os << "\n";
  }
}

void print_federated(const cert::FederatedCert& f, const model::TaskSet& ts,
                     std::ostream& os) {
  os << "  bounds: " << (f.limited ? "limited-concurrency" : "baseline")
     << ", dedicated cores = " << f.dedicated_cores << "\n";
  for (std::size_t i = 0; i < f.per_task.size(); ++i) {
    const cert::FederatedTaskCert& tc = f.per_task[i];
    os << "  " << task_label(ts, i) << ": " << cert::to_string(tc.claim);
    switch (tc.claim) {
      case cert::TaskClaim::kDedicated:
        os << "  " << tc.cores << " cores";
        if (f.limited) os << " (b-bar = " << tc.bbar << ")";
        break;
      case cert::TaskClaim::kConverged:
      case cert::TaskClaim::kDeadlineMiss:
        os << "  R = " << tc.response << " on shared core " << tc.core;
        if (i < ts.size()) os << ", D = " << ts.task(i).deadline();
        break;
      case cert::TaskClaim::kAllocationFailure:
        os << "  demand " << tc.cores << " cores";
        break;
      case cert::TaskClaim::kSharedCoreFailure:
        os << "  blocker '" << task_label(ts, tc.blocker) << "'";
        break;
      default:
        break;
    }
    if (tc.concurrency.has_value()) {
      os << " [";
      print_witness(os, *tc.concurrency);
      os << "]";
    }
    os << "\n";
  }
}

void write_global(util::JsonWriter& w, const cert::GlobalCert& g,
                  const model::TaskSet& ts) {
  w.begin_object();
  w.kv("limited", g.limited);
  w.kv("antichain_bound", g.antichain_bound);
  w.kv("carry_in", g.carry_in);
  w.kv("max_iterations", g.max_iterations);
  w.key("per_task").begin_array();
  for (std::size_t i = 0; i < g.per_task.size(); ++i) {
    const cert::GlobalTaskCert& tc = g.per_task[i];
    w.begin_object();
    w.kv("task", task_label(ts, i));
    w.kv("claim", cert::to_string(tc.claim));
    w.kv("schedulable", tc.schedulable);
    w.key("response");
    write_time_or_null(w, tc.response);
    w.kv("denominator", tc.denominator);
    w.kv("critical_path", tc.critical_path);
    w.kv("self_interference", tc.self_interference);
    w.key("hp_interference").begin_array();
    for (util::Time interference : tc.hp_interference) w.value(interference);
    w.end_array();
    w.key("concurrency");
    if (tc.concurrency.has_value())
      write_witness(w, *tc.concurrency);
    else
      w.null();
    w.key("blocker");
    write_index_or_null(w, tc.blocker);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

void write_partitioned(util::JsonWriter& w, const cert::PartitionedCert& p,
                       const model::TaskSet& ts) {
  w.begin_object();
  w.kv("split", p.split);
  w.kv("require_deadlock_free", p.require_deadlock_free);
  w.kv("max_iterations", p.max_iterations);
  w.kv("partition_failure", p.partition_failure);
  w.key("thread_of").begin_array();
  for (const std::vector<std::uint32_t>& threads : p.thread_of) {
    w.begin_array();
    for (std::uint32_t thread : threads)
      w.value(static_cast<std::uint64_t>(thread));
    w.end_array();
  }
  w.end_array();
  w.key("core_load").begin_array();
  for (double load : p.core_load) w.value(load);
  w.end_array();
  w.key("per_task").begin_array();
  for (std::size_t i = 0; i < p.per_task.size(); ++i) {
    const cert::PartitionedTaskCert& tc = p.per_task[i];
    w.begin_object();
    w.kv("task", task_label(ts, i));
    w.kv("claim", cert::to_string(tc.claim));
    w.kv("schedulable", tc.schedulable);
    w.kv("deadlock_free", tc.deadlock_free);
    w.key("response");
    write_time_or_null(w, tc.response);
    w.kv("holistic_base", tc.holistic_base);
    w.key("segments").begin_array();
    for (const cert::SegmentCert& seg : tc.segments) {
      w.begin_object();
      w.kv("blocking", seg.blocking);
      w.kv("response", seg.response);
      w.end_object();
    }
    w.end_array();
    w.key("miss_node");
    write_index_or_null(w, tc.miss_node);
    w.key("miss_value");
    write_time_or_null(w, tc.miss_value);
    w.key("concurrency");
    if (tc.concurrency.has_value())
      write_witness(w, *tc.concurrency);
    else
      w.null();
    w.key("eq3");
    if (tc.eq3.has_value()) {
      w.begin_object();
      w.kv("bc_node", static_cast<std::uint64_t>(tc.eq3->bc_node));
      w.kv("fork", static_cast<std::uint64_t>(tc.eq3->fork));
      w.kv("thread", static_cast<std::uint64_t>(tc.eq3->thread));
      w.end_object();
    } else {
      w.null();
    }
    w.key("blocker");
    write_index_or_null(w, tc.blocker);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

void write_federated(util::JsonWriter& w, const cert::FederatedCert& f,
                     const model::TaskSet& ts) {
  w.begin_object();
  w.kv("limited", f.limited);
  w.kv("dedicated_cores", static_cast<std::uint64_t>(f.dedicated_cores));
  w.key("shared_order").begin_array();
  for (const std::vector<std::size_t>& core : f.shared_order) {
    w.begin_array();
    for (std::size_t task : core) w.value(static_cast<std::uint64_t>(task));
    w.end_array();
  }
  w.end_array();
  w.key("per_task").begin_array();
  for (std::size_t i = 0; i < f.per_task.size(); ++i) {
    const cert::FederatedTaskCert& tc = f.per_task[i];
    w.begin_object();
    w.kv("task", task_label(ts, i));
    w.kv("claim", cert::to_string(tc.claim));
    w.kv("schedulable", tc.schedulable);
    w.kv("dedicated", tc.dedicated);
    w.kv("cores", static_cast<std::uint64_t>(tc.cores));
    w.kv("bbar", static_cast<std::uint64_t>(tc.bbar));
    w.key("concurrency");
    if (tc.concurrency.has_value())
      write_witness(w, *tc.concurrency);
    else
      w.null();
    w.key("core");
    write_index_or_null(w, tc.core);
    w.key("response");
    write_time_or_null(w, tc.response);
    w.key("blocker");
    write_index_or_null(w, tc.blocker);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

}  // namespace

void render_text(const cert::Certificate& certificate, const model::TaskSet& ts,
                 std::ostream& os) {
  os << "certificate '" << certificate.analyzer << "' ("
     << cert::to_string(certificate.family)
     << " family, scale = " << certificate.wcet_scale << "): "
     << (certificate.schedulable ? "schedulable" : "unschedulable") << "\n";
  if (certificate.global.has_value()) print_global(*certificate.global, ts, os);
  if (certificate.partitioned.has_value())
    print_partitioned(*certificate.partitioned, ts, os);
  if (certificate.federated.has_value())
    print_federated(*certificate.federated, ts, os);
}

void render_json(const cert::Certificate& certificate, const model::TaskSet& ts,
                 std::ostream& os) {
  util::JsonWriter w(os);
  w.begin_object();
  w.kv("tool", "rtpool-certificate");
  w.kv("version", 1);
  w.kv("analyzer", certificate.analyzer);
  w.kv("family", cert::to_string(certificate.family));
  w.kv("wcet_scale", certificate.wcet_scale);
  w.kv("schedulable", certificate.schedulable);
  if (certificate.global.has_value()) {
    w.key("global");
    write_global(w, *certificate.global, ts);
  }
  if (certificate.partitioned.has_value()) {
    w.key("partitioned");
    write_partitioned(w, *certificate.partitioned, ts);
  }
  if (certificate.federated.has_value()) {
    w.key("federated");
    write_federated(w, *certificate.federated, ts);
  }
  w.end_object();
  os << "\n";
}

std::string render_text(const cert::Certificate& certificate,
                        const model::TaskSet& ts) {
  std::ostringstream os;
  render_text(certificate, ts, os);
  return os.str();
}

std::string render_json(const cert::Certificate& certificate,
                        const model::TaskSet& ts) {
  std::ostringstream os;
  render_json(certificate, ts, os);
  return os.str();
}

}  // namespace rtpool::lint
