#include "lint/raw_model.h"

#include <fstream>
#include <map>
#include <sstream>

#include "graph/dag.h"
#include "model/io.h"

namespace rtpool::lint {

namespace {

using model::ParseError;

std::map<std::string, std::string> parse_kv(std::istringstream& line, int lineno) {
  std::map<std::string, std::string> kv;
  std::string token;
  while (line >> token) {
    const auto eq = token.find('=');
    if (eq == std::string::npos)
      throw ParseError("line " + std::to_string(lineno) +
                       ": expected key=value, got '" + token + "'");
    kv[token.substr(0, eq)] = token.substr(eq + 1);
  }
  return kv;
}

const std::string& require(const std::map<std::string, std::string>& kv,
                           const std::string& key, int lineno) {
  const auto it = kv.find(key);
  if (it == kv.end())
    throw ParseError("line " + std::to_string(lineno) + ": missing '" + key + "='");
  return it->second;
}

double to_double(const std::string& s, int lineno) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(s, &pos);
    if (pos != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw ParseError("line " + std::to_string(lineno) + ": bad number '" + s + "'");
  }
}

long to_long(const std::string& s, int lineno) {
  try {
    std::size_t pos = 0;
    const long v = std::stol(s, &pos);
    if (pos != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw ParseError("line " + std::to_string(lineno) + ": bad integer '" + s + "'");
  }
}

}  // namespace

RawTaskSet read_raw_task_set(std::istream& is) {
  RawTaskSet raw;
  bool saw_header = false;
  bool in_task = false;
  RawTask current;
  std::size_t declared_nodes = 0;

  std::string line_text;
  int lineno = 0;
  while (std::getline(is, line_text)) {
    ++lineno;
    std::istringstream line(line_text);
    std::string keyword;
    if (!(line >> keyword)) continue;     // blank line
    if (keyword[0] == '#') continue;      // comment

    if (keyword == "taskset") {
      if (saw_header)
        throw ParseError("line " + std::to_string(lineno) + ": duplicate 'taskset'");
      const auto kv = parse_kv(line, lineno);
      const long cores = to_long(require(kv, "cores", lineno), lineno);
      if (cores <= 0)
        throw ParseError("line " + std::to_string(lineno) + ": cores must be > 0");
      raw.cores = static_cast<std::size_t>(cores);
      saw_header = true;
    } else if (keyword == "task") {
      if (!saw_header)
        throw ParseError("line " + std::to_string(lineno) + ": 'task' before 'taskset'");
      if (in_task)
        throw ParseError("line " + std::to_string(lineno) + ": nested 'task'");
      const auto kv = parse_kv(line, lineno);
      current = RawTask{};
      current.name = require(kv, "name", lineno);
      current.period = to_double(require(kv, "period", lineno), lineno);
      current.deadline = to_double(require(kv, "deadline", lineno), lineno);
      current.priority = static_cast<int>(to_long(require(kv, "priority", lineno), lineno));
      declared_nodes = static_cast<std::size_t>(to_long(require(kv, "nodes", lineno), lineno));
      in_task = true;
    } else if (keyword == "node") {
      if (!in_task)
        throw ParseError("line " + std::to_string(lineno) + ": 'node' outside task");
      long id = 0;
      if (!(line >> id))
        throw ParseError("line " + std::to_string(lineno) + ": missing node id");
      if (id != static_cast<long>(current.nodes.size()))
        throw ParseError("line " + std::to_string(lineno) +
                         ": node ids must be dense and in order");
      const auto kv = parse_kv(line, lineno);
      model::Node n;
      n.wcet = to_double(require(kv, "wcet", lineno), lineno);
      try {
        n.type = model::node_type_from_string(require(kv, "type", lineno));
      } catch (const std::invalid_argument& e) {
        throw ParseError("line " + std::to_string(lineno) + ": " + e.what());
      }
      current.nodes.push_back(n);
    } else if (keyword == "edge") {
      if (!in_task)
        throw ParseError("line " + std::to_string(lineno) + ": 'edge' outside task");
      long from = 0;
      long to = 0;
      if (!(line >> from >> to))
        throw ParseError("line " + std::to_string(lineno) + ": edge needs two node ids");
      if (from < 0 || to < 0 || static_cast<std::size_t>(from) >= current.nodes.size() ||
          static_cast<std::size_t>(to) >= current.nodes.size())
        throw ParseError("line " + std::to_string(lineno) + ": edge id out of range");
      // Self-loops and duplicate edges are *model* defects the lint rules
      // diagnose; record them verbatim.
      current.edges.push_back(RawEdge{static_cast<std::size_t>(from),
                                      static_cast<std::size_t>(to)});
    } else if (keyword == "endtask") {
      if (!in_task)
        throw ParseError("line " + std::to_string(lineno) + ": stray 'endtask'");
      if (current.nodes.size() != declared_nodes)
        throw ParseError("line " + std::to_string(lineno) + ": task '" + current.name +
                         "' declared " + std::to_string(declared_nodes) +
                         " nodes but has " + std::to_string(current.nodes.size()));
      raw.tasks.push_back(std::move(current));
      in_task = false;
    } else {
      throw ParseError("line " + std::to_string(lineno) + ": unknown keyword '" +
                       keyword + "'");
    }
  }
  if (in_task)
    throw ParseError("unexpected end of input inside task '" + current.name + "'");
  if (!saw_header) throw ParseError("input contains no 'taskset' header");
  return raw;
}

RawTaskSet load_raw_task_set(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_raw_task_set: cannot open " + path);
  return read_raw_task_set(in);
}

RawTaskSet to_raw(const model::TaskSet& ts) {
  RawTaskSet raw;
  raw.cores = ts.core_count();
  for (const model::DagTask& t : ts.tasks()) {
    RawTask rt;
    rt.name = t.name();
    rt.period = t.period();
    rt.deadline = t.deadline();
    rt.priority = t.priority();
    for (model::NodeId v = 0; v < t.node_count(); ++v) rt.nodes.push_back(t.node(v));
    for (const graph::Edge& e : t.dag().edges())
      rt.edges.push_back(RawEdge{e.from, e.to});
    raw.tasks.push_back(std::move(rt));
  }
  return raw;
}

}  // namespace rtpool::lint
