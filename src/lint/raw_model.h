// Unvalidated mirror of the task model, for linting.
//
// model::DagTask validates the full Section 2 structural model in its
// constructor and throws on the first violation — correct for analyses,
// useless for a linter whose job is to report *every* violation with a
// rule id and a fix hint. RawTaskSet holds exactly what a .taskset file
// says, however broken; the rule pipeline (rules.h) checks it and only
// constructs validated DagTasks for tasks that pass the structural rules.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "model/node.h"
#include "model/task_set.h"

namespace rtpool::lint {

struct RawEdge {
  std::size_t from = 0;
  std::size_t to = 0;
};

struct RawTask {
  std::string name;
  double period = 0.0;
  double deadline = 0.0;
  int priority = 0;
  std::vector<model::Node> nodes;   ///< wcet + type per node (dense ids).
  std::vector<RawEdge> edges;
};

struct RawTaskSet {
  std::size_t cores = 0;
  std::vector<RawTask> tasks;
};

/// Parse the .taskset format (see model/io.h) without semantic validation:
/// only file-format errors throw (model::ParseError) — syntax, unknown
/// keywords, out-of-range edge endpoints, non-dense node ids. Everything
/// the linter diagnoses (cycles, self-loops, duplicate edges, broken
/// regions, bad timing, duplicate names) parses fine.
RawTaskSet read_raw_task_set(std::istream& is);
RawTaskSet load_raw_task_set(const std::string& path);

/// Lossless down-conversion of an already-validated task set, so validated
/// models can be linted through the same pipeline (semantic rules only —
/// the structural rules pass by construction).
RawTaskSet to_raw(const model::TaskSet& ts);

}  // namespace rtpool::lint
