#include "lint/diagnostics.h"

namespace rtpool::lint {

std::string to_string(Severity severity) {
  switch (severity) {
    case Severity::kError: return "error";
    case Severity::kWarning: return "warning";
    case Severity::kNote: return "note";
  }
  return "unknown";
}

std::size_t LintReport::count(Severity severity) const {
  std::size_t n = 0;
  for (const Diagnostic& d : diagnostics)
    if (d.severity == severity) ++n;
  return n;
}

std::vector<Diagnostic> LintReport::by_rule(const std::string& rule_id) const {
  std::vector<Diagnostic> out;
  for (const Diagnostic& d : diagnostics)
    if (d.rule_id == rule_id) out.push_back(d);
  return out;
}

}  // namespace rtpool::lint
