// TCP front end of the admission service: accept loop + per-connection
// frame pumps, shared by the rtpool_serve daemon and the perf_serve load
// bench (so the bench measures exactly the transport the daemon ships).
//
// Each connection gets one reader thread: it decodes framed request
// documents and submits them to the AdmissionService; responses are framed
// back from the pool workers' completion callbacks under a per-connection
// write lock, so pipelined submissions complete OUT OF ORDER (clients match
// by "id"). A torn connection drops only its unread responses — queued
// submissions still run to completion.
#pragma once

#include <memory>
#include <thread>
#include <vector>

#include "serve/service.h"
#include "util/net.h"
#include "util/thread_annotations.h"

namespace rtpool::serve {

/// See file header. start() spawns the accept loop; stop() (or a service
/// shutdown request) unblocks it, joins every connection and returns.
class TcpServer {
 public:
  /// Binds immediately (port 0 picks an ephemeral port; read it back with
  /// port()). Throws util::NetError on bind failure.
  TcpServer(AdmissionService& service, const std::string& host,
            std::uint16_t port);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  std::uint16_t port() const { return listener_.port(); }

  /// Spawn the accept loop (idempotent). A watcher thread closes the
  /// listener as soon as the service reports shutdown_requested(), so a
  /// protocol-level {"cmd": "shutdown"} also stops the server.
  void start();

  /// Unblock the accept loop, join every connection thread, and return.
  /// Idempotent; also called by the destructor.
  void stop();

  /// Block until the accept loop exits (shutdown command or stop()).
  void wait();

 private:
  void accept_loop();
  static void serve_connection(AdmissionService& service, util::Socket socket);

  AdmissionService& service_;
  util::TcpListener listener_;
  std::thread acceptor_;
  std::thread shutdown_watcher_;
  std::atomic<bool> stopping_{false};

  util::Mutex connections_mutex_;
  std::vector<std::thread> connections_ RTPOOL_GUARDED_BY(connections_mutex_);
};

}  // namespace rtpool::serve
