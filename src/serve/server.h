// TCP front end of the admission service: accept loop + per-connection
// frame pumps, shared by the rtpool_serve daemon and the perf_serve load
// bench (so the bench measures exactly the transport the daemon ships).
//
// Each connection gets one reader thread: it decodes framed request
// documents and submits them to the AdmissionService; responses are framed
// back from the pool workers' completion callbacks under a per-connection
// write lock, so pipelined submissions complete OUT OF ORDER (clients match
// by "id"). A torn connection drops only its unread responses — queued
// submissions still run to completion. Finished connection threads are
// reaped continuously by the housekeeping thread (and on every accept), so
// a long-lived daemon holds handles only for connections that are still
// open, not for every connection it has ever served.
#pragma once

#include <cstdint>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/service.h"
#include "util/net.h"
#include "util/thread_annotations.h"

namespace rtpool::serve {

/// See file header. start() spawns the accept loop; stop() (or a service
/// shutdown request) unblocks it, joins every connection and returns.
class TcpServer {
 public:
  /// Binds immediately (port 0 picks an ephemeral port; read it back with
  /// port()). Throws util::NetError on bind failure.
  TcpServer(AdmissionService& service, const std::string& host,
            std::uint16_t port);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  std::uint16_t port() const { return listener_.port(); }

  /// Spawn the accept loop (idempotent). A watcher thread closes the
  /// listener as soon as the service reports shutdown_requested(), so a
  /// protocol-level {"cmd": "shutdown"} also stops the server.
  void start();

  /// Unblock the accept loop, join every connection thread, and return.
  /// Idempotent; also called by the destructor.
  void stop();

  /// Block until the accept loop exits (shutdown command or stop()).
  void wait();

  /// Connection threads currently tracked (open connections plus any
  /// finished ones not yet reaped). Bounded by the number of simultaneously
  /// open connections once housekeeping runs; exposed for tests/telemetry.
  std::size_t tracked_connections() const;

 private:
  void accept_loop();
  /// Join every connection thread that has announced completion. Called by
  /// the housekeeping thread and before each accept; never blocks long (a
  /// finished thread is at most a few instructions from exiting).
  void reap_finished();
  static void serve_connection(AdmissionService& service, util::Socket socket);

  AdmissionService& service_;
  util::TcpListener listener_;
  std::thread acceptor_;
  std::thread housekeeper_;
  std::atomic<bool> stopping_{false};

  mutable util::Mutex connections_mutex_;
  std::unordered_map<std::uint64_t, std::thread> connections_
      RTPOOL_GUARDED_BY(connections_mutex_);
  std::vector<std::uint64_t> finished_ RTPOOL_GUARDED_BY(connections_mutex_);
  std::uint64_t next_connection_ RTPOOL_GUARDED_BY(connections_mutex_) = 0;
};

}  // namespace rtpool::serve
