#include "serve/server.h"

#include <chrono>
#include <mutex>

#include "util/json.h"

namespace rtpool::serve {

TcpServer::TcpServer(AdmissionService& service, const std::string& host,
                     std::uint16_t port)
    : service_(service), listener_(host, port) {}

TcpServer::~TcpServer() { stop(); }

void TcpServer::start() {
  if (acceptor_.joinable()) return;
  acceptor_ = std::thread([this] { accept_loop(); });
  shutdown_watcher_ = std::thread([this] {
    while (!service_.shutdown_requested() &&
           !stopping_.load(std::memory_order_acquire))
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    listener_.shutdown();
  });
}

void TcpServer::stop() {
  stopping_.store(true, std::memory_order_release);
  listener_.shutdown();
  if (shutdown_watcher_.joinable()) shutdown_watcher_.join();
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<std::thread> connections;
  {
    util::MutexLock lock(connections_mutex_);
    connections.swap(connections_);
  }
  for (std::thread& t : connections) t.join();
}

void TcpServer::wait() {
  if (acceptor_.joinable()) acceptor_.join();
}

void TcpServer::accept_loop() {
  for (;;) {
    util::Socket conn = listener_.accept();
    if (!conn.valid()) break;  // listener shut down
    util::MutexLock lock(connections_mutex_);
    connections_.emplace_back(
        [this, socket = std::move(conn)]() mutable {
          serve_connection(service_, std::move(socket));
        });
  }
}

void TcpServer::serve_connection(AdmissionService& service,
                                 util::Socket socket) {
  auto conn = std::make_shared<util::Socket>(std::move(socket));
  auto write_mutex = std::make_shared<std::mutex>();
  try {
    for (;;) {
      const std::optional<std::string> frame = util::read_frame(*conn);
      if (!frame.has_value()) break;  // clean EOF
      std::string id;
      try {
        const util::JsonValue doc = util::parse_json(*frame);
        if (doc.is_object() && doc.contains("id") && doc.at("id").is_string())
          id = doc.at("id").as_string();
        Request req = decode_request(doc);
        service.submit(std::move(req),
                       [conn, write_mutex](const std::string& response) {
                         std::lock_guard<std::mutex> lock(*write_mutex);
                         try {
                           util::write_frame(*conn, response);
                         } catch (const util::NetError&) {
                           // Peer went away; the verdict is simply unread.
                         }
                       });
      } catch (const std::exception& e) {
        std::lock_guard<std::mutex> lock(*write_mutex);
        util::write_frame(*conn, encode_error(id, e.what()));
      }
      if (service.shutdown_requested()) break;
    }
  } catch (const util::NetError&) {
    // Torn connection: drop it; queued submissions still complete.
  }
}

}  // namespace rtpool::serve
