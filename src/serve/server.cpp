#include "serve/server.h"

#include <chrono>
#include <mutex>

#include "util/json.h"

namespace rtpool::serve {

TcpServer::TcpServer(AdmissionService& service, const std::string& host,
                     std::uint16_t port)
    : service_(service), listener_(host, port) {}

TcpServer::~TcpServer() { stop(); }

void TcpServer::start() {
  if (acceptor_.joinable()) return;
  acceptor_ = std::thread([this] { accept_loop(); });
  // Housekeeping: close the listener once the service reports shutdown, and
  // reap finished connection threads as they exit so a long-lived daemon
  // does not accumulate one joinable handle per connection ever served.
  housekeeper_ = std::thread([this] {
    while (!service_.shutdown_requested() &&
           !stopping_.load(std::memory_order_acquire)) {
      reap_finished();
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    listener_.shutdown();
  });
}

void TcpServer::stop() {
  stopping_.store(true, std::memory_order_release);
  listener_.shutdown();
  if (housekeeper_.joinable()) housekeeper_.join();
  if (acceptor_.joinable()) acceptor_.join();
  std::unordered_map<std::uint64_t, std::thread> connections;
  {
    util::MutexLock lock(connections_mutex_);
    connections.swap(connections_);
    finished_.clear();
  }
  for (auto& [id, t] : connections) t.join();
}

void TcpServer::wait() {
  if (acceptor_.joinable()) acceptor_.join();
}

std::size_t TcpServer::tracked_connections() const {
  util::MutexLock lock(connections_mutex_);
  return connections_.size();
}

void TcpServer::reap_finished() {
  std::vector<std::thread> done;
  {
    util::MutexLock lock(connections_mutex_);
    for (const std::uint64_t id : finished_) {
      auto it = connections_.find(id);
      if (it == connections_.end()) continue;  // stop() already took it
      done.push_back(std::move(it->second));
      connections_.erase(it);
    }
    finished_.clear();
  }
  // Join outside the lock: the thread has already pushed its id, so it is
  // at most a few instructions from returning.
  for (std::thread& t : done) t.join();
}

void TcpServer::accept_loop() {
  for (;;) {
    util::Socket conn = listener_.accept();
    if (!conn.valid()) break;  // listener shut down
    reap_finished();
    util::MutexLock lock(connections_mutex_);
    const std::uint64_t id = next_connection_++;
    connections_.emplace(
        id, std::thread([this, id, socket = std::move(conn)]() mutable {
          serve_connection(service_, std::move(socket));
          // Announce completion; stop() joins us if the reapers are gone.
          util::MutexLock done_lock(connections_mutex_);
          finished_.push_back(id);
        }));
  }
}

void TcpServer::serve_connection(AdmissionService& service,
                                 util::Socket socket) {
  auto conn = std::make_shared<util::Socket>(std::move(socket));
  auto write_mutex = std::make_shared<std::mutex>();
  try {
    for (;;) {
      const std::optional<std::string> frame = util::read_frame(*conn);
      if (!frame.has_value()) break;  // clean EOF
      std::string id;
      try {
        const util::JsonValue doc = util::parse_json(*frame);
        if (doc.is_object() && doc.contains("id") && doc.at("id").is_string())
          id = doc.at("id").as_string();
        Request req = decode_request(doc);
        service.submit(std::move(req),
                       [conn, write_mutex](const std::string& response) {
                         std::lock_guard<std::mutex> lock(*write_mutex);
                         try {
                           util::write_frame(*conn, response);
                         } catch (const util::NetError&) {
                           // Peer went away; the verdict is simply unread.
                         }
                       });
      } catch (const std::exception& e) {
        std::lock_guard<std::mutex> lock(*write_mutex);
        util::write_frame(*conn, encode_error(id, e.what()));
      }
      if (service.shutdown_requested()) break;
    }
  } catch (const util::NetError&) {
    // Torn connection: drop it; queued submissions still complete.
  }
}

}  // namespace rtpool::serve
