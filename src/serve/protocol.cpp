#include "serve/protocol.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

#include "model/dag_task.h"

namespace rtpool::serve {

std::uint64_t fnv1a(std::uint64_t h, double v) {
  // Hash the bit pattern so 0.0 / -0.0 and every NaN payload stay distinct
  // inputs — the analyses compare doubles bitwise through their fixed
  // points, so the fingerprint must too.
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  return fnv1a(h, &bits, sizeof bits);
}

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  return fnv1a(h, &v, sizeof v);
}

namespace {

std::uint64_t hash_task(const model::DagTask& task) {
  std::uint64_t h = kFnvOffset;
  h = fnv1a(h, task.name());
  h = fnv1a(h, task.period());
  h = fnv1a(h, task.deadline());
  h = fnv1a(h, static_cast<std::uint64_t>(
                   static_cast<std::int64_t>(task.priority())));
  h = fnv1a(h, static_cast<std::uint64_t>(task.node_count()));
  for (model::NodeId v = 0; v < task.node_count(); ++v) {
    h = fnv1a(h, task.wcet(v));
    h = fnv1a(h, static_cast<std::uint64_t>(task.type(v)));
    for (const model::NodeId succ : task.dag().successors(v))
      h = fnv1a(h, static_cast<std::uint64_t>(succ));
    h = fnv1a(h, std::uint64_t{0xffffffffffffffffull});  // adjacency sentinel
  }
  return h;
}

std::size_t require_count(const util::JsonValue& v, const char* field) {
  if (!v.is_number())
    throw ProtocolError(std::string("field '") + field + "' must be a number");
  const double d = v.as_number();
  if (!(d >= 0) || d != std::floor(d) || d > 1e9)
    throw ProtocolError(std::string("field '") + field +
                        "' must be a non-negative integer");
  return static_cast<std::size_t>(d);
}

}  // namespace

TaskSetFingerprint fingerprint(const model::TaskSet& ts) {
  TaskSetFingerprint fp;
  fp.task.reserve(ts.size());
  std::uint64_t set_h = kFnvOffset;
  set_h = fnv1a(set_h, static_cast<std::uint64_t>(ts.core_count()));
  for (const model::DagTask& task : ts.tasks()) {
    fp.task.push_back(hash_task(task));
    set_h = fnv1a(set_h, fp.task.back());
  }
  fp.set = set_h;

  std::vector<const std::string*> names;
  names.reserve(ts.size());
  for (const model::DagTask& task : ts.tasks()) names.push_back(&task.name());
  std::sort(names.begin(), names.end(),
            [](const std::string* a, const std::string* b) { return *a < *b; });
  std::uint64_t fam_h = kFnvOffset;
  fam_h = fnv1a(fam_h, static_cast<std::uint64_t>(ts.core_count()));
  for (const std::string* n : names) {
    fam_h = fnv1a(fam_h, *n);
    fam_h = fnv1a(fam_h, std::uint64_t{0});  // name separator
  }
  fp.family = fam_h;
  return fp;
}

Request decode_request(const util::JsonValue& doc) {
  if (!doc.is_object())
    throw ProtocolError("request must be a JSON object");
  Request req;
  if (doc.contains("id")) {
    const util::JsonValue& id = doc.at("id");
    if (!id.is_string()) throw ProtocolError("field 'id' must be a string");
    req.id = id.as_string();
  }

  if (doc.contains("cmd")) {
    const util::JsonValue& cmd = doc.at("cmd");
    if (!cmd.is_string()) throw ProtocolError("field 'cmd' must be a string");
    const std::string& name = cmd.as_string();
    if (name == "stats") {
      req.kind = Request::Kind::kStats;
    } else if (name == "shutdown") {
      req.kind = Request::Kind::kShutdown;
    } else if (name == "reload") {
      req.kind = Request::Kind::kReload;
      if (doc.contains("analyzer")) {
        const util::JsonValue& a = doc.at("analyzer");
        if (!a.is_string())
          throw ProtocolError("field 'analyzer' must be a string");
        req.reload_analyzer = a.as_string();
      }
      if (doc.contains("workers"))
        req.reload_workers = require_count(doc.at("workers"), "workers");
      if (doc.contains("shards"))
        req.reload_shards = require_count(doc.at("shards"), "shards");
      if (doc.contains("batch"))
        req.reload_batch = require_count(doc.at("batch"), "batch");
      if (doc.contains("cache"))
        req.reload_cache = require_count(doc.at("cache"), "cache");
      if (req.reload_workers && *req.reload_workers == 0)
        throw ProtocolError("'workers' must be >= 1");
      if (req.reload_batch && *req.reload_batch == 0)
        throw ProtocolError("'batch' must be >= 1");
    } else {
      throw ProtocolError("unknown cmd '" + name + "'");
    }
    return req;
  }

  req.kind = Request::Kind::kSubmit;
  if (!doc.contains("taskset"))
    throw ProtocolError("submission is missing the 'taskset' field");
  const util::JsonValue& ts = doc.at("taskset");
  if (!ts.is_string())
    throw ProtocolError("field 'taskset' must be a string (.taskset text)");
  req.taskset_text = ts.as_string();

  if (doc.contains("analyzer")) {
    const util::JsonValue& a = doc.at("analyzer");
    if (!a.is_string()) throw ProtocolError("field 'analyzer' must be a string");
    req.analyzer = a.as_string();
  }
  if (doc.contains("wcet_scale")) {
    const util::JsonValue& s = doc.at("wcet_scale");
    if (!s.is_number())
      throw ProtocolError("field 'wcet_scale' must be a number");
    req.wcet_scale = s.as_number();
    if (!(req.wcet_scale > 0) || !std::isfinite(req.wcet_scale))
      throw ProtocolError("'wcet_scale' must be finite and > 0");
  }
  if (doc.contains("certify")) {
    const util::JsonValue& c = doc.at("certify");
    if (!c.is_bool()) throw ProtocolError("field 'certify' must be a boolean");
    req.certify = c.as_bool();
  }
  return req;
}

std::string encode_error(const std::string& id, const std::string& error) {
  std::ostringstream os;
  util::JsonWriter w(os);
  w.begin_object();
  w.kv("tool", "rtpool-serve");
  if (!id.empty()) w.kv("id", id);
  w.kv("ok", false);
  w.kv("error", error);
  w.end_object();
  return os.str();
}

std::string extract_member(const std::string& doc, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  // Scan outside strings only, at object depth 1.
  int depth = 0;
  bool in_string = false, escape = false;
  for (std::size_t i = 0; i < doc.size(); ++i) {
    const char c = doc[i];
    if (in_string) {
      if (escape) escape = false;
      else if (c == '\\') escape = true;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') {
      if (depth == 1 && doc.compare(i, needle.size(), needle) == 0) {
        const std::size_t start = i + needle.size();
        // Value: either a container (brace-match) or a scalar/string.
        int vdepth = 0;
        bool vstr = false, vesc = false;
        for (std::size_t j = start; j < doc.size(); ++j) {
          const char v = doc[j];
          if (vstr) {
            if (vesc) vesc = false;
            else if (v == '\\') vesc = true;
            else if (v == '"') {
              vstr = false;
              if (vdepth == 0) return doc.substr(start, j + 1 - start);
            }
            continue;
          }
          if (v == '"') { vstr = true; continue; }
          if (v == '{' || v == '[') ++vdepth;
          else if (v == '}' || v == ']') {
            if (vdepth == 0) return doc.substr(start, j - start);  // scalar
            if (--vdepth == 0) return doc.substr(start, j + 1 - start);
          } else if (vdepth == 0 && v == ',') {
            return doc.substr(start, j - start);  // scalar value
          }
        }
        return doc.substr(start);
      }
      in_string = true;
      continue;
    }
    if (c == '{' || c == '[') ++depth;
    else if (c == '}' || c == ']') --depth;
  }
  return "";
}

}  // namespace rtpool::serve
