#include "serve/service.h"

#include <sstream>
#include <stdexcept>
#include <utility>

#include "analysis/cert_check.h"
#include "lint/render.h"
#include "model/io.h"

namespace rtpool::serve {

namespace {

void validate_config(const ServiceConfig& config) {
  if (config.workers == 0)
    throw std::invalid_argument("AdmissionService: workers must be >= 1");
  if (config.shards == 0)
    throw std::invalid_argument("AdmissionService: shards must be >= 1");
  if (config.batch == 0)
    throw std::invalid_argument("AdmissionService: batch must be >= 1");
  analysis::get_analyzer(config.analyzer);  // throws listing known names
}

std::uint64_t memo_identity(const analysis::Analyzer& analyzer, double scale,
                            bool certify) {
  std::uint64_t h = kFnvOffset;
  h = fnv1a(h, std::string(analyzer.name()));
  h = fnv1a(h, scale);
  h = fnv1a(h, std::uint64_t{certify ? 1u : 0u});
  return h;
}

// The memo's equality witness: write_task_set emits every field the
// analyses read at round-trip precision (setprecision(17)), so two task
// sets serialize identically iff they are content-equal.
std::string canonical_text(const model::TaskSet& ts) {
  std::ostringstream os;
  model::write_task_set(os, ts);
  return os.str();
}

}  // namespace

std::string encode_stats(const std::string& id, const ServiceStats& stats,
                         const ServiceConfig& config, std::uint64_t version,
                         std::size_t pool_workers) {
  std::ostringstream os;
  util::JsonWriter w(os);
  w.begin_object();
  w.kv("tool", "rtpool-serve");
  if (!id.empty()) w.kv("id", id);
  w.kv("ok", true);
  w.key("stats");
  w.begin_object();
  w.kv("received", stats.received);
  w.kv("completed", stats.completed);
  w.kv("errors", stats.errors);
  w.kv("memo_hits", stats.memo_hits);
  w.kv("fast_hits", stats.fast_hits);
  w.kv("incremental", stats.incremental);
  w.kv("cold", stats.cold);
  w.kv("incremental_task_hits", stats.incremental_task_hits);
  w.kv("batches", stats.batches);
  w.kv("max_batch", stats.max_batch);
  w.kv("reloads", stats.reloads);
  w.kv("certified", stats.certified);
  w.kv("cert_failures", stats.cert_failures);
  w.end_object();
  w.key("config");
  w.begin_object();
  w.kv("analyzer", config.analyzer);
  w.kv("workers", config.workers);
  w.kv("pool_workers", pool_workers);
  w.kv("shards", config.shards);
  w.kv("batch", config.batch);
  w.kv("cache", config.cache);
  w.kv("version", version);
  w.end_object();
  w.end_object();
  return os.str();
}

AdmissionService::AdmissionService(ServiceConfig config)
    : base_config_((validate_config(config), config)),
      pool_(config.workers, exec::ThreadPool::QueueMode::kPerWorker,
            /*steal=*/false),
      controller_(
          [&] {
            exec::ModeChangeConfig mc;
            mc.analyzer = config.analyzer;
            return mc;
          }(),
          &pool_) {
  util::MutexLock lock(epoch_mutex_);
  epoch_ = make_epoch(std::move(config), /*version=*/1);
}

AdmissionService::~AdmissionService() {
  request_shutdown();
}

std::shared_ptr<AdmissionService::Epoch> AdmissionService::make_epoch(
    ServiceConfig config, std::uint64_t version) {
  auto epoch = std::make_shared<Epoch>();
  epoch->default_analyzer = &analysis::get_analyzer(config.analyzer);
  epoch->version = version;
  epoch->shards.reserve(config.shards);
  for (std::size_t s = 0; s < config.shards; ++s) {
    auto shard = std::make_shared<Shard>();
    shard->memo.set_capacity(config.cache);
    shard->families.set_capacity(std::min(config.cache, kMaxFamilies));
    epoch->shards.push_back(std::move(shard));
  }
  epoch->config = std::move(config);
  return epoch;
}

std::shared_ptr<AdmissionService::Epoch> AdmissionService::current_epoch()
    const {
  util::MutexLock lock(epoch_mutex_);
  return epoch_;
}

void AdmissionService::deliver_error(const Callback& done,
                                     const std::string& id,
                                     const std::string& error) {
  errors_.fetch_add(1, std::memory_order_relaxed);
  done(encode_error(id, error));
}

std::string AdmissionService::render_response(const std::string& id,
                                              const std::string& analyzer,
                                              const char* path,
                                              std::uint64_t version,
                                              const MemoEntry& entry,
                                              bool certify) {
  std::ostringstream os;
  util::JsonWriter w(os);
  w.begin_object();
  w.kv("tool", "rtpool-serve");
  if (!id.empty()) w.kv("id", id);
  w.kv("ok", true);
  w.kv("schedulable", entry.schedulable);
  w.kv("analyzer", analyzer);
  w.kv("path", path);
  w.kv("config_version", version);
  w.key("report");
  w.raw_value(entry.report_json);
  if (certify) {
    w.key("certificate");
    w.raw_value(entry.certificate_json);
    w.kv("certificate_ok", entry.certificate_ok);
    w.kv("claims_checked", entry.claims_checked);
  }
  w.end_object();
  return os.str();
}

std::uint64_t AdmissionService::fast_key(const std::string& text,
                                         const std::string& analyzer,
                                         double scale, bool certify) {
  std::uint64_t h = kFnvOffset;
  h = fnv1a(h, analyzer);
  h = fnv1a(h, scale);
  h = fnv1a(h, std::uint64_t{certify ? 1u : 0u});
  h = fnv1a(h, text);
  return h;
}

bool AdmissionService::try_fast_path(const Request& request,
                                     const std::string& analyzer,
                                     std::uint64_t version,
                                     std::size_t capacity,
                                     const Callback& done) {
  const std::uint64_t key = fast_key(request.taskset_text, analyzer,
                                     request.wcet_scale, request.certify);
  std::string response;
  {
    util::MutexLock lock(fast_mutex_);
    fast_memo_.set_capacity(capacity);
    const FastEntry* hit = fast_memo_.find(key);
    // Byte-compare the full identity: a hash collision is a miss, never a
    // wrong verdict.
    if (hit == nullptr || hit->taskset_text != request.taskset_text ||
        hit->analyzer != analyzer || hit->wcet_scale != request.wcet_scale ||
        hit->certify != request.certify)
      return false;
    response = render_response(request.id, analyzer, "memo", version,
                               hit->verdict, request.certify);
  }
  received_.fetch_add(1, std::memory_order_relaxed);
  memo_hits_.fetch_add(1, std::memory_order_relaxed);
  fast_hits_.fetch_add(1, std::memory_order_relaxed);
  completed_.fetch_add(1, std::memory_order_relaxed);
  done(response);
  return true;
}

void AdmissionService::remember_fast(const Request& request,
                                     const std::string& analyzer,
                                     const MemoEntry& entry,
                                     std::size_t capacity) {
  FastEntry fast;
  fast.taskset_text = request.taskset_text;
  fast.analyzer = analyzer;
  fast.wcet_scale = request.wcet_scale;
  fast.certify = request.certify;
  fast.verdict = entry;
  // Key BEFORE the move: function arguments are indeterminately sequenced,
  // so fast_key(fast.taskset_text, ...) inside the insert() call could read
  // an already-moved-from string.
  const std::uint64_t key =
      fast_key(fast.taskset_text, analyzer, fast.wcet_scale, fast.certify);
  util::MutexLock lock(fast_mutex_);
  fast_memo_.set_capacity(capacity);
  fast_memo_.insert(key, std::move(fast));
}

void AdmissionService::submit(Request request, Callback done) {
  switch (request.kind) {
    case Request::Kind::kStats: {
      done(encode_stats(request.id, stats(), config(), config_version(),
                        pool_.worker_count()));
      return;
    }
    case Request::Kind::kShutdown: {
      // Respond first: request_shutdown() drains synchronously and the
      // transport wants the acknowledgment before the daemon exits.
      std::ostringstream os;
      util::JsonWriter w(os);
      w.begin_object();
      w.kv("tool", "rtpool-serve");
      if (!request.id.empty()) w.kv("id", request.id);
      w.kv("ok", true);
      w.kv("shutdown", true);
      w.end_object();
      done(os.str());
      request_shutdown();
      return;
    }
    case Request::Kind::kReload: {
      try {
        const ServiceConfig committed =
            reload(request.reload_analyzer, request.reload_workers,
                   request.reload_shards, request.reload_batch,
                   request.reload_cache);
        done(encode_stats(request.id, stats(), committed, config_version(),
                          pool_.worker_count()));
      } catch (const std::exception& e) {
        deliver_error(done, request.id, e.what());
      }
      return;
    }
    case Request::Kind::kSubmit:
      break;
  }

  if (!accepting_.load(std::memory_order_acquire)) {
    deliver_error(done, request.id, "service is shutting down");
    return;
  }

  const std::shared_ptr<Epoch> epoch = current_epoch();
  const std::string& name = request.analyzer.empty()
                                ? epoch->config.analyzer
                                : request.analyzer;

  // Fast path: a byte-identical resubmission is answered right here, before
  // the .taskset is parsed — repeat verdicts are dominated by document
  // parsing, not analysis (see file header of service.h).
  if (epoch->config.cache > 0 &&
      try_fast_path(request, name, epoch->version, epoch->config.cache, done))
    return;

  // Decode + fingerprint on the submitting thread so a malformed .taskset
  // never reaches (or stalls) a dispatch worker.
  PendingRequest pending;
  pending.done = std::move(done);
  try {
    std::istringstream is(request.taskset_text);
    pending.ts = std::make_unique<model::TaskSet>(model::read_task_set(is));
  } catch (const std::exception& e) {
    deliver_error(pending.done, request.id,
                  std::string("invalid taskset: ") + e.what());
    return;
  }

  pending.analyzer = analysis::find_analyzer(name);
  if (pending.analyzer == nullptr) {
    deliver_error(pending.done, request.id, "unknown analyzer '" + name + "'");
    return;
  }
  pending.fp = fingerprint(*pending.ts);
  pending.request = std::move(request);

  {
    util::MutexLock lock(dispatch_mutex_);
    ++pending_total_;
  }
  received_.fetch_add(1, std::memory_order_relaxed);
  enqueue(std::move(pending));
}

void AdmissionService::enqueue(PendingRequest pending) {
  // Push, then re-check the epoch. reload() installs the new epoch BEFORE
  // re-routing the old queues, so exactly one of two things is true of a
  // push that races a shard-replacing reload: (a) the re-check still sees
  // the old epoch — then the push is ordered before the swap and the
  // reload's re-route pass is guaranteed to drain it into the new shards;
  // or (b) the re-check sees the new epoch — then the re-route pass may
  // already have run, so this thread drains the shard it pushed into and
  // retries against the new epoch. Without the re-check, a late push could
  // land in a retired shard's queue that nothing ever drains again
  // (schedule_dispatch returns early while dispatching is paused, and the
  // reload epilogue only schedules the new epoch's shards), stranding the
  // request and hanging wait_idle()/shutdown.
  std::shared_ptr<Epoch> epoch = current_epoch();
  std::vector<PendingRequest> batch;
  batch.push_back(std::move(pending));
  for (;;) {
    std::vector<std::size_t> touched;
    touched.reserve(batch.size());
    for (PendingRequest& p : batch) {
      const std::size_t index =
          static_cast<std::size_t>(p.fp.family % epoch->config.shards);
      Shard& shard = *epoch->shards[index];
      util::MutexLock lock(shard.queue_mutex);
      shard.queue.push_back(std::move(p));
      touched.push_back(index);
    }
    batch.clear();
    const std::shared_ptr<Epoch> current = current_epoch();
    if (current == epoch || current->shards == epoch->shards) {
      // Same epoch, or a compatible reload that shares the shard objects:
      // the queues we pushed into are live (a mid-flight reload's epilogue
      // schedules these same shards, covering the paused early-return).
      for (std::size_t index : touched) schedule_dispatch(epoch, index);
      return;
    }
    // The shards we pushed into were retired. Drain them ourselves and
    // retry: every entry is popped exactly once (by the reload's re-route
    // pass, an old-epoch dispatch, or here), so nothing is lost or run
    // twice; entries pushed by other racing submitters are safe to carry
    // along — their own re-check covers at most the same work.
    for (std::size_t index : touched) {
      Shard& shard = *epoch->shards[index];
      util::MutexLock lock(shard.queue_mutex);
      while (!shard.queue.empty()) {
        batch.push_back(std::move(shard.queue.front()));
        shard.queue.pop_front();
      }
    }
    epoch = current;
    if (batch.empty()) return;  // the re-route pass beat us to every entry
  }
}

void AdmissionService::schedule_dispatch(const std::shared_ptr<Epoch>& epoch,
                                         std::size_t shard_index) {
  Shard& shard = *epoch->shards[shard_index];
  {
    util::MutexLock lock(dispatch_mutex_);
    if (paused_) return;  // the reload epilogue reschedules
    util::MutexLock qlock(shard.queue_mutex);
    if (shard.queue.empty() || shard.dispatch_scheduled) return;
    shard.dispatch_scheduled = true;
    ++active_dispatches_;
  }
  // Pin the shard to one worker slot; route_target() redirects to a live
  // worker if that slot retired after a resize.
  const std::size_t workers = std::max<std::size_t>(pool_.worker_count(), 1);
  pool_.submit([this, epoch, shard_index] { run_dispatch(epoch, shard_index); },
               shard_index % workers);
}

void AdmissionService::run_dispatch(std::shared_ptr<Epoch> epoch,
                                    std::size_t shard_index) {
  Shard& shard = *epoch->shards[shard_index];

  // Drain up to `batch` queued submissions in one closure: one worker
  // wakeup, one cache working set, contiguous context rebinds.
  std::vector<PendingRequest> taken;
  {
    util::MutexLock lock(shard.queue_mutex);
    const std::size_t n = std::min(shard.queue.size(), epoch->config.batch);
    taken.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      taken.push_back(std::move(shard.queue.front()));
      shard.queue.pop_front();
    }
  }

  // Per-request exception guard: a throwing analyzer, renderer or delivery
  // callback must cost one error response, not the worker — an escaping
  // exception would leave dispatch_scheduled set and the active/pending
  // counters undrained, wedging the shard and hanging wait_idle()/reload()/
  // shutdown. process_one clears pending.done once delivery succeeded, so
  // the error path never double-invokes a callback.
  for (PendingRequest& pending : taken) {
    try {
      process_one(*epoch, shard, pending);
    } catch (const std::exception& e) {
      if (pending.done) {
        try {
          deliver_error(pending.done, pending.request.id,
                        std::string("analysis failed: ") + e.what());
        } catch (...) {
          // The delivery callback itself failed; the transport owns the
          // peer — nothing further to do.
        }
      }
    } catch (...) {
      if (pending.done) {
        try {
          deliver_error(pending.done, pending.request.id, "analysis failed");
        } catch (...) {
        }
      }
    }
  }

  batches_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t prev = max_batch_.load(std::memory_order_relaxed);
  while (prev < taken.size() &&
         !max_batch_.compare_exchange_weak(prev, taken.size(),
                                           std::memory_order_relaxed)) {
  }

  bool resubmit = false;
  {
    util::MutexLock lock(dispatch_mutex_);
    pending_total_ -= taken.size();
    util::MutexLock qlock(shard.queue_mutex);
    if (!shard.queue.empty() && !paused_) {
      resubmit = true;  // keep dispatch_scheduled + active_dispatches_
    } else {
      shard.dispatch_scheduled = false;
      --active_dispatches_;
    }
    dispatch_cv_.notify_all();
  }
  if (resubmit) {
    const std::size_t workers = std::max<std::size_t>(pool_.worker_count(), 1);
    pool_.submit(
        [this, epoch, shard_index] { run_dispatch(epoch, shard_index); },
        shard_index % workers);
  }
}

void AdmissionService::process_one(const Epoch& epoch, Shard& shard,
                                   PendingRequest& pending) {
  const Request& req = pending.request;
  const model::TaskSet& ts = *pending.ts;
  const analysis::Analyzer& analyzer = *pending.analyzer;
  const bool caches_on = epoch.config.cache > 0;

  const MemoKey key{pending.fp.set,
                    memo_identity(analyzer, req.wcet_scale, req.certify)};
  const char* path = "cold";
  MemoEntry fresh;
  const MemoEntry* entry = nullptr;

  if (caches_on) {
    if (const MemoEntry* hit = shard.memo.find(key)) {
      // Advisory fingerprints: FNV-1a 64 is not collision-resistant, so a
      // hit is re-verified against the donor's FULL identity — the
      // analyzer/options triple plus a byte-compare of both systems'
      // canonical re-serializations (cheap counts prefilter first) — so a
      // collision, even a crafted one, degrades to a miss, never to a
      // wrong verdict.
      if (hit->analyzer == analyzer.name() &&
          hit->wcet_scale == req.wcet_scale && hit->certify == req.certify &&
          hit->task_count == ts.size() && hit->core_count == ts.core_count() &&
          hit->canonical == canonical_text(ts)) {
        entry = hit;
        path = "memo";
        memo_hits_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  if (entry == nullptr) {
    analysis::AnalyzerOptions opts;
    opts.wcet_scale = req.wcet_scale;
    opts.diagnostics = req.certify;

    // Bind the shard's arena-backed scratch context to this submission.
    if (shard.scratch == nullptr)
      shard.scratch = std::make_unique<analysis::RtaContext>(ts);
    else
      shard.scratch->reset(ts);
    analysis::RtaContext& ctx = *shard.scratch;
    ctx.set_snapshots(true);

    // A mutated resubmission of a cached family arms incremental
    // re-analysis: per-task fixed points with provably unchanged inputs are
    // copied from the donor instead of re-run (bit-identical to cold — see
    // rta_context.h).
    FamilyEntry* family =
        caches_on ? shard.families.find(pending.fp.family) : nullptr;
    if (family != nullptr && family->analyzer == analyzer.name() &&
        family->wcet_scale == req.wcet_scale && family->ctx != nullptr) {
      std::vector<std::optional<std::size_t>> task_map(ts.size());
      std::vector<char> dirty(ts.size(), 0);
      for (std::size_t i = 0; i < ts.size(); ++i) {
        for (std::size_t j = 0; j < family->ts->size(); ++j) {
          if (ts.task(i).name() == family->ts->task(j).name()) {
            task_map[i] = j;
            dirty[i] = pending.fp.task[i] != family->fp.task[j] ? 1 : 0;
            break;
          }
        }
      }
      if (ctx.begin_incremental(*family->ctx, task_map, dirty) > 0) {
        path = "incremental";
        incremental_.fetch_add(1, std::memory_order_relaxed);
      }
    }

    const analysis::Report report = analyzer.analyze(ts, ctx, opts);
    incremental_task_hits_.fetch_add(ctx.incremental_hits(),
                                     std::memory_order_relaxed);
    if (path[0] == 'c') cold_.fetch_add(1, std::memory_order_relaxed);

    fresh.task_count = ts.size();
    fresh.core_count = ts.core_count();
    fresh.canonical = canonical_text(ts);
    fresh.analyzer = std::string(analyzer.name());
    fresh.wcet_scale = req.wcet_scale;
    fresh.certify = req.certify;
    fresh.schedulable = report.schedulable;
    fresh.report_json = lint::render_json(report, ts);
    if (req.certify) {
      if (report.certificate != nullptr) {
        fresh.certificate_json = lint::render_json(*report.certificate, ts);
        const analysis::cert::CheckResult check =
            analysis::cert::check_certificate(ts, *report.certificate);
        fresh.certificate_ok = check.ok();
        fresh.claims_checked = check.claims_checked;
        certified_.fetch_add(1, std::memory_order_relaxed);
        if (!check.ok())
          cert_failures_.fetch_add(1, std::memory_order_relaxed);
      } else {
        fresh.certificate_json = "null";
        fresh.certificate_ok = false;
      }
    }

    if (caches_on) {
      // This run's context (snapshots recorded) becomes the family's donor;
      // the donor's old context becomes the next scratch, so arenas recycle
      // instead of reallocating.
      if (family == nullptr) {
        family = &shard.families.insert(pending.fp.family, FamilyEntry{});
      }
      family->fp = pending.fp;
      family->ts = std::move(pending.ts);
      family->analyzer = std::string(analyzer.name());
      family->wcet_scale = req.wcet_scale;
      std::swap(family->ctx, shard.scratch);
      entry = &shard.memo.insert(key, std::move(fresh));
    } else {
      entry = &fresh;
    }
  }

  // Whatever path produced the verdict, remember it for the pre-parse fast
  // path (a later byte-identical resubmission skips the parse entirely).
  if (caches_on)
    remember_fast(req, std::string(analyzer.name()), *entry,
                  epoch.config.cache);

  const std::string response =
      render_response(req.id, std::string(analyzer.name()), path,
                      epoch.version, *entry, req.certify);
  completed_.fetch_add(1, std::memory_order_relaxed);
  // Move the callback out before invoking it: if it throws, run_dispatch's
  // guard sees pending.done empty and does not invoke it a second time.
  Callback done = std::move(pending.done);
  pending.done = nullptr;
  done(response);
}

ServiceConfig AdmissionService::reload(
    const std::optional<std::string>& analyzer,
    std::optional<std::size_t> workers, std::optional<std::size_t> shards,
    std::optional<std::size_t> batch, std::optional<std::size_t> cache) {
  util::MutexLock reload_lock(reload_mutex_);

  const std::shared_ptr<Epoch> old_epoch = current_epoch();
  ServiceConfig next = old_epoch->config;
  if (analyzer.has_value()) next.analyzer = *analyzer;
  if (workers.has_value()) next.workers = *workers;
  if (shards.has_value()) next.shards = *shards;
  if (batch.has_value()) next.batch = *batch;
  if (cache.has_value()) next.cache = *cache;
  validate_config(next);  // throws before anything is touched

  // Pause dispatch scheduling and wait for in-flight dispatch closures to
  // finish their current batches. Queued submissions stay queued — they are
  // re-routed to the new epoch's shards below, so nothing is dropped.
  {
    util::MutexLock lock(dispatch_mutex_);
    paused_ = true;
    while (active_dispatches_ > 0) dispatch_cv_.wait(dispatch_mutex_);
  }

  const std::uint64_t version = old_epoch->version + 1;
  std::shared_ptr<Epoch> fresh = make_epoch(next, version);

  // Carry the warm state across compatible reloads: same shard count and
  // same default analyzer means the routing and the donors stay valid.
  const bool keep_shards =
      next.shards == old_epoch->config.shards &&
      next.analyzer == old_epoch->config.analyzer &&
      next.cache == old_epoch->config.cache;
  if (keep_shards)
    fresh->shards = old_epoch->shards;  // shared: warm caches survive

  // Install the new epoch BEFORE re-routing the old queues. enqueue()
  // re-checks the epoch after every push, so this order makes the race
  // with concurrent submissions safe: a push whose re-check still saw the
  // old epoch is ordered before this swap and therefore before the
  // re-route pass below (which then drains it); a push whose re-check sees
  // the new epoch migrates its shard's entries itself.
  {
    util::MutexLock lock(epoch_mutex_);
    epoch_ = fresh;
  }
  config_version_.store(version, std::memory_order_release);

  if (!keep_shards) {
    // Re-route every queued submission into the new epoch's shards (no
    // dispatches are running — paused with active_dispatches_ == 0 — so
    // only racing submits touch the old queues, and those re-check).
    for (auto& old_shard : old_epoch->shards) {
      util::MutexLock qlock(old_shard->queue_mutex);
      old_shard->dispatch_scheduled = false;
      while (!old_shard->queue.empty()) {
        PendingRequest pending = std::move(old_shard->queue.front());
        old_shard->queue.pop_front();
        const std::size_t target =
            static_cast<std::size_t>(pending.fp.family % next.shards);
        Shard& dst = *fresh->shards[target];
        util::MutexLock dlock(dst.queue_mutex);
        dst.queue.push_back(std::move(pending));
      }
    }
  }

  // Worker delta through the guarded mode-change path: analyze, drain,
  // commit (add_workers / retire_workers), log the transition.
  if (next.workers != pool_.worker_count())
    controller_.resize(next.workers);

  reloads_.fetch_add(1, std::memory_order_relaxed);
  {
    util::MutexLock lock(dispatch_mutex_);
    paused_ = false;
  }
  for (std::size_t s = 0; s < fresh->shards.size(); ++s)
    schedule_dispatch(fresh, s);
  return next;
}

void AdmissionService::request_shutdown() {
  util::MutexLock reload_lock(reload_mutex_);
  accepting_.store(false, std::memory_order_release);
  // Kick any shard whose queue still has work (e.g. submissions that raced
  // the flag), then wait for full drain.
  const std::shared_ptr<Epoch> epoch = current_epoch();
  for (std::size_t s = 0; s < epoch->shards.size(); ++s)
    schedule_dispatch(epoch, s);
  wait_idle();
}

void AdmissionService::wait_idle() {
  util::MutexLock lock(dispatch_mutex_);
  while (pending_total_ > 0 || active_dispatches_ > 0)
    dispatch_cv_.wait(dispatch_mutex_);
}

ServiceStats AdmissionService::stats() const {
  ServiceStats s;
  s.received = received_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  s.memo_hits = memo_hits_.load(std::memory_order_relaxed);
  s.fast_hits = fast_hits_.load(std::memory_order_relaxed);
  s.incremental = incremental_.load(std::memory_order_relaxed);
  s.cold = cold_.load(std::memory_order_relaxed);
  s.incremental_task_hits =
      incremental_task_hits_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.max_batch = max_batch_.load(std::memory_order_relaxed);
  s.reloads = reloads_.load(std::memory_order_relaxed);
  s.certified = certified_.load(std::memory_order_relaxed);
  s.cert_failures = cert_failures_.load(std::memory_order_relaxed);
  return s;
}

ServiceConfig AdmissionService::config() const {
  return current_epoch()->config;
}

}  // namespace rtpool::serve
