// Wire protocol of the rtpool-serve admission daemon.
//
// Every request and response is ONE JSON document. Over TCP each document
// travels in a length-prefixed frame (util/net.h); on stdin the documents
// are delimited by the JSON grammar itself (util::JsonStreamParser), so
// plain `printf '{...}' | rtpool_serve --stdin` sessions work.
//
// Submission:
//
//   {"id": "r17",                     // echoed back verbatim (optional)
//    "analyzer": "global-limited",    // optional; service default otherwise
//    "wcet_scale": 1.0,               // optional; must be > 0
//    "certify": true,                 // optional; embed + check certificate
//    "taskset": "taskset cores=8\ntask ...\n"}   // required .taskset text
//
// Control:
//
//   {"cmd": "stats"}
//   {"cmd": "shutdown"}
//   {"cmd": "reload", "analyzer"?: ..., "workers"?: N, "shards"?: N,
//                     "batch"?: N, "cache"?: N}
//
// Verdict response (the "report" member is byte-identical to
// `rtpool_cli --format=json --analyzer=<a>` on the same .taskset — the
// service renders through the same lint::render_json):
//
//   {"tool": "rtpool-serve", "id": "r17", "ok": true,
//    "schedulable": true, "analyzer": "global-limited",
//    "path": "cold" | "memo" | "incremental",
//    "config_version": 1,
//    "report": {...},                      // lint::render_json(Report, ts)
//    "certificate": {...},                 // when certify (lint::render_json)
//    "certificate_ok": true,               // independent checker verdict
//    "claims_checked": 34}
//
// Errors: {"tool": "rtpool-serve", "id": ..., "ok": false, "error": "..."}.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "model/task_set.h"
#include "util/json.h"

namespace rtpool::serve {

/// Thrown on a structurally invalid request document. The server answers
/// with an error response instead of dropping the connection.
class ProtocolError : public std::runtime_error {
 public:
  explicit ProtocolError(const std::string& what) : std::runtime_error(what) {}
};

/// One decoded request document.
struct Request {
  enum class Kind { kSubmit, kStats, kReload, kShutdown };

  Kind kind = Kind::kSubmit;
  std::string id;  ///< Echoed into the response ("" allowed).

  // kSubmit:
  std::string analyzer;      ///< "" = use the service's current default.
  double wcet_scale = 1.0;   ///< Must be > 0.
  bool certify = false;      ///< Embed + independently check the certificate.
  std::string taskset_text;  ///< .taskset document (model::read_task_set).

  // kReload overrides (absent member = keep the current value):
  std::optional<std::string> reload_analyzer;
  std::optional<std::size_t> reload_workers;
  std::optional<std::size_t> reload_shards;
  std::optional<std::size_t> reload_batch;
  std::optional<std::size_t> reload_cache;
};

/// Decode a parsed JSON document into a Request. Throws ProtocolError on a
/// non-object root, an unknown "cmd", missing "taskset", or out-of-domain
/// field values.
Request decode_request(const util::JsonValue& doc);

/// Content fingerprints of a task set (FNV-1a 64-bit over the structural
/// fields — graph shape, WCET bit patterns, types, period/deadline/priority).
///
/// `set` keys the verdict memo (two sets with equal `set` under the same
/// analyzer/options produce byte-identical reports — analyses are pure).
/// `family` groups "the same system under mutation": core count plus the
/// sorted task-name multiset. Mutated resubmissions keep their family, so
/// the family indexes incremental donors and routes a system to a stable
/// shard. `task[i]` is the content hash of task i, used to compute the
/// dirty set for RtaContext::begin_incremental.
///
/// Hashes are advisory: every hit is re-verified against a cheap structural
/// signature before any verdict is reused (see service.cpp), so a 64-bit
/// collision can cost a cache miss, never a wrong answer.
struct TaskSetFingerprint {
  std::uint64_t set = 0;
  std::uint64_t family = 0;
  std::vector<std::uint64_t> task;
};

TaskSetFingerprint fingerprint(const model::TaskSet& ts);

/// FNV-1a helpers exposed for the service's composite cache keys.
inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

inline std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

inline std::uint64_t fnv1a(std::uint64_t h, const std::string& s) {
  return fnv1a(h, s.data(), s.size());
}

std::uint64_t fnv1a(std::uint64_t h, double v);
std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v);

/// Render the error response document.
std::string encode_error(const std::string& id, const std::string& error);

/// Extract the raw bytes of a top-level `"key": <value>` member from a
/// compact JSON object (string/escape-aware brace matching), "" when
/// absent. Lets clients and the bench diff the embedded "report" exactly
/// as the service rendered it, never re-serialized.
std::string extract_member(const std::string& doc, const std::string& key);

}  // namespace rtpool::serve
