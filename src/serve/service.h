// The admission-service core behind rtpool-serve: sharded warm contexts,
// batched dispatch, verdict memoization, incremental re-analysis, and hot
// reconfiguration that never drops an in-flight request.
//
//                 submit() [connection threads: parse + fingerprint]
//                      │
//            shard = family(fp) % shards        ┌─ per-shard state ─┐
//                      ▼                        │ scratch RtaContext │
//   ┌ shard 0 queue ┐ ┌ shard 1 queue ┐  ...    │ verdict memo (LRU) │
//   └───────┬───────┘ └───────┬───────┘         │ family donors (LRU)│
//           ▼                 ▼                 └────────────────────┘
//      worker s%W        worker s%W      (exec::ThreadPool, kPerWorker)
//
// PERFORMANCE MODEL. Each shard owns one arena-backed analysis::RtaContext
// plus its caches, and AT MOST ONE dispatch closure per shard is in flight
// at any time (the `dispatch_scheduled` flag hands off under the queue
// mutex) — so shard state needs NO locking on the hot path: the pinned
// dispatch closure is the only reader/writer, and the pool's queue mutex
// provides the happens-before edge between consecutive dispatches. A
// dispatch drains up to `batch` queued submissions in one closure, so the
// per-request cost of waking a worker, rebinding the context and touching
// the caches amortizes across the batch. Routing by the FAMILY fingerprint
// (core count + task-name multiset, stable across WCET mutations) sends
// repeat and mutated submissions of one system to the same shard, where:
//
//   * a byte-identical resubmission is answered ON THE CONNECTION THREAD
//     from a text-keyed fast memo, before the .taskset is even parsed —
//     profiling showed repeat verdicts were dominated by document parsing
//     and DagTask cache construction, not analysis; hits byte-compare the
//     stored text, so a hash collision costs a miss, never a wrong answer;
//   * an exact content match after parsing ("memo", e.g. the same system
//     re-serialized with different whitespace) reuses the rendered verdict
//     without re-running any analysis — hits byte-compare the canonical
//     re-serialization of both systems plus the analyzer/options identity,
//     so the same collision guarantee holds;
//   * a mutated resubmission ("incremental") arms
//     RtaContext::begin_incremental against the family's cached donor
//     context: the clean priority-order prefix of per-task fixed points is
//     copied instead of re-run, bit-identical to cold by construction;
//   * everything else ("cold") runs the full analysis, then becomes the
//     family's new donor (contexts recycle via pointer swap, so arenas are
//     reused, not reallocated).
//
// Every response's "report" member is rendered through the same
// lint::render_json as rtpool_cli --format=json, so service verdicts are
// byte-identical to the CLI on the same input (asserted by perf_serve and
// the serve-smoke CI job).
//
// HOT RECONFIGURATION. reload() builds the next ServiceConfig, pauses
// dispatch scheduling, waits for the in-flight dispatch closures to finish
// their current batches (queued submissions stay queued — nothing is
// dropped or answered under a half-installed config), swaps the epoch
// (analyzer / shards / batch / cache) and only THEN re-routes the old
// epoch's queues into the new shards, applies a worker delta through
// exec::ModeChangeController::resize — the guarded DRAIN→COMMIT transition
// of PR 7, which also logs the change — and resumes. Requests that were
// dispatched before the reload complete under the old epoch (they hold a
// shared_ptr to it); requests still queued run under the new one. The
// swap-before-re-route order pairs with a re-check in enqueue(): a racing
// submission that still observed the old epoch pushed before the swap, so
// the re-route pass is guaranteed to pick its entry up; one that observes
// the new epoch migrates its shard's entries itself. Either way no
// submission can be stranded in a retired shard's queue.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/rta_context.h"
#include "exec/mode_change.h"
#include "exec/thread_pool.h"
#include "model/task_set.h"
#include "serve/protocol.h"
#include "util/thread_annotations.h"

namespace rtpool::serve {

struct ServiceConfig {
  std::string analyzer = "global-limited";  ///< Default registry analyzer.
  std::size_t workers = 4;  ///< Pool workers executing dispatch closures.
  std::size_t shards = 4;   ///< Context shards (>= 1).
  std::size_t batch = 8;    ///< Max submissions one dispatch closure drains.
  /// Verdict-memo entries per shard; family donor contexts are capped at
  /// min(cache, kMaxFamilies). 0 disables both caches (every request runs
  /// cold — the naive baseline the bench compares against).
  std::size_t cache = 256;
};

/// Monotonic service counters (stats snapshot; all totals since start).
struct ServiceStats {
  std::uint64_t received = 0;      ///< Submissions accepted into a queue.
  std::uint64_t completed = 0;     ///< Verdict responses delivered.
  std::uint64_t errors = 0;        ///< Error responses delivered.
  std::uint64_t memo_hits = 0;     ///< Answered from either verdict memo.
  std::uint64_t fast_hits = 0;     ///< … of which pre-parse text-memo hits.
  std::uint64_t incremental = 0;   ///< Analyzed with an armed donor prefix.
  std::uint64_t cold = 0;          ///< Full cold analyses.
  std::uint64_t incremental_task_hits = 0;  ///< Per-task fixed points copied.
  std::uint64_t batches = 0;       ///< Dispatch closures executed.
  std::uint64_t max_batch = 0;     ///< Largest single-dispatch drain.
  std::uint64_t reloads = 0;       ///< Committed reconfigurations.
  std::uint64_t certified = 0;     ///< Certificates independently checked.
  std::uint64_t cert_failures = 0; ///< Certificates the checker rejected.
};

/// See file header. Thread-safe: submit()/control() may be called from any
/// number of connection threads; responses are delivered via the submit
/// callback ON A POOL WORKER (or inline on the submitting thread for
/// requests rejected before dispatch), so callbacks must be fast and
/// self-synchronized.
class AdmissionService {
 public:
  /// Rendered JSON response, exactly one per submitted request.
  using Callback = std::function<void(const std::string&)>;

  /// Donor contexts cached per shard (each owns an arena-backed context).
  static constexpr std::size_t kMaxFamilies = 16;

  /// Validates the config (>= 1 worker/shard/batch, known analyzer name;
  /// std::invalid_argument otherwise) and spawns the worker pool.
  explicit AdmissionService(ServiceConfig config);

  /// Drains every queued request (nothing submitted is ever dropped), then
  /// joins the pool.
  ~AdmissionService();

  AdmissionService(const AdmissionService&) = delete;
  AdmissionService& operator=(const AdmissionService&) = delete;

  /// Submit one decoded request. kSubmit requests are parsed, fingerprinted
  /// and queued (the callback fires on a pool worker once the verdict is
  /// rendered); kStats/kReload/kShutdown are handled synchronously and the
  /// callback fires inline. Invalid submissions (bad .taskset, unknown
  /// analyzer) get an inline error response. After request_shutdown() every
  /// new submission is answered with an error.
  void submit(Request request, Callback done);

  /// Hot reconfiguration (see file header). Fields left empty keep their
  /// current value. Blocks until the new config is committed; concurrent
  /// reloads serialize. Returns the committed config. Throws
  /// std::invalid_argument on an unknown analyzer (the old config stays).
  ServiceConfig reload(const std::optional<std::string>& analyzer,
                       std::optional<std::size_t> workers,
                       std::optional<std::size_t> shards,
                       std::optional<std::size_t> batch,
                       std::optional<std::size_t> cache);

  /// Stop accepting new submissions and drain everything already queued.
  /// Idempotent; returns once the service is idle.
  void request_shutdown();
  bool shutdown_requested() const {
    return !accepting_.load(std::memory_order_acquire);
  }

  /// Block until every queued/in-flight request has been answered.
  void wait_idle();

  ServiceStats stats() const;
  ServiceConfig config() const;
  std::uint64_t config_version() const {
    return config_version_.load(std::memory_order_acquire);
  }

  /// The pool-resize transition log (exec::ModeChangeController's replay
  /// artifact): one guarded DRAIN→COMMIT entry per worker-count change.
  std::vector<exec::ModeTransition> transition_log() const {
    return controller_.transition_log();
  }

 private:
  /// One memoized verdict: everything needed to re-render a response minus
  /// the per-request id, plus the donor's full identity — the canonical
  /// re-serialization (model::write_task_set at round-trip precision) and
  /// the analyzer/options triple — byte-compared on every hit so an FNV
  /// collision degrades to a miss, never to a wrong verdict (see
  /// protocol.h).
  struct MemoEntry {
    std::size_t task_count = 0;   ///< Cheap prefilter before `canonical`.
    std::size_t core_count = 0;
    std::string canonical;        ///< write_task_set(donor) — equality witness.
    std::string analyzer;         ///< Resolved registry name of the donor run.
    double wcet_scale = 1.0;
    bool certify = false;
    bool schedulable = false;
    std::string report_json;      ///< lint::render_json(Report, ts).
    std::string certificate_json; ///< "" when the request had certify off.
    bool certificate_ok = false;
    std::size_t claims_checked = 0;
  };

  /// One pre-parse fast-memo entry: the exact request identity (compared
  /// byte-for-byte on every hit) plus the memoized verdict.
  struct FastEntry {
    std::string taskset_text;
    std::string analyzer;  ///< Resolved registry name (never "").
    double wcet_scale = 1.0;
    bool certify = false;
    MemoEntry verdict;
  };

  /// Cached incremental donor: the family's last analyzed incarnation.
  struct FamilyEntry {
    TaskSetFingerprint fp;
    std::unique_ptr<model::TaskSet> ts;
    std::unique_ptr<analysis::RtaContext> ctx;  ///< Snapshots recorded.
    std::string analyzer;  ///< Registry name the donor ran under.
    double wcet_scale = 1.0;
  };

  /// Key of the verdict memo: content + analysis identity.
  struct MemoKey {
    std::uint64_t set = 0;
    std::uint64_t analyzer_and_scale = 0;  ///< fnv1a(name, scale, certify).
    bool operator==(const MemoKey&) const = default;
  };
  struct MemoKeyHash {
    std::size_t operator()(const MemoKey& k) const {
      return static_cast<std::size_t>(k.set ^ (k.analyzer_and_scale * kFnvPrime));
    }
  };

  template <typename Key, typename Value, typename Hash>
  class LruCache {
   public:
    void set_capacity(std::size_t cap) { capacity_ = cap; trim(); }
    Value* find(const Key& key) {
      auto it = index_.find(key);
      if (it == index_.end()) return nullptr;
      order_.splice(order_.begin(), order_, it->second);
      return &it->second->second;
    }
    Value& insert(const Key& key, Value value) {
      if (Value* existing = find(key)) {
        *existing = std::move(value);
        return *existing;
      }
      order_.emplace_front(key, std::move(value));
      index_[key] = order_.begin();
      trim();
      return order_.front().second;
    }
    void clear() { order_.clear(); index_.clear(); }
    std::size_t size() const { return order_.size(); }

   private:
    void trim() {
      while (order_.size() > capacity_) {
        index_.erase(order_.back().first);
        order_.pop_back();
      }
    }
    std::size_t capacity_ = 0;
    std::list<std::pair<Key, Value>> order_;
    std::unordered_map<Key, typename std::list<std::pair<Key, Value>>::iterator,
                       Hash> index_;
  };

  /// One queued submission (parsed + fingerprinted on the submitting
  /// thread, so dispatch never blocks on request decoding).
  struct PendingRequest {
    Request request;
    const analysis::Analyzer* analyzer = nullptr;
    std::unique_ptr<model::TaskSet> ts;
    TaskSetFingerprint fp;
    Callback done;
  };

  /// Hot-path state of one shard. Only the shard's single in-flight
  /// dispatch closure touches the members below `queue` — see file header
  /// for why that needs no mutex.
  struct Shard {
    util::Mutex queue_mutex;
    std::deque<PendingRequest> queue RTPOOL_GUARDED_BY(queue_mutex);
    bool dispatch_scheduled RTPOOL_GUARDED_BY(queue_mutex) = false;

    // ---- dispatch-closure-only state (unsynchronized by design) ----
    std::unique_ptr<analysis::RtaContext> scratch;
    LruCache<MemoKey, MemoEntry, MemoKeyHash> memo;
    struct FamilyKeyHash {
      std::size_t operator()(const std::uint64_t& k) const {
        return static_cast<std::size_t>(k);
      }
    };
    LruCache<std::uint64_t, FamilyEntry, FamilyKeyHash> families;
  };

  /// The immutable per-reload configuration epoch. In-flight dispatches
  /// and racing submits hold a shared_ptr, so a reload never invalidates
  /// what they observe; shards are shared too, so a compatible reload can
  /// hand the warm shard state to the next epoch while a racing submit
  /// still pushes into the same (live) queue object.
  struct Epoch {
    ServiceConfig config;
    const analysis::Analyzer* default_analyzer = nullptr;
    std::uint64_t version = 1;
    std::vector<std::shared_ptr<Shard>> shards;
  };

  static std::shared_ptr<Epoch> make_epoch(ServiceConfig config,
                                           std::uint64_t version);

  std::shared_ptr<Epoch> current_epoch() const;

  /// Queue one parsed submission on its family's shard and schedule a
  /// dispatch. Re-checks the epoch after the push and migrates entries out
  /// of shards a concurrent reload retired, so a submission racing a
  /// shard-replacing reload can never be stranded in a queue nothing will
  /// ever drain (see reload()).
  void enqueue(PendingRequest pending);

  /// Schedule a dispatch closure for `shard` unless one is already in
  /// flight or dispatching is paused. Caller must NOT hold the shard's
  /// queue mutex.
  void schedule_dispatch(const std::shared_ptr<Epoch>& epoch,
                         std::size_t shard_index);

  /// The dispatch closure body: drain up to `batch` submissions.
  void run_dispatch(std::shared_ptr<Epoch> epoch, std::size_t shard_index);

  /// Analyze (or memo-serve) one submission and deliver its response.
  void process_one(const Epoch& epoch, Shard& shard, PendingRequest& pending);

  void deliver_error(const Callback& done, const std::string& id,
                     const std::string& error);

  /// Render the verdict response envelope around a memoized entry.
  static std::string render_response(const std::string& id,
                                     const std::string& analyzer,
                                     const char* path, std::uint64_t version,
                                     const MemoEntry& entry, bool certify);

  /// Key of the pre-parse fast memo (advisory; entries byte-compare).
  static std::uint64_t fast_key(const std::string& text,
                                const std::string& analyzer, double scale,
                                bool certify);

  /// Try to answer `request` from the pre-parse fast memo. True if the
  /// callback was invoked.
  bool try_fast_path(const Request& request, const std::string& analyzer,
                     std::uint64_t version, std::size_t capacity,
                     const Callback& done);

  /// Record a rendered verdict in the pre-parse fast memo.
  void remember_fast(const Request& request, const std::string& analyzer,
                     const MemoEntry& entry, std::size_t capacity);

  ServiceConfig base_config_;  ///< Only for config(); epochs hold the truth.

  exec::ThreadPool pool_;
  exec::ModeChangeController controller_;

  mutable util::Mutex epoch_mutex_;
  std::shared_ptr<Epoch> epoch_ RTPOOL_GUARDED_BY(epoch_mutex_);

  /// Pre-parse fast memo, shared across shards (connection threads probe it
  /// before any routing). Verdicts are pure functions of the request
  /// identity, so entries survive reloads; capacity follows config.cache.
  struct FastKeyHash {
    std::size_t operator()(const std::uint64_t& k) const {
      return static_cast<std::size_t>(k);
    }
  };
  mutable util::Mutex fast_mutex_;
  LruCache<std::uint64_t, FastEntry, FastKeyHash> fast_memo_
      RTPOOL_GUARDED_BY(fast_mutex_);

  /// Serializes reload()/request_shutdown() end to end.
  util::Mutex reload_mutex_;

  mutable util::Mutex dispatch_mutex_;
  util::CondVar dispatch_cv_;
  std::size_t active_dispatches_ RTPOOL_GUARDED_BY(dispatch_mutex_) = 0;
  bool paused_ RTPOOL_GUARDED_BY(dispatch_mutex_) = false;
  std::uint64_t pending_total_ RTPOOL_GUARDED_BY(dispatch_mutex_) = 0;

  std::atomic<bool> accepting_{true};
  std::atomic<std::uint64_t> config_version_{1};

  // Counters (relaxed: monotone telemetry, snapshot consistency not needed).
  std::atomic<std::uint64_t> received_{0}, completed_{0}, errors_{0},
      memo_hits_{0}, fast_hits_{0}, incremental_{0}, cold_{0},
      incremental_task_hits_{0}, batches_{0}, max_batch_{0}, reloads_{0},
      certified_{0}, cert_failures_{0};
};

/// Render a ServiceStats + config snapshot as the "stats" response document.
std::string encode_stats(const std::string& id, const ServiceStats& stats,
                         const ServiceConfig& config, std::uint64_t version,
                         std::size_t pool_workers);

}  // namespace rtpool::serve
