// Random task-set generation following Section 5 of the paper:
//
//  * utilizations via UUniFast for a given n and target U;
//  * one NFJ graph per task (see nfj_generator.h);
//  * periods T_i = C_i / U_i, implicit deadlines D_i = T_i;
//  * deadline-monotonic priorities;
//  * optionally, resampling until b̄(τ_i) — the maximum number of BF nodes
//    that can concurrently affect a node — falls in [bf_min, bf_max], which
//    pins the lower bound on available concurrency to
//    l̄(τ_i) = m − b̄(τ_i) ∈ [m − bf_max, m − bf_min] (used by the l_max
//    sweep of Figures 2(a)/(b)).
#pragma once

#include <optional>

#include "gen/nfj_generator.h"
#include "model/task_set.h"
#include "util/rng.h"

namespace rtpool::gen {

/// Inclusive window on b̄(τ).
struct BlockingWindow {
  std::size_t bf_min = 0;
  std::size_t bf_max = 0;
};

struct TaskSetParams {
  std::size_t cores = 8;          ///< m: platform cores = threads per pool.
  std::size_t task_count = 6;     ///< n.
  double total_utilization = 4.0; ///< U.
  NfjParams nfj;                  ///< Structure/typing parameters.
  std::optional<BlockingWindow> blocking_window;  ///< b̄ enforcement.
  int max_graph_attempts = 2000;  ///< Resampling budget per task.
};

/// Thrown when the resampling budget is exhausted (e.g. an unreachable
/// blocking window was requested).
class GenerationError : public std::runtime_error {
 public:
  explicit GenerationError(const std::string& what) : std::runtime_error(what) {}
};

/// Generate one task with the given utilization (name "tau<index>").
/// Respects params.blocking_window by resampling the graph.
model::DagTask generate_task(const TaskSetParams& params, std::size_t index,
                             double utilization, util::Rng& rng);

/// Generate a full task set (UUniFast utilizations capped at m, DM
/// priorities). Throws GenerationError when resampling budgets run out.
model::TaskSet generate_task_set(const TaskSetParams& params, util::Rng& rng);

}  // namespace rtpool::gen
