#include "gen/taskset_generator.h"

#include "analysis/concurrency.h"
#include "graph/algorithms.h"
#include "graph/reachability.h"
#include "util/uunifast.h"

namespace rtpool::gen {

model::DagTask generate_task(const TaskSetParams& params, std::size_t index,
                             double utilization, util::Rng& rng) {
  if (!(utilization > 0.0))
    throw std::invalid_argument("generate_task: utilization must be > 0");
  if (params.blocking_window.has_value() &&
      params.blocking_window->bf_min > params.blocking_window->bf_max)
    throw std::invalid_argument("generate_task: empty blocking window");

  for (int attempt = 0; attempt < params.max_graph_attempts; ++attempt) {
    NfjParams nfj = params.nfj;
    std::size_t target_bf = 0;
    if (params.blocking_window.has_value()) {
      // Targeted typing: generate an untyped skeleton, then mark exactly
      // `target_bf` pairwise-concurrent fork-join sub-graphs as blocking —
      // every member of a marked region then sees exactly target_bf
      // dangerous forks, so b̄(τ) = target_bf by construction (verified
      // below). Guarantee enough concurrent sub-graphs by widening the
      // outermost fork when needed.
      target_bf = static_cast<std::size_t>(
          rng.uniform_int(static_cast<std::int64_t>(params.blocking_window->bf_min),
                          static_cast<std::int64_t>(params.blocking_window->bf_max)));
      nfj.allow_blocking = false;
      if (target_bf > 0) {
        nfj.force_outer_branches =
            std::max(nfj.force_outer_branches,
                     std::max(nfj.min_branches, static_cast<int>(target_bf)));
      }
    }

    GeneratedGraph g = generate_nfj_graph(nfj, rng);
    // One Kahn pass and one transitive closure per skeleton: span selection
    // and blocking typing only retype nodes (the edge set never changes),
    // so the same order/Reachability pair is threaded through both and then
    // adopted by the task — previously each step rebuilt identical copies.
    std::vector<graph::NodeId> topo = graph::topological_order(g.dag);
    graph::Reachability reach(g.dag, topo);
    if (params.blocking_window.has_value() && target_bf > 0) {
      const auto selection = pick_concurrent_fork_joins(g, target_bf, rng, reach);
      if (!selection.has_value()) continue;  // skeleton too shallow; resample
      apply_blocking_selection(g, *selection, reach);
    }

    const util::Time volume = g.volume();
    const util::Time period = volume / utilization;
    model::DagTask task("tau" + std::to_string(index), std::move(g.dag),
                        std::move(g.nodes), period, period,
                        static_cast<int>(index), std::move(reach),
                        std::move(topo));

    if (params.blocking_window.has_value()) {
      const std::size_t b = analysis::max_affecting_forks(task);
      if (b < params.blocking_window->bf_min || b > params.blocking_window->bf_max)
        continue;
    }
    return task;
  }
  throw GenerationError(
      "generate_task: blocking window not reachable within attempt budget");
}

model::TaskSet generate_task_set(const TaskSetParams& params, util::Rng& rng) {
  if (params.task_count == 0)
    throw std::invalid_argument("generate_task_set: task_count must be > 0");

  // Per-task utilization can never exceed the platform (m processors).
  const auto utils = util::uunifast_capped(
      params.task_count, params.total_utilization,
      static_cast<double>(params.cores), rng);

  model::TaskSet ts(params.cores);
  for (std::size_t i = 0; i < params.task_count; ++i)
    ts.add(generate_task(params, i, utils[i], rng));
  return model::assign_deadline_monotonic(std::move(ts));
}

}  // namespace rtpool::gen
