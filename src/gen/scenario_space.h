// Named generation scenarios for the corpus runner.
//
// A Scenario is a seeded recipe for one whole task set; a ScenarioSpace is
// an ordered collection of them. The corpus assigns scenarios round-robin
// by absolute seed (`pick(seed)`), so a seed range covers every scenario
// uniformly and each (space, seed) pair maps to exactly one reproducible
// set — the witness-bundle replay contract.
//
// corpus_default() is the heterogeneous mix ROADMAP item 5 asks for:
// the paper's baseline NFJ shape, deep/wide structural variants, the
// non-uniform WCET distributions of nfj_generator.h, a targeted-b̄ window,
// and importer-backed sets seeded from the dnn_inference / eigen_style
// workloads (gen/importers.h) with random NFJ background traffic.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "model/task_set.h"
#include "util/rng.h"

namespace rtpool::gen {

/// One named point of the corpus scenario space. `make` may throw
/// GenerationError (resampling budget); callers count and skip.
struct Scenario {
  std::string name;
  std::function<model::TaskSet(std::size_t cores, util::Rng& rng)> make;
};

class ScenarioSpace {
 public:
  ScenarioSpace() = default;

  void add(Scenario scenario);

  std::size_t size() const { return scenarios_.size(); }
  bool empty() const { return scenarios_.empty(); }
  const Scenario& scenario(std::size_t index) const {
    return scenarios_.at(index);
  }

  /// Deterministic round-robin assignment of corpus seeds to scenarios.
  /// Throws std::logic_error on an empty space.
  const Scenario& pick(std::uint64_t seed) const;
  std::size_t pick_index(std::uint64_t seed) const;

  /// Keep only the scenarios whose name contains `substring` (corpus CLI
  /// `--scenarios` filter). Returns the number kept.
  std::size_t filter(const std::string& substring);

  /// Identity string for checkpoint fingerprints: the ordered scenario
  /// names, comma-joined.
  std::string fingerprint() const;

  /// The default corpus mix (see file comment). Scenario recipes adapt to
  /// `cores` (e.g. b̄ windows stay below m).
  static ScenarioSpace corpus_default();

 private:
  std::vector<Scenario> scenarios_;
};

}  // namespace rtpool::gen
