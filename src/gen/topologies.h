// Structured DAG topologies from real parallel software, as reusable task
// constructors: the shapes TensorFlow/Eigen-style systems actually run
// (layered inference graphs, map-reduce, pipelines, wavefronts, recursive
// divide-and-conquer). Each constructor can realize its data-parallel
// sections either as *blocking* regions (BF/BC/BJ — Listing 1, the
// thread-pool + condition-variable implementation) or as plain NB nodes
// (Listing 2).
//
// All constructors produce model-valid tasks (single source/sink, region
// restrictions hold by construction) and take explicit WCETs or an Rng for
// randomized ones.
#pragma once

#include <cstddef>
#include <string>

#include "model/dag_task.h"
#include "util/rng.h"

namespace rtpool::gen {

/// Common knobs for all topology builders.
struct TopologyOptions {
  bool blocking = true;      ///< Data-parallel sections use BF/BC/BJ.
  util::Time period = 0.0;   ///< Task period (= deadline); must be > 0.
  double wcet_min = 1.0;     ///< Kernel WCETs are drawn uniformly from
  double wcet_max = 10.0;    ///< [wcet_min, wcet_max].
};

/// Layered DNN inference graph: `layers` layers, each with `ops_per_layer`
/// operators running between two layer barriers; every operator is a
/// parallel-for over `tiles` tiles. b̄ = ops_per_layer when blocking (one
/// concurrent fork per operator of a layer).
model::DagTask make_dnn_task(const std::string& name, int layers,
                             int ops_per_layer, int tiles,
                             const TopologyOptions& options, util::Rng& rng);

/// Map-reduce: `mappers` parallel map kernels feeding a binary reduction
/// tree. With `options.blocking`, the map phase is one blocking region
/// (the reduce tree stays NB: its nodes have cross-level edges that a
/// single region could not contain). b̄ = 1 when blocking.
model::DagTask make_map_reduce_task(const std::string& name, int mappers,
                                    const TopologyOptions& options,
                                    util::Rng& rng);

/// Software pipeline: `stages` sequential stages; stage i is a parallel-for
/// over `width` kernels. Consecutive stages are separated by barriers, so
/// blocking regions never overlap: b̄ = 1 when blocking.
model::DagTask make_pipeline_task(const std::string& name, int stages,
                                  int width, const TopologyOptions& options,
                                  util::Rng& rng);

/// Wavefront (2D dependency grid, e.g. dynamic programming / blocked LU):
/// cell (i, j) depends on (i-1, j) and (i, j-1). Always NB (its diagonal
/// parallelism has no fork-join structure to block on); `options.blocking`
/// is ignored.
model::DagTask make_wavefront_task(const std::string& name, int rows, int cols,
                                   const TopologyOptions& options,
                                   util::Rng& rng);

/// Cilk-style recursive divide-and-conquer: a binary tree of forks of
/// `depth` levels with leaf kernels. With `options.blocking`, only the
/// DEEPEST fork level blocks (regions cannot nest), giving
/// b̄ = 2^(depth-1) concurrent blocking forks — the fastest way to build
/// tasks with large concurrency reduction.
model::DagTask make_divide_conquer_task(const std::string& name, int depth,
                                        const TopologyOptions& options,
                                        util::Rng& rng);

}  // namespace rtpool::gen
