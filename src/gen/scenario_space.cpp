#include "gen/scenario_space.h"

#include <algorithm>
#include <stdexcept>

#include "gen/importers.h"
#include "gen/taskset_generator.h"

namespace rtpool::gen {

void ScenarioSpace::add(Scenario scenario) {
  scenarios_.push_back(std::move(scenario));
}

const Scenario& ScenarioSpace::pick(std::uint64_t seed) const {
  return scenarios_.at(pick_index(seed));
}

std::size_t ScenarioSpace::pick_index(std::uint64_t seed) const {
  if (scenarios_.empty())
    throw std::logic_error("ScenarioSpace::pick: empty space");
  return static_cast<std::size_t>(seed %
                                  static_cast<std::uint64_t>(scenarios_.size()));
}

std::size_t ScenarioSpace::filter(const std::string& substring) {
  std::erase_if(scenarios_, [&](const Scenario& s) {
    return s.name.find(substring) == std::string::npos;
  });
  return scenarios_.size();
}

std::string ScenarioSpace::fingerprint() const {
  std::string out;
  for (const Scenario& s : scenarios_) {
    if (!out.empty()) out += ',';
    out += s.name;
  }
  return out;
}

namespace {

/// Common frame of the NFJ scenarios: n in [3, 6], total utilization in
/// [0.2, 0.8]·m — wide enough to produce accepts AND rejects for every
/// analyzer, which is what the optimism/pessimism gap statistics need.
TaskSetParams base_params(std::size_t cores, util::Rng& rng) {
  TaskSetParams params;
  params.cores = cores;
  params.task_count =
      static_cast<std::size_t>(rng.uniform_int(3, 6));
  params.total_utilization =
      rng.uniform(0.2, 0.8) * static_cast<double>(cores);
  return params;
}

/// Background traffic for the importer scenarios: small plain NFJ tasks
/// sharing the platform with the imported workload.
void add_background(model::TaskSet& ts, const TaskSetParams& params,
                    std::size_t count, double each_utilization,
                    util::Rng& rng) {
  for (std::size_t i = 0; i < count; ++i)
    ts.add(generate_task(params, i, each_utilization, rng));
}

}  // namespace

ScenarioSpace ScenarioSpace::corpus_default() {
  ScenarioSpace space;

  // The paper's setup (Section 5): depth-2 NFJ, uniform WCETs.
  space.add({"nfj-baseline", [](std::size_t cores, util::Rng& rng) {
               return generate_task_set(base_params(cores, rng), rng);
             }});

  // Deep, narrow nesting: long chains of small regions.
  space.add({"nfj-deep", [](std::size_t cores, util::Rng& rng) {
               TaskSetParams params = base_params(cores, rng);
               params.nfj.max_depth = 4;
               params.nfj.min_branches = 2;
               params.nfj.max_branches = 2;
               params.nfj.max_series = 3;
               return generate_task_set(params, rng);
             }});

  // Flat, wide fork-joins: one level, many branches.
  space.add({"nfj-wide", [](std::size_t cores, util::Rng& rng) {
               TaskSetParams params = base_params(cores, rng);
               params.nfj.max_depth = 1;
               params.nfj.min_branches = 4;
               params.nfj.max_branches = 8;
               return generate_task_set(params, rng);
             }});

  // Non-uniform WCET mass (see WcetDist): a few heavy nodes dominate.
  space.add({"nfj-bimodal", [](std::size_t cores, util::Rng& rng) {
               TaskSetParams params = base_params(cores, rng);
               params.nfj.wcet_dist = WcetDist::kBimodal;
               return generate_task_set(params, rng);
             }});
  space.add({"nfj-heavy-tail", [](std::size_t cores, util::Rng& rng) {
               TaskSetParams params = base_params(cores, rng);
               params.nfj.wcet_dist = WcetDist::kHeavyTail;
               return generate_task_set(params, rng);
             }});
  space.add({"nfj-exponential", [](std::size_t cores, util::Rng& rng) {
               TaskSetParams params = base_params(cores, rng);
               params.nfj.wcet_dist = WcetDist::kExponential;
               return generate_task_set(params, rng);
             }});

  // Targeted blocking pressure: b̄ pinned into [1, min(4, m-2)] per task,
  // so the limited-concurrency terms really bind (l̄ down to m-4).
  space.add({"nfj-blocking-window", [](std::size_t cores, util::Rng& rng) {
               TaskSetParams params = base_params(cores, rng);
               BlockingWindow window;
               window.bf_min = 1;
               window.bf_max = std::max<std::size_t>(
                   1, std::min<std::size_t>(4, cores >= 3 ? cores - 2 : 1));
               params.blocking_window = window;
               return generate_task_set(params, rng);
             }});

  // Importer-backed: a DNN inference task plus NFJ background traffic.
  space.add({"import-dnn", [](std::size_t cores, util::Rng& rng) {
               importers::DnnInferenceSpec spec;
               spec.layers = static_cast<int>(rng.uniform_int(3, 6));
               spec.ops_per_layer = static_cast<int>(rng.uniform_int(2, 4));
               spec.tiles = static_cast<int>(rng.uniform_int(4, 8));
               spec.utilization =
                   rng.uniform(0.15, 0.45) * static_cast<double>(cores);
               model::TaskSet ts(cores);
               ts.add(importers::import_dnn_inference(spec, rng));
               TaskSetParams bg;
               bg.cores = cores;
               add_background(ts, bg, 2, rng.uniform(0.05, 0.25), rng);
               return model::assign_deadline_monotonic(std::move(ts));
             }});

  // Importer-backed: a nested Eigen-style contraction (b̄ = rows) plus
  // background traffic. rows stays below m so the set is not trivially
  // deadlock-doomed — the interesting region of Lemma 1.
  space.add({"import-eigen", [](std::size_t cores, util::Rng& rng) {
               importers::EigenContractionSpec spec;
               const std::int64_t max_rows = std::max<std::int64_t>(
                   2, std::min<std::int64_t>(6, static_cast<std::int64_t>(cores) - 1));
               spec.rows = static_cast<int>(rng.uniform_int(2, max_rows));
               spec.tiles = static_cast<int>(rng.uniform_int(4, 12));
               spec.utilization =
                   rng.uniform(0.15, 0.45) * static_cast<double>(cores);
               model::TaskSet ts(cores);
               ts.add(importers::import_eigen_contraction(spec, rng));
               TaskSetParams bg;
               bg.cores = cores;
               add_background(ts, bg, 2, rng.uniform(0.05, 0.25), rng);
               return model::assign_deadline_monotonic(std::move(ts));
             }});

  return space;
}

}  // namespace rtpool::gen
