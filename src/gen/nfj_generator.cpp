#include "gen/nfj_generator.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "graph/reachability.h"

namespace rtpool::gen {

const char* to_string(WcetDist dist) {
  switch (dist) {
    case WcetDist::kUniform: return "uniform";
    case WcetDist::kBimodal: return "bimodal";
    case WcetDist::kExponential: return "exponential";
    case WcetDist::kHeavyTail: return "heavy-tail";
  }
  return "uniform";
}

WcetDist parse_wcet_dist(const std::string& name) {
  if (name == "uniform") return WcetDist::kUniform;
  if (name == "bimodal") return WcetDist::kBimodal;
  if (name == "exponential") return WcetDist::kExponential;
  if (name == "heavy-tail") return WcetDist::kHeavyTail;
  throw std::invalid_argument(
      "unknown WCET distribution '" + name +
      "' (valid: uniform, bimodal, exponential, heavy-tail)");
}

double draw_wcet(WcetDist dist, double wcet_min, double wcet_max,
                 util::Rng& rng) {
  const double span = wcet_max - wcet_min;
  switch (dist) {
    case WcetDist::kUniform:
      // One draw, identical to the historical generator: every pre-existing
      // seed reproduces the same task set bit for bit.
      return rng.uniform(wcet_min, wcet_max);
    case WcetDist::kBimodal: {
      // Many light nodes, a few heavy ones: 80% in the bottom fifth of the
      // range, 20% in the top fifth. Always two draws so the stream layout
      // does not depend on which mode fires.
      const bool heavy = rng.bernoulli(0.2);
      const double u = rng.uniform(0.0, 1.0);
      return heavy ? wcet_max - 0.2 * span * u : wcet_min + 0.2 * span * u;
    }
    case WcetDist::kExponential: {
      // min + Exp(mean = span/4), truncated at wcet_max. uniform() is
      // [0, 1), so log(1 - u) is finite.
      const double u = rng.uniform(0.0, 1.0);
      const double x = -(span / 4.0) * std::log1p(-u);
      return wcet_min + std::min(x, span);
    }
    case WcetDist::kHeavyTail: {
      // Bounded Pareto with alpha = 1.1 over [1, H], mapped onto the WCET
      // range: mass concentrates near wcet_min with a genuine polynomial
      // tail toward wcet_max.
      constexpr double kAlpha = 1.1;
      constexpr double kH = 64.0;
      const double u = rng.uniform(0.0, 1.0);
      const double x =
          std::pow(1.0 - u * (1.0 - std::pow(kH, -kAlpha)), -1.0 / kAlpha);
      return wcet_min + span * (x - 1.0) / (kH - 1.0);
    }
  }
  return rng.uniform(wcet_min, wcet_max);
}

namespace {

using model::Node;
using model::NodeId;
using model::NodeType;

/// Recursive builder for one task graph.
class GraphBuilder {
 public:
  GraphBuilder(const NfjParams& params, util::Rng& rng) : params_(params), rng_(rng) {}

  GeneratedGraph run() {
    GeneratedGraph out;
    dag_ = &out.dag;
    nodes_ = &out.nodes;
    spans_ = &out.fork_joins;

    // Growth hint: typical expansions stay well under this; worst cases
    // just fall back to vector growth.
    out.dag.reserve(64);
    out.nodes.reserve(64);

    const NodeId src = terminal(NodeType::NB);
    // Force the outermost expansion so tasks are actually parallel.
    const auto [entry, exit] = block(/*depth=*/1, /*inside_blocking=*/false,
                                     /*force_parallel=*/true);
    const NodeId snk = terminal(NodeType::NB);
    // Every edge the builder adds has a freshly created endpoint, so the
    // checked insert's duplicate scan can never fire — skip it.
    out.dag.add_edge_unchecked(src, entry);
    out.dag.add_edge_unchecked(exit, snk);
    return out;
  }

 private:
  /// A block has a single entry and a single exit node.
  struct Span {
    NodeId entry;
    NodeId exit;
  };

  NodeId terminal(NodeType type) {
    const NodeId id = dag_->add_node();
    nodes_->push_back(Node{draw_wcet(params_.wcet_dist, params_.wcet_min,
                                     params_.wcet_max, rng_),
                           type});
    return id;
  }

  Span block(int depth, bool inside_blocking, bool force_parallel) {
    const bool expand = depth <= params_.max_depth &&
                        (force_parallel || rng_.bernoulli(params_.parallel_prob));
    if (!expand) {
      const NodeId v = terminal(inside_blocking ? NodeType::BC : NodeType::NB);
      return {v, v};
    }

    // Decide whether this fork-join sub-graph is a blocking region:
    // p_BF = d/(d+1), only outside existing blocking regions (no nesting).
    const double p_bf = params_.blocking_bias * static_cast<double>(depth) /
                        static_cast<double>(depth + 1);
    const bool blocking =
        params_.allow_blocking && !inside_blocking && rng_.bernoulli(p_bf);

    const NodeType delim_fork = blocking ? NodeType::BF
                               : inside_blocking ? NodeType::BC
                                                 : NodeType::NB;
    const NodeType delim_join = blocking ? NodeType::BJ
                               : inside_blocking ? NodeType::BC
                                                 : NodeType::NB;
    const NodeId fork = terminal(delim_fork);
    const bool inner_blocking = inside_blocking || blocking;

    const bool outermost = depth == 1;
    const auto branches =
        (outermost && params_.force_outer_branches > 0)
            ? params_.force_outer_branches
            : static_cast<int>(
                  rng_.uniform_int(params_.min_branches, params_.max_branches));
    std::vector<Span> spans;
    spans.reserve(static_cast<std::size_t>(branches));
    for (int b = 0; b < branches; ++b) {
      const auto series = static_cast<int>(rng_.uniform_int(1, params_.max_series));
      Span chain = block(depth + 1, inner_blocking, false);
      for (int s = 1; s < series; ++s) {
        const Span next = block(depth + 1, inner_blocking, false);
        dag_->add_edge_unchecked(chain.exit, next.entry);
        chain.exit = next.exit;
      }
      spans.push_back(chain);
    }

    const NodeId join = terminal(delim_join);
    for (const Span& s : spans) {
      dag_->add_edge_unchecked(fork, s.entry);
      dag_->add_edge_unchecked(s.exit, join);
    }
    spans_->push_back(ForkJoinSpan{fork, join, depth});
    return {fork, join};
  }

  const NfjParams& params_;
  util::Rng& rng_;
  graph::Dag* dag_ = nullptr;
  std::vector<Node>* nodes_ = nullptr;
  std::vector<ForkJoinSpan>* spans_ = nullptr;
};

void validate_params(const NfjParams& p) {
  if (p.parallel_prob < 0.0 || p.parallel_prob > 1.0)
    throw std::invalid_argument("NfjParams: parallel_prob out of [0,1]");
  if (p.max_depth < 1) throw std::invalid_argument("NfjParams: max_depth must be >= 1");
  if (p.min_branches < 2 || p.max_branches < p.min_branches)
    throw std::invalid_argument("NfjParams: need 2 <= min_branches <= max_branches");
  if (p.max_series < 1) throw std::invalid_argument("NfjParams: max_series must be >= 1");
  if (!(p.wcet_min >= 0.0) || !(p.wcet_max >= p.wcet_min) || !(p.wcet_max > 0.0))
    throw std::invalid_argument("NfjParams: bad WCET range");
  if (p.blocking_bias < 0.0 || p.blocking_bias > 1.0)
    throw std::invalid_argument("NfjParams: blocking_bias out of [0,1]");
  if (p.force_outer_branches != 0 && p.force_outer_branches < 2)
    throw std::invalid_argument("NfjParams: force_outer_branches must be 0 or >= 2");
}

}  // namespace

util::Time GeneratedGraph::volume() const {
  util::Time v = 0.0;
  for (const model::Node& n : nodes) v += n.wcet;
  return v;
}

GeneratedGraph generate_nfj_graph(const NfjParams& params, util::Rng& rng) {
  validate_params(params);
  return GraphBuilder(params, rng).run();
}

void apply_blocking_selection(GeneratedGraph& g,
                              const std::vector<std::size_t>& selection) {
  const graph::Reachability reach(g.dag);
  apply_blocking_selection(g, selection, reach);
}

void apply_blocking_selection(GeneratedGraph& g,
                              const std::vector<std::size_t>& selection,
                              const graph::Reachability& reach) {
  if (reach.size() != g.dag.size())
    throw std::invalid_argument(
        "apply_blocking_selection: reachability size mismatch");
  // Reset all types, then mark each selected span and its interior.
  for (model::Node& n : g.nodes) n.type = NodeType::NB;

  for (std::size_t idx : selection) {
    if (idx >= g.fork_joins.size())
      throw std::invalid_argument("apply_blocking_selection: span out of range");
    const ForkJoinSpan& span = g.fork_joins[idx];
    g.nodes[span.fork].type = NodeType::BF;
    g.nodes[span.join].type = NodeType::BJ;
    // Interior = succ(fork) ∩ pred(join): exactly the region members in a
    // nested-fork-join structure.
    util::DynamicBitset interior = reach.descendants(span.fork);
    interior.and_assign(reach.ancestors(span.join));
    interior.for_each([&](std::size_t v) { g.nodes[v].type = NodeType::BC; });
  }
}

std::optional<std::vector<std::size_t>> pick_concurrent_fork_joins(
    const GeneratedGraph& g, std::size_t k, util::Rng& rng) {
  const graph::Reachability reach(g.dag);
  return pick_concurrent_fork_joins(g, k, rng, reach);
}

std::optional<std::vector<std::size_t>> pick_concurrent_fork_joins(
    const GeneratedGraph& g, std::size_t k, util::Rng& rng,
    const graph::Reachability& reach) {
  if (k == 0) return std::vector<std::size_t>{};
  if (g.fork_joins.size() < k) return std::nullopt;
  if (reach.size() != g.dag.size())
    throw std::invalid_argument(
        "pick_concurrent_fork_joins: reachability size mismatch");

  // Two fork-join sub-graphs are concurrent iff their forks are mutually
  // unordered (containment and sequencing both order the forks).
  auto concurrent = [&](const ForkJoinSpan& a, const ForkJoinSpan& b) {
    return reach.concurrent(a.fork, b.fork);
  };

  std::vector<std::size_t> order(g.fork_joins.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.shuffle(order);

  std::vector<std::size_t> chosen;
  for (std::size_t idx : order) {
    const bool ok = std::all_of(chosen.begin(), chosen.end(), [&](std::size_t c) {
      return concurrent(g.fork_joins[idx], g.fork_joins[c]);
    });
    if (ok) {
      chosen.push_back(idx);
      if (chosen.size() == k) return chosen;
    }
  }
  return std::nullopt;
}

}  // namespace rtpool::gen
