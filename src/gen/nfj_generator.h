// Random nested-fork-join DAG generation (Section 5).
//
// Follows the recursive-expansion technique of Melani et al. [14]: a block
// is either a terminal node or a parallel composition of branches, each a
// series of sub-blocks one nesting level deeper. The paper's extension is
// the *typing* step: every generated fork-join sub-graph becomes a blocking
// region (BF/BC.../BJ) with probability p_BF = d/(d+1), where d is its
// nesting depth (deeper sub-graphs are more likely blocking), unless it is
// already inside a blocking region (regions cannot nest). Source and sink
// nodes are always NB.
#pragma once

#include <cstddef>
#include <optional>

#include "model/dag_task.h"
#include "util/rng.h"

namespace rtpool::gen {

/// Shape of the per-node WCET draw. kUniform is the paper's setup and keeps
/// the exact historical draw sequence (one uniform per node); the others
/// exist for the corpus's heterogeneous scenario space — workloads whose
/// critical paths are dominated by a few heavy nodes stress the analyses
/// very differently from flat uniform ones.
enum class WcetDist : unsigned char {
  kUniform,      ///< U[wcet_min, wcet_max] (paper; default).
  kBimodal,      ///< 80% light (bottom fifth), 20% heavy (top fifth).
  kExponential,  ///< min + Exp(mean = span/4), truncated at wcet_max.
  kHeavyTail,    ///< Bounded Pareto (alpha = 1.1, 64x dynamic range).
};

/// Canonical names ("uniform", "bimodal", "exponential", "heavy-tail");
/// parse throws std::invalid_argument on unknown names.
const char* to_string(WcetDist dist);
WcetDist parse_wcet_dist(const std::string& name);

/// One WCET draw from [wcet_min, wcet_max] under `dist` (exposed for tests
/// and custom generators; consumes 1 draw for kUniform/kExponential/
/// kHeavyTail and 2 for kBimodal).
double draw_wcet(WcetDist dist, double wcet_min, double wcet_max,
                 util::Rng& rng);

struct NfjParams {
  /// Probability that a block expands into a parallel sub-graph instead of
  /// a terminal node (before the depth limit applies).
  double parallel_prob = 0.8;
  /// Maximum fork-join nesting depth (the paper's d = 2).
  int max_depth = 2;
  /// Parallel branches per fork-join, uniform in [min_branches, max_branches].
  int min_branches = 2;
  int max_branches = 4;
  /// Blocks composed in series within one branch, uniform in [1, max_series].
  int max_series = 2;
  /// Node WCETs, drawn from [wcet_min, wcet_max] (paper: [0, 100]; the lower
  /// end is kept strictly positive so every node carries real work).
  double wcet_min = 1.0;
  double wcet_max = 100.0;
  /// Distribution of the WCET draw over [wcet_min, wcet_max]. kUniform is
  /// bit-compatible with the historical generator (same stream, same sets).
  WcetDist wcet_dist = WcetDist::kUniform;
  /// When false, no sub-graph is typed blocking (plain DAG tasks — used for
  /// baselines, for ablations, and as the skeleton of targeted typing).
  bool allow_blocking = true;
  /// Scales p_BF = blocking_bias * d/(d+1); 1.0 reproduces the paper.
  double blocking_bias = 1.0;
  /// When > 0, the outermost fork-join uses exactly this many branches
  /// (used to guarantee enough mutually-concurrent sub-graphs for targeted
  /// typing); 0 = draw from [min_branches, max_branches] as usual.
  int force_outer_branches = 0;
};

/// One generated fork-join sub-graph (delimiter pair + nesting depth).
struct ForkJoinSpan {
  model::NodeId fork;
  model::NodeId join;
  int depth;  ///< 1 = outermost.
};

/// Raw generation result before period assignment: graph + node attributes.
struct GeneratedGraph {
  graph::Dag dag;
  std::vector<model::Node> nodes;
  /// Every fork-join sub-graph (innermost-first construction order); used
  /// by targeted typing.
  std::vector<ForkJoinSpan> fork_joins;

  /// Total WCET (the task's C_i = vol).
  util::Time volume() const;
};

/// Generate one NFJ graph with types. The graph always has a single NB
/// source and a single NB sink and satisfies all model restrictions.
GeneratedGraph generate_nfj_graph(const NfjParams& params, util::Rng& rng);

/// Retype `graph` so that exactly the fork-join sub-graphs in `selection`
/// become blocking regions (BF/BC.../BJ); all other nodes become NB.
/// The selected spans must be pairwise precedence-unordered (concurrent) —
/// then every member of a selected region is affected by exactly
/// |selection| forks and b̄(τ) = |selection| by construction.
/// Throws std::invalid_argument if a selected span is out of range.
void apply_blocking_selection(GeneratedGraph& graph,
                              const std::vector<std::size_t>& selection);

/// Same, against a caller-provided closure of `graph.dag` — retyping never
/// touches the dag, so one Reachability can be shared across the selection,
/// the typing, and the eventual DagTask construction (the generator hot
/// path builds it exactly once per task instead of three times).
void apply_blocking_selection(GeneratedGraph& graph,
                              const std::vector<std::size_t>& selection,
                              const graph::Reachability& reach);

/// Greedily pick `k` pairwise-concurrent fork-join spans of `graph`
/// (shuffled order). Returns nullopt if the greedy pass cannot find k.
std::optional<std::vector<std::size_t>> pick_concurrent_fork_joins(
    const GeneratedGraph& graph, std::size_t k, util::Rng& rng);

/// Same, against a caller-provided closure of `graph.dag`.
std::optional<std::vector<std::size_t>> pick_concurrent_fork_joins(
    const GeneratedGraph& graph, std::size_t k, util::Rng& rng,
    const graph::Reachability& reach);

}  // namespace rtpool::gen
