#include "gen/importers.h"

#include <stdexcept>
#include <vector>

#include "gen/topologies.h"
#include "model/builder.h"

namespace rtpool::gen::importers {

namespace {

void check_common(const char* who, double period, double utilization,
                  double wcet_min, double wcet_max) {
  if (!(period > 0.0) && !(utilization > 0.0))
    throw std::invalid_argument(std::string(who) +
                                ": need period > 0 or utilization > 0");
  if (!(wcet_min > 0.0) || wcet_max < wcet_min)
    throw std::invalid_argument(std::string(who) +
                                ": need 0 < wcet_min <= wcet_max");
}

}  // namespace

model::DagTask import_dnn_inference(const DnnInferenceSpec& spec,
                                    util::Rng& rng) {
  if (spec.layers < 1 || spec.ops_per_layer < 1 || spec.tiles < 1)
    throw std::invalid_argument(
        "import_dnn_inference: layers/ops_per_layer/tiles must be >= 1");
  check_common("import_dnn_inference", spec.period, spec.utilization,
               spec.wcet_min, spec.wcet_max);

  TopologyOptions options;
  options.blocking = spec.blocking;
  options.period = spec.period > 0.0 ? spec.period : 1.0;
  options.wcet_min = spec.wcet_min;
  options.wcet_max = spec.wcet_max;

  // Utilization targeting needs the volume before the period is known:
  // build once to learn the volume, then replay the identical draws from a
  // saved copy of the stream. The caller's rng advances exactly once.
  util::Rng saved = rng;
  model::DagTask task = make_dnn_task(spec.name, spec.layers,
                                      spec.ops_per_layer, spec.tiles, options,
                                      rng);
  if (spec.utilization > 0.0) {
    options.period = task.volume() / spec.utilization;
    util::Rng replay = saved;
    task = make_dnn_task(spec.name, spec.layers, spec.ops_per_layer,
                         spec.tiles, options, replay);
  }
  return task;
}

model::DagTask import_eigen_contraction(const EigenContractionSpec& spec,
                                        util::Rng& rng) {
  if (spec.rows < 1 || spec.tiles < 1)
    throw std::invalid_argument(
        "import_eigen_contraction: rows/tiles must be >= 1");
  check_common("import_eigen_contraction", spec.period, spec.utilization,
               spec.wcet_min, spec.wcet_max);

  model::DagTaskBuilder builder(spec.name);
  double volume = 0.0;
  const auto draw = [&] {
    const double w = rng.uniform(spec.wcet_min, spec.wcet_max);
    volume += w;
    return w;
  };

  // Outer loop setup (block partitioning) and final combine.
  const model::NodeId source = builder.add_node(draw(), model::NodeType::NB);
  const model::NodeId sink = builder.add_node(draw(), model::NodeType::NB);

  // One fork-join per outer row block: the row's inner parallel-for. All
  // rows hang off the same source, so the regions are mutually concurrent
  // and b̄ = rows when blocking (each inner loop suspends its caller).
  for (int row = 0; row < spec.rows; ++row) {
    const double fork_wcet = draw();
    const double join_wcet = draw();
    std::vector<util::Time> tiles;
    tiles.reserve(static_cast<std::size_t>(spec.tiles));
    for (int tile = 0; tile < spec.tiles; ++tile) tiles.push_back(draw());
    const model::DagTaskBuilder::ForkJoin fj =
        spec.blocking ? builder.add_blocking_fork_join(fork_wcet, join_wcet, tiles)
                      : builder.add_fork_join(fork_wcet, join_wcet, tiles);
    builder.add_edge(source, fj.fork);
    builder.add_edge(fj.join, sink);
  }

  const double period =
      spec.utilization > 0.0 ? volume / spec.utilization : spec.period;
  builder.period(period);
  return builder.build();
}

}  // namespace rtpool::gen::importers
