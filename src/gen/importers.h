// Importer-backed task construction: the example workloads as library
// citizens.
//
// The dnn_inference and eigen_style examples used to build their graphs
// inline; the corpus needs to draw the same structures programmatically
// (ROADMAP item 5 calls them "seed importers"), so the constructors live
// here and the examples are rebased on them. Each importer takes a spec
// struct whose defaults reproduce the respective example exactly and
// returns a model-valid DagTask.
//
// Utilization targeting: a spec with `utilization > 0` overrides `period`
// so that volume / period == utilization — the corpus sweeps utilization,
// not absolute periods. The graph (structure and WCETs) is identical
// either way for the same Rng state.
#pragma once

#include <string>

#include "model/dag_task.h"
#include "util/rng.h"

namespace rtpool::gen::importers {

/// Layered DNN inference graph (the paper's motivating TensorFlow case):
/// `layers` layers of `ops_per_layer` operators between layer barriers,
/// every operator an Eigen-style blocking parallel-for over `tiles` tiles.
/// b̄ = ops_per_layer when blocking. Defaults reproduce the
/// examples/dnn_inference.cpp "inception_like" task.
struct DnnInferenceSpec {
  std::string name = "inception_like";
  int layers = 6;
  int ops_per_layer = 3;
  int tiles = 8;
  double period = 400.0;
  double utilization = 0.0;  ///< > 0: derive period from volume instead.
  double wcet_min = 0.3;
  double wcet_max = 2.0;
  bool blocking = true;
};

model::DagTask import_dnn_inference(const DnnInferenceSpec& spec,
                                    util::Rng& rng);

/// Nested Eigen-style tensor contraction (examples/eigen_style.cpp as a
/// DAG): an outer parallel loop over `rows` row blocks, each iteration an
/// inner blocking parallel-for over `tiles` column tiles. All outer
/// iterations are mutually concurrent, so each of the `rows` inner loops
/// can block a worker at once: b̄ = rows when blocking — exactly the
/// l̄ = m − b̄ cliff the live-threads demo measures.
struct EigenContractionSpec {
  std::string name = "tensor_contraction";
  int rows = 3;   ///< Outer row blocks (= b̄ when blocking).
  int tiles = 8;  ///< Inner column tiles per row block.
  double period = 300.0;
  double utilization = 0.0;  ///< > 0: derive period from volume instead.
  double wcet_min = 0.3;
  double wcet_max = 2.0;
  bool blocking = true;
};

model::DagTask import_eigen_contraction(const EigenContractionSpec& spec,
                                        util::Rng& rng);

}  // namespace rtpool::gen::importers
