#include "gen/topologies.h"

#include <stdexcept>
#include <vector>

#include "model/builder.h"

namespace rtpool::gen {

namespace {

using model::DagTaskBuilder;
using model::NodeId;
using model::NodeType;

void validate(const TopologyOptions& options) {
  if (!(options.period > 0.0))
    throw std::invalid_argument("topology: period must be > 0");
  if (!(options.wcet_min >= 0.0) || !(options.wcet_max >= options.wcet_min))
    throw std::invalid_argument("topology: bad WCET range");
}

double draw(const TopologyOptions& options, util::Rng& rng) {
  return rng.uniform(options.wcet_min, options.wcet_max);
}

/// A parallel-for section between `entry` and `exit` nodes: blocking
/// (BF -> width x BC -> BJ) or plain NB fork-join.
void add_parallel_for(DagTaskBuilder& b, NodeId entry, NodeId exit, int width,
                      const TopologyOptions& options, util::Rng& rng) {
  std::vector<util::Time> kernels;
  kernels.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) kernels.push_back(draw(options, rng));
  const auto fj = options.blocking
                      ? b.add_blocking_fork_join(draw(options, rng),
                                                 draw(options, rng), kernels)
                      : b.add_fork_join(draw(options, rng), draw(options, rng),
                                        kernels);
  b.add_edge(entry, fj.fork);
  b.add_edge(fj.join, exit);
}

}  // namespace

model::DagTask make_dnn_task(const std::string& name, int layers,
                             int ops_per_layer, int tiles,
                             const TopologyOptions& options, util::Rng& rng) {
  validate(options);
  if (layers < 1 || ops_per_layer < 1 || tiles < 1)
    throw std::invalid_argument("make_dnn_task: all dimensions must be >= 1");

  DagTaskBuilder b(name);
  NodeId barrier = b.add_node(draw(options, rng));  // input pre-processing
  for (int layer = 0; layer < layers; ++layer) {
    const NodeId next = b.add_node(draw(options, rng));  // concat / copy
    for (int op = 0; op < ops_per_layer; ++op)
      add_parallel_for(b, barrier, next, tiles, options, rng);
    barrier = next;
  }
  b.period(options.period);
  return b.build();
}

model::DagTask make_map_reduce_task(const std::string& name, int mappers,
                                    const TopologyOptions& options,
                                    util::Rng& rng) {
  validate(options);
  if (mappers < 2)
    throw std::invalid_argument("make_map_reduce_task: need >= 2 mappers");

  DagTaskBuilder b(name);
  const NodeId input = b.add_node(draw(options, rng));

  // Map phase: one parallel-for over the mappers (blocking when requested).
  const NodeId shuffle = b.add_node(draw(options, rng));
  add_parallel_for(b, input, shuffle, mappers, options, rng);

  // Reduce phase: a binary combining tree, always NB.
  std::vector<NodeId> level;
  for (int i = 0; i < (mappers + 1) / 2; ++i) {
    const NodeId r = b.add_node(draw(options, rng));
    b.add_edge(shuffle, r);
    level.push_back(r);
  }
  while (level.size() > 1) {
    std::vector<NodeId> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      const NodeId r = b.add_node(draw(options, rng));
      b.add_edge(level[i], r);
      b.add_edge(level[i + 1], r);
      next.push_back(r);
    }
    if (level.size() % 2 == 1) next.push_back(level.back());
    level = std::move(next);
  }
  b.period(options.period);
  return b.build();
}

model::DagTask make_pipeline_task(const std::string& name, int stages,
                                  int width, const TopologyOptions& options,
                                  util::Rng& rng) {
  validate(options);
  if (stages < 1 || width < 1)
    throw std::invalid_argument("make_pipeline_task: stages/width must be >= 1");

  DagTaskBuilder b(name);
  NodeId barrier = b.add_node(draw(options, rng));
  for (int s = 0; s < stages; ++s) {
    const NodeId next = b.add_node(draw(options, rng));
    add_parallel_for(b, barrier, next, width, options, rng);
    barrier = next;
  }
  b.period(options.period);
  return b.build();
}

model::DagTask make_wavefront_task(const std::string& name, int rows, int cols,
                                   const TopologyOptions& options,
                                   util::Rng& rng) {
  validate(options);
  if (rows < 1 || cols < 1)
    throw std::invalid_argument("make_wavefront_task: rows/cols must be >= 1");

  DagTaskBuilder b(name);
  std::vector<std::vector<NodeId>> cell(rows, std::vector<NodeId>(cols));
  for (int i = 0; i < rows; ++i)
    for (int j = 0; j < cols; ++j) {
      cell[i][j] = b.add_node(draw(options, rng), NodeType::NB);
      if (i > 0) b.add_edge(cell[i - 1][j], cell[i][j]);
      if (j > 0) b.add_edge(cell[i][j - 1], cell[i][j]);
    }
  b.period(options.period);
  return b.build();  // (0,0) is the source, (rows-1, cols-1) the sink
}

model::DagTask make_divide_conquer_task(const std::string& name, int depth,
                                        const TopologyOptions& options,
                                        util::Rng& rng) {
  validate(options);
  if (depth < 1)
    throw std::invalid_argument("make_divide_conquer_task: depth must be >= 1");

  DagTaskBuilder b(name);

  // Recursive helper: returns {entry, exit} of a subtree at `level`
  // (level counts down; level 1 is the deepest fork level).
  struct Builder {
    DagTaskBuilder& b;
    const TopologyOptions& options;
    util::Rng& rng;

    std::pair<NodeId, NodeId> subtree(int level) {
      if (level == 0) {  // leaf kernel
        const NodeId leaf = b.add_node(rng.uniform(options.wcet_min, options.wcet_max));
        return {leaf, leaf};
      }
      if (level == 1 && options.blocking) {
        // Deepest fork level: a blocking region over two leaf kernels.
        const auto fj = b.add_blocking_fork_join(
            rng.uniform(options.wcet_min, options.wcet_max),
            rng.uniform(options.wcet_min, options.wcet_max),
            {rng.uniform(options.wcet_min, options.wcet_max),
             rng.uniform(options.wcet_min, options.wcet_max)});
        return {fj.fork, fj.join};
      }
      const NodeId fork = b.add_node(rng.uniform(options.wcet_min, options.wcet_max));
      const NodeId join = b.add_node(rng.uniform(options.wcet_min, options.wcet_max));
      for (int child = 0; child < 2; ++child) {
        const auto [entry, exit] = subtree(level - 1);
        b.add_edge(fork, entry);
        b.add_edge(exit, join);
      }
      return {fork, join};
    }
  };

  Builder helper{b, options, rng};
  helper.subtree(depth);
  b.period(options.period);
  return b.build();
}

}  // namespace rtpool::gen
