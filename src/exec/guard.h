// Runtime guard: a wait-for-aware stall watchdog for pool-backed graph runs.
//
// The blind per-run timeout the executor used to rely on could only say "the
// run took too long". The watchdog here reproduces, at runtime, the objects
// the paper's deadlock analysis reasons about statically (Section 3):
//
//  * which workers are suspended on which BF barrier — the runtime image of
//    the suspended-thread set whose size the analysis bounds by b̄(τ);
//  * which submitted nodes are starved behind a suspended worker — the
//    reduced-concurrency hazard Lemma 3 / Eq. (3) excludes by placement;
//  * the wait-for relation among the blocked forks — when every in-flight
//    closure is suspended and no queued closure is reachable by an unblocked
//    worker, the blocked forks wait on threads held (cyclically) by each
//    other: the runtime counterpart of the Lemma 2 wait-for cycle on the WC
//    graph (analysis/deadlock.h), and tests cross-check the two witnesses.
//
// Detection is *progress-based*, not wall-clock based: a run that merely
// takes long keeps resetting the budget as long as state changes, so a run
// completing at/near the budget is never misreported as stalled. A stall is
// declared either when the quiescence criterion above holds on consecutive
// samples (a proof: nothing can change state except a wakeup, and satisfied
// barriers are re-notified separately), or when the hard no-progress budget
// expires (an overrun verdict: `budget_exhausted` is set and no wait-for
// cycle is claimed).
//
// Recovery is policy-driven, in the styles production pools use:
//   kReport          — cancel the run and hand back the diagnosis;
//   kEmergencyWorker — inject a temporary pool worker to break the cycle
//                      (TensorFlow-style), recording that the pool size m
//                      assumed by the analysis was exceeded;
//   kFailFast        — cancel and make the executor throw StallError.
//
// Independently of stall detection, the watchdog runs a LIVENESS check over
// the pool's per-worker heartbeat epochs: a worker that exited outside the
// drain protocol (crash) or whose epoch goes stale while busy-but-unblocked
// (hang) is condemned, its in-flight node re-dispatched, and a replacement
// spawned under a bounded respawn-with-backoff policy. A hung worker thus
// yields a liveness verdict (WorkerRecovery), never a spurious deadlock
// report — a parked worker keeps active() above blocked_workers() until it
// is condemned, so the quiescence proof cannot fire on it. When the respawn
// budget runs out the pool degrades to its surviving size and the run
// carries a DegradedReport.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "exec/thread_pool.h"
#include "model/dag_task.h"
#include "util/thread_annotations.h"

namespace rtpool::exec {

/// What the watchdog does once a stall is confirmed.
enum class RecoveryPolicy { kReport, kEmergencyWorker, kFailFast };

const char* to_string(RecoveryPolicy policy);

/// One worker suspended at a BF barrier.
struct BlockedForkInfo {
  model::NodeId fork;                 ///< The BF node whose barrier it waits on.
  std::optional<std::size_t> worker;  ///< Pool worker index (nullopt: external).
  std::size_t remaining = 0;          ///< Unfinished nodes gating the barrier.
};

/// A node submitted to the pool that no unblocked worker can reach.
struct StarvedNodeInfo {
  model::NodeId node;
  std::optional<std::size_t> queued_on;  ///< Target worker (nullopt: shared queue).
};

/// Structured stall diagnosis, the runtime analogue of the static witnesses
/// in analysis/deadlock.h.
struct StallReport {
  std::chrono::milliseconds detected_after{0};  ///< Since run start.
  std::size_t pool_workers = 0;                 ///< m (base workers).
  std::size_t blocked_workers = 0;              ///< Suspended at detection.
  std::vector<BlockedForkInfo> blocked;         ///< Who blocks on which region.
  std::vector<StarvedNodeInfo> starved;         ///< Queued-but-starved nodes.
  /// Wait-for cycle among the blocked forks (each waits for a thread held by
  /// the next, cyclically; a single element = self-starvation behind its own
  /// thread, the Lemma 3 hazard). Empty when `budget_exhausted` — an overrun
  /// verdict makes no deadlock claim.
  std::vector<model::NodeId> wait_cycle;
  RecoveryPolicy policy = RecoveryPolicy::kReport;
  std::size_t emergency_workers_injected = 0;
  /// True when the hard no-progress budget tripped rather than the
  /// quiescence proof (e.g. a node overran or stalled without deadlock).
  bool budget_exhausted = false;

  /// One-paragraph human rendering ("2/2 workers suspended; fork 1 ...").
  std::string describe() const;
};

/// One dead or hung worker detected and handled by the liveness check.
struct WorkerRecovery {
  std::size_t worker = 0;
  std::chrono::milliseconds detected_after{0};  ///< Since run start.
  /// True: the thread exited (worker crash, in-flight closure handed back
  /// by the pool). False: stale heartbeat while busy (hang); the executor
  /// re-dispatched the node the worker was wedged on.
  bool crashed = false;
  bool respawned = false;          ///< A replacement adopted the slot.
  std::size_t requeued = 0;        ///< Queued closures redistributed.
  bool node_resubmitted = false;   ///< In-flight node re-dispatched.

  std::string describe() const;
};

/// Emitted when the respawn budget is exhausted: further lost workers are
/// not replaced and the pool runs on at a smaller size than the analysis
/// admitted — graceful degradation, loudly reported.
struct DegradedReport {
  std::size_t workers_lost = 0;      ///< Condemned without replacement.
  std::size_t respawns_used = 0;     ///< Budget consumed before degrading.
  std::size_t pool_workers_left = 0; ///< Live workers after the last loss.

  std::string describe() const;
};

/// Thrown by the executor under RecoveryPolicy::kFailFast.
class StallError : public std::runtime_error {
 public:
  explicit StallError(StallReport report);
  const StallReport& report() const { return report_; }

 private:
  StallReport report_;
};

/// One poll of the run, produced by the executor's sampling hook.
struct GuardSample {
  bool done = false;
  /// Cheap fingerprint of run state; any change counts as progress and
  /// resets the no-progress budget.
  std::uint64_t progress = 0;
  std::size_t active = 0;       ///< Closures in flight (running or suspended).
  std::size_t blocked = 0;      ///< Workers suspended at a barrier.
  std::size_t pool_workers = 0; ///< Base pool size m (excludes emergencies).
  /// True when some queued closure is reachable by a worker that is not
  /// suspended (so the pool can still make progress on its own).
  bool reachable_work = false;
  /// True when a waiting barrier's condition is already satisfied (a lost
  /// wakeup, e.g. the injected drop-one-notify fault): recovered by
  /// re-notifying, not treated as a stall.
  bool lost_wakeup = false;
  std::vector<BlockedForkInfo> waiting;   ///< Regions at their barrier.
  std::vector<StarvedNodeInfo> starved;   ///< Unreachable submitted nodes.
};

/// Callbacks the watchdog drives; all must be thread-safe (they are invoked
/// from the monitor thread while the run executes).
struct GuardHooks {
  std::function<GuardSample()> sample;
  std::function<void()> renotify;       ///< Wake satisfied-but-sleeping waits.
  std::function<bool()> inject_worker;  ///< Add a temp worker; false = refused.
  std::function<void()> cancel;         ///< Cancel the run, release all waits.

  // Liveness hooks (all optional; absent = liveness check disabled).
  /// Per-slot heartbeat/lifecycle snapshot (ThreadPool::worker_status).
  std::function<std::vector<ThreadPool::WorkerStatus>()> worker_status;
  /// Condemn a dead/hung slot; `redistribute` hands its queue to live
  /// workers (used when no respawn will follow).
  std::function<ThreadPool::CondemnOutcome(std::size_t worker, bool redistribute)>
      condemn;
  /// Spawn a replacement adopting the slot; false = refused.
  std::function<bool(std::size_t worker)> respawn;
  /// Re-dispatch the node the worker was wedged on (executor-side);
  /// returns true when a node was actually resubmitted.
  std::function<bool(std::size_t worker)> resubmit;
};

struct GuardOptions {
  RecoveryPolicy policy = RecoveryPolicy::kReport;
  std::chrono::milliseconds poll{5};      ///< Sample interval.
  std::chrono::milliseconds budget{2000}; ///< Hard no-progress budget.
  /// Injection cap under kEmergencyWorker; once exhausted the watchdog
  /// falls back to cancel + report.
  std::size_t max_emergency_workers = 2;
  /// Confirm the quiescence criterion on this many consecutive samples
  /// before declaring a stall (filters transient pop/submit windows).
  int confirm_samples = 2;

  /// Liveness: a busy, unblocked worker whose heartbeat epoch has not moved
  /// for this long is presumed hung. Must exceed the longest legitimate
  /// un-heartbeated stretch (injected kStall sleeps included).
  std::chrono::milliseconds liveness{400};
  /// Replacement workers spawned per run before degrading.
  std::size_t max_respawns = 4;
  /// Delay before the SECOND respawn; doubles per use (the first respawn is
  /// immediate — a single crash should not cost latency).
  std::chrono::milliseconds respawn_backoff{20};
};

/// Monitor thread guarding one graph run. Start at run begin, stop() (or
/// destroy) after the run finishes; results are valid after stop().
class Watchdog {
 public:
  Watchdog(GuardOptions options, GuardHooks hooks);
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Stop sampling and join the monitor thread (idempotent).
  void stop();

  /// The stall diagnosis, if one was confirmed (kept from the FIRST
  /// confirmation even when emergency workers then rescue the run).
  const std::optional<StallReport>& stall() const { return stall_; }

  std::size_t emergency_workers_injected() const { return injected_; }
  std::size_t lost_wakeups_recovered() const { return lost_wakeups_; }

  /// Dead/hung workers detected and handled, in detection order.
  const std::vector<WorkerRecovery>& recoveries() const { return recoveries_; }
  /// Present when the respawn budget ran out and workers stayed lost.
  const std::optional<DegradedReport>& degraded() const { return degraded_; }
  std::size_t respawns_used() const { return respawns_used_; }

 private:
  void loop();

  GuardOptions options_;
  GuardHooks hooks_;

  util::Mutex mutex_;
  util::CondVar cv_;
  bool stop_ RTPOOL_GUARDED_BY(mutex_) = false;

  // Written by the monitor thread only; read after stop() joins it.
  std::optional<StallReport> stall_;
  std::size_t injected_ = 0;
  std::size_t lost_wakeups_ = 0;
  std::vector<WorkerRecovery> recoveries_;
  std::optional<DegradedReport> degraded_;
  std::size_t respawns_used_ = 0;

  std::thread thread_;
};

}  // namespace rtpool::exec
