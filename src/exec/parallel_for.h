// Eigen/TensorFlow-style blocking parallel-for on a ThreadPool.
//
// The caller splits [begin, end) into chunks, submits them to the pool and
// *waits on a condition variable* until all chunks complete — exactly the
// Listing-1 pattern the paper analyzes. When the caller is itself a pool
// worker (a nested parallel-for, as in nested Eigen expressions), the wait
// suspends that worker and reduces the pool's available concurrency; with
// enough concurrent nested calls the pool deadlocks. Use the timeout to
// detect that in tests and demos instead of hanging.
#pragma once

#include <chrono>
#include <cstddef>
#include <functional>

#include "exec/thread_pool.h"

namespace rtpool::exec {

struct ParallelForOptions {
  /// Iterations per submitted chunk (>= 1).
  std::size_t grain = 1;
  /// 0 = wait forever; otherwise give up (and cancel outstanding chunks)
  /// after this budget and return false.
  std::chrono::milliseconds timeout{0};
};

/// Run body(i) for every i in [begin, end) on `pool`, blocking the calling
/// thread until completion. Returns false iff the timeout fired first —
/// outstanding chunks are cancelled (their iterations are skipped).
/// An empty range returns true immediately.
/// Throws std::invalid_argument on grain == 0 and std::logic_error when the
/// pool uses per-worker queues (chunks have no natural home there; use
/// GraphExecutor with an assignment instead).
bool parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  const ParallelForOptions& options = {});

}  // namespace rtpool::exec
