// A real worker thread pool in the style used by Eigen/TensorFlow.
//
// Two queue disciplines are supported, mirroring the intra-pool scheduling
// policies of the paper:
//  * kShared    — one global FIFO protected by a mutex (the paper's single
//                 logical work-queue of global intra-pool scheduling);
//  * kPerWorker — one FIFO per worker; submit_to() targets a worker
//                 (partitioned intra-pool scheduling). Optional stealing
//                 approximates Eigen's randomized work-stealing, which the
//                 paper notes replicates global scheduling behaviour.
//
// The pool exposes the *blocked worker* instrumentation the paper's model
// is about: closures that wait on condition variables while holding a
// worker reduce the available concurrency; `blocked_workers()` reports how
// many workers are currently suspended this way (see BlockedScope), and
// `worker_blocked(i)` which ones — the runtime guard (exec/guard.h) samples
// both to reconstruct the wait-for graph of a stalled run.
//
// The pool is ELASTIC: `add_workers()` / `retire_workers()` change the
// live worker set at runtime. Each worker occupies a *slot* (a stable
// index; per-worker queues are indexed by slot). Retiring follows a drain
// protocol: the worker finishes its current closure, stops stealing, hands
// its queued work back to the surviving workers and exits. Slots are never
// reused by retirement; a slot is re-populated only by `respawn_worker()`,
// which spawns a replacement serving the same queue.
//
// Fault tolerance (driven by the guard watchdog, exec/guard.h):
//  * heartbeat epochs: every worker bumps a per-slot epoch counter as it
//    pops, completes and (via `heartbeat()`) while executing closures. A
//    busy, unblocked worker whose epoch goes stale is presumed hung.
//  * crash simulation: a closure that throws WorkerDeathSignal terminates
//    its worker; the worker hands the in-flight closure back to the queue
//    it was popped from first (a transactional pop), so nothing is lost.
//  * hang simulation: a closure that calls `park_current_worker()` leaves
//    its worker asleep until pool shutdown — the runtime image of a thread
//    stuck in foreign code. The watchdog detects the stale heartbeat.
//  * recovery: `condemn_worker()` marks a dead/hung slot, settles its
//    accounting and (optionally) redistributes its queue;
//    `respawn_worker()` spawns a replacement adopting the slot. Submissions
//    targeting a condemned slot without a replacement are redirected to a
//    live worker (`redirected_submits()` counts them — the degraded path).
//
// Robustness features used by the guard:
//  * emergency workers (spawn_emergency_worker): temporary extra threads
//    injected to break a blocking-chain deadlock, TensorFlow-style. They
//    drain any queue (ignoring the partitioned placement — that is the
//    point) and retire at pool destruction.
//  * stealing suppression (SuppressStealing): a partitioned run can turn
//    stealing off for its duration, since stealing off another worker's
//    queue breaks the Eq. (3) placement condition the partitioned analysis
//    assumes.
//  * exception containment: a closure that throws no longer terminates the
//    process; the pool records it (uncaught_exceptions()) and the worker
//    survives. The GraphExecutor catches node-body exceptions itself; this
//    is the safety net for foreign closures.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "util/thread_annotations.h"

namespace rtpool::exec {

/// Thrown by a pool closure to simulate its worker crashing mid-execution
/// (the worker_death fault, exec/fault.h). The worker loop catches it,
/// hands the in-flight closure back to the queue it was popped from and
/// terminates the worker thread. Deliberately NOT derived from
/// std::exception so generic handlers inside node bodies cannot swallow it.
struct WorkerDeathSignal {};

/// Internal: unwinds a parked (hung) worker out of its closure when the
/// pool shuts down, so the thread can exit its loop and be joined.
struct WorkerRetireSignal {};

class ThreadPool {
 public:
  enum class QueueMode { kShared, kPerWorker };

  /// Lifecycle of a worker slot.
  enum class WorkerState : std::uint8_t {
    kLive,      ///< Serving its queue.
    kRetiring,  ///< Asked to drain: finishes the current closure, hands its
                ///< queue back, then exits.
    kRetired,   ///< Exited via the drain protocol.
    kDead,      ///< Crashed/hung and condemned (or crashed on its own).
  };

  /// Emergency workers get indices at this offset so they can never collide
  /// with a slot created later by add_workers().
  static constexpr std::size_t kEmergencyIndexBase = std::size_t{1} << 32;

  /// Point-in-time liveness snapshot of one slot, polled by the guard
  /// watchdog to detect dead (exited) and hung (stale-heartbeat) workers.
  struct WorkerStatus {
    std::size_t worker = 0;
    WorkerState state = WorkerState::kLive;
    std::uint64_t epoch = 0;  ///< Heartbeat counter; stale while busy = hung.
    bool busy = false;        ///< Executing a closure right now.
    bool blocked = false;     ///< Suspended in a BlockedScope (legitimate).
    bool exited = false;      ///< The thread left its loop.
    bool condemned = false;   ///< Already recovered by condemn_worker().
  };

  /// Outcome of condemn_worker().
  struct CondemnOutcome {
    bool condemned = false;    ///< False: already condemned / bad index.
    bool was_parked = false;   ///< The worker was asleep in park_current_worker().
    std::size_t requeued = 0;  ///< Closures redistributed off its queue.
    std::size_t live_left = 0; ///< Live workers remaining afterwards.
  };

  /// Spawns `workers` threads. With kPerWorker and `steal` set, an idle
  /// worker scans other queues before sleeping.
  explicit ThreadPool(std::size_t workers, QueueMode mode = QueueMode::kShared,
                      bool steal = false);

  /// Drains nothing: pending closures are abandoned; blocked closures must
  /// have been cancelled by their owner before destruction (GraphExecutor
  /// guarantees this). Emergency, added, respawned and parked workers are
  /// all released and joined here too.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Live regular workers — the pool size m the analyses reason about.
  /// Excludes emergency workers, retired/dead slots and parked (hung)
  /// workers that were condemned.
  std::size_t worker_count() const { return live_count_.load(std::memory_order_relaxed); }

  /// Total slots ever created (live or not); per-worker queue indices and
  /// placement ThreadIds range over [0, slot_count()).
  std::size_t slot_count() const { return slot_count_.load(std::memory_order_relaxed); }

  QueueMode mode() const { return mode_; }
  bool stealing_configured() const { return steal_; }

  /// True while any SuppressStealing scope is alive.
  bool stealing_suppressed() const {
    return steal_suppressed_.load(std::memory_order_relaxed) > 0;
  }

  // ---- elasticity ----

  /// Spawn `n` additional live workers (new slots, new queues under
  /// kPerWorker). Returns the new worker_count(). No-op when shutting down.
  std::size_t add_workers(std::size_t n);

  /// Retire the `n` highest-index live workers under the drain protocol:
  /// each finishes its current closure, stops stealing, hands its queued
  /// closures back to the surviving workers (round-robin) and exits.
  /// Throws std::invalid_argument when fewer than one live worker would
  /// remain. Returns the new worker_count().
  std::size_t retire_workers(std::size_t n);

  /// Mark slot `worker` dead and settle its accounting: a parked (hung)
  /// worker stops counting as active, and — when `redistribute` is set —
  /// its queued closures are handed to live workers (use redistribute =
  /// false when a respawn_worker() call will follow, so the replacement
  /// inherits the queue and the placement survives). Idempotent per slot.
  CondemnOutcome condemn_worker(std::size_t worker, bool redistribute);

  /// Spawn a replacement worker adopting slot `worker` (same queue, same
  /// placement ThreadId). Returns false when the slot is still live or the
  /// pool is shutting down.
  bool respawn_worker(std::size_t worker);

  /// Liveness snapshot of every slot (guard watchdog input).
  std::vector<WorkerStatus> worker_status() const;

  /// True when slot i exists and is live.
  bool worker_live(std::size_t i) const;

  /// Bump the calling pool worker's heartbeat epoch (no-op off-pool).
  /// Long-running closures call this periodically so a busy worker is
  /// never mistaken for a hung one.
  static void heartbeat();

  /// Crash/hang telemetry.
  std::size_t worker_deaths() const { return deaths_.load(std::memory_order_relaxed); }
  std::size_t condemned_workers() const { return condemned_.load(std::memory_order_relaxed); }
  std::size_t respawned_workers() const { return respawned_.load(std::memory_order_relaxed); }
  std::size_t parked_workers() const { return parked_.load(std::memory_order_relaxed); }
  std::size_t handed_back() const { return handed_back_.load(std::memory_order_relaxed); }
  std::size_t redirected_submits() const { return redirected_.load(std::memory_order_relaxed); }

  /// Hang simulation (the worker_hang fault): the calling pool worker goes
  /// to sleep until the pool shuts down, then unwinds via
  /// WorkerRetireSignal. Its accounting (active, busy) is settled by the
  /// first of condemn_worker() or the wakeup. Returns immediately when the
  /// caller is not a regular pool worker.
  void park_current_worker();

  // ---- submission ----

  /// Enqueue a closure. kShared: into the shared queue. kPerWorker: into
  /// `target`'s queue when given, else round-robin across LIVE workers.
  /// A target slot that is condemned without a replacement is redirected
  /// to a live worker. `target` with kShared throws std::logic_error.
  void submit(std::function<void()> fn,
              std::optional<std::size_t> target = std::nullopt);

  /// Enqueue several closures atomically (one lock hold): no worker can
  /// observe a state where only a prefix of the batch is queued. Used by
  /// GraphExecutor to release all successors of a completed node at once,
  /// the way a precedence constraint opens in the paper's model.
  /// kPerWorker: items are spread round-robin over live workers; use
  /// submit_batch_to() to honor a placement.
  void submit_batch(std::vector<std::function<void()>> fns);

  /// Atomic targeted batch (kPerWorker only): each closure goes to its
  /// paired worker queue, all under one lock hold.
  void submit_batch_to(
      std::vector<std::pair<std::size_t, std::function<void()>>> items);

  /// Enqueue into a specific worker's queue (kPerWorker only; throws
  /// std::logic_error in kShared mode, std::out_of_range on a bad index).
  void submit_to(std::size_t worker, std::function<void()> fn);

  /// Index of the pool worker executing the calling thread, if any.
  /// Emergency workers report indices >= kEmergencyIndexBase.
  static std::optional<std::size_t> current_worker();

  /// Number of workers currently blocked inside a BlockedScope (suspended
  /// on a synchronization barrier): worker_count() − blocked_workers() is
  /// the pool's available concurrency l(t, τ).
  std::size_t blocked_workers() const { return blocked_.load(std::memory_order_relaxed); }

  /// Whether worker slot i is currently suspended in a BlockedScope.
  bool worker_blocked(std::size_t i) const;

  /// Highest number of simultaneously blocked workers observed.
  std::size_t max_blocked_workers() const { return max_blocked_.load(std::memory_order_relaxed); }

  /// Closures currently in flight (popped and running OR suspended at a
  /// barrier). active() == blocked_workers() means every busy worker is
  /// suspended — the guard's quiescence signal. Workers condemned while
  /// parked are settled out of this count.
  std::size_t active() const { return active_.load(std::memory_order_relaxed); }

  /// Total closures executed (diagnostics).
  std::size_t executed() const { return executed_.load(std::memory_order_relaxed); }

  /// Closures taken from another worker's queue (kPerWorker + steal).
  std::size_t steals() const { return steals_.load(std::memory_order_relaxed); }

  /// Closures that escaped with an exception (contained by the worker).
  std::size_t uncaught_exceptions() const {
    return uncaught_.load(std::memory_order_relaxed);
  }

  /// Message of the first contained exception ("" if none yet).
  std::string first_uncaught_error() const;

  /// Spawn one temporary worker (joined at destruction). Emergency workers
  /// pop from the shared queue and, in kPerWorker mode, from ANY worker
  /// queue regardless of the steal setting — their job is to break a
  /// blocking chain that has suspended the regular workers. Returns false
  /// if the pool is shutting down.
  bool spawn_emergency_worker();

  /// Emergency workers spawned so far.
  std::size_t emergency_worker_count() const {
    return emergency_count_.load(std::memory_order_relaxed);
  }

  /// RAII marker: the enclosing worker counts as blocked while in scope.
  /// Used around condition-variable waits inside pool closures.
  class BlockedScope {
   public:
    explicit BlockedScope(ThreadPool& pool);
    ~BlockedScope();
    BlockedScope(const BlockedScope&) = delete;
    BlockedScope& operator=(const BlockedScope&) = delete;

   private:
    ThreadPool& pool_;
  };

  /// RAII: regular workers stop stealing while any suppression is alive
  /// (emergency workers still steal). Used by partitioned graph runs.
  class SuppressStealing {
   public:
    explicit SuppressStealing(ThreadPool& pool) : pool_(pool) {
      pool_.steal_suppressed_.fetch_add(1, std::memory_order_relaxed);
    }
    ~SuppressStealing() {
      pool_.steal_suppressed_.fetch_sub(1, std::memory_order_relaxed);
    }
    SuppressStealing(const SuppressStealing&) = delete;
    SuppressStealing& operator=(const SuppressStealing&) = delete;

   private:
    ThreadPool& pool_;
  };

 private:
  /// Per-slot worker bookkeeping. Heap-allocated and shared so a parked
  /// (hung) thread can keep its OWN generation of the slot after a
  /// respawn replaced slots_[i] with a fresh one.
  struct Slot {
    explicit Slot(std::size_t i) : index(i) {}
    const std::size_t index;
    std::atomic<std::uint64_t> epoch{0};
    std::atomic<WorkerState> state{WorkerState::kLive};
    std::atomic<bool> busy{false};
    std::atomic<bool> blocked{false};
    std::atomic<bool> exited{false};
    std::atomic<bool> condemned{false};
    /// No replacement is coming for this slot (condemned with
    /// redistribution, or retiring): submits targeting it may be
    /// redirected to a live slot. While false on a non-live slot, a
    /// respawned replacement will adopt the queue, so placement-
    /// constrained closures must stay put (Eq. (3) preservation).
    std::atomic<bool> abandoned{false};
    std::atomic<bool> parked{false};
    /// Exactly-once settlement of a parked worker's active/busy counts
    /// (first of condemn_worker() or the shutdown wakeup wins).
    std::atomic<bool> park_settled{false};
  };

  void worker_loop(std::size_t index);
  bool try_pop(std::size_t index, std::function<void()>& out) RTPOOL_REQUIRES(mutex_);
  void record_uncaught();
  /// Round-robin pick among live slots; nullopt when none are live.
  std::optional<std::size_t> next_live_slot() RTPOOL_REQUIRES(mutex_);
  /// Redirect `worker` to a live slot when it is not live (degraded path).
  std::size_t route_target(std::size_t worker) RTPOOL_REQUIRES(mutex_);
  /// Move slot `index`'s queued closures to live workers; returns count.
  std::size_t hand_back_queue(std::size_t index) RTPOOL_REQUIRES(mutex_);
  void remove_live_slot(std::size_t index) RTPOOL_REQUIRES(mutex_);
  void spawn_slot_thread(std::size_t index) RTPOOL_REQUIRES(mutex_);

  QueueMode mode_;
  bool steal_;

  mutable util::Mutex mutex_;
  util::CondVar cv_;
  std::deque<std::function<void()>> shared_queue_ RTPOOL_GUARDED_BY(mutex_);
  std::vector<std::deque<std::function<void()>>> worker_queues_
      RTPOOL_GUARDED_BY(mutex_);
  std::vector<std::shared_ptr<Slot>> slots_ RTPOOL_GUARDED_BY(mutex_);
  /// Live slot indices, ascending (round-robin submission domain).
  std::vector<std::size_t> live_slots_ RTPOOL_GUARDED_BY(mutex_);
  bool shutting_down_ RTPOOL_GUARDED_BY(mutex_) = false;
  std::vector<std::thread> emergency_workers_ RTPOOL_GUARDED_BY(mutex_);
  /// Threads spawned after construction (add_workers / respawn_worker).
  std::vector<std::thread> extra_workers_ RTPOOL_GUARDED_BY(mutex_);
  std::string first_uncaught_ RTPOOL_GUARDED_BY(mutex_);

  std::atomic<std::size_t> live_count_{0};
  std::atomic<std::size_t> slot_count_{0};
  std::atomic<std::size_t> blocked_{0};
  std::atomic<std::size_t> max_blocked_{0};
  std::atomic<std::size_t> active_{0};
  std::atomic<std::size_t> executed_{0};
  std::atomic<std::size_t> steals_{0};
  std::atomic<std::size_t> uncaught_{0};
  std::atomic<std::size_t> emergency_count_{0};
  std::atomic<std::size_t> deaths_{0};
  std::atomic<std::size_t> condemned_{0};
  std::atomic<std::size_t> respawned_{0};
  std::atomic<std::size_t> parked_{0};
  std::atomic<std::size_t> handed_back_{0};
  std::atomic<std::size_t> redirected_{0};
  std::atomic<std::size_t> rr_next_{0};
  std::atomic<int> steal_suppressed_{0};

  std::vector<std::thread> workers_;
};

}  // namespace rtpool::exec
