// A real worker thread pool in the style used by Eigen/TensorFlow.
//
// Two queue disciplines are supported, mirroring the intra-pool scheduling
// policies of the paper:
//  * kShared    — one global FIFO protected by a mutex (the paper's single
//                 logical work-queue of global intra-pool scheduling);
//  * kPerWorker — one FIFO per worker; submit_to() targets a worker
//                 (partitioned intra-pool scheduling). Optional stealing
//                 approximates Eigen's randomized work-stealing, which the
//                 paper notes replicates global scheduling behaviour.
//
// The pool exposes the *blocked worker* instrumentation the paper's model
// is about: closures that wait on condition variables while holding a
// worker reduce the available concurrency; `blocked_workers()` reports how
// many workers are currently suspended this way (see BlockedScope), and
// `worker_blocked(i)` which ones — the runtime guard (exec/guard.h) samples
// both to reconstruct the wait-for graph of a stalled run.
//
// Robustness features used by the guard:
//  * emergency workers (spawn_emergency_worker): temporary extra threads
//    injected to break a blocking-chain deadlock, TensorFlow-style. They
//    drain any queue (ignoring the partitioned placement — that is the
//    point) and retire at pool destruction.
//  * stealing suppression (SuppressStealing): a partitioned run can turn
//    stealing off for its duration, since stealing off another worker's
//    queue breaks the Eq. (3) placement condition the partitioned analysis
//    assumes.
//  * exception containment: a closure that throws no longer terminates the
//    process; the pool records it (uncaught_exceptions()) and the worker
//    survives. The GraphExecutor catches node-body exceptions itself; this
//    is the safety net for foreign closures.
#pragma once

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "util/thread_annotations.h"

namespace rtpool::exec {

class ThreadPool {
 public:
  enum class QueueMode { kShared, kPerWorker };

  /// Spawns `workers` threads. With kPerWorker and `steal` set, an idle
  /// worker scans other queues before sleeping.
  explicit ThreadPool(std::size_t workers, QueueMode mode = QueueMode::kShared,
                      bool steal = false);

  /// Drains nothing: pending closures are abandoned; blocked closures must
  /// have been cancelled by their owner before destruction (GraphExecutor
  /// guarantees this). Emergency workers are joined here too.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Base pool size m; excludes emergency workers.
  std::size_t worker_count() const { return base_workers_; }
  QueueMode mode() const { return mode_; }
  bool stealing_configured() const { return steal_; }

  /// Enqueue a closure. kShared: into the shared queue. kPerWorker: into
  /// `target`'s queue when given, else round-robin across workers (the old
  /// behaviour silently funnelled everything to worker 0, violating any
  /// partitioned placement). `target` with kShared throws std::logic_error.
  void submit(std::function<void()> fn,
              std::optional<std::size_t> target = std::nullopt);

  /// Enqueue several closures atomically (one lock hold): no worker can
  /// observe a state where only a prefix of the batch is queued. Used by
  /// GraphExecutor to release all successors of a completed node at once,
  /// the way a precedence constraint opens in the paper's model.
  /// kPerWorker: items are spread round-robin; use submit_batch_to() to
  /// honor a placement.
  void submit_batch(std::vector<std::function<void()>> fns);

  /// Atomic targeted batch (kPerWorker only): each closure goes to its
  /// paired worker queue, all under one lock hold.
  void submit_batch_to(
      std::vector<std::pair<std::size_t, std::function<void()>>> items);

  /// Enqueue into a specific worker's queue (kPerWorker only; throws
  /// std::logic_error in kShared mode, std::out_of_range on a bad index).
  void submit_to(std::size_t worker, std::function<void()> fn);

  /// Index of the pool worker executing the calling thread, if any.
  /// Emergency workers report indices >= worker_count().
  static std::optional<std::size_t> current_worker();

  /// Number of workers currently blocked inside a BlockedScope (suspended
  /// on a synchronization barrier): worker_count() − blocked_workers() is
  /// the pool's available concurrency l(t, τ).
  std::size_t blocked_workers() const { return blocked_.load(std::memory_order_relaxed); }

  /// Whether base worker i is currently suspended in a BlockedScope.
  bool worker_blocked(std::size_t i) const;

  /// Highest number of simultaneously blocked workers observed.
  std::size_t max_blocked_workers() const { return max_blocked_.load(std::memory_order_relaxed); }

  /// Closures currently in flight (popped and running OR suspended at a
  /// barrier). active() == blocked_workers() means every busy worker is
  /// suspended — the guard's quiescence signal.
  std::size_t active() const { return active_.load(std::memory_order_relaxed); }

  /// Total closures executed (diagnostics).
  std::size_t executed() const { return executed_.load(std::memory_order_relaxed); }

  /// Closures taken from another worker's queue (kPerWorker + steal).
  std::size_t steals() const { return steals_.load(std::memory_order_relaxed); }

  /// Closures that escaped with an exception (contained by the worker).
  std::size_t uncaught_exceptions() const {
    return uncaught_.load(std::memory_order_relaxed);
  }

  /// Message of the first contained exception ("" if none yet).
  std::string first_uncaught_error() const;

  /// Spawn one temporary worker (joined at destruction). Emergency workers
  /// pop from the shared queue and, in kPerWorker mode, from ANY worker
  /// queue regardless of the steal setting — their job is to break a
  /// blocking chain that has suspended the regular workers. Returns false
  /// if the pool is shutting down.
  bool spawn_emergency_worker();

  /// Emergency workers spawned so far.
  std::size_t emergency_worker_count() const {
    return emergency_count_.load(std::memory_order_relaxed);
  }

  /// RAII marker: the enclosing worker counts as blocked while in scope.
  /// Used around condition-variable waits inside pool closures.
  class BlockedScope {
   public:
    explicit BlockedScope(ThreadPool& pool);
    ~BlockedScope();
    BlockedScope(const BlockedScope&) = delete;
    BlockedScope& operator=(const BlockedScope&) = delete;

   private:
    ThreadPool& pool_;
    std::optional<std::size_t> flagged_worker_;
  };

  /// RAII: regular workers stop stealing while any suppression is alive
  /// (emergency workers still steal). Used by partitioned graph runs.
  class SuppressStealing {
   public:
    explicit SuppressStealing(ThreadPool& pool) : pool_(pool) {
      pool_.steal_suppressed_.fetch_add(1, std::memory_order_relaxed);
    }
    ~SuppressStealing() {
      pool_.steal_suppressed_.fetch_sub(1, std::memory_order_relaxed);
    }
    SuppressStealing(const SuppressStealing&) = delete;
    SuppressStealing& operator=(const SuppressStealing&) = delete;

   private:
    ThreadPool& pool_;
  };

 private:
  void worker_loop(std::size_t index);
  bool try_pop(std::size_t index, std::function<void()>& out) RTPOOL_REQUIRES(mutex_);
  void record_uncaught();

  QueueMode mode_;
  bool steal_;
  std::size_t base_workers_;

  mutable util::Mutex mutex_;
  util::CondVar cv_;
  std::deque<std::function<void()>> shared_queue_ RTPOOL_GUARDED_BY(mutex_);
  std::vector<std::deque<std::function<void()>>> worker_queues_
      RTPOOL_GUARDED_BY(mutex_);
  bool shutting_down_ RTPOOL_GUARDED_BY(mutex_) = false;
  std::vector<std::thread> emergency_workers_ RTPOOL_GUARDED_BY(mutex_);
  std::string first_uncaught_ RTPOOL_GUARDED_BY(mutex_);

  std::atomic<std::size_t> blocked_{0};
  std::atomic<std::size_t> max_blocked_{0};
  std::atomic<std::size_t> active_{0};
  std::atomic<std::size_t> executed_{0};
  std::atomic<std::size_t> steals_{0};
  std::atomic<std::size_t> uncaught_{0};
  std::atomic<std::size_t> emergency_count_{0};
  std::atomic<std::size_t> rr_next_{0};
  std::atomic<int> steal_suppressed_{0};

  /// Per base-worker blocked flag (fixed size; emergency workers are only
  /// counted in blocked_).
  std::unique_ptr<std::atomic<bool>[]> worker_blocked_;

  std::vector<std::thread> workers_;
};

}  // namespace rtpool::exec
