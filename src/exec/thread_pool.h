// A real worker thread pool in the style used by Eigen/TensorFlow.
//
// Two queue disciplines are supported, mirroring the intra-pool scheduling
// policies of the paper:
//  * kShared    — one global FIFO protected by a mutex (the paper's single
//                 logical work-queue of global intra-pool scheduling);
//  * kPerWorker — one FIFO per worker; submit_to() targets a worker
//                 (partitioned intra-pool scheduling). Optional stealing
//                 approximates Eigen's randomized work-stealing, which the
//                 paper notes replicates global scheduling behaviour.
//
// The pool exposes the *blocked worker* instrumentation the paper's model
// is about: closures that wait on condition variables while holding a
// worker reduce the available concurrency; `blocked_workers()` reports how
// many workers are currently suspended this way (see BlockedScope).
#pragma once

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <optional>
#include <thread>
#include <vector>

#include "util/thread_annotations.h"

namespace rtpool::exec {

class ThreadPool {
 public:
  enum class QueueMode { kShared, kPerWorker };

  /// Spawns `workers` threads. With kPerWorker and `steal` set, an idle
  /// worker scans other queues before sleeping.
  explicit ThreadPool(std::size_t workers, QueueMode mode = QueueMode::kShared,
                      bool steal = false);

  /// Drains nothing: pending closures are abandoned; blocked closures must
  /// have been cancelled by their owner before destruction (GraphExecutor
  /// guarantees this).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const { return workers_.size(); }
  QueueMode mode() const { return mode_; }

  /// Enqueue into the shared queue (kShared) or into the least-index worker
  /// queue (kPerWorker).
  void submit(std::function<void()> fn);

  /// Enqueue several closures atomically (one lock hold): no worker can
  /// observe a state where only a prefix of the batch is queued. Used by
  /// GraphExecutor to release all successors of a completed node at once,
  /// the way a precedence constraint opens in the paper's model.
  void submit_batch(std::vector<std::function<void()>> fns);

  /// Enqueue into a specific worker's queue (kPerWorker only; throws
  /// std::logic_error in kShared mode, std::out_of_range on a bad index).
  void submit_to(std::size_t worker, std::function<void()> fn);

  /// Index of the pool worker executing the calling thread, if any.
  static std::optional<std::size_t> current_worker();

  /// Number of workers currently blocked inside a BlockedScope (suspended
  /// on a synchronization barrier): worker_count() − blocked_workers() is
  /// the pool's available concurrency l(t, τ).
  std::size_t blocked_workers() const { return blocked_.load(std::memory_order_relaxed); }

  /// Highest number of simultaneously blocked workers observed.
  std::size_t max_blocked_workers() const { return max_blocked_.load(std::memory_order_relaxed); }

  /// Total closures executed (diagnostics).
  std::size_t executed() const { return executed_.load(std::memory_order_relaxed); }

  /// RAII marker: the enclosing worker counts as blocked while in scope.
  /// Used around condition-variable waits inside pool closures.
  class BlockedScope {
   public:
    explicit BlockedScope(ThreadPool& pool);
    ~BlockedScope();
    BlockedScope(const BlockedScope&) = delete;
    BlockedScope& operator=(const BlockedScope&) = delete;

   private:
    ThreadPool& pool_;
  };

 private:
  void worker_loop(std::size_t index);
  bool try_pop(std::size_t index, std::function<void()>& out) RTPOOL_REQUIRES(mutex_);

  QueueMode mode_;
  bool steal_;

  mutable util::Mutex mutex_;
  util::CondVar cv_;
  std::deque<std::function<void()>> shared_queue_ RTPOOL_GUARDED_BY(mutex_);
  std::vector<std::deque<std::function<void()>>> worker_queues_
      RTPOOL_GUARDED_BY(mutex_);
  bool shutting_down_ RTPOOL_GUARDED_BY(mutex_) = false;

  std::atomic<std::size_t> blocked_{0};
  std::atomic<std::size_t> max_blocked_{0};
  std::atomic<std::size_t> executed_{0};

  std::vector<std::thread> workers_;
};

}  // namespace rtpool::exec
