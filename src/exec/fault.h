// Seeded fault injection for pool-backed graph runs.
//
// A FaultPlan assigns at most one fault to each node of a DagTask:
//
//   kWcetOverrun — the node's synthetic busy-work is multiplied by
//                  `overrun_factor`: the WCET assumption of the RTA (Eq. 4)
//                  is violated on purpose;
//   kStall       — the node sleeps for `stall` on top of its work: a
//                  long-latency hiccup (page fault, I/O) that must trip the
//                  watchdog's *budget*, never its deadlock verdict;
//   kThrow       — the node body throws: exercises the exception-safe
//                  worker path (failed_nodes in ExecReport, no terminate);
//   kDropNotify  — the notify that would open this BJ node's barrier is
//                  dropped once: a lost wakeup the watchdog must detect
//                  (satisfied-but-sleeping barrier) and heal by re-notify;
//   kWorkerDeath — the worker executing this node crashes (the closure is
//                  handed back to its queue first, so the node is re-run
//                  exactly once by the recovery path): exercises dead-worker
//                  detection, requeue and respawn-with-backoff;
//   kWorkerHang  — the worker executing this node wedges forever (parked
//                  until pool shutdown): the watchdog must read the stale
//                  heartbeat as a LIVENESS failure — never as a deadlock —
//                  condemn the worker and re-dispatch the node.
//
// Lethal kinds (death/hang) are only ever assigned to NB/BC nodes, which
// run as dedicated plain closures in both execution modes: killing a BF/BJ
// closure mid-barrier could replay fork/join side effects. (The executor
// injects lethal faults before ANY node side effect, so the re-run executes
// the node exactly once.)
//
// Plans are either hand-built or drawn by make_random_fault_plan(), which
// derives every per-node decision from (seed, node id) via Rng::fork_with —
// a failure observed in the stress harness replays exactly from its seed,
// independent of sampling order.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>

#include "model/dag_task.h"

namespace rtpool::exec {

enum class FaultKind : std::uint8_t {
  kNone,
  kWcetOverrun,
  kStall,
  kThrow,
  kDropNotify,
  kWorkerDeath,
  kWorkerHang,
};

const char* to_string(FaultKind kind);

struct NodeFault {
  FaultKind kind = FaultKind::kNone;
  double overrun_factor = 1.0;         ///< kWcetOverrun: busy-work multiplier.
  std::chrono::milliseconds stall{0};  ///< kStall: extra sleep.
  std::string message;                 ///< kThrow: exception text.
};

/// Per-node fault assignment for one run. Node ids refer to the task the
/// plan was built for; the executor ignores entries for unknown ids.
class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(std::uint64_t seed) : seed_(seed) {}

  void set(model::NodeId v, NodeFault fault);

  /// The fault for node v, or nullptr when v runs clean.
  const NodeFault* find(model::NodeId v) const;

  bool empty() const { return faults_.empty(); }
  std::size_t count(FaultKind kind) const;
  std::uint64_t seed() const { return seed_; }
  const std::map<model::NodeId, NodeFault>& faults() const { return faults_; }

 private:
  std::uint64_t seed_ = 0;
  std::map<model::NodeId, NodeFault> faults_;
};

/// Per-kind injection probabilities (independent rolls, first hit wins in
/// the order drop-notify, worker-death, worker-hang, throw, stall,
/// overrun) and magnitude caps.
struct FaultPlanParams {
  double p_overrun = 0.0;
  double p_stall = 0.0;
  double p_throw = 0.0;
  double p_drop_notify = 0.0;   ///< Only ever applied to BJ nodes.
  double p_worker_death = 0.0;  ///< Only ever applied to NB/BC nodes.
  double p_worker_hang = 0.0;   ///< Only ever applied to NB/BC nodes.
  double max_overrun_factor = 8.0;
  std::chrono::milliseconds max_stall{30};
};

/// Draw a plan for `task`: node v's fault depends only on (seed, v).
FaultPlan make_random_fault_plan(const model::DagTask& task,
                                 const FaultPlanParams& params,
                                 std::uint64_t seed);

/// "seed=7: node 3 throw, node 5 overrun x4.2" rendering.
std::string describe(const FaultPlan& plan);

}  // namespace rtpool::exec
