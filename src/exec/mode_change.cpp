#include "exec/mode_change.h"

#include <chrono>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "analysis/deadlock.h"
#include "util/json.h"

namespace rtpool::exec {

namespace {
using Clock = std::chrono::steady_clock;
}  // namespace

const char* to_string(ModeRequestKind kind) {
  switch (kind) {
    case ModeRequestKind::kAdmit: return "admit";
    case ModeRequestKind::kEvict: return "evict";
    case ModeRequestKind::kResize: return "resize";
  }
  return "?";
}

ModeChangeController::ModeChangeController(ModeChangeConfig config,
                                           ThreadPool* pool)
    : config_(std::move(config)),
      analyzer_(&analysis::get_analyzer(config_.analyzer)),
      pool_(pool) {
  const std::size_t workers =
      pool_ != nullptr ? pool_->worker_count() : config_.cores;
  if (workers == 0)
    throw std::invalid_argument(
        "ModeChangeController: need a pool or a non-zero config.cores");
  auto initial = std::make_shared<model::TaskSet>(workers);
  auto snap = std::make_shared<ModeSnapshot>();
  snap->task_set = initial;
  snap->workers = workers;
  snap->version = 1;
  {
    util::MutexLock lock(state_mutex_);
    mode_ = snap;
  }
  util::MutexLock req(request_mutex_);
  ctx_ = std::make_unique<analysis::RtaContext>(*initial);
  ctx_->set_warm_start(true);
  ctx_->set_snapshots(true);
}

ModeTransition ModeChangeController::admit(const model::DagTask& task) {
  return process(ModeRequestKind::kAdmit, &task, "", 0);
}

ModeTransition ModeChangeController::evict(const std::string& task_name) {
  return process(ModeRequestKind::kEvict, nullptr, task_name, 0);
}

ModeTransition ModeChangeController::resize(std::size_t new_workers) {
  return process(ModeRequestKind::kResize, nullptr, "", new_workers);
}

ModeSnapshot ModeChangeController::mode() const {
  util::MutexLock lock(state_mutex_);
  return *mode_;
}

std::vector<ModeTransition> ModeChangeController::transition_log() const {
  util::MutexLock lock(state_mutex_);
  return log_;
}

analysis::Report ModeChangeController::cold_analyze(
    const model::TaskSet& proposed) const {
  analysis::AnalyzerOptions opts = config_.options;
  opts.diagnostics = true;
  analysis::RtaContext ctx(proposed);  // no warm start: a true cold run
  return analyzer_->analyze(proposed, ctx, opts);
}

std::shared_ptr<const ModeSnapshot> ModeChangeController::begin_job() {
  util::MutexLock lock(state_mutex_);
  while (commit_in_progress_) state_cv_.wait(state_mutex_);
  ++active_jobs_;
  return mode_;
}

void ModeChangeController::end_job() {
  util::MutexLock lock(state_mutex_);
  --active_jobs_;
  state_cv_.notify_all();
}

std::optional<std::string> ModeChangeController::runtime_cross_check(
    const model::TaskSet& proposed,
    const std::optional<analysis::TaskSetPartition>& partition,
    std::size_t workers) const {
  for (std::size_t i = 0; i < proposed.size(); ++i) {
    const model::DagTask& task = proposed.task(i);
    if (partition.has_value()) {
      // Lemma 3 against the binding jobs will actually execute under.
      const analysis::DeadlockCheck chk =
          analysis::check_deadlock_free_partitioned(task, workers,
                                                    partition->per_task[i]);
      if (!chk.deadlock_free)
        return "task " + task.name() + ": " + chk.witness;
    } else {
      // Lemma 2: m pairwise-concurrent forks can exhaust the new pool.
      const std::optional<analysis::WaitForCycle> cycle =
          analysis::find_wait_for_cycle(task, workers);
      if (cycle.has_value()) return analysis::describe(*cycle, task.name());
    }
  }
  return std::nullopt;
}

ModeTransition ModeChangeController::process(ModeRequestKind kind,
                                             const model::DagTask* task,
                                             const std::string& evict_name,
                                             std::size_t new_workers) {
  util::MutexLock req(request_mutex_);
  const auto t0 = Clock::now();

  std::shared_ptr<const ModeSnapshot> cur;
  {
    util::MutexLock lock(state_mutex_);
    cur = mode_;
  }

  ModeTransition tr;
  tr.kind = kind;
  tr.workers_after = cur->workers;

  // ---- 1. PROPOSE ----
  std::size_t workers = cur->workers;
  std::shared_ptr<model::TaskSet> proposed;
  // task_map[i] = index of proposed task i in the PREVIOUS set (nullopt for
  // the newly admitted task) — the warm-seed and incremental remap.
  std::vector<std::optional<std::size_t>> task_map;
  std::string build_error;
  try {
    switch (kind) {
      case ModeRequestKind::kAdmit: {
        tr.detail = task->name();
        proposed = std::make_shared<model::TaskSet>(workers);
        for (std::size_t i = 0; i < cur->task_set->size(); ++i) {
          proposed->add(cur->task_set->task(i));
          task_map.emplace_back(i);
        }
        proposed->add(*task);
        task_map.emplace_back(std::nullopt);
        break;
      }
      case ModeRequestKind::kEvict: {
        tr.detail = evict_name;
        bool found = false;
        proposed = std::make_shared<model::TaskSet>(workers);
        for (std::size_t i = 0; i < cur->task_set->size(); ++i) {
          if (cur->task_set->task(i).name() == evict_name) {
            found = true;
            continue;
          }
          proposed->add(cur->task_set->task(i));
          task_map.emplace_back(i);
        }
        if (!found) build_error = "no task named '" + evict_name + "'";
        break;
      }
      case ModeRequestKind::kResize: {
        tr.detail =
            std::to_string(cur->workers) + " -> " + std::to_string(new_workers);
        if (new_workers == 0) {
          build_error = "cannot resize to zero workers";
          break;
        }
        workers = new_workers;
        proposed = std::make_shared<model::TaskSet>(new_workers);
        for (std::size_t i = 0; i < cur->task_set->size(); ++i) {
          proposed->add(cur->task_set->task(i));
          task_map.emplace_back(i);
        }
        break;
      }
    }
  } catch (const model::ModelError& e) {
    build_error = e.what();
  }
  tr.proposed = proposed;

  const auto finalize = [&](ModeTransition& t) -> ModeTransition& {
    t.decision_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    util::MutexLock lock(state_mutex_);
    t.id = next_id_++;
    log_.push_back(t);
    return t;
  };

  if (!build_error.empty()) {
    tr.accepted = false;
    tr.reject_reason = build_error;
    return finalize(tr);
  }

  // ---- 2. ANALYZE ----
  analysis::AnalyzerOptions opts = config_.options;
  opts.diagnostics = true;  // every verdict carries its certificate witness
  auto ctx = std::make_unique<analysis::RtaContext>(*proposed);
  ctx->set_warm_start(true);
  // Record snapshots on this context too: if the proposal commits, the
  // NEXT transition analyzes incrementally against this run's results.
  ctx->set_snapshots(true);
  if (kind == ModeRequestKind::kAdmit && config_.warm_admission &&
      ctx_ != nullptr) {
    // Sound only here: an admission keeps m and every surviving task, so
    // the prior fixed points lower-bound the new ones (see seed_warm_from).
    tr.warm_seeded = ctx->seed_warm_from(*ctx_, task_map);
  }
  if (config_.incremental && ctx_ != nullptr) {
    // Sound for every kind: begin_incremental's structural prefix plus the
    // per-analyze guards (options fingerprint, scale, core count,
    // partition rows) only copy verdicts whose inputs are provably
    // unchanged — a resize to a new m, say, copies nothing.
    tr.incremental_armed = true;
    tr.incremental_prefix = ctx->begin_incremental(*ctx_, task_map);
  }
  try {
    tr.report = analyzer_->analyze(*proposed, *ctx, opts);
    tr.accepted = tr.report.schedulable;
    if (!tr.accepted) {
      std::ostringstream why;
      why << "analysis rejected the proposal";
      if (tr.report.limiting_task.has_value())
        why << ": task "
            << proposed->task(*tr.report.limiting_task).name()
            << " unschedulable";
      tr.reject_reason = why.str();
    }
  } catch (const model::ModelError& e) {
    tr.accepted = false;
    tr.reject_reason = std::string("analysis error: ") + e.what();
  }
  tr.warm_hits = ctx->warm_hits();
  tr.incremental_hits = ctx->incremental_hits();

  if (!tr.accepted) return finalize(tr);

  // The partition the admitted configuration will execute under.
  std::optional<analysis::TaskSetPartition> partition;
  if (analyzer_->capabilities().uses_partition) {
    if (config_.options.partition != nullptr) {
      partition = *config_.options.partition;
    } else {
      const analysis::PartitionResult pr = analyzer_->make_partition(*proposed);
      if (pr.success()) {
        partition = *pr.partition;
      } else {
        tr.accepted = false;
        tr.reject_reason = "partitioner failed: " + pr.failure;
        return finalize(tr);
      }
    }
  }

  // ---- 3./5. CROSS-CHECK (before the switch point: an accepted-but-
  // invalid binding must roll back without ever being installed) ----
  if (config_.cross_check) {
    const std::optional<std::string> witness =
        runtime_cross_check(*proposed, partition, workers);
    tr.cross_check_ok = !witness.has_value();
    if (!tr.cross_check_ok && config_.require_cross_check) {
      tr.reject_reason = "runtime cross-check failed: " + *witness;
      return finalize(tr);  // rolled back: old mode stays committed
    }
  }

  // ---- 4. DRAIN ----
  {
    util::MutexLock lock(state_mutex_);
    commit_in_progress_ = true;
    while (active_jobs_ > 0) state_cv_.wait(state_mutex_);
  }

  // ---- 6. COMMIT ----
  bool pool_applied = true;
  std::string pool_error;
  if (pool_ != nullptr && kind == ModeRequestKind::kResize) {
    try {
      const std::size_t m = pool_->worker_count();
      if (new_workers > m) pool_->add_workers(new_workers - m);
      else if (new_workers < m) pool_->retire_workers(m - new_workers);
    } catch (const std::exception& e) {
      pool_applied = false;
      pool_error = e.what();
    }
  }
  {
    util::MutexLock lock(state_mutex_);
    if (pool_applied) {
      auto snap = std::make_shared<ModeSnapshot>();
      snap->task_set = proposed;
      snap->partition = partition;
      snap->workers = workers;
      snap->version = ++version_;
      mode_ = snap;
    }
    commit_in_progress_ = false;
    state_cv_.notify_all();
  }
  if (!pool_applied) {
    tr.reject_reason = "pool resize failed: " + pool_error;
    return finalize(tr);
  }
  // The committed mode's warm context feeds the next admission.
  ctx_ = std::move(ctx);
  tr.committed = true;
  tr.workers_after = workers;
  return finalize(tr);
}

std::string ModeChangeController::render_log_json(bool include_timings) const {
  const std::vector<ModeTransition> log = transition_log();
  std::ostringstream out;
  util::JsonWriter json(out);
  json.begin_object();
  json.kv("schema", "rtpool-mode-transitions-v1");
  json.kv("analyzer", config_.analyzer);
  json.key("transitions");
  json.begin_array();
  for (const ModeTransition& tr : log) {
    json.begin_object();
    json.kv("id", tr.id);
    json.kv("kind", std::string(to_string(tr.kind)));
    json.kv("detail", tr.detail);
    json.kv("accepted", tr.accepted);
    json.kv("committed", tr.committed);
    json.kv("cross_check_ok", tr.cross_check_ok);
    json.kv("warm_seeded", tr.warm_seeded);
    json.kv("warm_hits", static_cast<std::uint64_t>(tr.warm_hits));
    json.kv("incremental_armed", tr.incremental_armed);
    json.kv("incremental_prefix",
            static_cast<std::uint64_t>(tr.incremental_prefix));
    json.kv("incremental_hits",
            static_cast<std::uint64_t>(tr.incremental_hits));
    json.kv("reject_reason", tr.reject_reason);
    json.kv("schedulable", tr.report.schedulable);
    json.kv("has_certificate", tr.report.certificate != nullptr);
    if (tr.report.limiting_task.has_value())
      json.kv("limiting_task",
              static_cast<std::uint64_t>(*tr.report.limiting_task));
    if (std::isfinite(tr.report.limiting_ratio))
      json.kv("limiting_ratio", tr.report.limiting_ratio);
    json.kv("tasks",
            static_cast<std::uint64_t>(tr.proposed ? tr.proposed->size() : 0));
    json.kv("workers_after", static_cast<std::uint64_t>(tr.workers_after));
    if (include_timings) json.kv("decision_ms", tr.decision_ms);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  out << "\n";
  return out.str();
}

}  // namespace rtpool::exec
