#include "exec/fault.h"

#include <sstream>
#include <stdexcept>

#include "util/rng.h"

namespace rtpool::exec {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kWcetOverrun: return "wcet-overrun";
    case FaultKind::kStall: return "stall";
    case FaultKind::kThrow: return "throw";
    case FaultKind::kDropNotify: return "drop-notify";
    case FaultKind::kWorkerDeath: return "worker-death";
    case FaultKind::kWorkerHang: return "worker-hang";
  }
  return "?";
}

void FaultPlan::set(model::NodeId v, NodeFault fault) {
  if (fault.kind == FaultKind::kNone) {
    faults_.erase(v);
    return;
  }
  faults_[v] = std::move(fault);
}

const NodeFault* FaultPlan::find(model::NodeId v) const {
  const auto it = faults_.find(v);
  return it == faults_.end() ? nullptr : &it->second;
}

std::size_t FaultPlan::count(FaultKind kind) const {
  std::size_t n = 0;
  for (const auto& [v, f] : faults_)
    if (f.kind == kind) ++n;
  return n;
}

FaultPlan make_random_fault_plan(const model::DagTask& task,
                                 const FaultPlanParams& params,
                                 std::uint64_t seed) {
  const util::Rng base(seed);
  FaultPlan plan(seed);
  for (model::NodeId v = 0; v < task.node_count(); ++v) {
    util::Rng rng = base.fork_with(v);
    NodeFault fault;
    const bool plain = task.type(v) == model::NodeType::NB ||
                       task.type(v) == model::NodeType::BC;
    if (task.type(v) == model::NodeType::BJ && rng.bernoulli(params.p_drop_notify)) {
      fault.kind = FaultKind::kDropNotify;
    } else if (plain && rng.bernoulli(params.p_worker_death)) {
      // Lethal faults stay on plain nodes: re-running a BF/BJ closure would
      // replay fork/join side effects and break exactly-once recovery.
      fault.kind = FaultKind::kWorkerDeath;
    } else if (plain && rng.bernoulli(params.p_worker_hang)) {
      fault.kind = FaultKind::kWorkerHang;
    } else if (rng.bernoulli(params.p_throw)) {
      fault.kind = FaultKind::kThrow;
      std::ostringstream msg;
      msg << "injected fault: node " << v << " (seed " << seed << ")";
      fault.message = msg.str();
    } else if (rng.bernoulli(params.p_stall) && params.max_stall.count() > 0) {
      fault.kind = FaultKind::kStall;
      fault.stall = std::chrono::milliseconds(
          rng.uniform_int(1, params.max_stall.count()));
    } else if (rng.bernoulli(params.p_overrun)) {
      fault.kind = FaultKind::kWcetOverrun;
      fault.overrun_factor = rng.uniform(1.0, params.max_overrun_factor);
    } else {
      continue;
    }
    plan.set(v, std::move(fault));
  }
  return plan;
}

std::string describe(const FaultPlan& plan) {
  std::ostringstream out;
  out << "seed=" << plan.seed() << ":";
  if (plan.empty()) {
    out << " clean";
    return out.str();
  }
  for (const auto& [v, f] : plan.faults()) {
    out << " node " << v << " " << to_string(f.kind);
    if (f.kind == FaultKind::kWcetOverrun) out << " x" << f.overrun_factor;
    if (f.kind == FaultKind::kStall) out << " " << f.stall.count() << "ms";
  }
  return out.str();
}

}  // namespace rtpool::exec
