#include "exec/thread_pool.h"

#include <stdexcept>

namespace rtpool::exec {

namespace {
thread_local std::optional<std::size_t> t_worker_index;
}  // namespace

ThreadPool::ThreadPool(std::size_t workers, QueueMode mode, bool steal)
    : mode_(mode), steal_(steal) {
  if (workers == 0) throw std::invalid_argument("ThreadPool: need at least one worker");
  if (mode_ == QueueMode::kPerWorker) {
    util::MutexLock lock(mutex_);  // workers don't exist yet; TSA discipline
    worker_queues_.resize(workers);
  }
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    util::MutexLock lock(mutex_);
    shutting_down_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> fn) {
  if (mode_ == QueueMode::kPerWorker) {
    submit_to(0, std::move(fn));
    return;
  }
  {
    util::MutexLock lock(mutex_);
    shared_queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
}

void ThreadPool::submit_batch(std::vector<std::function<void()>> fns) {
  if (fns.empty()) return;
  if (mode_ == QueueMode::kPerWorker) {
    for (auto& fn : fns) submit_to(0, std::move(fn));
    return;
  }
  {
    util::MutexLock lock(mutex_);
    for (auto& fn : fns) shared_queue_.push_back(std::move(fn));
  }
  cv_.notify_all();
}

void ThreadPool::submit_to(std::size_t worker, std::function<void()> fn) {
  if (mode_ != QueueMode::kPerWorker)
    throw std::logic_error("ThreadPool::submit_to requires kPerWorker mode");
  if (worker >= workers_.size())
    throw std::out_of_range("ThreadPool::submit_to: bad worker index");
  {
    util::MutexLock lock(mutex_);
    worker_queues_[worker].push_back(std::move(fn));
  }
  cv_.notify_all();  // the target worker must wake even if others are idle
}

std::optional<std::size_t> ThreadPool::current_worker() { return t_worker_index; }

bool ThreadPool::try_pop(std::size_t index, std::function<void()>& out) {
  if (mode_ == QueueMode::kShared) {
    if (shared_queue_.empty()) return false;
    out = std::move(shared_queue_.front());
    shared_queue_.pop_front();
    return true;
  }
  if (!worker_queues_[index].empty()) {
    out = std::move(worker_queues_[index].front());
    worker_queues_[index].pop_front();
    return true;
  }
  if (steal_) {
    for (std::size_t k = 1; k < worker_queues_.size(); ++k) {
      const std::size_t victim = (index + k) % worker_queues_.size();
      if (!worker_queues_[victim].empty()) {
        // Steal from the back, Eigen-style.
        out = std::move(worker_queues_[victim].back());
        worker_queues_[victim].pop_back();
        return true;
      }
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t index) {
  t_worker_index = index;
  for (;;) {
    std::function<void()> fn;
    {
      util::MutexLock lock(mutex_);
      // Explicit wait loop: a wait predicate lambda would escape the
      // thread-safety analysis context.
      while (!shutting_down_ && !try_pop(index, fn)) cv_.wait(mutex_);
      if (!fn) return;  // shutting down and nothing popped
    }
    fn();
    executed_.fetch_add(1, std::memory_order_relaxed);
  }
}

ThreadPool::BlockedScope::BlockedScope(ThreadPool& pool) : pool_(pool) {
  const std::size_t now = pool_.blocked_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::size_t seen = pool_.max_blocked_.load(std::memory_order_relaxed);
  while (seen < now &&
         !pool_.max_blocked_.compare_exchange_weak(seen, now, std::memory_order_relaxed)) {
  }
}

ThreadPool::BlockedScope::~BlockedScope() {
  pool_.blocked_.fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace rtpool::exec
