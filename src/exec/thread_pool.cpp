#include "exec/thread_pool.h"

#include <exception>
#include <stdexcept>

namespace rtpool::exec {

namespace {
thread_local std::optional<std::size_t> t_worker_index;
}  // namespace

ThreadPool::ThreadPool(std::size_t workers, QueueMode mode, bool steal)
    : mode_(mode), steal_(steal), base_workers_(workers) {
  if (workers == 0) throw std::invalid_argument("ThreadPool: need at least one worker");
  if (mode_ == QueueMode::kPerWorker) {
    util::MutexLock lock(mutex_);  // workers don't exist yet; TSA discipline
    worker_queues_.resize(workers);
  }
  worker_blocked_ = std::make_unique<std::atomic<bool>[]>(workers);
  for (std::size_t i = 0; i < workers; ++i) worker_blocked_[i].store(false);
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  std::vector<std::thread> emergencies;
  {
    util::MutexLock lock(mutex_);
    shutting_down_ = true;
    emergencies.swap(emergency_workers_);
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  for (std::thread& t : emergencies) t.join();
}

void ThreadPool::submit(std::function<void()> fn, std::optional<std::size_t> target) {
  if (mode_ == QueueMode::kPerWorker) {
    const std::size_t worker =
        target.has_value()
            ? *target
            : rr_next_.fetch_add(1, std::memory_order_relaxed) % base_workers_;
    submit_to(worker, std::move(fn));
    return;
  }
  if (target.has_value())
    throw std::logic_error("ThreadPool::submit: target requires kPerWorker mode");
  {
    util::MutexLock lock(mutex_);
    shared_queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
}

void ThreadPool::submit_batch(std::vector<std::function<void()>> fns) {
  if (fns.empty()) return;
  {
    util::MutexLock lock(mutex_);
    if (mode_ == QueueMode::kPerWorker) {
      // Spread round-robin under the single lock hold: the batch stays
      // atomic and no single worker silently collects the whole release.
      for (auto& fn : fns) {
        const std::size_t worker =
            rr_next_.fetch_add(1, std::memory_order_relaxed) % base_workers_;
        worker_queues_[worker].push_back(std::move(fn));
      }
    } else {
      for (auto& fn : fns) shared_queue_.push_back(std::move(fn));
    }
  }
  cv_.notify_all();
}

void ThreadPool::submit_batch_to(
    std::vector<std::pair<std::size_t, std::function<void()>>> items) {
  if (mode_ != QueueMode::kPerWorker)
    throw std::logic_error("ThreadPool::submit_batch_to requires kPerWorker mode");
  for (const auto& [worker, fn] : items)
    if (worker >= base_workers_)
      throw std::out_of_range("ThreadPool::submit_batch_to: bad worker index");
  if (items.empty()) return;
  {
    util::MutexLock lock(mutex_);
    for (auto& [worker, fn] : items)
      worker_queues_[worker].push_back(std::move(fn));
  }
  cv_.notify_all();
}

void ThreadPool::submit_to(std::size_t worker, std::function<void()> fn) {
  if (mode_ != QueueMode::kPerWorker)
    throw std::logic_error("ThreadPool::submit_to requires kPerWorker mode");
  if (worker >= base_workers_)
    throw std::out_of_range("ThreadPool::submit_to: bad worker index");
  {
    util::MutexLock lock(mutex_);
    worker_queues_[worker].push_back(std::move(fn));
  }
  cv_.notify_all();  // the target worker must wake even if others are idle
}

std::optional<std::size_t> ThreadPool::current_worker() { return t_worker_index; }

bool ThreadPool::worker_blocked(std::size_t i) const {
  return i < base_workers_ && worker_blocked_[i].load(std::memory_order_relaxed);
}

bool ThreadPool::try_pop(std::size_t index, std::function<void()>& out) {
  if (mode_ == QueueMode::kShared) {
    if (shared_queue_.empty()) return false;
    out = std::move(shared_queue_.front());
    shared_queue_.pop_front();
    return true;
  }
  const bool emergency = index >= base_workers_;
  if (!emergency && !worker_queues_[index].empty()) {
    out = std::move(worker_queues_[index].front());
    worker_queues_[index].pop_front();
    return true;
  }
  // Emergency workers always scan every queue: their purpose is to drain
  // work starved behind suspended workers, placement notwithstanding.
  // Regular workers steal only when configured and not suppressed by a
  // partitioned run.
  const bool may_steal =
      emergency ||
      (steal_ && steal_suppressed_.load(std::memory_order_relaxed) == 0);
  if (may_steal) {
    for (std::size_t k = emergency ? 0 : 1; k < worker_queues_.size(); ++k) {
      const std::size_t victim = (index + k) % worker_queues_.size();
      if (!worker_queues_[victim].empty()) {
        // Steal from the back, Eigen-style.
        out = std::move(worker_queues_[victim].back());
        worker_queues_[victim].pop_back();
        steals_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
  }
  return false;
}

void ThreadPool::record_uncaught() {
  uncaught_.fetch_add(1, std::memory_order_relaxed);
  std::string what = "unknown exception";
  try {
    throw;  // rethrow the in-flight exception to classify it
  } catch (const std::exception& e) {
    what = e.what();
  } catch (...) {
  }
  util::MutexLock lock(mutex_);
  if (first_uncaught_.empty()) first_uncaught_ = what;
}

std::string ThreadPool::first_uncaught_error() const {
  util::MutexLock lock(mutex_);
  return first_uncaught_;
}

bool ThreadPool::spawn_emergency_worker() {
  util::MutexLock lock(mutex_);
  if (shutting_down_) return false;
  const std::size_t index =
      base_workers_ + emergency_count_.fetch_add(1, std::memory_order_relaxed);
  emergency_workers_.emplace_back([this, index] { worker_loop(index); });
  return true;
}

void ThreadPool::worker_loop(std::size_t index) {
  t_worker_index = index;
  for (;;) {
    std::function<void()> fn;
    {
      util::MutexLock lock(mutex_);
      // Explicit wait loop: a wait predicate lambda would escape the
      // thread-safety analysis context.
      while (!shutting_down_ && !try_pop(index, fn)) cv_.wait(mutex_);
      if (!fn) return;  // shutting down and nothing popped
      // Count in-flight while still holding the lock: the guard's sampler
      // must never observe "queue drained but nothing active".
      active_.fetch_add(1, std::memory_order_relaxed);
    }
    // Contain anything a closure throws: a failing body degrades to a
    // recorded error, never std::terminate. Executor closures catch their
    // own body exceptions; this protects foreign submissions.
    try {
      fn();
    } catch (...) {
      record_uncaught();
    }
    active_.fetch_sub(1, std::memory_order_relaxed);
    executed_.fetch_add(1, std::memory_order_relaxed);
  }
}

ThreadPool::BlockedScope::BlockedScope(ThreadPool& pool) : pool_(pool) {
  const std::size_t now = pool_.blocked_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::size_t seen = pool_.max_blocked_.load(std::memory_order_relaxed);
  while (seen < now &&
         !pool_.max_blocked_.compare_exchange_weak(seen, now, std::memory_order_relaxed)) {
  }
  const std::optional<std::size_t> worker = current_worker();
  if (worker.has_value() && *worker < pool_.base_workers_) {
    flagged_worker_ = worker;
    pool_.worker_blocked_[*worker].store(true, std::memory_order_relaxed);
  }
}

ThreadPool::BlockedScope::~BlockedScope() {
  if (flagged_worker_.has_value())
    pool_.worker_blocked_[*flagged_worker_].store(false, std::memory_order_relaxed);
  pool_.blocked_.fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace rtpool::exec
