#include "exec/thread_pool.h"

#include <algorithm>
#include <exception>
#include <stdexcept>

namespace rtpool::exec {

namespace {
thread_local std::optional<std::size_t> t_worker_index;
}  // namespace

// The calling worker's slot, cached so BlockedScope / heartbeat() stay
// lock-free. Null on emergency workers and off-pool threads. The worker
// loop keeps a shared_ptr to the same Slot alive for the thread's whole
// lifetime, so the raw pointer never dangles — even after a respawn has
// replaced slots_[i] with a fresh generation.
static thread_local void* t_worker_slot = nullptr;

ThreadPool::ThreadPool(std::size_t workers, QueueMode mode, bool steal)
    : mode_(mode), steal_(steal) {
  if (workers == 0) throw std::invalid_argument("ThreadPool: need at least one worker");
  util::MutexLock lock(mutex_);  // workers don't exist yet; TSA discipline
  if (mode_ == QueueMode::kPerWorker) worker_queues_.resize(workers);
  slots_.reserve(workers);
  live_slots_.reserve(workers);
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    slots_.push_back(std::make_shared<Slot>(i));
    live_slots_.push_back(i);
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
  live_count_.store(workers, std::memory_order_relaxed);
  slot_count_.store(workers, std::memory_order_relaxed);
}

ThreadPool::~ThreadPool() {
  std::vector<std::thread> emergencies;
  std::vector<std::thread> extras;
  {
    util::MutexLock lock(mutex_);
    shutting_down_ = true;
    emergencies.swap(emergency_workers_);
    extras.swap(extra_workers_);
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  for (std::thread& t : emergencies) t.join();
  for (std::thread& t : extras) t.join();
}

std::optional<std::size_t> ThreadPool::next_live_slot() {
  if (live_slots_.empty()) return std::nullopt;
  const std::size_t k = rr_next_.fetch_add(1, std::memory_order_relaxed);
  return live_slots_[k % live_slots_.size()];
}

std::size_t ThreadPool::route_target(std::size_t worker) {
  if (worker < slots_.size() &&
      slots_[worker]->state.load(std::memory_order_relaxed) == WorkerState::kLive)
    return worker;
  // A dead-but-not-abandoned slot is awaiting its replacement, which
  // adopts the queue: the closure must stay put, or a placement-
  // constrained (Eq. (3)) node could land on a worker that is blocked
  // waiting for it — the exact deadlock the placement rules out.
  if (worker < slots_.size() &&
      !slots_[worker]->abandoned.load(std::memory_order_relaxed))
    return worker;
  // Degraded routing: the placement target is gone and no replacement is
  // coming — any live worker is better than a stranded queue. When nothing
  // is live the closure stays on the original queue; an emergency worker
  // or a respawn can still drain it.
  const std::optional<std::size_t> live = next_live_slot();
  if (!live.has_value()) return worker;
  redirected_.fetch_add(1, std::memory_order_relaxed);
  return *live;
}

void ThreadPool::submit(std::function<void()> fn, std::optional<std::size_t> target) {
  if (mode_ == QueueMode::kPerWorker) {
    {
      util::MutexLock lock(mutex_);
      std::size_t worker;
      if (target.has_value()) {
        if (*target >= slots_.size())
          throw std::out_of_range("ThreadPool::submit: bad worker index");
        worker = route_target(*target);
      } else {
        worker = next_live_slot().value_or(0);
      }
      worker_queues_[worker].push_back(std::move(fn));
    }
    cv_.notify_all();  // the target worker must wake even if others are idle
    return;
  }
  if (target.has_value())
    throw std::logic_error("ThreadPool::submit: target requires kPerWorker mode");
  {
    util::MutexLock lock(mutex_);
    shared_queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
}

void ThreadPool::submit_batch(std::vector<std::function<void()>> fns) {
  if (fns.empty()) return;
  {
    util::MutexLock lock(mutex_);
    if (mode_ == QueueMode::kPerWorker) {
      // Spread round-robin over LIVE workers under the single lock hold:
      // the batch stays atomic and no single worker silently collects the
      // whole release.
      for (auto& fn : fns) {
        const std::size_t worker = next_live_slot().value_or(0);
        worker_queues_[worker].push_back(std::move(fn));
      }
    } else {
      for (auto& fn : fns) shared_queue_.push_back(std::move(fn));
    }
  }
  cv_.notify_all();
}

void ThreadPool::submit_batch_to(
    std::vector<std::pair<std::size_t, std::function<void()>>> items) {
  if (mode_ != QueueMode::kPerWorker)
    throw std::logic_error("ThreadPool::submit_batch_to requires kPerWorker mode");
  if (items.empty()) return;
  {
    util::MutexLock lock(mutex_);
    for (auto& [worker, fn] : items) {
      if (worker >= slots_.size())
        throw std::out_of_range("ThreadPool::submit_batch_to: bad worker index");
      worker_queues_[route_target(worker)].push_back(std::move(fn));
    }
  }
  cv_.notify_all();
}

void ThreadPool::submit_to(std::size_t worker, std::function<void()> fn) {
  if (mode_ != QueueMode::kPerWorker)
    throw std::logic_error("ThreadPool::submit_to requires kPerWorker mode");
  {
    util::MutexLock lock(mutex_);
    if (worker >= slots_.size())
      throw std::out_of_range("ThreadPool::submit_to: bad worker index");
    worker_queues_[route_target(worker)].push_back(std::move(fn));
  }
  cv_.notify_all();  // the target worker must wake even if others are idle
}

std::optional<std::size_t> ThreadPool::current_worker() { return t_worker_index; }

void ThreadPool::heartbeat() {
  if (auto* slot = static_cast<Slot*>(t_worker_slot))
    slot->epoch.fetch_add(1, std::memory_order_relaxed);
}

bool ThreadPool::worker_blocked(std::size_t i) const {
  util::MutexLock lock(mutex_);
  return i < slots_.size() && slots_[i]->blocked.load(std::memory_order_relaxed);
}

bool ThreadPool::worker_live(std::size_t i) const {
  util::MutexLock lock(mutex_);
  return i < slots_.size() &&
         slots_[i]->state.load(std::memory_order_relaxed) == WorkerState::kLive;
}

std::vector<ThreadPool::WorkerStatus> ThreadPool::worker_status() const {
  util::MutexLock lock(mutex_);
  std::vector<WorkerStatus> out;
  out.reserve(slots_.size());
  for (const auto& slot : slots_) {
    WorkerStatus ws;
    ws.worker = slot->index;
    ws.state = slot->state.load(std::memory_order_relaxed);
    ws.epoch = slot->epoch.load(std::memory_order_relaxed);
    ws.busy = slot->busy.load(std::memory_order_relaxed);
    ws.blocked = slot->blocked.load(std::memory_order_relaxed);
    ws.exited = slot->exited.load(std::memory_order_relaxed);
    ws.condemned = slot->condemned.load(std::memory_order_relaxed);
    out.push_back(ws);
  }
  return out;
}

void ThreadPool::remove_live_slot(std::size_t index) {
  const auto it = std::find(live_slots_.begin(), live_slots_.end(), index);
  if (it == live_slots_.end()) return;
  live_slots_.erase(it);
  live_count_.store(live_slots_.size(), std::memory_order_relaxed);
}

std::size_t ThreadPool::hand_back_queue(std::size_t index) {
  if (mode_ != QueueMode::kPerWorker || index >= worker_queues_.size()) return 0;
  std::deque<std::function<void()>> orphans;
  orphans.swap(worker_queues_[index]);
  std::size_t moved = 0;
  for (auto& fn : orphans) {
    // Round-robin to the survivors; with nobody live, leave the closure on
    // the original queue for an emergency worker or a later respawn.
    const std::optional<std::size_t> live = next_live_slot();
    worker_queues_[live.value_or(index)].push_back(std::move(fn));
    if (live.has_value()) ++moved;
  }
  handed_back_.fetch_add(moved, std::memory_order_relaxed);
  return moved;
}

void ThreadPool::spawn_slot_thread(std::size_t index) {
  extra_workers_.emplace_back([this, index] { worker_loop(index); });
}

std::size_t ThreadPool::add_workers(std::size_t n) {
  bool added = false;
  {
    util::MutexLock lock(mutex_);
    if (!shutting_down_) {
      for (std::size_t k = 0; k < n; ++k) {
        const std::size_t index = slots_.size();
        slots_.push_back(std::make_shared<Slot>(index));
        if (mode_ == QueueMode::kPerWorker) worker_queues_.emplace_back();
        live_slots_.push_back(index);
        spawn_slot_thread(index);
        added = true;
      }
      live_count_.store(live_slots_.size(), std::memory_order_relaxed);
      slot_count_.store(slots_.size(), std::memory_order_relaxed);
    }
  }
  if (added) cv_.notify_all();
  return worker_count();
}

std::size_t ThreadPool::retire_workers(std::size_t n) {
  {
    util::MutexLock lock(mutex_);
    if (n >= live_slots_.size())
      throw std::invalid_argument(
          "ThreadPool::retire_workers: must keep at least one live worker");
    // Highest-index live slots retire first, so a grow/shrink cycle
    // returns the pool to its original shape.
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t victim = live_slots_.back();
      live_slots_.pop_back();
      slots_[victim]->state.store(WorkerState::kRetiring, std::memory_order_relaxed);
      slots_[victim]->abandoned.store(true, std::memory_order_relaxed);
    }
    live_count_.store(live_slots_.size(), std::memory_order_relaxed);
  }
  cv_.notify_all();
  return worker_count();
}

ThreadPool::CondemnOutcome ThreadPool::condemn_worker(std::size_t worker,
                                                      bool redistribute) {
  CondemnOutcome out;
  {
    util::MutexLock lock(mutex_);
    if (worker >= slots_.size()) return out;
    const std::shared_ptr<Slot> slot = slots_[worker];
    if (slot->condemned.exchange(true, std::memory_order_acq_rel)) return out;
    out.condemned = true;
    condemned_.fetch_add(1, std::memory_order_relaxed);
    // Settle a parked (hung) worker's accounting: it will never return
    // from its closure, so its active/busy contribution must not keep the
    // guard from proving quiescence on the rest of the pool.
    if (slot->parked.load(std::memory_order_relaxed) &&
        !slot->park_settled.exchange(true, std::memory_order_acq_rel)) {
      active_.fetch_sub(1, std::memory_order_relaxed);
      slot->busy.store(false, std::memory_order_relaxed);
      out.was_parked = true;
    }
    remove_live_slot(worker);
    slot->state.store(WorkerState::kDead, std::memory_order_relaxed);
    if (redistribute) {
      slot->abandoned.store(true, std::memory_order_relaxed);
      out.requeued = hand_back_queue(worker);
    }
    out.live_left = live_slots_.size();
    live_count_.store(live_slots_.size(), std::memory_order_relaxed);
  }
  cv_.notify_all();
  return out;
}

bool ThreadPool::respawn_worker(std::size_t worker) {
  {
    util::MutexLock lock(mutex_);
    if (shutting_down_ || worker >= slots_.size()) return false;
    if (slots_[worker]->state.load(std::memory_order_relaxed) == WorkerState::kLive)
      return false;
    // Fresh Slot generation: a parked thread may still hold the old one,
    // and its eventual shutdown wakeup must not clobber the replacement's
    // flags.
    slots_[worker] = std::make_shared<Slot>(worker);
    live_slots_.insert(
        std::lower_bound(live_slots_.begin(), live_slots_.end(), worker), worker);
    live_count_.store(live_slots_.size(), std::memory_order_relaxed);
    respawned_.fetch_add(1, std::memory_order_relaxed);
    spawn_slot_thread(worker);
  }
  cv_.notify_all();
  return true;
}

void ThreadPool::park_current_worker() {
  auto* slot = static_cast<Slot*>(t_worker_slot);
  if (slot == nullptr) return;  // emergency / off-pool: hang faults don't apply
  slot->parked.store(true, std::memory_order_relaxed);
  parked_.fetch_add(1, std::memory_order_relaxed);
  {
    util::MutexLock lock(mutex_);
    // Sleep until shutdown — the runtime image of a thread wedged in
    // foreign code. busy stays true and active() stays elevated until
    // condemn_worker() settles them (or we do, below, if the pool shuts
    // down before the watchdog noticed).
    while (!shutting_down_) cv_.wait(mutex_);
  }
  if (!slot->park_settled.exchange(true, std::memory_order_acq_rel)) {
    active_.fetch_sub(1, std::memory_order_relaxed);
    slot->busy.store(false, std::memory_order_relaxed);
  }
  throw WorkerRetireSignal{};
}

bool ThreadPool::try_pop(std::size_t index, std::function<void()>& out) {
  if (mode_ == QueueMode::kShared) {
    if (shared_queue_.empty()) return false;
    out = std::move(shared_queue_.front());
    shared_queue_.pop_front();
    return true;
  }
  const bool emergency = index >= kEmergencyIndexBase;
  if (!emergency && !worker_queues_[index].empty()) {
    out = std::move(worker_queues_[index].front());
    worker_queues_[index].pop_front();
    return true;
  }
  // Emergency workers always scan every queue: their purpose is to drain
  // work starved behind suspended workers, placement notwithstanding.
  // Regular workers steal only when configured and not suppressed by a
  // partitioned run. Dead slots' queues are fair game for both — stealing
  // off a crashed worker's queue is a rescue, not a placement violation
  // the analysis didn't already account for losing.
  const bool may_steal =
      emergency ||
      (steal_ && steal_suppressed_.load(std::memory_order_relaxed) == 0);
  if (may_steal) {
    for (std::size_t k = emergency ? 0 : 1; k < worker_queues_.size(); ++k) {
      const std::size_t victim = (index + k) % worker_queues_.size();
      if (!worker_queues_[victim].empty()) {
        // Steal from the back, Eigen-style.
        out = std::move(worker_queues_[victim].back());
        worker_queues_[victim].pop_back();
        steals_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
  }
  return false;
}

void ThreadPool::record_uncaught() {
  uncaught_.fetch_add(1, std::memory_order_relaxed);
  std::string what = "unknown exception";
  try {
    throw;  // rethrow the in-flight exception to classify it
  } catch (const std::exception& e) {
    what = e.what();
  } catch (...) {
  }
  util::MutexLock lock(mutex_);
  if (first_uncaught_.empty()) first_uncaught_ = what;
}

std::string ThreadPool::first_uncaught_error() const {
  util::MutexLock lock(mutex_);
  return first_uncaught_;
}

bool ThreadPool::spawn_emergency_worker() {
  util::MutexLock lock(mutex_);
  if (shutting_down_) return false;
  const std::size_t index =
      kEmergencyIndexBase + emergency_count_.fetch_add(1, std::memory_order_relaxed);
  emergency_workers_.emplace_back([this, index] { worker_loop(index); });
  return true;
}

void ThreadPool::worker_loop(std::size_t index) {
  t_worker_index = index;
  const bool emergency = index >= kEmergencyIndexBase;
  std::shared_ptr<Slot> slot;
  if (!emergency) {
    util::MutexLock lock(mutex_);
    slot = slots_[index];
  }
  t_worker_slot = slot.get();
  for (;;) {
    std::function<void()> fn;
    {
      util::MutexLock lock(mutex_);
      // Explicit wait loop: a wait predicate lambda would escape the
      // thread-safety analysis context.
      for (;;) {
        if (shutting_down_) break;
        if (slot != nullptr) {
          const WorkerState st = slot->state.load(std::memory_order_relaxed);
          if (st == WorkerState::kRetiring) {
            // Drain protocol: the current closure (if any) already
            // finished — hand the queue back and leave.
            hand_back_queue(index);
            slot->state.store(WorkerState::kRetired, std::memory_order_relaxed);
            break;
          }
          if (st == WorkerState::kDead || st == WorkerState::kRetired)
            break;  // condemned while idle (or raced): just exit
        }
        if (try_pop(index, fn)) break;
        cv_.wait(mutex_);
      }
      if (!fn) {
        if (slot != nullptr) slot->exited.store(true, std::memory_order_relaxed);
        cv_.notify_all();
        return;
      }
      // Count in-flight while still holding the lock: the guard's sampler
      // must never observe "queue drained but nothing active".
      active_.fetch_add(1, std::memory_order_relaxed);
      if (slot != nullptr) {
        slot->busy.store(true, std::memory_order_relaxed);
        slot->epoch.fetch_add(1, std::memory_order_relaxed);
      }
    }
    // Contain anything a closure throws: a failing body degrades to a
    // recorded error, never std::terminate. Executor closures catch their
    // own body exceptions; this protects foreign submissions. The two
    // signal types are the crash/hang simulation paths and terminate the
    // worker instead.
    bool died = false;
    try {
      fn();
    } catch (const WorkerDeathSignal&) {
      // Transactional pop: hand the in-flight closure back to the queue it
      // came from before this worker disappears, so the node is re-run
      // exactly once by whoever recovers the queue.
      {
        util::MutexLock lock(mutex_);
        if (mode_ == QueueMode::kPerWorker && slot != nullptr)
          worker_queues_[index].push_front(std::move(fn));
        else
          shared_queue_.push_front(std::move(fn));
        if (slot != nullptr) {
          remove_live_slot(index);
          slot->state.store(WorkerState::kDead, std::memory_order_relaxed);
        }
        deaths_.fetch_add(1, std::memory_order_relaxed);
      }
      died = true;
    } catch (const WorkerRetireSignal&) {
      // Released from park_current_worker(): accounting already settled
      // exactly once there (or by condemn_worker); just leave.
      if (slot != nullptr) slot->exited.store(true, std::memory_order_relaxed);
      cv_.notify_all();
      return;
    } catch (...) {
      record_uncaught();
    }
    active_.fetch_sub(1, std::memory_order_relaxed);
    if (slot != nullptr) {
      slot->busy.store(false, std::memory_order_relaxed);
      slot->epoch.fetch_add(1, std::memory_order_relaxed);
    }
    if (died) {
      if (slot != nullptr) slot->exited.store(true, std::memory_order_relaxed);
      cv_.notify_all();  // the handed-back closure must be noticed
      return;
    }
    executed_.fetch_add(1, std::memory_order_relaxed);
  }
}

ThreadPool::BlockedScope::BlockedScope(ThreadPool& pool) : pool_(pool) {
  const std::size_t now = pool_.blocked_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::size_t seen = pool_.max_blocked_.load(std::memory_order_relaxed);
  while (seen < now &&
         !pool_.max_blocked_.compare_exchange_weak(seen, now, std::memory_order_relaxed)) {
  }
  if (auto* slot = static_cast<Slot*>(t_worker_slot))
    slot->blocked.store(true, std::memory_order_relaxed);
}

ThreadPool::BlockedScope::~BlockedScope() {
  if (auto* slot = static_cast<Slot*>(t_worker_slot))
    slot->blocked.store(false, std::memory_order_relaxed);
  pool_.blocked_.fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace rtpool::exec
