#include "exec/graph_executor.h"

#include <atomic>
#include <memory>
#include <stdexcept>

#include "util/thread_annotations.h"

namespace rtpool::exec {

namespace {

using model::DagTask;
using model::NodeId;
using model::NodeType;
using Clock = std::chrono::steady_clock;

void spin_for(double microseconds) {
  if (microseconds <= 0.0) return;
  const auto until = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                        std::chrono::duration<double, std::micro>(
                                            microseconds));
  while (Clock::now() < until) {
    // busy-wait: models CPU-bound node execution
  }
}

/// Shared state of one graph run. Every closure holds a shared_ptr to it,
/// so a cancelled run (watchdog) can safely outlive the GraphExecutor call:
/// leftover closures see `cancelled` and return. The ThreadPool itself must
/// outlive the run only as long as its own workers do, which its destructor
/// guarantees.
struct RunState : std::enable_shared_from_this<RunState> {
  RunState(ThreadPool& p, const DagTask& t, const ExecOptions& opts,
           std::function<void(NodeId)> b, bool block)
      : pool(p),
        task(t),
        options(opts),
        body(std::move(b)),
        blocking(block),
        preds_left(t.node_count()),
        executed(0) {
    for (NodeId v = 0; v < t.node_count(); ++v)
      preds_left[v].store(static_cast<int>(t.dag().in_degree(v)),
                          std::memory_order_relaxed);
  }

  ThreadPool& pool;
  const DagTask& task;
  ExecOptions options;
  std::function<void(NodeId)> body;
  bool blocking;

  std::vector<std::atomic<int>> preds_left;
  std::atomic<std::size_t> executed;

  util::Mutex mutex;
  util::CondVar barrier_cv;  ///< Signalled when any region completes.
  util::CondVar done_cv;     ///< Signalled when the sink completes.
  bool done RTPOOL_GUARDED_BY(mutex) = false;
  bool cancelled RTPOOL_GUARDED_BY(mutex) = false;

  bool is_cancelled() RTPOOL_EXCLUDES(mutex) {
    util::MutexLock lock(mutex);
    return cancelled;
  }

  void dispatch(NodeId v, std::function<void()> fn) {
    if (pool.mode() == ThreadPool::QueueMode::kPerWorker) {
      pool.submit_to(options.assignment->thread_of[v], std::move(fn));
    } else {
      pool.submit(std::move(fn));
    }
  }

  void execute_node(NodeId v) {
    spin_for(task.wcet(v) * options.microseconds_per_unit);
    if (body) body(v);
    executed.fetch_add(1, std::memory_order_relaxed);
  }

  /// Mark v complete; release/submit its successors.
  void complete(NodeId v) {
    if (v == task.sink()) {
      util::MutexLock lock(mutex);
      done = true;
      done_cv.notify_all();
      return;
    }
    std::vector<NodeId> ready;
    for (NodeId w : task.dag().successors(v)) {
      if (preds_left[w].fetch_sub(1, std::memory_order_acq_rel) != 1) continue;
      if (blocking && task.type(w) == NodeType::BJ) {
        // The barrier of w's region is now open: wake the waiting fork.
        util::MutexLock lock(mutex);
        barrier_cv.notify_all();
      } else {
        ready.push_back(w);
      }
    }
    if (ready.size() > 1 && pool.mode() == ThreadPool::QueueMode::kShared) {
      // Release simultaneously-ready successors atomically: a precedence
      // constraint opening must not expose a partially-submitted state, or
      // scheduling outcomes (e.g. which forks overlap) depend on preemption
      // between the individual submits.
      std::vector<std::function<void()>> batch;
      batch.reserve(ready.size());
      for (NodeId w : ready) batch.push_back(make_closure(w));
      pool.submit_batch(std::move(batch));
      return;
    }
    for (NodeId w : ready) submit_node(w);
  }

  void submit_node(NodeId v) { dispatch(v, make_closure(v)); }

  std::function<void()> make_closure(NodeId v) {
    auto self = shared_from_this();

    if (blocking && task.type(v) == NodeType::BF) {
      // Listing 1: one function runs fork body, spawns, waits, runs join.
      const NodeId join = task.join_of(v);
      return [self, v, join] {
        if (self->is_cancelled()) return;
        self->execute_node(v);
        self->complete(v);  // releases the children (and maybe the barrier)
        {
          // Wait for the region on a condition variable: the worker is
          // suspended and unavailable — the paper's reduced concurrency.
          ThreadPool::BlockedScope blocked(self->pool);
          util::MutexLock lock(self->mutex);
          while (!self->cancelled &&
                 self->preds_left[join].load(std::memory_order_acquire) != 0)
            self->barrier_cv.wait(self->mutex);
          if (self->cancelled) return;
        }
        self->execute_node(join);
        self->complete(join);
      };
    }

    return [self, v] {
      if (self->is_cancelled()) return;
      self->execute_node(v);
      self->complete(v);
    };
  }
};

ExecReport run_graph(ThreadPool& pool, const DagTask& task, const ExecOptions& options,
                     std::function<void(NodeId)> body, bool blocking) {
  if (pool.mode() == ThreadPool::QueueMode::kPerWorker) {
    if (!options.assignment.has_value())
      throw std::invalid_argument("GraphExecutor: kPerWorker pool needs an assignment");
    if (options.assignment->thread_of.size() != task.node_count())
      throw std::invalid_argument("GraphExecutor: assignment size mismatch");
    for (analysis::ThreadId w : options.assignment->thread_of)
      if (w >= pool.worker_count())
        throw std::invalid_argument("GraphExecutor: worker index out of range");
  }

  auto state =
      std::make_shared<RunState>(pool, task, options, std::move(body), blocking);

  const auto start = Clock::now();
  state->submit_node(task.source());

  ExecReport report;
  {
    util::MutexLock lock(state->mutex);
    const auto deadline = Clock::now() + options.watchdog;
    while (!state->done &&
           state->done_cv.wait_until(state->mutex, deadline) != std::cv_status::timeout) {
    }
    if (!state->done) {
      // Stall (e.g. deadlock): cancel and release every barrier wait.
      state->cancelled = true;
      state->barrier_cv.notify_all();
    }
    report.completed = state->done;
  }
  report.elapsed =
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - start);
  report.nodes_executed = state->executed.load(std::memory_order_relaxed);
  report.max_blocked_workers = pool.max_blocked_workers();
  return report;
}

}  // namespace

GraphExecutor::GraphExecutor(ThreadPool& pool, const model::DagTask& task)
    : pool_(pool), task_(task) {}

ExecReport GraphExecutor::run_blocking(const ExecOptions& options,
                                       const std::function<void(model::NodeId)>& body) {
  return run_graph(pool_, task_, options, body, /*blocking=*/true);
}

ExecReport GraphExecutor::run_non_blocking(
    const ExecOptions& options, const std::function<void(model::NodeId)>& body) {
  return run_graph(pool_, task_, options, body, /*blocking=*/false);
}

}  // namespace rtpool::exec
