#include "exec/graph_executor.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <set>
#include <stdexcept>
#include <thread>

#include "util/thread_annotations.h"

namespace rtpool::exec {

namespace {

using model::DagTask;
using model::NodeId;
using model::NodeType;
using Clock = std::chrono::steady_clock;

void spin_for(double microseconds) {
  if (microseconds <= 0.0) return;
  const auto until = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                        std::chrono::duration<double, std::micro>(
                                            microseconds));
  while (Clock::now() < until) {
    // Busy-wait models CPU-bound node execution; the heartbeat keeps the
    // guard's liveness check from mistaking a long legitimate node for a
    // hung worker.
    ThreadPool::heartbeat();
  }
}

/// Shared state of one graph run. Every closure holds a shared_ptr to it,
/// so a cancelled run (watchdog) can safely outlive the GraphExecutor call:
/// leftover closures see `cancelled` and return. The ThreadPool itself must
/// outlive the run only as long as its own workers do, which its destructor
/// guarantees.
struct RunState : std::enable_shared_from_this<RunState> {
  /// Runtime phase of one blocking region, sampled by the guard.
  struct RegionRt {
    enum class Phase { kIdle, kForkRunning, kWaiting, kDone };
    Phase phase = Phase::kIdle;
    std::optional<std::size_t> worker;  ///< Who runs/suspends the fork.
  };

  RunState(ThreadPool& p, const DagTask& t, const ExecOptions& opts,
           std::function<void(NodeId)> b, bool block)
      : pool(p),
        task(t),
        options(opts),
        body(std::move(b)),
        blocking(block),
        preds_left(t.node_count()),
        executed(0) {
    for (NodeId v = 0; v < t.node_count(); ++v)
      preds_left[v].store(static_cast<int>(t.dag().in_degree(v)),
                          std::memory_order_relaxed);
    util::MutexLock lock(mutex);  // closures don't exist yet; TSA discipline
    regions.resize(t.blocking_regions().size());
  }

  ThreadPool& pool;
  const DagTask& task;
  ExecOptions options;
  std::function<void(NodeId)> body;
  bool blocking;

  std::vector<std::atomic<int>> preds_left;
  std::atomic<std::size_t> executed;

  util::Mutex mutex;
  util::CondVar barrier_cv;  ///< Signalled when any region completes.
  util::CondVar done_cv;     ///< Signalled when the sink completes.
  bool done RTPOOL_GUARDED_BY(mutex) = false;
  bool cancelled RTPOOL_GUARDED_BY(mutex) = false;

  // Guard instrumentation: region phases and submitted-but-not-started
  // nodes (value = target worker; nullopt = shared queue).
  std::vector<RegionRt> regions RTPOOL_GUARDED_BY(mutex);
  std::map<NodeId, std::optional<std::size_t>> pending RTPOOL_GUARDED_BY(mutex);

  // Exception-safe execution: nodes whose body threw.
  std::vector<NodeId> failed_nodes RTPOOL_GUARDED_BY(mutex);
  std::string first_error RTPOOL_GUARDED_BY(mutex);

  // Injected drop-notify faults already consumed (each drops one notify).
  std::set<NodeId> notify_dropped RTPOOL_GUARDED_BY(mutex);

  // Lethal faults (worker death/hang) already consumed: the re-run of a
  // killed node's closure finds its id here and executes cleanly — the
  // exactly-once half of the recovery guarantee.
  std::set<NodeId> lethal_consumed RTPOOL_GUARDED_BY(mutex);
  // Nodes wedged under a hung worker (slot -> node), re-dispatched by the
  // guard's resubmit hook after the worker is condemned.
  std::map<std::size_t, NodeId> hung_nodes RTPOOL_GUARDED_BY(mutex);

  bool is_cancelled() RTPOOL_EXCLUDES(mutex) {
    util::MutexLock lock(mutex);
    return cancelled;
  }

  std::optional<std::size_t> target_of(NodeId v) const {
    if (pool.mode() == ThreadPool::QueueMode::kPerWorker)
      return options.assignment->thread_of[v];
    return std::nullopt;
  }

  void execute_node(NodeId v) {
    const NodeFault* fault = options.faults.find(v);
    double factor = 1.0;
    if (fault && fault->kind == FaultKind::kWcetOverrun)
      factor = fault->overrun_factor;
    spin_for(task.wcet(v) * options.microseconds_per_unit * factor);
    if (fault && fault->kind == FaultKind::kStall)
      std::this_thread::sleep_for(fault->stall);
    try {
      if (fault && fault->kind == FaultKind::kThrow)
        throw std::runtime_error(fault->message);
      if (body) body(v);
    } catch (...) {
      // A throwing body degrades to a failed node: record it and let the
      // node complete structurally so successors run and barriers open.
      record_failure(v);
    }
    executed.fetch_add(1, std::memory_order_relaxed);
  }

  void record_failure(NodeId v) RTPOOL_EXCLUDES(mutex) {
    std::string what = "unknown exception";
    try {
      throw;  // rethrow the in-flight exception to classify it
    } catch (const std::exception& e) {
      what = e.what();
    } catch (...) {
    }
    util::MutexLock lock(mutex);
    failed_nodes.push_back(v);
    if (first_error.empty()) first_error = what;
  }

  /// True when the injected drop-notify fault on BJ node w eats this
  /// notify (once per plan entry).
  bool consume_drop_notify(NodeId w) RTPOOL_REQUIRES(mutex) {
    const NodeFault* fault = options.faults.find(w);
    if (fault == nullptr || fault->kind != FaultKind::kDropNotify) return false;
    return notify_dropped.insert(w).second;
  }

  /// Lethal fault injection, called at the very top of a plain closure —
  /// BEFORE pending.erase and before any node side effect, so the re-run
  /// executes the node exactly once. Throws WorkerDeathSignal (the pool
  /// hands the closure back to its queue) or parks the worker forever (the
  /// guard re-dispatches the node via resubmit_for). Consumed once per
  /// node; returns normally on the re-run, on cancelled runs, and on
  /// threads that are not regular pool workers.
  void maybe_lethal(NodeId v) RTPOOL_EXCLUDES(mutex) {
    const NodeFault* fault = options.faults.find(v);
    if (fault == nullptr || (fault->kind != FaultKind::kWorkerDeath &&
                             fault->kind != FaultKind::kWorkerHang))
      return;
    const std::optional<std::size_t> worker = ThreadPool::current_worker();
    if (!worker.has_value() || *worker >= ThreadPool::kEmergencyIndexBase)
      return;  // emergency/off-pool threads don't crash or hang
    {
      util::MutexLock lock(mutex);
      if (cancelled) return;
      if (!lethal_consumed.insert(v).second) return;  // re-run: clean
      if (fault->kind == FaultKind::kWorkerHang) hung_nodes[*worker] = v;
      // `pending[v]` intentionally stays registered: for a death the
      // closure is handed back to a queue, for a hang it is awaiting
      // re-dispatch — either way "submitted but not started" is true.
    }
    if (fault->kind == FaultKind::kWorkerDeath) throw WorkerDeathSignal{};
    pool.park_current_worker();  // returns only off-pool (excluded above)
  }

  /// Guard resubmit hook: re-dispatch the node `worker` was wedged on.
  bool resubmit_for(std::size_t worker) RTPOOL_EXCLUDES(mutex) {
    NodeId v;
    {
      util::MutexLock lock(mutex);
      const auto it = hung_nodes.find(worker);
      if (it == hung_nodes.end()) return false;
      v = it->second;
      hung_nodes.erase(it);
      if (cancelled || done) return false;
    }
    submit_node(v);
    return true;
  }

  /// Mark v complete; release/submit its successors.
  void complete(NodeId v) {
    if (v == task.sink()) {
      util::MutexLock lock(mutex);
      done = true;
      done_cv.notify_all();
      return;
    }
    std::vector<NodeId> ready;
    for (NodeId w : task.dag().successors(v)) {
      if (preds_left[w].fetch_sub(1, std::memory_order_acq_rel) != 1) continue;
      if (blocking && task.type(w) == NodeType::BJ) {
        // The barrier of w's region is now open: wake the waiting fork —
        // unless a drop-notify fault eats the wakeup (the guard detects the
        // satisfied-but-sleeping barrier and re-notifies).
        util::MutexLock lock(mutex);
        if (!consume_drop_notify(w)) barrier_cv.notify_all();
      } else {
        ready.push_back(w);
      }
    }
    if (ready.empty()) return;
    // Release simultaneously-ready successors atomically: a precedence
    // constraint opening must not expose a partially-submitted state, or
    // scheduling outcomes (e.g. which forks overlap) depend on preemption
    // between the individual submits.
    {
      util::MutexLock lock(mutex);
      for (NodeId w : ready) pending[w] = target_of(w);
    }
    if (pool.mode() == ThreadPool::QueueMode::kPerWorker) {
      std::vector<std::pair<std::size_t, std::function<void()>>> batch;
      batch.reserve(ready.size());
      for (NodeId w : ready) batch.emplace_back(*target_of(w), make_closure(w));
      pool.submit_batch_to(std::move(batch));
    } else if (ready.size() > 1) {
      std::vector<std::function<void()>> batch;
      batch.reserve(ready.size());
      for (NodeId w : ready) batch.push_back(make_closure(w));
      pool.submit_batch(std::move(batch));
    } else {
      pool.submit(make_closure(ready.front()));
    }
  }

  void submit_node(NodeId v) {
    {
      util::MutexLock lock(mutex);
      pending[v] = target_of(v);
    }
    if (pool.mode() == ThreadPool::QueueMode::kPerWorker) {
      pool.submit(make_closure(v), *target_of(v));
    } else {
      pool.submit(make_closure(v));
    }
  }

  std::function<void()> make_closure(NodeId v) {
    auto self = shared_from_this();

    if (blocking && task.type(v) == NodeType::BF) {
      // Listing 1: one function runs fork body, spawns, waits, runs join.
      const NodeId join = task.join_of(v);
      const std::size_t region = *task.region_of(v);
      return [self, v, join, region] {
        {
          util::MutexLock lock(self->mutex);
          if (self->cancelled) return;
          self->pending.erase(v);
          self->regions[region].phase = RegionRt::Phase::kForkRunning;
          self->regions[region].worker = ThreadPool::current_worker();
        }
        self->execute_node(v);
        self->complete(v);  // releases the children (and maybe the barrier)
        {
          // Wait for the region on a condition variable: the worker is
          // suspended and unavailable — the paper's reduced concurrency.
          ThreadPool::BlockedScope blocked(self->pool);
          util::MutexLock lock(self->mutex);
          self->regions[region].phase = RegionRt::Phase::kWaiting;
          while (!self->cancelled &&
                 self->preds_left[join].load(std::memory_order_acquire) != 0)
            self->barrier_cv.wait(self->mutex);
          if (self->cancelled) return;
          self->regions[region].phase = RegionRt::Phase::kDone;
        }
        self->execute_node(join);
        self->complete(join);
      };
    }

    return [self, v] {
      self->maybe_lethal(v);  // may throw WorkerDeathSignal / park forever
      {
        util::MutexLock lock(self->mutex);
        if (self->cancelled) return;
        self->pending.erase(v);
      }
      self->execute_node(v);
      self->complete(v);
    };
  }

  /// One guard poll: pool counters + region/queue introspection.
  GuardSample sample() RTPOOL_EXCLUDES(mutex) {
    GuardSample s;
    s.active = pool.active();
    s.blocked = pool.blocked_workers();
    s.pool_workers = pool.worker_count();
    const std::size_t capacity =
        pool.worker_count() + pool.emergency_worker_count();
    const bool per_worker = pool.mode() == ThreadPool::QueueMode::kPerWorker;
    // Stealing replicates global scheduling: any idle worker reaches any
    // queue. Suppressed per-run stealing is conservative here (treated as
    // off — the run asked for strict placement).
    const bool global_reach =
        !per_worker ||
        (pool.stealing_configured() && options.allow_stealing_with_assignment);

    util::MutexLock lock(mutex);
    s.done = done;
    for (std::size_t r = 0; r < regions.size(); ++r) {
      if (regions[r].phase != RegionRt::Phase::kWaiting) continue;
      const model::BlockingRegion& br = task.blocking_regions()[r];
      const int left = preds_left[br.join].load(std::memory_order_acquire);
      const std::size_t remaining = left > 0 ? static_cast<std::size_t>(left) : 0;
      s.waiting.push_back({br.fork, regions[r].worker, remaining});
      if (remaining == 0) s.lost_wakeup = true;  // satisfied barrier asleep
    }
    for (const auto& [v, target] : pending) {
      bool reachable;
      if (global_reach) {
        reachable = s.active < capacity;  // an idle worker will pop it
      } else {
        reachable = target.has_value() && !pool.worker_blocked(*target);
        // Emergency workers scan every queue, so any idle thread suffices.
        if (!reachable && pool.emergency_worker_count() > 0)
          reachable = s.active < capacity;
      }
      if (reachable) {
        s.reachable_work = true;
      } else {
        s.starved.push_back({v, target});
      }
    }
    // Any change in this fingerprint counts as progress for the budget.
    std::uint64_t h = executed.load(std::memory_order_relaxed);
    h = h * 1000003u + s.active;
    h = h * 1000003u + s.blocked;
    h = h * 1000003u + pending.size();
    h = h * 1000003u + s.waiting.size();
    h = h * 1000003u + failed_nodes.size();
    s.progress = h;
    return s;
  }

  void renotify() RTPOOL_EXCLUDES(mutex) {
    util::MutexLock lock(mutex);
    barrier_cv.notify_all();
    done_cv.notify_all();
  }

  void cancel() RTPOOL_EXCLUDES(mutex) {
    util::MutexLock lock(mutex);
    if (done) return;
    cancelled = true;
    barrier_cv.notify_all();
    done_cv.notify_all();
  }
};

ExecReport run_graph(ThreadPool& pool, const DagTask& task, const ExecOptions& options,
                     std::function<void(NodeId)> body, bool blocking) {
  if (pool.mode() == ThreadPool::QueueMode::kPerWorker) {
    if (!options.assignment.has_value())
      throw std::invalid_argument("GraphExecutor: kPerWorker pool needs an assignment");
    if (options.assignment->thread_of.size() != task.node_count())
      throw std::invalid_argument("GraphExecutor: assignment size mismatch");
    for (analysis::ThreadId w : options.assignment->thread_of)
      if (w >= pool.slot_count())
        throw std::invalid_argument("GraphExecutor: worker index out of range");
  }

  ExecReport report;

  // Stealing off another worker's queue breaks the Eq. (3) placement the
  // partitioned analysis assumes: suppress it for the run unless the caller
  // loudly opts in.
  std::optional<ThreadPool::SuppressStealing> suppress;
  if (options.assignment.has_value() && pool.stealing_configured()) {
    if (options.allow_stealing_with_assignment) {
      report.stealing_bypassed_assignment = true;
    } else {
      suppress.emplace(pool);
    }
  }

  auto state =
      std::make_shared<RunState>(pool, task, options, std::move(body), blocking);

  GuardOptions guard_options;
  guard_options.policy = options.recovery;
  guard_options.poll = options.guard_poll;
  guard_options.budget = options.watchdog;
  guard_options.max_emergency_workers = options.max_emergency_workers;
  guard_options.liveness = options.worker_liveness;
  guard_options.max_respawns = options.max_worker_respawns;
  guard_options.respawn_backoff = options.respawn_backoff;
  GuardHooks hooks;
  hooks.sample = [state] { return state->sample(); };
  hooks.renotify = [state] { state->renotify(); };
  hooks.inject_worker = [&pool] { return pool.spawn_emergency_worker(); };
  hooks.cancel = [state] { state->cancel(); };
  hooks.worker_status = [&pool] { return pool.worker_status(); };
  hooks.condemn = [&pool](std::size_t worker, bool redistribute) {
    return pool.condemn_worker(worker, redistribute);
  };
  hooks.respawn = [&pool](std::size_t worker) {
    return pool.respawn_worker(worker);
  };
  hooks.resubmit = [state](std::size_t worker) {
    return state->resubmit_for(worker);
  };

  const auto start = Clock::now();
  std::optional<StallReport> stall;
  {
    Watchdog watchdog(guard_options, std::move(hooks));
    state->submit_node(task.source());
    {
      util::MutexLock lock(state->mutex);
      // The guard owns stall handling; this deadline is only a safety net
      // against a defect in the guard itself.
      const auto hard_deadline =
          Clock::now() + options.watchdog * 4 + std::chrono::seconds(5);
      while (!state->done && !state->cancelled) {
        if (state->done_cv.wait_until(state->mutex, hard_deadline) ==
            std::cv_status::timeout) {
          state->cancelled = true;
          state->barrier_cv.notify_all();
          break;
        }
      }
      report.completed = state->done;
    }
    watchdog.stop();
    stall = watchdog.stall();
    report.emergency_workers = watchdog.emergency_workers_injected();
    report.lost_wakeups_recovered = watchdog.lost_wakeups_recovered();
    report.worker_recoveries = watchdog.recoveries();
    report.workers_respawned = watchdog.respawns_used();
    report.degraded = watchdog.degraded();
  }
  report.elapsed =
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - start);
  report.nodes_executed = state->executed.load(std::memory_order_relaxed);
  report.max_blocked_workers = pool.max_blocked_workers();
  {
    util::MutexLock lock(state->mutex);
    report.failed_nodes = state->failed_nodes;
    std::sort(report.failed_nodes.begin(), report.failed_nodes.end());
    report.first_error = state->first_error;
  }
  report.stall = std::move(stall);
  if (report.stall.has_value() &&
      options.recovery == RecoveryPolicy::kFailFast) {
    throw StallError(*report.stall);
  }
  return report;
}

}  // namespace

GraphExecutor::GraphExecutor(ThreadPool& pool, const model::DagTask& task)
    : pool_(pool), task_(task) {}

ExecReport GraphExecutor::run_blocking(const ExecOptions& options,
                                       const std::function<void(model::NodeId)>& body) {
  return run_graph(pool_, task_, options, body, /*blocking=*/true);
}

ExecReport GraphExecutor::run_non_blocking(
    const ExecOptions& options, const std::function<void(model::NodeId)>& body) {
  return run_graph(pool_, task_, options, body, /*blocking=*/false);
}

}  // namespace rtpool::exec
