#include "exec/guard.h"

#include <sstream>

namespace rtpool::exec {

namespace {
using Clock = std::chrono::steady_clock;
}  // namespace

const char* to_string(RecoveryPolicy policy) {
  switch (policy) {
    case RecoveryPolicy::kReport: return "report";
    case RecoveryPolicy::kEmergencyWorker: return "emergency-worker";
    case RecoveryPolicy::kFailFast: return "fail-fast";
  }
  return "?";
}

std::string StallReport::describe() const {
  std::ostringstream out;
  out << (budget_exhausted ? "no progress for the watchdog budget"
                           : "stall (quiescent pool)")
      << " after " << detected_after.count() << " ms: " << blocked_workers << "/"
      << pool_workers << " workers suspended";
  for (const BlockedForkInfo& b : blocked) {
    out << "; fork " << b.fork;
    if (b.worker.has_value()) out << " on worker " << *b.worker;
    out << " waits for " << b.remaining << " node(s)";
  }
  if (!starved.empty()) {
    out << "; starved nodes:";
    for (const StarvedNodeInfo& s : starved) {
      out << " " << s.node;
      if (s.queued_on.has_value()) out << "@w" << *s.queued_on;
    }
  }
  if (!wait_cycle.empty()) {
    out << "; wait-for cycle: ";
    for (model::NodeId f : wait_cycle) out << f << " -> ";
    out << wait_cycle.front();
  }
  out << "; policy=" << to_string(policy);
  if (emergency_workers_injected > 0)
    out << " (injected " << emergency_workers_injected
        << " emergency worker(s): pool size m exceeded)";
  return out.str();
}

StallError::StallError(StallReport report)
    : std::runtime_error(report.describe()), report_(std::move(report)) {}

Watchdog::Watchdog(GuardOptions options, GuardHooks hooks)
    : options_(options), hooks_(std::move(hooks)) {
  thread_ = std::thread([this] { loop(); });
}

Watchdog::~Watchdog() { stop(); }

void Watchdog::stop() {
  {
    util::MutexLock lock(mutex_);
    if (stop_ && !thread_.joinable()) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void Watchdog::loop() {
  const auto start = Clock::now();
  auto last_progress_time = start;
  std::uint64_t last_progress = ~std::uint64_t{0};
  int confirmed = 0;

  for (;;) {
    {
      util::MutexLock lock(mutex_);
      if (stop_) return;
      cv_.wait_for(mutex_, options_.poll);
      if (stop_) return;
    }
    GuardSample s = hooks_.sample();
    if (s.done) {
      // Belt and braces: if done was reached but the completion notify was
      // lost (an injected fault can drop it), wake the run's caller.
      if (hooks_.renotify) hooks_.renotify();
      return;
    }
    const auto now = Clock::now();
    if (s.progress != last_progress) {
      last_progress = s.progress;
      last_progress_time = now;
      confirmed = 0;
    }
    if (s.lost_wakeup) {
      // A barrier whose condition already holds is asleep on a lost notify:
      // re-notify (waiters re-check their predicate, so this is always safe)
      // instead of declaring a stall.
      ++lost_wakeups_;
      if (hooks_.renotify) hooks_.renotify();
      confirmed = 0;
      continue;
    }
    // Quiescent = every in-flight closure is suspended at a barrier and no
    // queued closure can be reached by an unblocked worker. Nothing can
    // change state anymore: a genuine deadlock, not mere slowness.
    const bool quiescent =
        s.blocked > 0 && s.active == s.blocked && !s.reachable_work;
    confirmed = quiescent ? confirmed + 1 : 0;
    const bool budget_out = now - last_progress_time >= options_.budget;
    if (confirmed < options_.confirm_samples && !budget_out) continue;

    const bool proven = confirmed >= options_.confirm_samples;
    if (!stall_.has_value()) {
      StallReport report;
      report.detected_after =
          std::chrono::duration_cast<std::chrono::milliseconds>(now - start);
      report.blocked = s.waiting;
      report.starved = s.starved;
      report.pool_workers = s.pool_workers;
      report.blocked_workers = s.blocked;
      report.policy = options_.policy;
      report.budget_exhausted = !proven;
      if (proven) {
        // The blocked forks wait on threads held (cyclically) by each other:
        // the runtime image of the Lemma 2 wait-for cycle. A single fork
        // starving its own children (Lemma 3) shows up as a 1-cycle.
        for (const BlockedForkInfo& b : s.waiting)
          report.wait_cycle.push_back(b.fork);
      }
      stall_ = std::move(report);
    }
    if (proven && options_.policy == RecoveryPolicy::kEmergencyWorker &&
        injected_ < options_.max_emergency_workers && hooks_.inject_worker &&
        hooks_.inject_worker()) {
      ++injected_;
      stall_->emergency_workers_injected = injected_;
      confirmed = 0;
      last_progress_time = now;  // give the new worker a fresh budget
      continue;
    }
    hooks_.cancel();
    return;
  }
}

}  // namespace rtpool::exec
