#include "exec/guard.h"

#include <sstream>

namespace rtpool::exec {

namespace {
using Clock = std::chrono::steady_clock;
}  // namespace

const char* to_string(RecoveryPolicy policy) {
  switch (policy) {
    case RecoveryPolicy::kReport: return "report";
    case RecoveryPolicy::kEmergencyWorker: return "emergency-worker";
    case RecoveryPolicy::kFailFast: return "fail-fast";
  }
  return "?";
}

std::string StallReport::describe() const {
  std::ostringstream out;
  out << (budget_exhausted ? "no progress for the watchdog budget"
                           : "stall (quiescent pool)")
      << " after " << detected_after.count() << " ms: " << blocked_workers << "/"
      << pool_workers << " workers suspended";
  for (const BlockedForkInfo& b : blocked) {
    out << "; fork " << b.fork;
    if (b.worker.has_value()) out << " on worker " << *b.worker;
    out << " waits for " << b.remaining << " node(s)";
  }
  if (!starved.empty()) {
    out << "; starved nodes:";
    for (const StarvedNodeInfo& s : starved) {
      out << " " << s.node;
      if (s.queued_on.has_value()) out << "@w" << *s.queued_on;
    }
  }
  if (!wait_cycle.empty()) {
    out << "; wait-for cycle: ";
    for (model::NodeId f : wait_cycle) out << f << " -> ";
    out << wait_cycle.front();
  }
  out << "; policy=" << to_string(policy);
  if (emergency_workers_injected > 0)
    out << " (injected " << emergency_workers_injected
        << " emergency worker(s): pool size m exceeded)";
  return out.str();
}

std::string WorkerRecovery::describe() const {
  std::ostringstream out;
  out << "worker " << worker << (crashed ? " crashed" : " hung") << " after "
      << detected_after.count() << " ms";
  if (requeued > 0) out << "; " << requeued << " queued closure(s) redistributed";
  if (node_resubmitted) out << "; in-flight node re-dispatched";
  out << (respawned ? "; replacement spawned" : "; NOT replaced");
  return out.str();
}

std::string DegradedReport::describe() const {
  std::ostringstream out;
  out << "pool degraded: " << workers_lost << " worker(s) lost after "
      << respawns_used << " respawn(s); running on " << pool_workers_left
      << " worker(s) — below the size the analysis admitted";
  return out.str();
}

StallError::StallError(StallReport report)
    : std::runtime_error(report.describe()), report_(std::move(report)) {}

Watchdog::Watchdog(GuardOptions options, GuardHooks hooks)
    : options_(options), hooks_(std::move(hooks)) {
  thread_ = std::thread([this] { loop(); });
}

Watchdog::~Watchdog() { stop(); }

void Watchdog::stop() {
  {
    util::MutexLock lock(mutex_);
    if (stop_ && !thread_.joinable()) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void Watchdog::loop() {
  const auto start = Clock::now();
  auto last_progress_time = start;
  std::uint64_t last_progress = ~std::uint64_t{0};
  int confirmed = 0;

  // Liveness tracking: per slot, the last heartbeat epoch seen and when it
  // last changed. Slots pending a (backed-off) respawn.
  struct EpochTrack {
    std::uint64_t epoch = 0;
    Clock::time_point since{};
    bool init = false;
  };
  std::map<std::size_t, EpochTrack> epochs;
  std::deque<std::size_t> pending_respawns;
  auto next_respawn_time = start;  // first respawn is immediate

  for (;;) {
    {
      util::MutexLock lock(mutex_);
      if (stop_) return;
      cv_.wait_for(mutex_, options_.poll);
      if (stop_) return;
    }
    GuardSample s = hooks_.sample();
    if (s.done) {
      // Belt and braces: if done was reached but the completion notify was
      // lost (an injected fault can drop it), wake the run's caller.
      if (hooks_.renotify) hooks_.renotify();
      return;
    }
    const auto now = Clock::now();
    if (s.progress != last_progress) {
      last_progress = s.progress;
      last_progress_time = now;
      confirmed = 0;
    }

    // ---- liveness: dead and hung workers ----
    if (hooks_.worker_status && hooks_.condemn) {
      bool acted = false;
      for (const ThreadPool::WorkerStatus& ws : hooks_.worker_status()) {
        if (ws.condemned) continue;
        EpochTrack& tr = epochs[ws.worker];
        if (!tr.init || tr.epoch != ws.epoch) {
          tr.epoch = ws.epoch;
          tr.since = now;
          tr.init = true;
        }
        // Crash: the thread exited outside the drain protocol (kDead, not
        // kRetired). Hang: busy but NOT legitimately suspended at a
        // barrier, heartbeat stale past the liveness budget. A worker
        // blocked in a BlockedScope is exempt — suspension is the
        // stall/quiescence detector's jurisdiction, not liveness'.
        const bool crashed =
            ws.exited && ws.state == ThreadPool::WorkerState::kDead;
        const bool hung = !ws.exited && ws.busy && !ws.blocked &&
                          (ws.state == ThreadPool::WorkerState::kLive ||
                           ws.state == ThreadPool::WorkerState::kRetiring) &&
                          now - tr.since >= options_.liveness;
        if (!crashed && !hung) continue;

        const bool budget_left = respawns_used_ + pending_respawns.size() <
                                 options_.max_respawns;
        // Without a respawn coming, the slot's queue must be redistributed
        // now; with one, the replacement inherits it (placement preserved).
        const ThreadPool::CondemnOutcome out =
            hooks_.condemn(ws.worker, /*redistribute=*/!budget_left);
        if (!out.condemned) continue;  // raced with another recovery path
        WorkerRecovery rec;
        rec.worker = ws.worker;
        rec.crashed = crashed;
        rec.detected_after =
            std::chrono::duration_cast<std::chrono::milliseconds>(now - start);
        rec.requeued = out.requeued;
        if (budget_left && hooks_.respawn) {
          pending_respawns.push_back(ws.worker);
        } else if (!degraded_.has_value()) {
          DegradedReport deg;
          deg.respawns_used = respawns_used_;
          deg.pool_workers_left = out.live_left;
          degraded_ = deg;
        }
        if (degraded_.has_value()) {
          ++degraded_->workers_lost;
          degraded_->pool_workers_left = out.live_left;
        }
        if (hooks_.resubmit) rec.node_resubmitted = hooks_.resubmit(ws.worker);
        recoveries_.push_back(rec);
        acted = true;
      }
      if (!pending_respawns.empty() && hooks_.respawn && now >= next_respawn_time) {
        const std::size_t worker = pending_respawns.front();
        pending_respawns.pop_front();
        if (hooks_.respawn(worker)) {
          ++respawns_used_;
          epochs.erase(worker);  // the replacement starts a fresh epoch clock
          for (WorkerRecovery& rec : recoveries_)
            if (rec.worker == worker) rec.respawned = true;
          // Exponential backoff: repeated losses slow the replacement rate
          // so a crash-looping workload cannot hot-spin thread creation.
          next_respawn_time =
              now + options_.respawn_backoff *
                        (std::int64_t{1} << std::min<std::size_t>(
                             respawns_used_ - 1, 6));
          acted = true;
        } else if (!degraded_.has_value()) {
          // Replacement failed (pool shutting down / slot raced back to
          // life): degrade loudly rather than retry-loop.
          DegradedReport deg;
          deg.workers_lost = 1;
          deg.respawns_used = respawns_used_;
          degraded_ = deg;
          acted = true;
        }
      }
      if (acted) {
        // Recovery IS progress: give the repaired pool a fresh budget and
        // drop any half-confirmed quiescence streak.
        last_progress_time = now;
        confirmed = 0;
        continue;
      }
      if (!pending_respawns.empty()) {
        // A replacement is due but backing off: the pool is transiently
        // below the size the analysis admitted, so neither quiescence nor
        // the progress budget is a verdict about the committed
        // configuration. A blocking chain that closes in this window is
        // healed by the replacement adopting the dead slot's queue.
        last_progress_time = now;
        confirmed = 0;
        continue;
      }
    }
    if (s.lost_wakeup) {
      // A barrier whose condition already holds is asleep on a lost notify:
      // re-notify (waiters re-check their predicate, so this is always safe)
      // instead of declaring a stall.
      ++lost_wakeups_;
      if (hooks_.renotify) hooks_.renotify();
      confirmed = 0;
      continue;
    }
    // Quiescent = every in-flight closure is suspended at a barrier and no
    // queued closure can be reached by an unblocked worker. Nothing can
    // change state anymore: a genuine deadlock, not mere slowness.
    const bool quiescent =
        s.blocked > 0 && s.active == s.blocked && !s.reachable_work;
    confirmed = quiescent ? confirmed + 1 : 0;
    const bool budget_out = now - last_progress_time >= options_.budget;
    if (confirmed < options_.confirm_samples && !budget_out) continue;

    const bool proven = confirmed >= options_.confirm_samples;
    if (!stall_.has_value()) {
      StallReport report;
      report.detected_after =
          std::chrono::duration_cast<std::chrono::milliseconds>(now - start);
      report.blocked = s.waiting;
      report.starved = s.starved;
      report.pool_workers = s.pool_workers;
      report.blocked_workers = s.blocked;
      report.policy = options_.policy;
      report.budget_exhausted = !proven;
      if (proven) {
        // The blocked forks wait on threads held (cyclically) by each other:
        // the runtime image of the Lemma 2 wait-for cycle. A single fork
        // starving its own children (Lemma 3) shows up as a 1-cycle.
        for (const BlockedForkInfo& b : s.waiting)
          report.wait_cycle.push_back(b.fork);
      }
      stall_ = std::move(report);
    }
    if (proven && options_.policy == RecoveryPolicy::kEmergencyWorker &&
        injected_ < options_.max_emergency_workers && hooks_.inject_worker &&
        hooks_.inject_worker()) {
      ++injected_;
      stall_->emergency_workers_injected = injected_;
      confirmed = 0;
      last_progress_time = now;  // give the new worker a fresh budget
      continue;
    }
    hooks_.cancel();
    return;
  }
}

}  // namespace rtpool::exec
