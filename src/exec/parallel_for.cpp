#include "exec/parallel_for.h"

#include <condition_variable>
#include <memory>
#include <mutex>
#include <stdexcept>

namespace rtpool::exec {

namespace {

struct ForState {
  std::mutex mutex;
  std::condition_variable done_cv;
  std::size_t chunks_left = 0;
  bool cancelled = false;
};

}  // namespace

bool parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  const ParallelForOptions& options) {
  if (options.grain == 0)
    throw std::invalid_argument("parallel_for: grain must be >= 1");
  if (pool.mode() != ThreadPool::QueueMode::kShared)
    throw std::logic_error("parallel_for: requires a shared-queue pool");
  if (begin >= end) return true;

  auto state = std::make_shared<ForState>();
  const std::size_t total = end - begin;
  const std::size_t chunks = (total + options.grain - 1) / options.grain;
  state->chunks_left = chunks;

  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * options.grain;
    const std::size_t hi = std::min(end, lo + options.grain);
    pool.submit([state, lo, hi, b = body] {
      // The chunk owns a copy of the body (`b`): with a timeout the caller
      // may return (destroying its `body`) while chunks are still queued.
      {
        std::lock_guard lock(state->mutex);
        if (state->cancelled) return;
      }
      for (std::size_t i = lo; i < hi; ++i) b(i);
      std::lock_guard lock(state->mutex);
      if (--state->chunks_left == 0) state->done_cv.notify_all();
    });
  }

  // Block until the barrier opens — suspending this worker if we are one.
  std::unique_ptr<ThreadPool::BlockedScope> blocked;
  if (ThreadPool::current_worker().has_value())
    blocked = std::make_unique<ThreadPool::BlockedScope>(pool);

  std::unique_lock lock(state->mutex);
  const auto open = [&] { return state->chunks_left == 0; };
  if (options.timeout.count() <= 0) {
    state->done_cv.wait(lock, open);
    return true;
  }
  if (state->done_cv.wait_for(lock, options.timeout, open)) return true;
  state->cancelled = true;  // skip the chunks that have not started
  return false;
}

}  // namespace rtpool::exec
