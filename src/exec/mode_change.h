// Guarded online mode changes: an admission controller in front of every
// runtime transition of a pool-backed system.
//
// The paper analyzes a CLOSED system: a fixed task set on a fixed pool of m
// workers. A production service is open — task sets arrive, leave and
// resize while the pool runs. The ModeChangeController makes those
// transitions safe by construction:
//
//   request (admit / evict / resize)
//        │
//        ▼
//   1. PROPOSE   — build the candidate configuration (task set + core
//                  count) from the current committed mode;
//   2. ANALYZE   — run a registry analyzer over the proposal. Admissions
//                  reuse the previous mode's converged response times as a
//                  warm start (RtaContext::seed_warm_from): adding a task
//                  only adds interference, so warm verdicts stay
//                  bit-identical to a cold full re-analysis while skipping
//                  most of the fixed-point climb. Evictions and resizes
//                  skip the warm seed (interference shrinks / m changes —
//                  the superset premise fails). Independently, EVERY
//                  proposal is analyzed incrementally against the committed
//                  mode's recorded snapshots (begin_incremental): the
//                  longest priority-order prefix of surviving tasks with
//                  provably unchanged inputs gets its verdicts (and
//                  certificate payloads) copied instead of re-run — still
//                  bit-identical by construction.
//   3. DECIDE    — reject unless the analysis proves the proposal
//                  schedulable. Rejections carry the analyzer Report with
//                  its machine-checkable certificate (cert.h): the witness
//                  WHY the transition was refused, independently
//                  re-validatable via cert::check_certificate.
//   4. DRAIN     — block new JobScopes and wait until in-flight jobs of
//                  the old mode finish (quiescent switch point).
//   5. CROSS-CHECK — re-validate the accepted proposal against the runtime
//                  binding it will execute under: wait-for-cycle check
//                  (Lemma 2) per task for global modes, Lemma 3 / Eq. (3)
//                  per task under the new partition for partitioned modes.
//                  A failure here ROLLS BACK the transition (the old mode
//                  stays committed) and is recorded with its witness —
//                  defense in depth against an analyzer/binding mismatch.
//   6. COMMIT    — apply the pool delta (add_workers / retire_workers with
//                  its drain protocol) and install the new mode snapshot.
//
// Every request appends a ModeTransition to the replayable transition log.
// DETERMINISM CONTRACT: the controller derives nothing from wall-clock or
// randomness — feeding the same request sequence to a fresh controller
// with the same config yields an identical log (verdicts, reasons, warm
// seeding, certificates), except for the decision_ms timings; compare via
// render_log_json(/*include_timings=*/false).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/partition.h"
#include "analysis/rta_context.h"
#include "exec/thread_pool.h"
#include "model/dag_task.h"
#include "model/task_set.h"
#include "util/thread_annotations.h"

namespace rtpool::exec {

enum class ModeRequestKind : std::uint8_t { kAdmit, kEvict, kResize };

const char* to_string(ModeRequestKind kind);

struct ModeChangeConfig {
  /// Registry analyzer answering admission (resolved at construction;
  /// std::invalid_argument on an unknown name).
  std::string analyzer = "global-limited";
  /// Initial core count m when no pool is attached (ignored otherwise —
  /// the pool's worker_count() wins). Must be > 0 in that case.
  std::size_t cores = 0;
  /// Warm-seed admission analyses from the committed mode's context.
  bool warm_admission = true;
  /// Arm incremental re-analysis of every proposal against the committed
  /// mode's recorded result snapshots (RtaContext::begin_incremental):
  /// surviving tasks whose priority-order inputs are provably unchanged
  /// get their verdicts copied instead of re-running their fixed points.
  /// Sound for admit, evict AND resize — the per-analyze guards (equal
  /// options, scale, core count, partition rows) reject any copy whose
  /// inputs changed, so verdicts stay bit-identical to a cold run.
  bool incremental = true;
  /// Run the runtime cross-check (step 5) on accepted transitions.
  bool cross_check = true;
  /// Roll back an accepted transition whose cross-check fails (off: commit
  /// anyway but record cross_check_ok = false, loudly).
  bool require_cross_check = true;
  /// Cross-cutting analysis knobs. `diagnostics` is forced on internally
  /// so every verdict carries its certificate.
  analysis::AnalyzerOptions options;
};

/// The committed configuration a JobScope executes under. Immutable;
/// shared with in-flight jobs so a commit never invalidates what a running
/// job observes.
struct ModeSnapshot {
  std::shared_ptr<const model::TaskSet> task_set;
  /// Partition the analyzer admitted under (partitioned analyzers only).
  std::optional<analysis::TaskSetPartition> partition;
  std::size_t workers = 0;
  std::uint64_t version = 0;  ///< Monotone; bumped per commit.
};

/// One entry of the replayable transition log.
struct ModeTransition {
  std::uint64_t id = 0;  ///< 1-based request sequence number.
  ModeRequestKind kind = ModeRequestKind::kAdmit;
  std::string detail;    ///< Task name (admit/evict) or "m -> k" (resize).
  bool accepted = false;   ///< The analysis proved the proposal schedulable.
  bool committed = false;  ///< Installed as the current mode.
  bool cross_check_ok = true;   ///< Runtime re-validation verdict.
  bool warm_seeded = false;     ///< Admission reused prior warm state.
  std::size_t warm_hits = 0;    ///< Fixed-point iterations warm-started.
  bool incremental_armed = false;      ///< Proposal analyzed incrementally.
  std::size_t incremental_prefix = 0;  ///< Copyable priority-order prefix.
  std::size_t incremental_hits = 0;    ///< Per-task fixed points copied.
  std::string reject_reason;    ///< Why not committed ("" when committed).
  /// Full analyzer verdict; `report.certificate` is the machine-checkable
  /// witness (always attached — diagnostics is forced on).
  analysis::Report report;
  /// The analyzed candidate configuration (shared, immutable). Enables
  /// independent cold re-analysis and certificate checking.
  std::shared_ptr<const model::TaskSet> proposed;
  std::size_t workers_after = 0;  ///< Committed pool size after the request.
  double decision_ms = 0.0;       ///< Request-to-verdict wall time.
};

/// See file header. Thread-safe: requests serialize against each other;
/// JobScopes run concurrently with everything except the drain window.
class ModeChangeController {
 public:
  /// `pool` (optional, borrowed) receives add_workers/retire_workers on
  /// committed resizes; its worker_count() seeds the initial mode size.
  explicit ModeChangeController(ModeChangeConfig config,
                                ThreadPool* pool = nullptr);

  ModeChangeController(const ModeChangeController&) = delete;
  ModeChangeController& operator=(const ModeChangeController&) = delete;

  /// Request admission of `task` into the current mode.
  ModeTransition admit(const model::DagTask& task);
  /// Request removal of the task named `task_name`.
  ModeTransition evict(const std::string& task_name);
  /// Request a pool resize to `new_workers` (the whole surviving task set
  /// is re-analyzed at the new m, cold).
  ModeTransition resize(std::size_t new_workers);

  /// The committed mode (snapshot copy; the shared task set stays valid).
  ModeSnapshot mode() const;

  /// Copy of the transition log so far.
  std::vector<ModeTransition> transition_log() const;

  /// JSON rendering of the log (the replay artifact). With
  /// include_timings = false the output is bit-identical across replays of
  /// the same request sequence — the determinism contract.
  std::string render_log_json(bool include_timings = true) const;

  /// Re-run the controller's analyzer cold (fresh context, no warm state)
  /// over an arbitrary configuration — the independent comparator for the
  /// warm-equals-cold property.
  analysis::Report cold_analyze(const model::TaskSet& proposed) const;

  const ModeChangeConfig& config() const { return config_; }

  /// RAII handle for one job executing under the committed mode: commits
  /// drain (wait for) all live JobScopes before installing a new mode, and
  /// new JobScopes block while a commit is in progress.
  class JobScope {
   public:
    explicit JobScope(ModeChangeController& controller)
        : controller_(controller), snapshot_(controller.begin_job()) {}
    ~JobScope() { controller_.end_job(); }
    JobScope(const JobScope&) = delete;
    JobScope& operator=(const JobScope&) = delete;

    const model::TaskSet& task_set() const { return *snapshot_->task_set; }
    const ModeSnapshot& snapshot() const { return *snapshot_; }

   private:
    ModeChangeController& controller_;
    std::shared_ptr<const ModeSnapshot> snapshot_;
  };

 private:
  friend class JobScope;

  std::shared_ptr<const ModeSnapshot> begin_job();
  void end_job();

  /// The common request path (steps 1-6 of the file header).
  ModeTransition process(ModeRequestKind kind, const model::DagTask* task,
                         const std::string& evict_name,
                         std::size_t new_workers);

  /// Step 5: per-task runtime re-validation at pool size m under the
  /// proposed binding. Returns nullopt on success, the witness otherwise.
  std::optional<std::string> runtime_cross_check(
      const model::TaskSet& proposed,
      const std::optional<analysis::TaskSetPartition>& partition,
      std::size_t workers) const;

  ModeChangeConfig config_;
  const analysis::Analyzer* analyzer_;
  ThreadPool* pool_;

  /// Serializes requests end-to-end (decide + drain + commit). Acquired
  /// before state_mutex_; never the other way around.
  util::Mutex request_mutex_;
  /// Warm context of the COMMITTED mode; borrows *mode()->task_set. Only
  /// the (serialized) request path touches it.
  std::unique_ptr<analysis::RtaContext> ctx_ RTPOOL_GUARDED_BY(request_mutex_);

  mutable util::Mutex state_mutex_;
  util::CondVar state_cv_;
  std::shared_ptr<const ModeSnapshot> mode_ RTPOOL_GUARDED_BY(state_mutex_);
  std::size_t active_jobs_ RTPOOL_GUARDED_BY(state_mutex_) = 0;
  bool commit_in_progress_ RTPOOL_GUARDED_BY(state_mutex_) = false;
  std::vector<ModeTransition> log_ RTPOOL_GUARDED_BY(state_mutex_);
  std::uint64_t next_id_ RTPOOL_GUARDED_BY(state_mutex_) = 1;
  std::uint64_t version_ RTPOOL_GUARDED_BY(state_mutex_) = 1;
};

}  // namespace rtpool::exec
