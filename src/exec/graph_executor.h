// Executes a DagTask's nodes as real closures on a ThreadPool, with the
// *blocking* precedence semantics of Listing 1 or the *non-blocking*
// semantics of Listing 2.
//
// Blocking semantics: each BF node runs as a single function that executes
// the fork body, submits its children, then waits on a condition variable
// until the region completes — suspending its worker and reducing the
// pool's available concurrency, exactly the hazard the paper analyzes.
// With enough concurrent BF nodes (e.g. two replicas of Figure 1(a) on two
// workers) the execution deadlocks; the runtime guard (exec/guard.h) then
// detects the quiescent pool, reconstructs the wait-for graph among the
// suspended forks, and recovers per the configured RecoveryPolicy instead
// of hanging (or blindly timing out) forever.
//
// Non-blocking semantics: every node (including BF/BJ) is its own closure
// dispatched when its predecessors complete — the sporadic DAG model of
// Listing 2, which cannot deadlock.
//
// Robustness guarantees:
//  * a node body that throws degrades to a failed run (failed_nodes /
//    first_error in the report), never std::terminate and never a hang:
//    the node still completes structurally so every barrier opens;
//  * an ExecOptions::faults plan injects seeded misbehavior (WCET overrun,
//    stall, throw, dropped notify) for testing the guard — see exec/fault.h;
//  * a run over a partitioned assignment suppresses work stealing for its
//    duration (stealing breaks the Eq. (3) placement Lemma 3 relies on)
//    unless allow_stealing_with_assignment opts in, which is flagged
//    loudly in the report.
#pragma once

#include <chrono>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "analysis/partition.h"
#include "exec/fault.h"
#include "exec/guard.h"
#include "exec/thread_pool.h"
#include "model/dag_task.h"

namespace rtpool::exec {

struct ExecOptions {
  /// Per-node busy work: each node spins for wcet * microseconds_per_unit
  /// microseconds before invoking `body` (0 = no synthetic work).
  double microseconds_per_unit = 0.0;
  /// Guard budget: if the run makes NO progress for this long it is
  /// declared stalled (budget verdict). Progress resets the clock, so a
  /// slow-but-advancing run is never cancelled by this.
  std::chrono::milliseconds watchdog{2000};
  /// Node-to-worker assignment; required when the pool is kPerWorker.
  std::optional<analysis::NodeAssignment> assignment;

  /// What the guard does on a confirmed stall (see exec/guard.h).
  RecoveryPolicy recovery = RecoveryPolicy::kReport;
  /// Guard sampling interval.
  std::chrono::milliseconds guard_poll{5};
  /// Injection cap under RecoveryPolicy::kEmergencyWorker.
  std::size_t max_emergency_workers = 2;
  /// Seeded fault plan (empty = clean run).
  FaultPlan faults;
  /// Permit work stealing during a run with an assignment; sets
  /// ExecReport::stealing_bypassed_assignment instead of suppressing.
  bool allow_stealing_with_assignment = false;

  /// Liveness: stale-heartbeat budget before a busy worker counts as hung
  /// (see GuardOptions::liveness).
  std::chrono::milliseconds worker_liveness{400};
  /// Replacement workers spawned per run before degrading to a smaller
  /// pool (see GuardOptions::max_respawns).
  std::size_t max_worker_respawns = 4;
  /// Backoff before the second respawn; doubles per use.
  std::chrono::milliseconds respawn_backoff{20};
};

struct ExecReport {
  bool completed = false;            ///< False = cancelled by the guard.
  std::size_t nodes_executed = 0;
  std::size_t max_blocked_workers = 0;  ///< Peak suspended workers.
  std::chrono::microseconds elapsed{0};

  /// Nodes whose body threw (exception contained, run degraded).
  std::vector<model::NodeId> failed_nodes;
  /// what() of the first contained exception ("" if none).
  std::string first_error;
  /// Guard diagnosis; present when a stall was confirmed — even when
  /// emergency workers then rescued the run (completed stays true).
  std::optional<StallReport> stall;
  /// Emergency workers injected into the pool by this run.
  std::size_t emergency_workers = 0;
  /// Lost wakeups the guard healed by re-notifying.
  std::size_t lost_wakeups_recovered = 0;
  /// Loud flag: stealing stayed enabled while executing a partitioned
  /// assignment (Eq. (3) placement not enforced at runtime).
  bool stealing_bypassed_assignment = false;

  /// Dead/hung workers the guard detected and recovered during the run
  /// (each killed worker's work was requeued and executed exactly once).
  std::vector<WorkerRecovery> worker_recoveries;
  /// Replacement workers spawned by the guard.
  std::size_t workers_respawned = 0;
  /// Present when the respawn budget ran out and the pool degraded to a
  /// smaller size than the analysis admitted.
  std::optional<DegradedReport> degraded;

  /// Clean success: completed, no failed nodes, no stall diagnosis, no
  /// worker lost (a recovered run completed, but not cleanly).
  bool ok() const {
    return completed && failed_nodes.empty() && !stall.has_value() &&
           worker_recoveries.empty() && !degraded.has_value();
  }
};

/// One-shot executor (create per run).
class GraphExecutor {
 public:
  /// `body(v)` is invoked for every node (may be a no-op). The pool must
  /// outlive the executor. Throws std::invalid_argument if a kPerWorker
  /// pool is used without an assignment (or vice versa a bad assignment).
  GraphExecutor(ThreadPool& pool, const model::DagTask& task);

  /// Run with Listing-1 semantics (condition-variable barriers). Throws
  /// StallError when a stall is confirmed under RecoveryPolicy::kFailFast.
  ExecReport run_blocking(const ExecOptions& options,
                          const std::function<void(model::NodeId)>& body = {});

  /// Run with Listing-2 semantics (every node a dedicated closure).
  ExecReport run_non_blocking(const ExecOptions& options,
                              const std::function<void(model::NodeId)>& body = {});

 private:
  ThreadPool& pool_;
  const model::DagTask& task_;
};

}  // namespace rtpool::exec
