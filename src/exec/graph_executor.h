// Executes a DagTask's nodes as real closures on a ThreadPool, with the
// *blocking* precedence semantics of Listing 1 or the *non-blocking*
// semantics of Listing 2.
//
// Blocking semantics: each BF node runs as a single function that executes
// the fork body, submits its children, then waits on a condition variable
// until the region completes — suspending its worker and reducing the
// pool's available concurrency, exactly the hazard the paper analyzes.
// With enough concurrent BF nodes (e.g. two replicas of Figure 1(a) on two
// workers) the execution deadlocks; a watchdog timeout then cancels the
// run and reports the stall instead of hanging forever.
//
// Non-blocking semantics: every node (including BF/BJ) is its own closure
// dispatched when its predecessors complete — the sporadic DAG model of
// Listing 2, which cannot deadlock.
#pragma once

#include <chrono>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "analysis/partition.h"
#include "exec/thread_pool.h"
#include "model/dag_task.h"

namespace rtpool::exec {

struct ExecOptions {
  /// Per-node busy work: each node spins for wcet * microseconds_per_unit
  /// microseconds before invoking `body` (0 = no synthetic work).
  double microseconds_per_unit = 0.0;
  /// Watchdog: if the graph does not complete within this budget the run is
  /// cancelled (all barrier waits are released) and reported as stalled.
  std::chrono::milliseconds watchdog{2000};
  /// Node-to-worker assignment; required when the pool is kPerWorker.
  std::optional<analysis::NodeAssignment> assignment;
};

struct ExecReport {
  bool completed = false;            ///< False = watchdog fired (stall).
  std::size_t nodes_executed = 0;
  std::size_t max_blocked_workers = 0;  ///< Peak suspended workers.
  std::chrono::microseconds elapsed{0};
};

/// One-shot executor (create per run).
class GraphExecutor {
 public:
  /// `body(v)` is invoked for every node (may be a no-op). The pool must
  /// outlive the executor. Throws std::invalid_argument if a kPerWorker
  /// pool is used without an assignment (or vice versa a bad assignment).
  GraphExecutor(ThreadPool& pool, const model::DagTask& task);

  /// Run with Listing-1 semantics (condition-variable barriers).
  ExecReport run_blocking(const ExecOptions& options,
                          const std::function<void(model::NodeId)>& body = {});

  /// Run with Listing-2 semantics (every node a dedicated closure).
  ExecReport run_non_blocking(const ExecOptions& options,
                              const std::function<void(model::NodeId)>& body = {});

 private:
  ThreadPool& pool_;
  const model::DagTask& task_;
};

}  // namespace rtpool::exec
