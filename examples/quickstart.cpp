// Quickstart: build the Figure 1(a) task, check deadlock freedom, run the
// schedulability analyses, and cross-check with the discrete-event
// simulator — the whole public API in ~80 lines.
#include <cstdio>

#include "analysis/concurrency.h"
#include "analysis/deadlock.h"
#include "analysis/global_rta.h"
#include "graph/dot.h"
#include "model/builder.h"
#include "sim/engine.h"
#include "sim/gantt.h"

int main() {
  using namespace rtpool;

  // --- 1. Describe the parallel task of Figure 1(a) -----------------------
  // v1 (blocking fork) spawns v2..v4 and waits on a condition variable;
  // v5 (blocking join) runs after the barrier, on the same thread.
  model::DagTaskBuilder builder("fig1a");
  const auto region = builder.add_blocking_fork_join(
      /*fork_wcet=*/2.0, /*join_wcet=*/3.0, /*child_wcets=*/{4.0, 5.0, 6.0});
  builder.period(60.0);
  const model::DagTask task = builder.build();

  std::printf("task %s: %zu nodes, vol=%.0f, len(lambda*)=%.0f, U=%.3f\n",
              task.name().c_str(), task.node_count(), task.volume(),
              task.critical_path_length(), task.utilization());

  // --- 2. Deadlock analysis (Section 3) -----------------------------------
  const std::size_t m = 2;  // pool of two threads on two cores
  const auto check = analysis::check_deadlock_free_global(task, m);
  std::printf("b̄(tau)=%zu, l̄(tau)=%ld -> %s\n", check.max_forks,
              check.concurrency_bound,
              check.deadlock_free ? "deadlock-free" : "may deadlock");

  // --- 3. Schedulability (Section 4.1) -------------------------------------
  model::TaskSet ts(m);
  ts.add(task);

  analysis::GlobalRtaOptions baseline;        // Melani et al. [14]
  analysis::GlobalRtaOptions limited;         // this paper, Eq. (4)
  limited.limited_concurrency = true;
  const auto base = analysis::analyze_global(ts, baseline);
  const auto lim = analysis::analyze_global(ts, limited);
  std::printf("baseline [14] bound:            R = %.2f (%s)\n",
              base.per_task[0].response_time,
              base.schedulable ? "schedulable" : "NOT schedulable");
  std::printf("limited-concurrency bound:      R = %.2f (%s)\n",
              lim.per_task[0].response_time,
              lim.schedulable ? "schedulable" : "NOT schedulable");

  // --- 4. Simulate the thread pool (Figure 1(b)) ---------------------------
  sim::SimConfig cfg;
  cfg.policy = sim::SchedulingPolicy::kGlobal;
  cfg.horizon = 60.0;
  cfg.collect_trace = true;
  const auto result = sim::simulate(ts, cfg);
  std::printf("simulated response:             R = %.2f, min l(t)=%ld\n",
              result.max_response(0),
              result.per_task[0].min_available_concurrency);
  for (const auto& iv : result.trace)
    std::printf("  core %zu: node v%u  [%5.1f, %5.1f)\n", iv.core, iv.node,
                iv.start, iv.end);
  std::printf("%s", sim::render_ascii_gantt(ts, result.trace).c_str());

  // --- 5. Export the DAG for documentation ---------------------------------
  std::vector<std::string> labels;
  for (model::NodeId v = 0; v < task.node_count(); ++v) {
    // Built with += (not chained operator+): GCC 12's -Wrestrict reports a
    // false positive on the temporary chain at -O2.
    std::string label = "v";
    label += std::to_string(v + 1);
    label += ':';
    label += model::to_string(task.type(v));
    labels.push_back(std::move(label));
  }
  std::printf("%s", graph::to_dot(task.dag(), labels, "fig1a").c_str());
  return 0;
}
