// rtpool-lint: static analysis of .taskset models against the paper's
// structural and deadlock conditions.
//
//   rtpool_lint --file data/mixed_set.taskset
//   rtpool_lint --file model.taskset --format=json
//   rtpool_lint --file model.taskset --partition=worst-fit
//
// Exit status: 0 when the model is clean (warnings/notes allowed), 1 when
// any error-severity diagnostic fired, 2 on usage/file/parse errors.

#include <fstream>
#include <iostream>
#include <string>

#include "lint/render.h"
#include "lint/rules.h"
#include "model/io.h"
#include "util/args.h"

namespace {

void usage(std::ostream& os) {
  os << "usage: rtpool_lint --file <model.taskset> [options]\n"
        "\n"
        "Static model analysis for thread-pool DAG tasks (rule ids RTP-*).\n"
        "\n"
        "options:\n"
        "  --file=PATH        .taskset model to lint (required)\n"
        "  --format=FMT       'text' (default) or 'json'\n"
        "  --partition=ALG    node-to-thread partition for the Lemma 3 /\n"
        "                     Eq. (3) rules: 'none' (default), 'worst-fit',\n"
        "                     or 'algorithm1'\n"
        "  --help             show this help\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rtpool;

  lint::LintOptions options;
  std::string path;
  std::string format;
  try {
    const util::Args args(argc, argv, {"file", "format", "partition", "help"});
    if (args.get_bool("help", false)) {
      usage(std::cout);
      return 0;
    }
    path = args.get_string("file", "");
    if (path.empty()) throw std::invalid_argument("--file is required");
    format = args.get_string("format", "text");
    if (format != "text" && format != "json")
      throw std::invalid_argument("--format must be 'text' or 'json', got '" +
                                  format + "'");
    const std::string partition = args.get_string("partition", "none");
    if (partition == "none")
      options.partition_source = lint::PartitionSource::kNone;
    else if (partition == "worst-fit")
      options.partition_source = lint::PartitionSource::kWorstFit;
    else if (partition == "algorithm1")
      options.partition_source = lint::PartitionSource::kAlgorithm1;
    else
      throw std::invalid_argument(
          "--partition must be 'none', 'worst-fit' or 'algorithm1', got '" +
          partition + "'");
  } catch (const std::exception& e) {
    std::cerr << "rtpool_lint: " << e.what() << "\n\n";
    usage(std::cerr);
    return 2;
  }

  lint::LintReport report;
  try {
    report = lint::run_lint(lint::load_raw_task_set(path), options);
  } catch (const model::ParseError& e) {
    // File-format errors (not model defects) cannot be linted around.
    std::cerr << "rtpool_lint: " << path << ": " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "rtpool_lint: " << e.what() << "\n";
    return 2;
  }

  if (format == "json")
    lint::render_json(report, std::cout);
  else
    lint::render_text(report, std::cout);

  return report.clean() ? 0 : 1;
}
