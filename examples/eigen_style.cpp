// Eigen-style blocking parallelFor in API form (exec/parallel_for.h):
// the exact pattern that motivates the paper, on real threads.
//
// A "tensor contraction" runs as an outer parallel loop over row blocks;
// each iteration runs an inner parallel loop over column tiles (nested
// parallelism, as produced by nested Eigen expressions or TensorFlow
// inter-/intra-op pools sharing workers). Every *outer* iteration that
// reaches its inner loop blocks one worker on a condition variable — the
// available concurrency shrinks — and once all workers are blocked inside
// outer iterations the pool deadlocks. The demo measures where that
// happens and maps it back to the paper's l̄ = m − b̄ condition.
#include <atomic>
#include <chrono>
#include <cstdio>

#include "analysis/analyzer.h"
#include "exec/parallel_for.h"
#include "exec/thread_pool.h"
#include "gen/importers.h"
#include "util/rng.h"

namespace {

using namespace rtpool;

/// Run the nested contraction on `workers` workers with `outer` concurrent
/// row blocks. Returns true if it completed within the watchdog.
bool run_nested(std::size_t workers, std::size_t outer, std::size_t inner) {
  exec::ThreadPool pool(workers);
  std::atomic<int> cells{0};
  std::atomic<int> stalled_outer{0};

  // The outer loop is called from this (external) thread: it may block
  // safely. Each outer iteration then calls the inner loop FROM A WORKER.
  exec::ParallelForOptions outer_options;
  outer_options.timeout = std::chrono::milliseconds(1500);
  const bool ok = exec::parallel_for(
      pool, 0, outer,
      [&](std::size_t /*row*/) {
        exec::ParallelForOptions inner_options;
        inner_options.timeout = std::chrono::milliseconds(1000);
        const bool inner_ok = exec::parallel_for(
            pool, 0, inner,
            [&](std::size_t /*col*/) {
              // Simulate a small kernel.
              const auto until = std::chrono::steady_clock::now() +
                                 std::chrono::microseconds(300);
              while (std::chrono::steady_clock::now() < until) {
              }
              cells.fetch_add(1);
            },
            inner_options);
        if (!inner_ok) stalled_outer.fetch_add(1);
      },
      outer_options);

  std::printf("  workers=%zu outer=%zu: %-9s cells=%3d/%zu  peak blocked=%zu "
              "(available concurrency dropped to %zu)\n",
              workers, outer, ok && stalled_outer == 0 ? "completed" : "STALLED",
              cells.load(), outer * inner, pool.max_blocked_workers(),
              workers - std::min(workers, pool.max_blocked_workers()));
  return ok && stalled_outer == 0;
}

}  // namespace

int main() {
  const std::size_t inner = 8;

  std::printf("Nested Eigen-style parallelFor: outer rows x %zu inner tiles\n\n",
              inner);

  std::printf("Pool of 4 workers (paper: b forks can suspend b workers; the\n"
              "pool survives while outer concurrency stays below the pool "
              "size):\n");
  run_nested(4, 1, inner);   // 1 blocked worker, 3 keep working
  run_nested(4, 3, inner);   // 3 blocked workers, 1 keeps working
  run_nested(4, 8, inner);   // up to 4 outer iterations block -> l(t) = 0

  std::printf("\nSame 8-row workload on more workers (l̄ = m − b̄ > 0):\n");
  run_nested(9, 8, inner);   // 8 blocked + 1 available: always progresses

  std::printf("\nRule of thumb from the paper: with b̄ concurrent blocking\n"
              "forks, keep m >= b̄ + 1 (Lemma 1); the analysis in Section 4\n"
              "then bounds the response time with l̄ = m − b̄ servers.\n");

  // The same contraction as a DAG task (gen/importers.h — the constructor
  // the corpus "import-eigen" scenario draws from): the analysis predicts
  // the l̄ = m − b̄ cliff the live pool just demonstrated. 8 concurrent
  // blocking rows need m >= 9 before the limited-concurrency test accepts.
  std::printf("\nANALYSIS of the same structure (import_eigen_contraction,\n"
              "8 rows => b̄ = 8):\n");
  util::Rng rng(2019);
  gen::importers::EigenContractionSpec spec;
  spec.rows = 8;
  spec.tiles = inner;
  const model::DagTask contraction =
      gen::importers::import_eigen_contraction(spec, rng);
  const analysis::Analyzer& limited =
      analysis::get_analyzer("global-limited");
  for (std::size_t m = 4; m <= 10; m += 2) {
    model::TaskSet ts(m);
    ts.add(contraction);
    const analysis::Report report = limited.analyze(ts);
    std::printf("  m=%-3zu l̄=%-3ld R=%-8.1f %s\n", m,
                report.per_task[0].concurrency_bound,
                report.per_task[0].response_time,
                report.schedulable ? "schedulable" : "rejected");
  }
  return 0;
}
