// rtpool_cli: analyze a .taskset file from the command line.
//
//   rtpool_cli --file data/fig1.taskset [--scheduler global|partitioned]
//              [--simulate] [--dot] [--generate N] [--seed S] ...
//
// Without --file, a random task set is generated (handy for exploration)
// and can be saved with --save.
#include <cstdio>
#include <string>

#include "analysis/antichain.h"
#include "analysis/concurrency.h"
#include "analysis/deadlock.h"
#include "analysis/global_rta.h"
#include "analysis/partition.h"
#include "analysis/partitioned_rta.h"
#include "analysis/sensitivity.h"
#include "gen/taskset_generator.h"
#include "graph/dot.h"
#include "exp/report_json.h"
#include "model/io.h"
#include "sim/engine.h"
#include "sim/trace_json.h"
#include "util/args.h"

namespace {

using namespace rtpool;

void analyze_global_cli(const model::TaskSet& ts) {
  analysis::GlobalRtaOptions baseline;
  analysis::GlobalRtaOptions limited;
  limited.limited_concurrency = true;
  const auto base = analysis::analyze_global(ts, baseline);
  const auto lim = analysis::analyze_global(ts, limited);

  std::printf("\nGLOBAL scheduling  (baseline [14] vs limited-concurrency Sec. 4.1)\n");
  std::printf("%-10s %6s %6s %10s %10s %8s\n", "task", "b̄", "l̄", "R[14]",
              "R(Eq.4)", "verdict");
  for (std::size_t i = 0; i < ts.size(); ++i) {
    const auto& t = ts.task(i);
    std::printf("%-10s %6zu %6ld %10.1f %10.1f %8s\n", t.name().c_str(),
                analysis::max_affecting_forks(t),
                lim.per_task[i].concurrency_bound,
                base.per_task[i].response_time, lim.per_task[i].response_time,
                lim.per_task[i].schedulable ? "ok" : "reject");
  }
  std::printf("set verdict: baseline=%s  limited=%s\n",
              base.schedulable ? "schedulable" : "unschedulable",
              lim.schedulable ? "schedulable" : "unschedulable");
}

void analyze_partitioned_cli(const model::TaskSet& ts) {
  std::printf("\nPARTITIONED scheduling\n");
  const auto wf = analysis::partition_worst_fit(ts);
  const auto a1 = analysis::partition_algorithm1(ts);
  std::printf("worst-fit: %s   Algorithm 1: %s\n",
              wf.success() ? "ok" : wf.failure.c_str(),
              a1.success() ? "ok" : a1.failure.c_str());
  if (a1.success()) {
    const auto rta = analysis::analyze_partitioned(ts, *a1.partition);
    std::printf("%-10s %10s %10s %10s\n", "task", "R", "D", "verdict");
    for (std::size_t i = 0; i < ts.size(); ++i)
      std::printf("%-10s %10.1f %10.1f %10s\n", ts.task(i).name().c_str(),
                  rta.per_task[i].response_time, ts.task(i).deadline(),
                  rta.per_task[i].schedulable ? "ok" : "reject");
    std::printf("set verdict (Alg.1 + RTA + Lemma 3): %s\n",
                rta.schedulable ? "schedulable" : "unschedulable");
  }
}

void simulate_cli(const model::TaskSet& ts) {
  sim::SimConfig cfg;
  cfg.policy = sim::SchedulingPolicy::kGlobal;
  double max_period = 0.0;
  for (const auto& t : ts.tasks()) max_period = std::max(max_period, t.period());
  cfg.horizon = 10.0 * max_period;
  const auto r = sim::simulate(ts, cfg);
  std::printf("\nSIMULATION (global, horizon=%.0f)\n", cfg.horizon);
  if (r.deadlock.has_value())
    std::printf("DEADLOCK: %s\n", r.deadlock->description.c_str());
  for (std::size_t i = 0; i < ts.size(); ++i)
    std::printf("%-10s jobs=%zu misses=%zu maxR=%.1f min_l=%ld\n",
                ts.task(i).name().c_str(), r.per_task[i].jobs_completed,
                r.per_task[i].deadline_misses, r.per_task[i].max_response,
                r.per_task[i].min_available_concurrency);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::Args args(argc, argv,
                          {"file", "save", "simulate", "dot", "generate", "seed",
                           "m", "u", "scheduler", "json", "trace",
                           "sensitivity"});
    model::TaskSet ts(1);
    const std::string file = args.get_string("file", "");
    if (!file.empty()) {
      ts = model::load_task_set(file);
      std::printf("loaded %zu tasks (m=%zu) from %s\n", ts.size(),
                  ts.core_count(), file.c_str());
    } else {
      gen::TaskSetParams params;
      params.cores = static_cast<std::size_t>(args.get_int("m", 8));
      params.task_count = static_cast<std::size_t>(args.get_int("generate", 4));
      params.total_utilization =
          args.get_double("u", 0.4 * static_cast<double>(params.cores));
      util::Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 1)));
      ts = gen::generate_task_set(params, rng);
      std::printf("generated %zu tasks (m=%zu, U=%.2f)\n", ts.size(),
                  ts.core_count(), ts.total_utilization());
    }

    for (const auto& t : ts.tasks())
      std::printf("  %-10s |V|=%3zu vol=%8.1f len=%8.1f T=%10.1f prio=%d BF=%zu\n",
                  t.name().c_str(), t.node_count(), t.volume(),
                  t.critical_path_length(), t.period(), t.priority(),
                  t.blocking_fork_count());

    const std::string scheduler = args.get_string("scheduler", "both");
    if (scheduler == "global" || scheduler == "both") analyze_global_cli(ts);
    if (scheduler == "partitioned" || scheduler == "both")
      analyze_partitioned_cli(ts);

    if (args.get_bool("simulate", false)) simulate_cli(ts);

    if (args.get_bool("sensitivity", false)) {
      // Critical WCET scaling per analysis: how much execution-time margin
      // (or overload) the set has under each test. Uses the fast scaled-
      // options search (one RtaContext per search, warm-started probes).
      const auto run = [&](const char* label, bool limited, bool antichain) {
        analysis::GlobalRtaOptions opts;
        opts.limited_concurrency = limited;
        if (antichain)
          opts.concurrency = analysis::ConcurrencyBound::kMaxAntichain;
        const analysis::SensitivityResult r =
            analysis::critical_scaling_factor_global(ts, opts);
        std::printf("  %-28s s* = %.3f  (%d probes, %d cut off, %zu warm)\n",
                    label, r.factor, r.probes, r.cutoff_probes, r.warm_hits);
      };
      std::printf("\nSENSITIVITY (critical WCET scaling, global tests)\n");
      run("baseline [14]", false, false);
      run("limited (b̄, Sec. 4.1)", true, false);
      run("limited (antichain)", true, true);

      // Partitioned headroom under the proposed (Algorithm 1 + Lemma 3)
      // configuration, when a deadlock-free partition exists.
      const auto alg1 = analysis::partition_algorithm1(ts);
      if (alg1.success()) {
        analysis::PartitionedRtaOptions popts;
        popts.require_deadlock_free = true;
        const analysis::SensitivityResult r =
            analysis::critical_scaling_factor_partitioned(ts, *alg1.partition,
                                                          popts);
        std::printf("  %-28s s* = %.3f  (%d probes, %d cut off, %zu warm)\n",
                    "partitioned (Alg. 1)", r.factor, r.probes, r.cutoff_probes,
                    r.warm_hits);
      }
    }

    if (args.get_bool("dot", false)) {
      for (const auto& t : ts.tasks()) {
        std::vector<std::string> labels;
        for (model::NodeId v = 0; v < t.node_count(); ++v)
          labels.push_back(std::to_string(v) + ":" + model::to_string(t.type(v)));
        std::printf("%s", graph::to_dot(t.dag(), labels, t.name()).c_str());
      }
    }

    const std::string json = args.get_string("json", "");
    if (!json.empty()) {
      exp::save_analysis_report(json, ts);
      std::printf("analysis report written to %s\n", json.c_str());
    }

    const std::string trace = args.get_string("trace", "");
    if (!trace.empty()) {
      sim::SimConfig cfg;
      cfg.policy = sim::SchedulingPolicy::kGlobal;
      cfg.collect_trace = true;
      double max_period = 0.0;
      for (const auto& t : ts.tasks())
        max_period = std::max(max_period, t.period());
      cfg.horizon = 4.0 * max_period;
      sim::save_chrome_trace(trace, ts, sim::simulate(ts, cfg));
      std::printf("chrome trace written to %s (open in about://tracing)\n",
                  trace.c_str());
    }

    const std::string save = args.get_string("save", "");
    if (!save.empty()) {
      model::save_task_set(save, ts);
      std::printf("saved to %s\n", save.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rtpool_cli: %s\n", e.what());
    return 1;
  }
  return 0;
}
