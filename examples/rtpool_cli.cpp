// rtpool_cli: analyze a .taskset file from the command line.
//
//   rtpool_cli --file data/fig1.taskset [--scheduler global|partitioned]
//              [--analyzer NAME[,NAME...]|all] [--list-analyzers]
//              [--format=text|json] [--certify] [--simulate] [--dot]
//              [--generate N] [--seed S] ...
//
// --format=json prints each selected verdict as the lint JSON report and
// nothing else — byte-identical to the "report" member the rtpool-serve
// daemon returns for the same file/analyzer (CI diffs the two).
//
// --certify runs every selected analyzer with certificate emission on and
// validates each verdict with the independent checker (analysis/cert_check.h);
// any rejected certificate makes the process exit with status 2.
//
// Without --file, a random task set is generated (handy for exploration)
// and can be saved with --save. Every analysis runs through the
// analysis::Analyzer registry (see --list-analyzers for the names).
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/antichain.h"
#include "bench_common.h"
#include "analysis/cert_check.h"
#include "analysis/concurrency.h"
#include "analysis/deadlock.h"
#include "analysis/rta_context.h"
#include "analysis/sensitivity.h"
#include "corpus/corpus.h"
#include "corpus/witness.h"
#include "gen/taskset_generator.h"
#include "graph/dot.h"
#include "exp/report_json.h"
#include "exp/schedulability.h"
#include "lint/render.h"
#include "model/io.h"
#include "sim/engine.h"
#include "sim/trace_json.h"
#include "util/args.h"

namespace {

using namespace rtpool;

/// Parse an analyzer selection: "name,name,..." or "all".
std::vector<const analysis::Analyzer*> select_analyzers(const std::string& spec) {
  if (spec == "all") return analysis::registered_analyzers();
  std::vector<const analysis::Analyzer*> selected;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t comma = spec.find(',', start);
    const std::string name =
        spec.substr(start, comma == std::string::npos ? comma : comma - start);
    if (!name.empty()) selected.push_back(&analysis::get_analyzer(name));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return selected;
}

/// Run an explicit analyzer selection over the task set: one shared
/// RtaContext, verdicts rendered with the lint renderer, witness notes on.
void run_analyzers_cli(const model::TaskSet& ts, const std::string& spec) {
  const std::vector<const analysis::Analyzer*> selected = select_analyzers(spec);
  analysis::RtaContext ctx(ts);
  analysis::AnalyzerOptions opts;
  opts.diagnostics = true;
  std::printf("\nANALYZERS (registry pass, shared context)\n");
  for (const analysis::Analyzer* a : selected)
    std::printf("%s", lint::render_text(a->analyze(ts, ctx, opts), ts).c_str());
}

/// --format=json: render every selected verdict with the same options the
/// admission service uses (default AnalyzerOptions, one shared RtaContext)
/// so the output is byte-identical to a served "report" member.
void run_analyzers_json(const model::TaskSet& ts, const std::string& spec) {
  analysis::RtaContext ctx(ts);
  const analysis::AnalyzerOptions opts;
  for (const analysis::Analyzer* a : select_analyzers(spec))
    std::printf("%s", lint::render_json(a->analyze(ts, ctx, opts), ts).c_str());
}

/// Certify every selected analyzer's verdict: run with diagnostics on (one
/// shared RtaContext), hand each Report's certificate to the independent
/// checker, and report OK/FAIL per analyzer. Returns the failure count.
int certify_cli(const model::TaskSet& ts, const std::string& spec) {
  analysis::RtaContext ctx(ts);
  analysis::AnalyzerOptions opts;
  opts.diagnostics = true;
  int failures = 0;
  std::printf("\nCERTIFY (independent checker over every verdict)\n");
  for (const analysis::Analyzer* a : select_analyzers(spec)) {
    const std::string name(a->name());
    const analysis::Report rep = a->analyze(ts, ctx, opts);
    if (rep.certificate == nullptr) {
      std::printf("certify '%s': FAIL — analyzer attached no certificate\n",
                  name.c_str());
      ++failures;
      continue;
    }
    const analysis::cert::CheckResult result =
        analysis::cert::check_certificate(ts, *rep.certificate);
    if (result.ok()) {
      std::printf("certify '%s': OK — %s, %zu claims checked\n", name.c_str(),
                  rep.schedulable ? "schedulable" : "unschedulable",
                  result.claims_checked);
    } else {
      const analysis::cert::CheckFailure& f = *result.failure;
      std::printf("certify '%s': FAIL [%s]", name.c_str(),
                  analysis::cert::to_string(f.kind));
      if (f.task != analysis::cert::kNoIndex && f.task < ts.size())
        std::printf(" task '%s'", ts.task(f.task).name().c_str());
      std::printf(" — %s (%zu claims checked)\n", f.detail.c_str(),
                  result.claims_checked);
      ++failures;
    }
  }
  if (failures > 0)
    std::printf("certification FAILED for %d analyzer%s\n", failures,
                failures == 1 ? "" : "s");
  return failures;
}

void analyze_global_cli(const model::TaskSet& ts) {
  analysis::RtaContext ctx(ts);
  const analysis::Report base =
      analysis::get_analyzer("global-baseline").analyze(ts, ctx);
  const analysis::Report lim =
      analysis::get_analyzer("global-limited").analyze(ts, ctx);

  std::printf("\nGLOBAL scheduling  (baseline [14] vs limited-concurrency Sec. 4.1)\n");
  std::printf("%-10s %6s %6s %10s %10s %8s\n", "task", "b̄", "l̄", "R[14]",
              "R(Eq.4)", "verdict");
  for (std::size_t i = 0; i < ts.size(); ++i) {
    const auto& t = ts.task(i);
    std::printf("%-10s %6zu %6ld %10.1f %10.1f %8s\n", t.name().c_str(),
                analysis::max_affecting_forks(t),
                lim.per_task[i].concurrency_bound,
                base.per_task[i].response_time, lim.per_task[i].response_time,
                lim.per_task[i].schedulable ? "ok" : "reject");
  }
  std::printf("set verdict: baseline=%s  limited=%s\n",
              base.schedulable ? "schedulable" : "unschedulable",
              lim.schedulable ? "schedulable" : "unschedulable");
}

void analyze_partitioned_cli(const model::TaskSet& ts) {
  std::printf("\nPARTITIONED scheduling\n");
  const analysis::Analyzer& proposed =
      analysis::get_analyzer("partitioned-proposed");
  const auto wf =
      analysis::get_analyzer("partitioned-baseline").make_partition(ts);
  const auto a1 = proposed.make_partition(ts);
  std::printf("worst-fit: %s   Algorithm 1: %s\n",
              wf.success() ? "ok" : wf.failure.c_str(),
              a1.success() ? "ok" : a1.failure.c_str());
  if (a1.success()) {
    analysis::AnalyzerOptions opts;
    opts.partition = &*a1.partition;
    const analysis::Report rta = proposed.analyze(ts, opts);
    std::printf("%-10s %10s %10s %10s\n", "task", "R", "D", "verdict");
    for (std::size_t i = 0; i < ts.size(); ++i)
      std::printf("%-10s %10.1f %10.1f %10s\n", ts.task(i).name().c_str(),
                  rta.per_task[i].response_time, ts.task(i).deadline(),
                  rta.per_task[i].schedulable ? "ok" : "reject");
    std::printf("set verdict (Alg.1 + RTA + Lemma 3): %s\n",
                rta.schedulable ? "schedulable" : "unschedulable");
  }
}

/// --simulate: run the sim oracle and print its verdict next to every
/// simulatable analyzer's verdict (the corpus soundness table decides which
/// verdicts carry a safety claim). Returns the number of safety-direction
/// disagreements: a kAssertSafety analyzer accepting a set the simulator
/// drives into a miss/deadlock.
int simulate_cli(const model::TaskSet& ts) {
  sim::OracleOptions oracle;
  oracle.policy = sim::SchedulingPolicy::kGlobal;
  oracle.windows = 10.0;
  const sim::SimVerdict global = sim::oracle_verdict(ts, oracle);
  std::printf("\nSIMULATION ORACLE (global, horizon=%.0f)\n", global.horizon);
  if (!global.safe())
    std::printf("violation: %s — %s\n", sim::to_string(global.outcome),
                global.description.c_str());
  const sim::SimResult& r = *global.result;
  for (std::size_t i = 0; i < ts.size(); ++i)
    std::printf("%-10s jobs=%zu misses=%zu maxR=%.1f min_l=%ld\n",
                ts.task(i).name().c_str(), r.per_task[i].jobs_completed,
                r.per_task[i].deadline_misses, r.per_task[i].max_response,
                r.per_task[i].min_available_concurrency);

  std::printf("\nORACLE vs ANALYZERS (safety direction: accept => no violation)\n");
  int disagreements = 0;
  analysis::RtaContext ctx(ts);
  for (const analysis::Analyzer* a : analysis::registered_analyzers()) {
    const std::string name(a->name());
    const corpus::AnalyzerSpec spec = corpus::spec_for(name);
    if (spec.mode == corpus::OracleMode::kNoSim) continue;

    analysis::AnalyzerOptions opts;
    analysis::PartitionResult part;
    if (a->capabilities().uses_partition) {
      part = a->make_partition(ts);
      if (!part.success()) {
        std::printf("  %-34s reject   (%s)\n", name.c_str(),
                    part.failure.c_str());
        continue;
      }
      opts.partition = &*part.partition;
    }
    const bool accepts = a->analyze(ts, ctx, opts).schedulable;

    // Partitioned analyzers are judged under their own placement; global
    // ones share the one global oracle run.
    const sim::SimVerdict* verdict = &global;
    sim::SimVerdict own;
    if (spec.policy == sim::SchedulingPolicy::kPartitioned) {
      sim::OracleOptions po;
      po.policy = sim::SchedulingPolicy::kPartitioned;
      po.partition = part.partition;
      po.windows = 10.0;
      own = sim::oracle_verdict(ts, po);
      verdict = &own;
    }
    const bool violated = accepts && !verdict->safe();
    const bool asserts = spec.mode == corpus::OracleMode::kAssertSafety;
    if (violated && asserts) ++disagreements;
    std::printf("  %-34s %-8s sim=%-13s%s\n", name.c_str(),
                accepts ? "accept" : "reject",
                sim::to_string(verdict->outcome),
                !violated          ? ""
                : asserts          ? "  SAFETY VIOLATION"
                                   : "  optimistic (report-only baseline)");
  }
  if (disagreements > 0)
    std::printf("safety direction violated by %d analyzer%s\n", disagreements,
                disagreements == 1 ? "" : "s");
  return disagreements;
}

/// --replay-witness=FILE: re-run a corpus witness bundle. Exit 0 when the
/// recorded disagreement reproduces, 4 when it does not.
int replay_witness_cli(const std::string& path) {
  const corpus::WitnessBundle bundle = corpus::load_witness(path);
  // CI bundles produced by `rtpool_corpus --inject-optimistic` reference
  // the test-only analyzer, which is not registered by default.
  if (bundle.analyzer == "test-forced-optimistic")
    corpus::register_forced_optimistic_analyzer();
  std::printf("witness %s\n", path.c_str());
  std::printf("  seed=%llu root=%llu scenario=%s analyzer=%s policy=%s\n",
              static_cast<unsigned long long>(bundle.seed),
              static_cast<unsigned long long>(bundle.root_seed),
              bundle.scenario.c_str(), bundle.analyzer.c_str(),
              bundle.policy == sim::SchedulingPolicy::kGlobal ? "global"
                                                              : "partitioned");
  std::printf("  recorded: %s — %s\n", sim::to_string(bundle.outcome),
              bundle.description.c_str());
  const corpus::ReplayResult replay = corpus::replay_witness(bundle);
  std::printf("  replayed: analysis=%s sim=%s%s%s\n",
              replay.analysis_schedulable ? "accept" : "reject",
              sim::to_string(replay.verdict.outcome),
              replay.verdict.safe() ? "" : " — ",
              replay.verdict.safe() ? "" : replay.verdict.description.c_str());
  if (replay.reproduced) {
    std::printf("REPRODUCED: analyzer accepts, simulator observes %s\n",
                sim::to_string(replay.verdict.outcome));
    return 0;
  }
  std::printf("NOT REPRODUCED (analysis=%s, outcome %s recorded %s)\n",
              replay.analysis_schedulable ? "accept" : "reject",
              sim::to_string(replay.verdict.outcome),
              replay.outcome_matches ? "matches" : "differs from");
  return 4;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    // Shared bench flag plumbing: appends --seed/--threads/… and handles
    // --list-analyzers (prints the registry, exits 0) like every driver.
    const util::Args args = bench::parse_args(
        argc, argv,
        {"file", "save", "simulate", "dot", "generate", "m", "u", "scheduler",
         "json", "trace", "sensitivity", "analyzer", "certify", "format",
         "replay-witness"});
    const bench::CommonFlags common = bench::common_flags(args);
    const std::string format = args.get_string("format", "text");
    if (format != "text" && format != "json")
      throw std::invalid_argument("--format must be text or json, got '" +
                                  format + "'");
    // JSON mode emits ONLY the machine-readable report (no preamble), so the
    // output can be diffed byte-for-byte against a served verdict.
    const bool json_out = format == "json";

    const std::string witness_path = args.get_string("replay-witness", "");
    if (!witness_path.empty()) return replay_witness_cli(witness_path);

    model::TaskSet ts(1);
    const std::string file = args.get_string("file", "");
    if (!file.empty()) {
      ts = model::load_task_set(file);
      if (!json_out)
        std::printf("loaded %zu tasks (m=%zu) from %s\n", ts.size(),
                    ts.core_count(), file.c_str());
    } else {
      gen::TaskSetParams params;
      params.cores = static_cast<std::size_t>(args.get_int("m", 8));
      params.task_count = static_cast<std::size_t>(args.get_int("generate", 4));
      params.total_utilization =
          args.get_double("u", 0.4 * static_cast<double>(params.cores));
      util::Rng rng(common.seed);
      ts = gen::generate_task_set(params, rng);
      if (!json_out)
        std::printf("generated %zu tasks (m=%zu, U=%.2f)\n", ts.size(),
                    ts.core_count(), ts.total_utilization());
    }

    if (!json_out)
      for (const auto& t : ts.tasks())
        std::printf(
            "  %-10s |V|=%3zu vol=%8.1f len=%8.1f T=%10.1f prio=%d BF=%zu\n",
            t.name().c_str(), t.node_count(), t.volume(),
            t.critical_path_length(), t.period(), t.priority(),
            t.blocking_fork_count());

    const std::string analyzer_spec = args.get_string("analyzer", "");
    if (args.get_bool("certify", false)) {
      // --certify replaces the analysis sections: every selected analyzer
      // (default: all) must produce a certificate the independent checker
      // accepts; any rejection exits non-zero.
      if (certify_cli(ts, analyzer_spec.empty() ? "all" : analyzer_spec) > 0)
        return 2;
    } else if (json_out) {
      run_analyzers_json(ts, analyzer_spec.empty() ? "all" : analyzer_spec);
    } else if (!analyzer_spec.empty()) {
      run_analyzers_cli(ts, analyzer_spec);
    } else {
      // Default sections, keyed by the legacy scheduler names (a thin view
      // over the registry pairs; see exp::parse_scheduler).
      const std::string scheduler = args.get_string("scheduler", "both");
      const bool both = scheduler == "both";
      if (both || exp::parse_scheduler(scheduler) == exp::Scheduler::kGlobal)
        analyze_global_cli(ts);
      if (both ||
          exp::parse_scheduler(scheduler) == exp::Scheduler::kPartitioned)
        analyze_partitioned_cli(ts);
    }

    int safety_disagreements = 0;
    if (args.get_bool("simulate", false)) safety_disagreements = simulate_cli(ts);

    if (args.get_bool("sensitivity", false)) {
      // Critical WCET scaling per analysis: how much execution-time margin
      // (or overload) the set has under each test. One analyzer-generic
      // fast search per row (one RtaContext per search, warm-started
      // probes, partition-based analyzers partition once).
      const auto run = [&](const char* label, const char* analyzer_name) {
        const analysis::Analyzer& a = analysis::get_analyzer(analyzer_name);
        if (a.capabilities().uses_partition && !a.make_partition(ts).success()) {
          std::printf("  %-28s (no feasible partition)\n", label);
          return;
        }
        const analysis::SensitivityResult r =
            analysis::critical_scaling_factor(ts, a);
        std::printf("  %-28s s* = %.3f  (%d probes, %d cut off, %zu warm)\n",
                    label, r.factor, r.probes, r.cutoff_probes, r.warm_hits);
      };
      std::printf("\nSENSITIVITY (critical WCET scaling)\n");
      run("baseline [14]", "global-baseline");
      run("limited (b̄, Sec. 4.1)", "global-limited");
      run("limited (antichain)", "global-limited-antichain");
      run("partitioned (Alg. 1)", "partitioned-proposed");
    }

    if (args.get_bool("dot", false)) {
      for (const auto& t : ts.tasks()) {
        std::vector<std::string> labels;
        for (model::NodeId v = 0; v < t.node_count(); ++v)
          labels.push_back(std::to_string(v) + ":" + model::to_string(t.type(v)));
        std::printf("%s", graph::to_dot(t.dag(), labels, t.name()).c_str());
      }
    }

    const std::string json = args.get_string("json", "");
    if (!json.empty()) {
      exp::save_analysis_report(json, ts);
      std::printf("analysis report written to %s\n", json.c_str());
    }

    const std::string trace = args.get_string("trace", "");
    if (!trace.empty()) {
      sim::SimConfig cfg;
      cfg.policy = sim::SchedulingPolicy::kGlobal;
      cfg.collect_trace = true;
      double max_period = 0.0;
      for (const auto& t : ts.tasks())
        max_period = std::max(max_period, t.period());
      cfg.horizon = 4.0 * max_period;
      sim::save_chrome_trace(trace, ts, sim::simulate(ts, cfg));
      std::printf("chrome trace written to %s (open in about://tracing)\n",
                  trace.c_str());
    }

    const std::string save = args.get_string("save", "");
    if (!save.empty()) {
      model::save_task_set(save, ts);
      std::printf("saved to %s\n", save.c_str());
    }
    if (safety_disagreements > 0) return 3;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rtpool_cli: %s\n", e.what());
    return 1;
  }
  return 0;
}
