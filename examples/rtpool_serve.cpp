// rtpool-serve: the streaming admission daemon (and its test client).
//
// Server (TCP):
//   rtpool_serve --port 7411 [--host 127.0.0.1] [--analyzer NAME]
//                [--workers N] [--shards N] [--batch N] [--cache N]
//                [--config serve.json] [--print-port]
//
//   Speaks length-prefixed frames (4-byte big-endian length + one JSON
//   request document per frame; see src/serve/protocol.h). Responses are
//   framed the same way and may arrive OUT OF ORDER relative to pipelined
//   submissions — match them by "id". `--print-port` prints the bound port
//   (resolving --port 0) on the first stdout line, for scripts and tests.
//   SIGHUP re-reads --config (same JSON shape as the "reload" command) and
//   applies it as a hot reload; in-flight requests are never dropped.
//
// Server (stdin stream):
//   rtpool_serve --stdin < requests.jsonl
//
//   Newline/whitespace-delimited JSON documents on stdin (framed by the
//   JSON grammar itself — util::JsonStreamParser — so split buffers and
//   multiple documents per line both work); responses are printed to
//   stdout one per line, matched by "id".
//
// Client (one-shot, for scripts and the serve-smoke CI job):
//   rtpool_serve --connect HOST:PORT --file x.taskset [--analyzer NAME]
//                [--certify] [--id ID] [--extract-report]
//   rtpool_serve --connect HOST:PORT --cmd stats|shutdown
//   rtpool_serve --connect HOST:PORT --cmd reload [--workers N] [--batch N]
//                [--shards N] [--cache N] [--analyzer NAME]
//
//   Sends one request and prints the response. With --extract-report only
//   the raw "report" member is printed — byte-identical to
//   `rtpool_cli --file x.taskset --analyzer NAME --format=json`, which is
//   exactly what the CI smoke job diffs.
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/service.h"
#include "util/args.h"
#include "util/json.h"
#include "util/net.h"

namespace {

using namespace rtpool;

volatile std::sig_atomic_t g_reload_requested = 0;

void on_sighup(int) { g_reload_requested = 1; }

serve::ServiceConfig config_from_args(const util::Args& args) {
  serve::ServiceConfig config;
  config.analyzer = args.get_string("analyzer", config.analyzer);
  config.workers = static_cast<std::size_t>(
      args.get_int("workers", static_cast<std::int64_t>(config.workers)));
  config.shards = static_cast<std::size_t>(
      args.get_int("shards", static_cast<std::int64_t>(config.shards)));
  config.batch = static_cast<std::size_t>(
      args.get_int("batch", static_cast<std::int64_t>(config.batch)));
  config.cache = static_cast<std::size_t>(
      args.get_int("cache", static_cast<std::int64_t>(config.cache)));
  return config;
}

/// Apply a --config file (the "reload" JSON shape) as a hot reload.
void reload_from_file(serve::AdmissionService& service, const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "rtpool_serve: cannot read config '%s'\n", path.c_str());
    return;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  try {
    util::JsonValue doc = util::parse_json(buffer.str());
    serve::Request req = serve::decode_request(doc);
    if (req.kind != serve::Request::Kind::kReload) {
      // A bare {"analyzer": ..., "workers": ...} object (no "cmd") is the
      // natural config-file shape; re-decode it as a reload.
      std::ostringstream with_cmd;
      util::JsonWriter w(with_cmd);
      w.begin_object();
      w.kv("cmd", "reload");
      for (const char* key : {"analyzer"})
        if (doc.is_object() && doc.contains(key))
          w.key(key).raw_value("\"" + doc.at(key).as_string() + "\"");
      for (const char* key : {"workers", "shards", "batch", "cache"})
        if (doc.is_object() && doc.contains(key))
          w.kv(key, doc.at(key).as_number());
      w.end_object();
      req = serve::decode_request(util::parse_json(with_cmd.str()));
    }
    const serve::ServiceConfig committed =
        service.reload(req.reload_analyzer, req.reload_workers,
                       req.reload_shards, req.reload_batch, req.reload_cache);
    std::fprintf(stderr,
                 "rtpool_serve: reloaded (analyzer=%s workers=%zu shards=%zu "
                 "batch=%zu cache=%zu, version %llu)\n",
                 committed.analyzer.c_str(), committed.workers,
                 committed.shards, committed.batch, committed.cache,
                 static_cast<unsigned long long>(service.config_version()));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rtpool_serve: reload failed: %s\n", e.what());
  }
}

int run_server_tcp(const util::Args& args) {
  serve::AdmissionService service(config_from_args(args));
  const std::string config_file = args.get_string("config", "");
  if (!config_file.empty()) std::signal(SIGHUP, on_sighup);

  serve::TcpServer server(
      service, args.get_string("host", "127.0.0.1"),
      static_cast<std::uint16_t>(args.get_int("port", 7411)));
  if (args.get_bool("print-port", false)) {
    std::printf("%u\n", server.port());
    std::fflush(stdout);
  }
  std::fprintf(stderr, "rtpool_serve: listening on port %u\n", server.port());
  server.start();

  // SIGHUP watcher: applies --config as a hot reload without blocking the
  // accept loop.
  std::thread reload_watcher;
  std::atomic<bool> stop_watcher{false};
  if (!config_file.empty()) {
    reload_watcher = std::thread([&] {
      while (!stop_watcher.load(std::memory_order_acquire)) {
        if (g_reload_requested) {
          g_reload_requested = 0;
          reload_from_file(service, config_file);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
    });
  }

  server.wait();  // until a "shutdown" request closes the listener
  stop_watcher.store(true, std::memory_order_release);
  if (reload_watcher.joinable()) reload_watcher.join();
  server.stop();
  service.request_shutdown();
  return 0;
}

int run_server_stdin(const util::Args& args) {
  serve::AdmissionService service(config_from_args(args));
  std::mutex write_mutex;
  const auto respond = [&write_mutex](const std::string& response) {
    std::lock_guard<std::mutex> lock(write_mutex);
    std::fwrite(response.data(), 1, response.size(), stdout);
    std::fputc('\n', stdout);
    std::fflush(stdout);
  };

  util::JsonStreamParser parser;
  char buffer[1 << 16];
  bool eof = false;
  while (!eof && !service.shutdown_requested()) {
    std::cin.read(buffer, sizeof buffer);
    const std::streamsize n = std::cin.gcount();
    if (n > 0) parser.feed(buffer, static_cast<std::size_t>(n));
    if (!std::cin) {
      parser.finish();
      eof = true;
    }
    for (;;) {
      std::optional<util::JsonValue> doc;
      try {
        doc = parser.next();
      } catch (const util::JsonParseError& e) {
        respond(serve::encode_error("", e.what()));
        continue;  // the stream stays usable past the bad document
      }
      if (!doc.has_value()) break;
      try {
        service.submit(serve::decode_request(*doc), respond);
      } catch (const serve::ProtocolError& e) {
        std::string id;
        if (doc->is_object() && doc->contains("id") && doc->at("id").is_string())
          id = doc->at("id").as_string();
        respond(serve::encode_error(id, e.what()));
      }
      if (service.shutdown_requested()) break;
    }
  }
  service.request_shutdown();
  return 0;
}

int run_client(const util::Args& args) {
  const std::string endpoint = args.get_string("connect", "");
  const std::size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos)
    throw std::invalid_argument("--connect expects HOST:PORT");
  util::Socket socket = util::tcp_connect(
      endpoint.substr(0, colon),
      static_cast<std::uint16_t>(std::stoi(endpoint.substr(colon + 1))));

  std::ostringstream os;
  util::JsonWriter w(os);
  w.begin_object();
  const std::string cmd = args.get_string("cmd", "");
  const std::string id = args.get_string("id", "");
  if (!id.empty()) w.kv("id", id);
  if (!cmd.empty()) {
    w.kv("cmd", cmd);
    if (cmd == "reload") {
      // Forward the override flags the server flavor of these keys uses.
      const std::string analyzer = args.get_string("analyzer", "");
      if (!analyzer.empty()) w.kv("analyzer", analyzer);
      for (const char* key : {"workers", "shards", "batch", "cache"})
        if (args.get_int(key, -1) >= 0)
          w.kv(key, args.get_int(key, -1));
    }
  } else {
    const std::string file = args.get_string("file", "");
    if (file.empty())
      throw std::invalid_argument("client mode needs --file or --cmd");
    std::ifstream in(file);
    if (!in) throw std::runtime_error("cannot read " + file);
    std::stringstream buffer;
    buffer << in.rdbuf();
    w.kv("taskset", buffer.str());
    const std::string analyzer = args.get_string("analyzer", "");
    if (!analyzer.empty()) w.kv("analyzer", analyzer);
    if (args.get_bool("certify", false)) w.kv("certify", true);
    const double scale = args.get_double("wcet-scale", 1.0);
    if (scale != 1.0) w.kv("wcet_scale", scale);
  }
  w.end_object();
  util::write_frame(socket, os.str());

  const std::optional<std::string> response = util::read_frame(socket);
  if (!response.has_value()) {
    std::fprintf(stderr, "rtpool_serve: connection closed without response\n");
    return 1;
  }
  if (args.get_bool("extract-report", false)) {
    const std::string report = serve::extract_member(*response, "report");
    if (report.empty()) {
      std::fprintf(stderr, "rtpool_serve: no report in response: %s\n",
                   response->c_str());
      return 1;
    }
    std::printf("%s\n", report.c_str());
  } else {
    std::printf("%s\n", response->c_str());
  }
  // Exit status mirrors the verdict so scripts can branch on it.
  const util::JsonValue doc = util::parse_json(*response);
  if (doc.is_object() && doc.contains("ok") && doc.at("ok").is_bool() &&
      !doc.at("ok").as_bool())
    return 1;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::Args args(
        argc, argv,
        {"port", "host", "stdin", "analyzer", "workers", "shards", "batch",
         "cache", "config", "print-port", "connect", "file", "cmd", "id",
         "certify", "wcet-scale", "extract-report"});
    if (!args.get_string("connect", "").empty()) return run_client(args);
    if (args.get_bool("stdin", false)) return run_server_stdin(args);
    return run_server_tcp(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rtpool_serve: %s\n", e.what());
    return 1;
  }
}
