// Figure 1 (b)/(c) live: runs the blocking fork-join pattern on a REAL
// thread pool with condition variables, then provokes the deadlock of
// Figure 1(c) (two concurrent blocking forks on a two-worker pool) and
// shows that (i) the runtime guard proves the stall and prints a wait-for
// cycle that matches the static Lemma 2 witness, (ii) the kEmergencyWorker
// recovery policy rescues the very same run, (iii) the non-blocking
// implementation of Listing 2 completes, and (iv) the discrete-event
// simulator predicts the same outcomes.
#include <chrono>
#include <cstdio>

#include "analysis/deadlock.h"
#include "exec/graph_executor.h"
#include "exec/thread_pool.h"
#include "model/builder.h"
#include "sim/engine.h"

namespace {

using namespace rtpool;

/// Two replicas of the Figure 1(a) graph under one source/sink: both forks
/// can be picked up concurrently by the two workers — and then both block.
model::DagTask replicas_task() {
  model::DagTaskBuilder b("fig1c");
  const model::NodeId src = b.add_node(1.0);
  const auto r1 = b.add_blocking_fork_join(1.0, 1.0, {2.0, 2.0, 2.0});
  const auto r2 = b.add_blocking_fork_join(1.0, 1.0, {2.0, 2.0, 2.0});
  const model::NodeId snk = b.add_node(1.0);
  b.add_edge(src, r1.fork);
  b.add_edge(src, r2.fork);
  b.add_edge(r1.join, snk);
  b.add_edge(r2.join, snk);
  b.period(1000.0);
  return b.build();
}

void run_real(const model::DagTask& task, bool blocking, std::size_t workers,
              exec::RecoveryPolicy policy = exec::RecoveryPolicy::kReport) {
  exec::ThreadPool pool(workers);
  exec::GraphExecutor executor(pool, task);
  exec::ExecOptions options;
  options.microseconds_per_unit = 1000.0;  // 1 ms per WCET unit
  options.watchdog = std::chrono::milliseconds(500);
  options.recovery = policy;
  const exec::ExecReport report = blocking
                                      ? executor.run_blocking(options)
                                      : executor.run_non_blocking(options);
  std::printf("  %-12s workers=%zu: %s  (%zu/%zu nodes, peak blocked=%zu, "
              "%.1f ms)\n",
              blocking ? "blocking" : "non-blocking", workers,
              report.completed ? "completed" : "STALLED (guard)",
              report.nodes_executed, task.node_count(),
              report.max_blocked_workers,
              static_cast<double>(report.elapsed.count()) / 1000.0);
  if (report.stall.has_value())
    std::printf("    guard: %s\n", report.stall->describe().c_str());
  // Cross-check the runtime diagnosis against the static analysis.
  if (report.stall.has_value() && !report.stall->wait_cycle.empty()) {
    const auto witness = analysis::find_wait_for_cycle(task, workers);
    if (witness.has_value())
      std::printf("    static Lemma 2 witness agrees: %s\n",
                  analysis::describe(*witness, task.name()).c_str());
  }
}

void run_sim(const model::DagTask& task, std::size_t m) {
  model::TaskSet ts(m);
  ts.add(task);
  sim::SimConfig cfg;
  cfg.policy = sim::SchedulingPolicy::kGlobal;
  cfg.horizon = 1000.0;
  const auto result = sim::simulate(ts, cfg);
  if (result.deadlock.has_value()) {
    std::printf("  simulator:   DEADLOCK at t=%.1f (%s)\n",
                result.deadlock->time, result.deadlock->description.c_str());
  } else {
    std::printf("  simulator:   completed, R=%.1f, min l(t)=%ld\n",
                result.max_response(0),
                result.per_task[0].min_available_concurrency);
  }
}

}  // namespace

int main() {
  std::printf("=== Figure 1(b): one blocking fork-join, 2 workers ===\n");
  const model::DagTask fig1 = model::make_fork_join_task("fig1", 3, 2.0, 1000.0,
                                                         /*blocking=*/true);
  run_real(fig1, /*blocking=*/true, 2);
  run_sim(fig1, 2);

  std::printf("\n=== Figure 1(c): two concurrent blocking forks, 2 workers ===\n");
  const model::DagTask replicas = replicas_task();
  run_real(replicas, /*blocking=*/true, 2);
  run_sim(replicas, 2);

  std::printf("\n=== Recovery: same run under kEmergencyWorker ===\n");
  run_real(replicas, /*blocking=*/true, 2,
           exec::RecoveryPolicy::kEmergencyWorker);

  std::printf("\n=== Listing 2: same graph, non-blocking semantics ===\n");
  run_real(replicas, /*blocking=*/false, 2);

  std::printf("\n=== Remedy: one more worker (l̄ > 0) ===\n");
  run_real(replicas, /*blocking=*/true, 3);
  run_sim(replicas, 3);
  return 0;
}
