// Partitioned scheduling walkthrough (Section 4.2): generates a task set,
// partitions it with the worst-fit baseline and with Algorithm 1, and shows
// why the baseline is unsafe — the simulator exhibits the deadlock /
// reduced-concurrency delay that Algorithm 1 rules out by construction.
#include <cstdio>

#include "analysis/deadlock.h"
#include "analysis/partition.h"
#include "analysis/partitioned_rta.h"
#include "gen/taskset_generator.h"
#include "sim/engine.h"

namespace {

using namespace rtpool;

void describe_partition(const char* name, const model::TaskSet& ts,
                        const analysis::PartitionResult& result) {
  std::printf("\n--- %s ---\n", name);
  if (!result.success()) {
    std::printf("partitioning FAILED: %s\n", result.failure.c_str());
    return;
  }
  const auto util = result.partition->core_utilization(ts);
  std::printf("core utilization:");
  for (double u : util) std::printf(" %.3f", u);
  std::printf("\n");

  for (std::size_t i = 0; i < ts.size(); ++i) {
    const auto check = analysis::check_deadlock_free_partitioned(
        ts.task(i), ts.core_count(), result.partition->per_task[i]);
    if (!check.deadlock_free)
      std::printf("  %s: %s\n", ts.task(i).name().c_str(), check.witness.c_str());
  }
  const bool safe =
      analysis::task_set_deadlock_free_partitioned(ts, *result.partition);
  std::printf("Lemma 3 deadlock-freedom: %s\n", safe ? "GUARANTEED" : "no");

  analysis::PartitionedRtaOptions opts;
  opts.require_deadlock_free = false;  // report bounds either way
  const auto rta = analysis::analyze_partitioned(ts, *result.partition, opts);
  for (std::size_t i = 0; i < ts.size(); ++i)
    std::printf("  %-6s R=%8.1f  D=%8.1f  %s\n", ts.task(i).name().c_str(),
                rta.per_task[i].response_time, ts.task(i).deadline(),
                rta.per_task[i].schedulable ? "ok" : "MISS");

  sim::SimConfig cfg;
  cfg.policy = sim::SchedulingPolicy::kPartitioned;
  cfg.partition = *result.partition;
  double max_period = 0.0;
  for (const auto& t : ts.tasks()) max_period = std::max(max_period, t.period());
  cfg.horizon = 8.0 * max_period;
  const auto sim_result = sim::simulate(ts, cfg);
  if (sim_result.deadlock.has_value()) {
    std::printf("simulation: DEADLOCK -> %s\n",
                sim_result.deadlock->description.c_str());
  } else {
    std::printf("simulation: no deadlock; max responses:");
    for (std::size_t i = 0; i < ts.size(); ++i)
      std::printf(" %.1f", sim_result.max_response(i));
    std::printf("%s\n", sim_result.any_deadline_miss ? "  (misses!)" : "");
  }
}

}  // namespace

int main() {
  // A task set dense in blocking forks so the hazard is clearly visible.
  util::Rng rng(11);
  gen::TaskSetParams params;
  params.cores = 4;
  params.task_count = 3;
  params.total_utilization = 0.5;
  params.nfj.min_branches = 3;
  params.nfj.max_branches = 4;
  params.blocking_window = gen::BlockingWindow{2, 3};
  const model::TaskSet ts = gen::generate_task_set(params, rng);

  std::printf("task set: m=%zu, n=%zu, U=%.2f\n", ts.core_count(), ts.size(),
              ts.total_utilization());
  for (const auto& t : ts.tasks())
    std::printf("  %-6s |V|=%3zu  vol=%7.1f  T=%8.1f  BF=%zu\n",
                t.name().c_str(), t.node_count(), t.volume(), t.period(),
                t.blocking_fork_count());

  describe_partition("worst-fit baseline (unsafe)", ts,
                     analysis::partition_worst_fit(ts));
  describe_partition("Algorithm 1 (reduced-concurrency-delay free)", ts,
                     analysis::partition_algorithm1(ts));
  return 0;
}
