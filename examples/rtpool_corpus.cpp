// rtpool_corpus: the sharded, checkpointable corpus sweep (ROADMAP item 5).
//
//   rtpool_corpus --seed-range 0:50000 [--shards 64] [--threads N]
//                 [--seed ROOT] [--m CORES] [--windows W]
//                 [--analyzers name,name,...] [--scenarios SUBSTRING]
//                 [--checkpoint FILE] [--resume] [--budget-sets N]
//                 [--gap-csv FILE] [--summary FILE] [--witness-dir DIR]
//                 [--max-witnesses N] [--inject-optimistic]
//
// Every seed in the half-open range becomes one generated task set, every
// configured analyzer is run on it, and the simulator cross-checks each
// verdict in the safety direction (see src/corpus/corpus.h for the
// soundness table). Violations are written as replayable witness bundles
// (`rtpool_cli --replay-witness=FILE`).
//
// Exit codes: 0 = range complete, no safety violations; 2 = safety
// violations observed; 10 = paused at a shard boundary (--budget-sets;
// checkpoint written, rerun with --resume to continue); 1 = usage/config
// error.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "corpus/corpus.h"
#include "util/args.h"

namespace {

using namespace rtpool;

/// Parse "B:E" into a half-open seed range.
void parse_seed_range(const std::string& spec, corpus::CorpusConfig& config) {
  const std::size_t colon = spec.find(':');
  if (colon == std::string::npos)
    throw std::invalid_argument("--seed-range expects BEGIN:END, got '" +
                                spec + "'");
  config.seed_begin = std::stoull(spec.substr(0, colon));
  config.seed_end = std::stoull(spec.substr(colon + 1));
  if (config.seed_end < config.seed_begin)
    throw std::invalid_argument("--seed-range: END < BEGIN in '" + spec + "'");
}

std::vector<corpus::AnalyzerSpec> parse_analyzers(const std::string& spec) {
  std::vector<corpus::AnalyzerSpec> specs;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t comma = spec.find(',', start);
    const std::string name =
        spec.substr(start, comma == std::string::npos ? comma : comma - start);
    if (!name.empty()) specs.push_back(corpus::spec_for(name));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return specs;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::Args args(
        argc, argv,
        {"seed-range", "shards", "threads", "seed", "m", "windows",
         "analyzers", "scenarios", "checkpoint", "resume", "budget-sets",
         "gap-csv", "summary", "witness-dir", "max-witnesses",
         "inject-optimistic"});

    corpus::CorpusConfig config;
    parse_seed_range(args.get_string("seed-range", "0:1000"), config);
    config.shards = static_cast<std::size_t>(args.get_int("shards", 16));
    config.root_seed = args.get_uint64("seed", 1);
    config.cores = static_cast<std::size_t>(args.get_int("m", 8));
    config.windows = args.get_double("windows", 4.0);
    config.budget_sets = args.get_uint64("budget-sets", 0);
    config.checkpoint_path = args.get_string("checkpoint", "");
    config.resume = args.get_bool("resume", false);
    config.witness_dir = args.get_string("witness-dir", "");
    config.max_witnesses =
        static_cast<std::size_t>(args.get_int("max-witnesses", 100));

    const std::string analyzers = args.get_string("analyzers", "");
    if (!analyzers.empty()) config.analyzers = parse_analyzers(analyzers);
    if (args.get_bool("inject-optimistic", false)) {
      // CI fault injection: prove the witness pipeline end-to-end with a
      // deliberately unsound analyzer.
      if (config.analyzers.empty())
        config.analyzers = corpus::default_analyzer_specs();
      config.analyzers.push_back(corpus::register_forced_optimistic_analyzer());
    }

    const std::string scenarios = args.get_string("scenarios", "");
    if (!scenarios.empty()) {
      config.space = gen::ScenarioSpace::corpus_default();
      if (config.space.filter(scenarios) == 0)
        throw std::invalid_argument("--scenarios '" + scenarios +
                                    "' matches no scenario");
    }

    const int threads = static_cast<int>(args.get_int("threads", 0));
    corpus::CorpusRunner runner(config, threads);

    const auto t0 = std::chrono::steady_clock::now();
    const corpus::CorpusResult result = runner.run();
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    std::printf("corpus: %llu sets (%llu generation errors) over seeds "
                "[%llu, %llu), %zu/%zu shards this run (%zu restored)\n",
                static_cast<unsigned long long>(result.sets),
                static_cast<unsigned long long>(result.generation_errors),
                static_cast<unsigned long long>(config.seed_begin),
                static_cast<unsigned long long>(config.seed_end),
                result.range.shards_run, result.range.shards_total,
                result.range.shards_restored);
    for (const corpus::AnalyzerStats& st : result.per_analyzer) {
      std::printf("  %-34s [%-6s] accept=%llu sim=%llu miss=%llu deadlock=%llu "
                  "optimistic=%llu pessimistic=%llu violations=%llu "
                  "gap{n=%llu p50=%.3f p99=%.3f}\n",
                  st.analyzer.c_str(), corpus::to_string(st.mode),
                  static_cast<unsigned long long>(st.analysis_schedulable),
                  static_cast<unsigned long long>(st.sim_checked),
                  static_cast<unsigned long long>(st.sim_deadline_miss),
                  static_cast<unsigned long long>(st.sim_deadlock),
                  static_cast<unsigned long long>(st.optimistic),
                  static_cast<unsigned long long>(st.pessimistic),
                  static_cast<unsigned long long>(st.safety_violations),
                  static_cast<unsigned long long>(st.gap.count()),
                  st.gap.percentile(50), st.gap.percentile(99));
    }

    const std::string gap_csv = args.get_string("gap-csv", "");
    if (!gap_csv.empty()) {
      corpus::write_gap_csv(gap_csv, result);
      std::printf("gap statistics written to %s\n", gap_csv.c_str());
    }
    const std::string summary = args.get_string("summary", "");
    if (!summary.empty()) {
      // wall_seconds <= 0 keeps the summary deterministic; CI diffs the
      // straight-through and killed/resumed summaries byte-for-byte.
      std::ofstream out(summary);
      if (!out) throw std::runtime_error("cannot write '" + summary + "'");
      out << corpus::render_summary_json(config, result, 0.0);
    }
    std::printf("wall %.1fs (%.0f sets/s)\n", wall,
                wall > 0.0 ? static_cast<double>(result.range.seeds_evaluated) /
                                 wall
                           : 0.0);

    if (result.safety_violations > 0) {
      std::printf("SAFETY VIOLATIONS: %llu (%llu witness bundles written)\n",
                  static_cast<unsigned long long>(result.safety_violations),
                  static_cast<unsigned long long>(result.witnesses_written));
      return 2;
    }
    if (!result.complete) {
      std::printf("paused at a shard boundary (budget); resume with "
                  "--resume --checkpoint %s\n",
                  config.checkpoint_path.c_str());
      return 10;
    }
    std::printf("no safety violations\n");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rtpool_corpus: %s\n", e.what());
    return 1;
  }
  return 0;
}
